"""Durability tests for the live tier: hot-partition WAL, disk-fault
injection matrix, and self-healing recovery.

The headline contract: a crash anywhere in ingest loses at most the
un-fsynced WAL tail, ``LiveIndex.open()`` recovers without any source
replay, no torn partition is ever visible to readers, and the recovered
index answers every query bit-identically to a batch build over the
recovered prefix.  The crash points are *enumerated* by the fault
injector (every counted file operation of a reference workload), not
hand-picked.
"""

import os
import sqlite3

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.core.index import SegDiffIndex
from repro.core.live import LiveIndex
from repro.errors import InvalidParameterError, StorageError
from repro.obs import recorder as flight
from repro.storage.faults import (
    FaultInjected,
    FaultInjector,
    FaultPolicy,
    FaultyFS,
)
from repro.storage.livewal import WAL_NAME, LiveWAL
from repro.storage.partitions import MANIFEST_NAME, PartitionManifest

EPS = 0.8
WINDOW = 300.0

DROP_QUERIES = [(30.0, -1.0), (80.0, -2.5), (150.0, -4.0), (300.0, -0.5)]
JUMP_QUERIES = [(30.0, 1.0), (150.0, 2.5)]


def make_walk(seed, n=600):
    rng = np.random.default_rng(seed)
    ts = np.cumsum(rng.uniform(0.5, 3.0, n))
    vs = np.cumsum(rng.normal(0.0, 1.0, n))
    return ts, vs


def reference_index(ts, vs, finalize=True):
    ref = SegDiffIndex(EPS, WINDOW)
    for t, v in zip(ts, vs):
        ref.append(float(t), float(v))
    if finalize:
        ref.finalize()
    else:
        ref.checkpoint()
    return ref


def tuples(pairs):
    return [p.as_tuple() for p in pairs]


def assert_equivalent(ref, live_like):
    for T, V in DROP_QUERIES:
        assert tuples(ref.search_drops(T, V)) == tuples(
            live_like.search_drops(T, V)
        ), ("drop", T, V)
    for T, V in JUMP_QUERIES:
        assert tuples(ref.search_jumps(T, V)) == tuples(
            live_like.search_jumps(T, V)
        ), ("jump", T, V)


def assert_prefix_equivalent(ts, vs, horizon, live_like):
    """The recovered index ≡ a batch build of the recovered prefix."""
    if horizon is None:
        k = 0
    else:
        k = int(np.searchsorted(ts, horizon, side="right"))
    ref = reference_index(ts[:k], vs[:k], finalize=False)
    try:
        assert_equivalent(ref, live_like)
    finally:
        ref.close()
    return k


def recovery_horizon(live):
    """Everything at or before this time survived the crash."""
    stats = live.stats()
    wal = stats["wal"]
    if wal is not None and wal["replayed_to"] is not None:
        return wal["replayed_to"]
    return stats["watermark"]


# ---------------------------------------------------------------------- #
# WAL: resume without source replay
# ---------------------------------------------------------------------- #


class TestLiveWAL:
    def test_reopen_without_source_replay(self, tmp_path):
        ts, vs = make_walk(3, n=400)
        d = str(tmp_path / "live.d")
        live = LiveIndex(EPS, WINDOW, directory=d, seal_rows=10**9)
        live.append_array(ts, vs)
        live.close()  # no seal, no finalize: everything is WAL-only

        reopened = LiveIndex.open(d)
        stats = reopened.stats()
        assert stats["wal"]["replayed_observations"] == len(ts)
        # no source replay: finalize directly and match the batch build
        reopened.finalize()
        ref = reference_index(ts, vs)
        assert_equivalent(ref, reopened)
        ref.close()
        reopened.close()

    def test_wal_replay_after_partial_seal(self, tmp_path):
        ts, vs = make_walk(5, n=500)
        d = str(tmp_path / "live.d")
        live = LiveIndex(EPS, WINDOW, directory=d, seal_rows=200)
        live.append_array(ts, vs)
        assert live.partitions  # at least one seal rotated the WAL
        wal_obs = live.stats()["wal"]["observations"]
        assert 0 < wal_obs < len(ts)  # sealed frames were GC'd
        live.close()

        reopened = LiveIndex.open(d)
        reopened.finalize()
        ref = reference_index(ts, vs)
        assert_equivalent(ref, reopened)
        ref.close()
        reopened.close()

    def test_torn_tail_is_swept(self, tmp_path):
        ts, vs = make_walk(7, n=300)
        d = str(tmp_path / "live.d")
        live = LiveIndex(EPS, WINDOW, directory=d, seal_rows=10**9)
        live.append_array(ts, vs)
        live.close()

        # a power cut mid-frame: garbage after the last intact record
        wal_path = os.path.join(d, WAL_NAME)
        with open(wal_path, "ab") as fh:
            fh.write(b"\x01\xff\xff\xff\xff torn tail garbage")
        scan = LiveWAL.scan(wal_path)
        assert scan["torn_bytes"] > 0
        assert scan["observations"] == len(ts)

        reopened = LiveIndex.open(d)
        assert reopened.stats()["wal"]["replayed_observations"] == len(ts)
        reopened.finalize()
        ref = reference_index(ts, vs)
        assert_equivalent(ref, reopened)
        ref.close()
        reopened.close()

    def test_gap_frames_replay(self, tmp_path):
        ts, vs = make_walk(11, n=400)
        d = str(tmp_path / "live.d")
        live = LiveIndex(EPS, WINDOW, directory=d, seal_rows=10**9)
        live.append_array(ts[:200], vs[:200])
        live.mark_gap()
        live.append_array(ts[200:], vs[200:])
        live.close()

        reopened = LiveIndex.open(d)
        reopened.finalize()
        # the reference: an identical episode split, built in memory
        mem = LiveIndex(EPS, WINDOW)
        mem.append_array(ts[:200], vs[:200])
        mem.mark_gap()
        mem.append_array(ts[200:], vs[200:])
        mem.finalize()
        assert_equivalent(mem, reopened)
        mem.close()
        reopened.close()

    def test_finalize_deletes_wal(self, tmp_path):
        ts, vs = make_walk(13, n=200)
        d = str(tmp_path / "live.d")
        live = LiveIndex(EPS, WINDOW, directory=d)
        live.append_array(ts, vs)
        assert os.path.exists(os.path.join(d, WAL_NAME))
        live.finalize()
        assert not os.path.exists(os.path.join(d, WAL_NAME))
        live.close()

    def test_wal_off_restores_source_replay(self, tmp_path):
        ts, vs = make_walk(17, n=400)
        d = str(tmp_path / "live.d")
        live = LiveIndex(
            EPS, WINDOW, directory=d, seal_rows=150, wal=False
        )
        live.append_array(ts, vs)
        assert not os.path.exists(os.path.join(d, WAL_NAME))
        assert live.stats()["wal"] is None
        live.close()

        # without a WAL the producer must re-feed; pre-watermark
        # observations are skipped (the PR 7 contract, unchanged)
        reopened = LiveIndex.open(d, wal=False)
        reopened.append_array(ts, vs)
        reopened.finalize()
        ref = reference_index(ts, vs)
        assert_equivalent(ref, reopened)
        ref.close()
        reopened.close()

    def test_wal_needs_directory(self):
        with pytest.raises(InvalidParameterError):
            LiveIndex(EPS, WINDOW, wal=True)

    def test_wal_rejects_bad_magic(self, tmp_path):
        path = str(tmp_path / "not.wal")
        with open(path, "wb") as fh:
            fh.write(b"NOTAWAL0" + b"\x00" * 64)
        with pytest.raises(StorageError):
            LiveWAL(path)


# ---------------------------------------------------------------------- #
# size-aware seal policy
# ---------------------------------------------------------------------- #


class TestSealBytes:
    def test_wide_stream_seals_by_bytes_first(self, tmp_path):
        ts, vs = make_walk(19, n=500)
        d = str(tmp_path / "live.d")
        # the row threshold is unreachable: only the byte estimate of
        # this wide-ish stream can trigger the seals
        live = LiveIndex(
            EPS, WINDOW, directory=d,
            seal_rows=10**9, seal_bytes=64 * 1024,
        )
        live.append_array(ts, vs)
        stats = live.stats()
        assert stats["seal_bytes"] == 64 * 1024
        assert stats["n_partitions"] >= 1, (
            "byte-based policy never sealed"
        )
        assert stats["hot"]["est_bytes"] < 64 * 1024
        live.finalize()
        ref = reference_index(ts, vs)
        assert_equivalent(ref, live)
        ref.close()
        live.close()

    def test_est_bytes_tracks_ingest(self):
        ts, vs = make_walk(23, n=300)
        live = LiveIndex(EPS, WINDOW, seal_rows=10**9)
        assert live.stats()["hot"]["est_bytes"] == 0
        live.append_array(ts, vs)
        stats = live.stats()["hot"]
        assert stats["est_bytes"] > 0
        assert stats["est_bytes"] >= 32 * stats["n_segments"]
        live.close()

    def test_seal_bytes_validation(self):
        with pytest.raises(InvalidParameterError):
            LiveIndex(EPS, WINDOW, seal_bytes=0)


# ---------------------------------------------------------------------- #
# manifest install under disk faults (the ENOSPC regression)
# ---------------------------------------------------------------------- #


class TestManifestFaults:
    @pytest.mark.parametrize("mode", ["enospc", "error"])
    @pytest.mark.parametrize("fail_at", [1, 2, 3])
    def test_failed_install_keeps_previous_generation(
        self, tmp_path, mode, fail_at
    ):
        d = str(tmp_path / "m.d")
        os.makedirs(d)
        gen0 = PartitionManifest(epsilon=EPS, window=WINDOW)
        gen0.save(d)

        # ops of one save: write(tmp), fsync(tmp), replace -> fail each
        injector = FaultInjector(FaultPolicy(fail_at=fail_at, mode=mode))
        gen1 = gen0.with_finalized()
        with pytest.raises(OSError):
            gen1.save(d, fs=FaultyFS(injector))

        # previous generation intact, temp file cleaned up
        loaded = PartitionManifest.load(d)
        assert loaded.generation == gen0.generation
        assert not loaded.finalized
        assert not os.path.exists(
            os.path.join(d, MANIFEST_NAME + ".tmp")
        )
        # the failure was transient: retrying just works
        gen1.save(d)
        assert PartitionManifest.load(d).finalized

    def test_enospc_mid_seal_rolls_back_and_retries(self, tmp_path):
        ts, vs = make_walk(29, n=300)
        d = str(tmp_path / "live.d")
        injector = FaultInjector()
        live = LiveIndex(
            EPS, WINDOW, directory=d, seal_rows=10**9,
            _fs=FaultyFS(injector),
        )
        live.append_array(ts, vs)
        gen_before = live.generation

        # fail the next fsync/write/replace — whichever the seal issues
        # first — with a full disk
        injector.arm(
            FaultPolicy(fail_at=injector.op_count + 1, mode="enospc")
        )
        with pytest.raises(OSError):
            live.seal()
        injector.arm(FaultPolicy())

        assert live.partitions == []
        assert PartitionManifest.load(d).generation == gen_before
        leftovers = set(os.listdir(d)) - {MANIFEST_NAME, WAL_NAME}
        assert not leftovers, leftovers
        assert live.seal() is not None
        live.finalize()
        ref = reference_index(ts, vs)
        assert_equivalent(ref, live)
        ref.close()
        live.close()


# ---------------------------------------------------------------------- #
# the injected-fault crash matrix
# ---------------------------------------------------------------------- #

MATRIX_N = 360
MATRIX_CHUNK = 40
MATRIX_SEAL_ROWS = 150
MATRIX_SYNC_OBS = 64


def _matrix_workload(directory, fs, progress=None):
    """The reference ingest whose every file op becomes a crash point.

    ``progress["fed"]`` tracks how many observations the producer
    *completed* feeding — the durability bound is measured against it,
    not the full stream, because an injected fault also stops the feed.
    """
    ts, vs = make_walk(7, n=MATRIX_N)
    live = LiveIndex(
        EPS, WINDOW, directory=directory,
        seal_rows=MATRIX_SEAL_ROWS, wal_sync_obs=MATRIX_SYNC_OBS,
        _fs=fs,
    )
    try:
        for i in range(0, MATRIX_N, MATRIX_CHUNK):
            live.append_array(ts[i : i + MATRIX_CHUNK],
                              vs[i : i + MATRIX_CHUNK])
            if progress is not None:
                progress["fed"] = i + MATRIX_CHUNK
        live.finalize()
    finally:
        try:
            live.close()
        except Exception:
            pass
    return ts, vs


def _matrix_points():
    """Every fault point of the workload (strided unless
    ``REPRO_CRASH_MATRIX=full``), learned from one fault-free run."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        injector = FaultInjector()
        _matrix_workload(os.path.join(tmp, "probe.d"), FaultyFS(injector))
        n_ops = injector.op_count
    assert n_ops >= 10, f"workload exposes only {n_ops} fault points"
    if os.environ.get("REPRO_CRASH_MATRIX") == "full":
        stride = 1
    else:
        stride = max(1, n_ops // 12)
    return list(range(1, n_ops + 1, stride)) + [n_ops]


MATRIX_FAIL_POINTS = _matrix_points()


class TestCrashMatrix:
    @pytest.mark.parametrize("mode", ["crash", "torn", "enospc"])
    @pytest.mark.parametrize("fail_at", MATRIX_FAIL_POINTS)
    def test_recovery_at_every_fault_point(self, tmp_path, mode, fail_at):
        d = str(tmp_path / "live.d")
        injector = FaultInjector(
            FaultPolicy(fail_at=fail_at, mode=mode)
        )
        progress = {"fed": 0}
        try:
            ts, vs = _matrix_workload(
                d, FaultyFS(injector), progress=progress
            )
            progress["fed"] = MATRIX_N
        except (FaultInjected, OSError):
            ts, vs = make_walk(7, n=MATRIX_N)
        finally:
            injector.close_all()
        fed = progress["fed"]

        if not os.path.exists(os.path.join(d, MANIFEST_NAME)):
            # crashed before the very first manifest install: nothing
            # was ever committed, so the producer starts a fresh index
            # and feeds the stream from scratch
            fresh = LiveIndex(
                EPS, WINDOW, directory=d, seal_rows=MATRIX_SEAL_ROWS
            )
            fresh.append_array(ts, vs)
            fresh.finalize()
            ref = reference_index(ts, vs)
            assert_equivalent(ref, fresh)
            ref.close()
            fresh.close()
            return

        # self-healing reopen: torn tails swept, partial files
        # quarantined, checksums verified — and the recovered prefix is
        # bit-identical to a batch build over the same observations
        reopened = LiveIndex.open(d, scrub=True)
        if reopened.finalized:
            ref = reference_index(ts, vs)
            assert_equivalent(ref, reopened)
            ref.close()
            reopened.close()
            return
        horizon = recovery_horizon(reopened)
        if horizon is None:
            k = 0
        else:
            k = int(np.searchsorted(ts, horizon, side="right"))
        ref = reference_index(ts[:k], vs[:k], finalize=False)
        try:
            assert_equivalent(ref, reopened)
        except AssertionError:
            if k < MATRIX_N:
                raise
            # crashed inside finalize(), after the closing seal
            # committed but before the finalized flag did: what
            # persisted is the *finalized* segmentation
            ref_fin = reference_index(ts, vs, finalize=True)
            try:
                assert_equivalent(ref_fin, reopened)
            finally:
                ref_fin.close()
        finally:
            ref.close()
        # the durability contract: every observation whose append call
        # returned must survive the crash (its WAL write completed);
        # only the single in-flight chunk is allowed to be uncertain
        assert fed <= k <= fed + MATRIX_CHUNK, (
            f"fed {fed}, recovered {k} at {mode}@{fail_at}"
        )

        # the producer may still re-feed its stream; duplicates are
        # skipped and the final answer matches the full batch build
        reopened.append_array(ts, vs)
        reopened.finalize()
        ref = reference_index(ts, vs)
        assert_equivalent(ref, reopened)
        ref.close()
        reopened.close()


# ---------------------------------------------------------------------- #
# scrub: self-healing open
# ---------------------------------------------------------------------- #


class TestScrub:
    def _build(self, d, seed=31, n=500, seal_rows=120):
        ts, vs = make_walk(seed, n=n)
        live = LiveIndex(EPS, WINDOW, directory=d, seal_rows=seal_rows)
        for i in range(0, n, 50):
            live.append_array(ts[i : i + 50], vs[i : i + 50])
        live.seal()
        assert len(live.partitions) >= 2
        specs = live.partitions
        live.close()
        return ts, vs, specs

    def test_scrub_quarantines_truncated_partition(self, tmp_path):
        d = str(tmp_path / "live.d")
        ts, vs, specs = self._build(d)
        victim = specs[1].file
        with open(os.path.join(d, victim), "r+b") as fh:
            fh.truncate(97)  # a torn partition file

        flight.clear()
        reopened = LiveIndex.open(d, scrub=True)
        # rolled back to the intact prefix; the torn file (and the WAL,
        # whose frames continue from the discarded suffix) quarantined
        assert [s.partition_id for s in reopened.partitions] == [
            specs[0].partition_id
        ]
        qdir = os.path.join(d, "quarantine")
        assert victim in os.listdir(qdir)
        assert any(
            e.category == "scrub" for e in flight.tail()
        )
        # the producer re-feeds; the final answer is exact
        reopened.append_array(ts, vs)
        reopened.finalize()
        ref = reference_index(ts, vs)
        assert_equivalent(ref, reopened)
        ref.close()
        reopened.close()

    def test_scrub_detects_silent_bit_rot(self, tmp_path):
        d = str(tmp_path / "live.d")
        ts, vs, specs = self._build(d)
        victim = specs[0]
        path = os.path.join(d, victim.file)
        # flip one stored feature value without touching the container:
        # only the persisted checksum trees can notice this
        conn = sqlite3.connect(path)
        table = next(
            t for t in ("drop_points", "jump_points",
                        "drop_lines", "jump_lines")
            if conn.execute(
                f"SELECT COUNT(*) FROM {t}"
            ).fetchone()[0] > 0
        )
        conn.execute(f"UPDATE {table} SET dv = dv + 0.5 "
                     f"WHERE rowid = 1"
                     if table.endswith("points") else
                     f"UPDATE {table} SET dv1 = dv1 + 0.5 "
                     f"WHERE rowid = 1")
        conn.commit()
        conn.close()

        reopened = LiveIndex.open(d, scrub=True)
        # the first partition is damaged — everything rolls back
        assert reopened.partitions == []
        assert victim.file in os.listdir(os.path.join(d, "quarantine"))
        reopened.append_array(ts, vs)
        reopened.finalize()
        ref = reference_index(ts, vs)
        assert_equivalent(ref, reopened)
        ref.close()
        reopened.close()

    def test_scrub_quarantines_orphans_not_deletes(self, tmp_path):
        d = str(tmp_path / "live.d")
        ts, vs, specs = self._build(d)
        orphan = os.path.join(d, "p009999.sqlite")
        with open(orphan, "wb") as fh:
            fh.write(b"partial seal leftovers")
        with open(os.path.join(d, MANIFEST_NAME + ".tmp"), "w") as fh:
            fh.write("{torn")

        reopened = LiveIndex.open(d, scrub=True)
        assert not os.path.exists(orphan)
        listed = os.listdir(os.path.join(d, "quarantine"))
        assert "p009999.sqlite" in listed
        assert MANIFEST_NAME + ".tmp" in listed
        # intact partitions untouched
        assert [s.partition_id for s in reopened.partitions] == [
            s.partition_id for s in specs
        ]
        reopened.close()

    def test_plain_open_still_sweeps_orphans(self, tmp_path):
        d = str(tmp_path / "live.d")
        self._build(d)
        orphan = os.path.join(d, "p009999.sqlite")
        with open(orphan, "wb") as fh:
            fh.write(b"leftovers")
        reopened = LiveIndex.open(d)  # no scrub: orphans are deleted
        assert not os.path.exists(orphan)
        reopened.close()


# ---------------------------------------------------------------------- #
# fsck over live directories
# ---------------------------------------------------------------------- #


class TestLiveFsck:
    def test_fsck_ok(self, tmp_path, capsys):
        from repro.cli import main

        d = str(tmp_path / "live.d")
        ts, vs = make_walk(37, n=400)
        live = LiveIndex(EPS, WINDOW, directory=d, seal_rows=150)
        live.append_array(ts, vs)
        live.seal()
        live.close()
        assert main(["fsck", d]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert WAL_NAME in out  # the WAL scan is reported as a note

    def test_fsck_reports_torn_partition(self, tmp_path, capsys):
        from repro.cli import main

        d = str(tmp_path / "live.d")
        ts, vs = make_walk(37, n=400)
        live = LiveIndex(EPS, WINDOW, directory=d, seal_rows=150)
        live.append_array(ts, vs)
        live.seal()
        victim = live.partitions[0].file
        live.close()
        with open(os.path.join(d, victim), "r+b") as fh:
            fh.truncate(97)
        assert main(["fsck", d]) == 1
        assert "problem" in capsys.readouterr().out


# ---------------------------------------------------------------------- #
# stateful crash machine
# ---------------------------------------------------------------------- #


class LiveCrashMachine(RuleBasedStateMachine):
    """Random ingest/seal/compact schedules with power cuts injected at
    arbitrary file operations, recovered via ``open(scrub=True)`` and
    checked against a batch build of the recovered prefix — the live
    twin of PR 1's ``CrashRecoveryMachine``.
    """

    N = 420

    def __init__(self):
        super().__init__()
        import tempfile

        self.tmp = tempfile.TemporaryDirectory()
        self.dir = os.path.join(self.tmp.name, "live.d")
        self.ts, self.vs = make_walk(43, n=self.N)
        self.cursor = 0
        self.injector = FaultInjector()
        self.live = LiveIndex(
            EPS, WINDOW, directory=self.dir,
            seal_rows=140, wal_sync_obs=48,
            _fs=FaultyFS(self.injector),
        )

    def _recover(self):
        self.injector.close_all()
        try:
            self.live.close()
        except Exception:
            pass
        self.injector = FaultInjector()
        self.live = LiveIndex.open(
            self.dir, scrub=True,
            seal_rows=140, wal_sync_obs=48,
            _fs=FaultyFS(self.injector),
        )
        horizon = recovery_horizon(self.live)
        k = assert_prefix_equivalent(
            self.ts, self.vs, horizon, self.live
        )
        # continue the stream from the recovered point — the feed must
        # never leave a hole
        self.cursor = k

    def _feed(self, n):
        lo, hi = self.cursor, min(self.cursor + n, self.N)
        if lo >= hi:
            return
        self.live.append_array(self.ts[lo:hi], self.vs[lo:hi])
        self.cursor = hi

    @rule(n=st.integers(min_value=10, max_value=80))
    def append_chunk(self, n):
        try:
            self._feed(n)
        except (FaultInjected, OSError):
            self._recover()

    @rule()
    def seal(self):
        try:
            self.live.seal()
        except (FaultInjected, OSError):
            self._recover()

    @rule()
    def compact(self):
        try:
            self.live.compact(max_rows=10**9)
        except (FaultInjected, OSError):
            self._recover()

    @rule(
        offset=st.integers(min_value=1, max_value=12),
        mode=st.sampled_from(["crash", "torn", "enospc"]),
        n=st.integers(min_value=10, max_value=80),
    )
    def crash_during(self, offset, mode, n):
        self.injector.arm(
            FaultPolicy(
                fail_at=self.injector.op_count + offset, mode=mode
            )
        )
        try:
            self._feed(n)
            self.live.seal()
        except (FaultInjected, OSError):
            self._recover()
        else:
            self.injector.arm(FaultPolicy())  # never fired

    @rule()
    def clean_reopen(self):
        self.live.close()
        self.injector.close_all()
        self.injector = FaultInjector()
        self.live = LiveIndex.open(
            self.dir, seal_rows=140, wal_sync_obs=48,
            _fs=FaultyFS(self.injector),
        )
        # a clean close loses nothing at all
        horizon = recovery_horizon(self.live)
        k = assert_prefix_equivalent(
            self.ts, self.vs, horizon, self.live
        )
        assert k == self.cursor, (
            f"clean reopen lost {self.cursor - k} observations"
        )

    def teardown(self):
        try:
            self.live.close()
        except Exception:
            pass
        self.injector.close_all()
        self.tmp.cleanup()


TestLiveCrashMachine = pytest.mark.filterwarnings("ignore")(
    LiveCrashMachine.TestCase
)
TestLiveCrashMachine.settings = settings(
    max_examples=8, stateful_step_count=12, deadline=None
)

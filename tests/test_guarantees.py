"""Theorem 1 end-to-end: completeness and soundness audits.

These are the most important tests in the suite: they run the full
pipeline (segmentation → extraction → storage → queries) on adversarial
series and check the paper's two guarantees against brute-force ground
truth computed on the Model G signal.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.guarantees import (
    audit_completeness,
    audit_soundness,
    covers,
    deepest_drop_between,
    extreme_event_between,
    highest_jump_between,
    true_event_witnesses,
)
from repro.core.index import SegDiffIndex
from repro.core.queries import DropQuery, JumpQuery
from repro.datagen import PiecewiseLinearSignal, TimeSeries, piecewise_series
from repro.errors import InvalidParameterError
from repro.types import SegmentPair

HOUR = 3600.0


class TestExtremeEventBetween:
    def test_simple_drop(self):
        sig = PiecewiseLinearSignal([0.0, 10.0, 20.0], [10.0, 0.0, 10.0])
        ev = deepest_drop_between(sig, (0.0, 10.0), (0.0, 20.0), t_budget=20.0)
        assert ev.dv == pytest.approx(-10.0)
        assert ev.t_first == 0.0
        assert ev.t_second == 10.0

    def test_budget_limits_depth(self):
        sig = PiecewiseLinearSignal([0.0, 10.0], [10.0, 0.0])
        ev = deepest_drop_between(sig, (0.0, 10.0), (0.0, 10.0), t_budget=4.0)
        assert ev.dv == pytest.approx(-4.0)
        assert ev.dt == pytest.approx(4.0)

    def test_jump(self):
        sig = PiecewiseLinearSignal([0.0, 10.0], [0.0, 10.0])
        ev = highest_jump_between(sig, (0.0, 10.0), (0.0, 10.0), t_budget=3.0)
        assert ev.dv == pytest.approx(3.0)

    def test_disjoint_interval_gap_exceeds_budget(self):
        sig = PiecewiseLinearSignal([0.0, 100.0], [0.0, 0.0])
        assert (
            extreme_event_between(sig, (0.0, 10.0), (50.0, 60.0), 10.0, True)
            is None
        )

    def test_end_before_start_returns_none(self):
        sig = PiecewiseLinearSignal([0.0, 100.0], [0.0, 0.0])
        assert (
            extreme_event_between(sig, (50.0, 60.0), (0.0, 10.0), 100.0, True)
            is None
        )

    def test_invalid_budget_rejected(self):
        sig = PiecewiseLinearSignal([0.0, 1.0], [0.0, 0.0])
        with pytest.raises(InvalidParameterError):
            extreme_event_between(sig, (0.0, 1.0), (0.0, 1.0), 0.0, True)

    def test_multi_piece_optimum(self):
        # peak at t=10 (v=8), valley at t=30 (v=-5): deepest drop -13
        sig = PiecewiseLinearSignal(
            [0.0, 10.0, 30.0, 40.0], [0.0, 8.0, -5.0, 0.0]
        )
        ev = deepest_drop_between(sig, (0.0, 40.0), (0.0, 40.0), t_budget=40.0)
        assert ev.dv == pytest.approx(-13.0)
        assert (ev.t_first, ev.t_second) == (10.0, 30.0)


class TestWitnesses:
    def test_witnesses_satisfy_query(self):
        sig = PiecewiseLinearSignal(
            [0.0, 10.0, 30.0, 40.0], [0.0, 8.0, -5.0, 0.0]
        )
        q = DropQuery(40.0, -3.0)
        ws = true_event_witnesses(sig, q)
        assert ws
        for ev in ws:
            assert ev.dv <= -3.0
            assert 0 < ev.dt <= 40.0

    def test_no_witnesses_when_flat(self):
        sig = PiecewiseLinearSignal([0.0, 100.0], [5.0, 5.0])
        assert true_event_witnesses(sig, DropQuery(50.0, -1.0)) == []

    def test_covers(self):
        pairs = [SegmentPair(0.0, 10.0, 20.0, 30.0)]
        sig = PiecewiseLinearSignal([0.0, 30.0], [0.0, -30.0])
        ev = sig.event_between(5.0, 25.0)
        assert covers(pairs, ev)
        assert not covers(pairs, sig.event_between(15.0, 25.0))


def _audit_series(series: TimeSeries, epsilon: float, queries) -> None:
    """Build an index and assert Theorem 1 for every query."""
    window = 8 * HOUR
    idx = SegDiffIndex.build(series, epsilon, window)
    signal = PiecewiseLinearSignal.from_series(series)
    for q in queries:
        if isinstance(q, DropQuery):
            pairs = idx.search_drops(q.t_threshold, q.v_threshold)
        else:
            pairs = idx.search_jumps(q.t_threshold, q.v_threshold)
        missed = audit_completeness(pairs, signal, q)
        assert not missed, f"{q}: missed true events {missed[:3]}"
        bad = audit_soundness(pairs, signal, q, epsilon)
        assert not bad, f"{q}: unsound pairs {bad[:3]}"


class TestTheorem1EndToEnd:
    QUERIES = [
        DropQuery(1 * HOUR, -3.0),
        DropQuery(2 * HOUR, -1.0),
        DropQuery(0.5 * HOUR, -5.0),
        JumpQuery(1 * HOUR, 3.0),
        JumpQuery(2 * HOUR, 1.0),
    ]

    @pytest.mark.parametrize("epsilon", [0.0, 0.2, 0.5, 1.5])
    def test_piecewise_scenario(self, epsilon):
        series = piecewise_series(
            [0, 2 * HOUR, 2.2 * HOUR, 3 * HOUR, 4 * HOUR, 4.5 * HOUR, 6 * HOUR],
            [10.0, 10.0, 4.0, 6.0, 2.0, 11.0, 10.5],
            dt=300.0,
        )
        _audit_series(series, epsilon, self.QUERIES)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("epsilon", [0.2, 1.0])
    def test_random_walks(self, seed, epsilon):
        rng = np.random.default_rng(seed)
        n = 120
        t = np.cumsum(rng.uniform(120.0, 600.0, size=n))
        v = np.cumsum(rng.normal(0.0, 1.5, size=n))
        series = TimeSeries(t, v)
        _audit_series(series, epsilon, self.QUERIES)

    def test_cad_day(self, cad_day):
        series, _events = cad_day
        _audit_series(series, 0.2, [DropQuery(HOUR, -3.0), JumpQuery(HOUR, 3.0)])

    def test_cad_injected_events_found(self, cad_day):
        """Every injected CAD event deep enough for the query is covered."""
        series, events = cad_day
        idx = SegDiffIndex.build(series, 0.2, 8 * HOUR)
        signal = PiecewiseLinearSignal.from_series(series)
        pairs = idx.search_drops(HOUR, -3.0)
        for ev in events:
            if ev.t_bottom > series.t_end or ev.duration > HOUR:
                continue
            if ev.depth < 4.0:  # leave margin for diurnal offset
                continue
            witness = deepest_drop_between(
                signal,
                (ev.t_onset - 900, ev.t_onset + 900),
                (ev.t_bottom - 900, ev.t_bottom + 900),
                HOUR,
            )
            if witness is None or witness.dv > -3.0:
                continue  # the pulse got masked by other components
            assert covers(pairs, witness)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    epsilon=st.sampled_from([0.0, 0.3, 1.0]),
    v_thr=st.floats(min_value=-6.0, max_value=-0.5),
    t_thr_minutes=st.integers(min_value=10, max_value=180),
)
@settings(max_examples=40, deadline=None)
def test_theorem1_property(seed, epsilon, v_thr, t_thr_minutes):
    """Hypothesis sweep of Theorem 1 over random walks and queries."""
    rng = np.random.default_rng(seed)
    n = 60
    t = np.cumsum(rng.uniform(60.0, 900.0, size=n))
    v = np.cumsum(rng.normal(0.0, 1.2, size=n))
    series = TimeSeries(t, v)
    window = 4 * HOUR
    t_thr = min(float(t_thr_minutes) * 60.0, window)
    idx = SegDiffIndex.build(series, epsilon, window)
    signal = PiecewiseLinearSignal.from_series(series)
    q = DropQuery(t_thr, v_thr)
    pairs = idx.search_drops(t_thr, v_thr)
    assert not audit_completeness(pairs, signal, q)
    assert not audit_soundness(pairs, signal, q, epsilon)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    epsilon=st.sampled_from([0.0, 0.3, 1.0]),
    v_thr=st.floats(min_value=0.5, max_value=6.0),
    t_thr_minutes=st.integers(min_value=10, max_value=180),
)
@settings(max_examples=25, deadline=None)
def test_theorem1_property_jumps(seed, epsilon, v_thr, t_thr_minutes):
    """The symmetric jump-search guarantee under the same sweep."""
    rng = np.random.default_rng(seed)
    n = 60
    t = np.cumsum(rng.uniform(60.0, 900.0, size=n))
    v = np.cumsum(rng.normal(0.0, 1.2, size=n))
    series = TimeSeries(t, v)
    window = 4 * HOUR
    t_thr = min(float(t_thr_minutes) * 60.0, window)
    idx = SegDiffIndex.build(series, epsilon, window)
    signal = PiecewiseLinearSignal.from_series(series)
    q = JumpQuery(t_thr, v_thr)
    pairs = idx.search_jumps(t_thr, v_thr)
    assert not audit_completeness(pairs, signal, q)
    assert not audit_soundness(pairs, signal, q, epsilon)

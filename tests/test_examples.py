"""Smoke tests: every example script runs to completion.

Examples are part of the public contract (deliverable b); each is
executed in-process with stdout captured and a few key output markers
checked, so a refactor that breaks a walkthrough fails CI.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buf = io.StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(buf):
            runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = argv
    return buf.getvalue()


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 7


def test_quickstart():
    out = run_example("quickstart.py")
    assert "candidate periods" in out
    assert "compression rate" in out


def test_streaming_ingest():
    out = run_example("streaming_ingest.py")
    assert "ALERT" in out
    assert "Stream done" in out


def test_jump_search_finance():
    out = run_example("jump_search_finance.py")
    assert "Jump search" in out
    assert "100.0%" in out or "no raw sampled events" in out


def test_compare_baselines():
    out = run_example("compare_baselines.py")
    assert "SegDiff" in out and "Exh" in out and "Naive" in out
    assert "Exh is blind here" in out


def test_storage_engine_tour():
    out = run_example("storage_engine_tour.py")
    assert "page reads" in out
    assert "mode=scan" in out and "mode=index" in out


@pytest.mark.slow
def test_cad_exploration():
    out = run_example("cad_exploration.py")
    assert "classic CAD" in out
    assert "Figure 1" in out


@pytest.mark.slow
def test_transect_corroboration():
    out = run_example("transect_corroboration.py")
    assert "Corroborated events" in out
    assert "Ground truth" in out

"""Tests for incremental B+tree inserts (node splits)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.storage.minidb import BPlusTree, MiniDatabase, Pager, RID


@pytest.fixture
def pager(tmp_path):
    p = Pager(str(tmp_path / "t.pages"), cache_pages=16)
    yield p
    p.close()


def fresh_tree(pager, key_width=1):
    tree = BPlusTree(pager, key_width)
    tree.bulk_load([])
    return tree


class TestInsert:
    def test_single_insert(self, pager):
        tree = fresh_tree(pager)
        tree.insert((5.0,), RID(0, 0))
        assert [k for k, _ in tree.scan_from()] == [(5.0,)]

    def test_wrong_key_width_rejected(self, pager):
        tree = fresh_tree(pager, key_width=2)
        with pytest.raises(InvalidParameterError):
            tree.insert((1.0,), RID(0, 0))

    def test_many_inserts_sorted_scan(self, pager):
        tree = fresh_tree(pager)
        n = 2000  # far beyond one leaf: forces leaf and internal splits
        for i in range(n):
            key = float((i * 7919) % n)  # scrambled order
            tree.insert((key,), RID(0, i))
        keys = [k[0] for k, _ in tree.scan_from()]
        assert keys == sorted(keys)
        assert len(keys) == n
        assert tree.height() >= 2

    def test_duplicates_kept(self, pager):
        tree = fresh_tree(pager)
        for i in range(10):
            tree.insert((1.0,), RID(0, i))
        entries = list(tree.scan_from())
        assert len(entries) == 10
        assert {rid.slot for _k, rid in entries} == set(range(10))

    def test_insert_into_bulk_loaded_tree(self, pager):
        base = [((float(i),), RID(0, i)) for i in range(0, 100, 2)]
        tree = BPlusTree(pager, 1)
        tree.bulk_load(base)
        for i in range(1, 100, 2):
            tree.insert((float(i),), RID(1, i))
        keys = [k[0] for k, _ in tree.scan_from()]
        assert keys == [float(i) for i in range(100)]

    def test_root_split_preserves_leading_scan(self, pager):
        tree = fresh_tree(pager, key_width=2)
        for i in range(1500):
            tree.insert((float(i % 40), float(i)), RID(0, i))
        got = [k for k, _ in tree.scan_leading_upto(5.0)]
        assert got == sorted(got)
        assert all(k[0] <= 5.0 for k in got)
        assert len(got) == sum(1 for i in range(1500) if i % 40 <= 5)

    @given(
        keys=st.lists(
            st.floats(min_value=-1000, max_value=1000, allow_nan=False),
            min_size=0,
            max_size=600,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_equivalent_to_bulk_load(self, tmp_path_factory, keys):
        """Arbitrary insert order == bulk load of the sorted entries."""
        path = str(tmp_path_factory.mktemp("bti") / "t.pages")
        pager = Pager(path)
        try:
            incremental = BPlusTree(pager, 1)
            incremental.bulk_load([])
            for i, k in enumerate(keys):
                incremental.insert((k,), RID(0, i))
            bulk = BPlusTree(pager, 1)
            bulk.bulk_load(
                sorted(
                    (((k,), RID(0, i)) for i, k in enumerate(keys)),
                    key=lambda e: e[0],
                )
            )
            inc_keys = [k for k, _ in incremental.scan_from()]
            bulk_keys = [k for k, _ in bulk.scan_from()]
            assert inc_keys == bulk_keys
        finally:
            pager.close()


class TestTableInsertIndexed:
    def test_incremental_index_maintenance(self, tmp_path):
        path = str(tmp_path / "d.mdb")
        db = MiniDatabase(path)
        t = db.create_table("t", 2)
        t.create_index("by_key", (0,))
        for i in range(500):
            t.insert_indexed((float((i * 31) % 500), float(i)))
        got = [k[0] for k, _ in t.index_scan_leading("by_key", 50.0)]
        assert got == sorted(got)
        assert len(got) == 51
        db.close()

        # root changes from splits must be persisted via the catalog
        db2 = MiniDatabase(path)
        try:
            got2 = [
                k[0]
                for k, _ in db2.table("t").index_scan_leading("by_key", 50.0)
            ]
            assert got2 == got
        finally:
            db2.close()

    def test_rows_fetchable_through_index(self, tmp_path):
        with MiniDatabase(str(tmp_path / "d.mdb")) as db:
            t = db.create_table("t", 3)
            t.create_index("i", (0, 1))
            rids = {}
            for i in range(100):
                row = (float(i), float(-i), float(i * i))
                rids[row] = t.insert_indexed(row)
            for key, rid in t.index_scan_leading("i", 10.0):
                row = t.get(rid)
                assert row[:2] == key

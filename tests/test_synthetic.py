"""Tests for the generic synthetic generators."""

import numpy as np
import pytest

from repro.datagen import piecewise_series, random_walk_series, sinusoid_series
from repro.errors import InvalidParameterError


class TestRandomWalk:
    def test_shape_and_cadence(self):
        s = random_walk_series(100, dt=60.0, seed=1)
        assert len(s) == 100
        assert np.allclose(np.diff(s.times), 60.0)

    def test_seed_reproducible(self):
        assert random_walk_series(50, seed=3) == random_walk_series(50, seed=3)

    def test_different_seeds_differ(self):
        assert random_walk_series(50, seed=3) != random_walk_series(50, seed=4)

    def test_starts_at_zero(self):
        s = random_walk_series(10, seed=5)
        assert s.values[0] == 0.0

    def test_invalid_params_rejected(self):
        with pytest.raises(InvalidParameterError):
            random_walk_series(0)
        with pytest.raises(InvalidParameterError):
            random_walk_series(10, dt=0.0)


class TestSinusoid:
    def test_noise_free_matches_formula(self):
        s = sinusoid_series(10, dt=100.0, period=1000.0, amplitude=2.0, mean=5.0)
        expected = 5.0 + 2.0 * np.sin(2 * np.pi * s.times / 1000.0)
        assert np.allclose(s.values, expected)

    def test_noise_is_seeded(self):
        a = sinusoid_series(50, noise_std=0.5, seed=7)
        b = sinusoid_series(50, noise_std=0.5, seed=7)
        assert a == b

    def test_invalid_params_rejected(self):
        with pytest.raises(InvalidParameterError):
            sinusoid_series(10, period=0.0)
        with pytest.raises(InvalidParameterError):
            sinusoid_series(10, noise_std=-1.0)


class TestPiecewise:
    def test_includes_breakpoints_as_samples(self):
        s = piecewise_series([0.0, 950.0, 2000.0], [0.0, 5.0, 0.0], dt=300.0)
        assert 950.0 in s.times
        assert 0.0 in s.times
        assert 2000.0 in s.times

    def test_samples_lie_on_polyline(self):
        bp_t = [0.0, 1000.0, 2000.0]
        bp_v = [0.0, 10.0, -10.0]
        s = piecewise_series(bp_t, bp_v, dt=250.0)
        assert np.allclose(s.values, np.interp(s.times, bp_t, bp_v))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            piecewise_series([0.0], [1.0])
        with pytest.raises(InvalidParameterError):
            piecewise_series([0.0, 0.0], [1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            piecewise_series([0.0, 1.0], [1.0, 2.0], dt=0.0)

"""Tests for the synthetic CAD transect generator."""

import numpy as np
import pytest

from repro.datagen import CADConfig, CADTransectGenerator, generate_cad_day
from repro.datagen.cad import DAY
from repro.errors import InvalidParameterError


class TestConfigValidation:
    def test_defaults_valid(self):
        CADConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_sensors": 0},
            {"sampling_interval": 0.0},
            {"days": 0},
            {"event_probability": 1.5},
            {"event_depth_min": -1.0},
            {"event_depth_max": 1.0, "event_depth_min": 2.0},
            {"event_duration_min": 0.0},
            {"event_duration_max": 60.0, "event_duration_min": 120.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            CADConfig(**kwargs)


class TestLayout:
    def test_sensor_names_two_lines(self):
        gen = CADTransectGenerator(CADConfig(n_sensors=25, days=1))
        names = gen.sensor_names()
        assert len(names) == 25
        assert names[0].startswith("L0-")
        assert names[1].startswith("L1-")
        assert len(set(names)) == 25

    def test_depth_factor_profile(self):
        gen = CADTransectGenerator(CADConfig(n_sensors=25, days=1))
        factors = [gen.depth_factor(i) for i in range(25)]
        assert all(0.0 <= f <= 1.0 for f in factors)
        # the middle of the transect is the canyon bottom
        mid = max(range(25), key=lambda i: factors[i])
        assert 8 <= mid <= 17


class TestGeneration:
    def test_cadence_and_length(self):
        cfg = CADConfig(days=2, sampling_interval=300.0, n_sensors=3, seed=9)
        series = CADTransectGenerator(cfg).generate(0)
        assert len(series) == 2 * int(DAY / 300.0)
        assert np.allclose(np.diff(series.times), 300.0)

    def test_reproducible_with_seed(self):
        cfg = CADConfig(days=1, seed=5, n_sensors=3)
        a = CADTransectGenerator(cfg).generate(1)
        b = CADTransectGenerator(cfg).generate(1)
        assert a == b

    def test_sensors_differ(self):
        cfg = CADConfig(days=1, seed=5, n_sensors=3)
        gen = CADTransectGenerator(cfg)
        assert gen.generate(0) != gen.generate(2)

    def test_generate_all_covers_every_sensor(self):
        cfg = CADConfig(days=1, seed=5, n_sensors=5)
        gen = CADTransectGenerator(cfg)
        data = gen.generate_all()
        assert sorted(data) == sorted(gen.sensor_names())

    def test_out_of_range_sensor_rejected(self):
        gen = CADTransectGenerator(CADConfig(days=1, n_sensors=2))
        with pytest.raises(InvalidParameterError):
            gen.generate(2)

    def test_temperatures_plausible(self):
        cfg = CADConfig(days=5, seed=31, n_sensors=3)
        series = CADTransectGenerator(cfg).generate(0)
        assert series.values.min() > -60.0
        assert series.values.max() < 60.0


class TestEvents:
    def test_event_log_populated(self):
        cfg = CADConfig(days=10, seed=13, n_sensors=3, event_probability=0.9)
        gen = CADTransectGenerator(cfg)
        gen.generate(2)
        assert gen.events, "10 nights at p=0.9 should produce events"

    def test_events_visible_in_data(self):
        """Around each logged event the series must actually drop."""
        cfg = CADConfig(
            days=10, seed=13, n_sensors=3, event_probability=0.9,
            anomaly_rate=0.0, noise_std=0.05,
        )
        gen = CADTransectGenerator(cfg)
        series = gen.generate(2)
        for ev in gen.events:
            if ev.t_bottom > series.t_end:
                continue
            before = series.slice_time(ev.t_onset - 600, ev.t_onset).values.mean()
            after = series.slice_time(ev.t_bottom, ev.t_bottom + 600).values.mean()
            # diurnal trend can offset a bit; the pulse must dominate
            assert after < before - 0.5 * ev.depth + 1.0

    def test_event_depth_range_respected(self):
        cfg = CADConfig(days=30, seed=7, n_sensors=3, event_probability=0.9)
        gen = CADTransectGenerator(cfg)
        gen.generate(2)
        depths = [e.depth for e in gen.events]
        assert min(depths) > 0.0

    def test_no_events_when_probability_zero(self):
        cfg = CADConfig(days=5, seed=3, n_sensors=2, event_probability=0.0)
        gen = CADTransectGenerator(cfg)
        gen.generate(0)
        assert gen.events == []


class TestGenerateCadDay:
    def test_returns_day_with_event(self):
        series, events = generate_cad_day(seed=3)
        assert series.duration <= DAY
        assert events

    def test_without_event_requirement(self):
        series, _events = generate_cad_day(seed=3, with_event=False)
        assert len(series) > 0

"""Smoke tests for the experiment modules (small datasets).

The full-size shape assertions live in ``benchmarks/``; these tests just
prove every experiment runs, returns well-formed results, and renders.
"""

import pytest

from repro.experiments import (
    ablations,
    datasets,
    fig7_9_feature_sizes,
    fig10_11_query_time,
    fig12_13_window,
    fig14_15_scalability,
    fig16_24_query_regions,
    report,
    table3_compression,
    table4_corners,
)

DAYS = 2
EPS = (0.2, 0.8)


class TestDatasets:
    def test_standard_series_cached(self):
        a = datasets.standard_series(days=DAYS)
        b = datasets.standard_series(days=DAYS)
        assert a is b

    def test_scalability_groups_contiguous(self):
        groups = datasets.scalability_groups(3, 1)
        for prev, cur in zip(groups, groups[1:]):
            assert cur.t_start > prev.t_end
        total = sum(len(g) for g in groups)
        assert total == 3 * 288


class TestReport:
    def test_render_table_alignment(self):
        out = report.render_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_render_series(self):
        out = report.render_series("x", [1, 2], [("y", [10, 20])], title="t")
        assert "t" in out and "y" in out

    def test_format_helpers(self):
        assert report.format_bytes(2048) == "2.0 KiB"
        assert report.format_bytes(None) == "-"
        assert report.format_seconds(0.002).endswith("ms")
        assert report.format_seconds(2.0) == "2.00 s"
        assert report.format_seconds(None) == "-"


class TestExperimentsRun:
    def test_table3(self):
        rates = table3_compression.run(epsilons=EPS, days=DAYS)
        assert set(rates) == set(EPS)
        assert rates[0.8] > rates[0.2] > 1.0

    def test_fig7_9(self):
        rows = fig7_9_feature_sizes.run(epsilons=EPS, days=DAYS)
        for row in rows.values():
            assert row.segdiff_feature_bytes > 0
            assert row.exh_feature_bytes > row.segdiff_feature_bytes
            assert row.r_f > 1.0 and row.r_d > 1.0

    def test_table4(self):
        rows = table4_corners.run(epsilons=EPS, days=DAYS)
        for row in rows.values():
            total = row.pct_one + row.pct_two + row.pct_three
            assert total == pytest.approx(100.0)
            assert 1.0 <= row.effective <= 3.0

    def test_fig10_11(self):
        rows = fig10_11_query_time.run(epsilons=(0.2,), days=DAYS, repeats=1)
        row = rows[0.2]
        assert row.segdiff_scan > 0 and row.exh_scan > 0
        assert row.n_results_exh >= 0

    def test_fig12_13(self):
        rows = fig12_13_window.run(window_hours=(1, 4), days=DAYS, repeats=1)
        assert rows[4].segdiff_feature_bytes >= rows[1].segdiff_feature_bytes
        assert rows[4].exh_feature_bytes > rows[1].exh_feature_bytes

    def test_fig14_15(self):
        rows = fig14_15_scalability.run(
            n_groups=3, days_per_group=1, exh_groups=1, repeats=1
        )
        assert len(rows) == 3
        assert rows[0].exh_feature_bytes is not None
        assert rows[2].exh_feature_bytes is None
        assert rows[2].exh_feature_bytes_extrapolated > 0
        sizes = [r.segdiff_feature_bytes for r in rows]
        assert sizes == sorted(sizes)

    def test_fig16_24(self):
        study = fig16_24_query_regions.run(n_queries=4, days=DAYS, repeats=1)
        assert len(study.timings) == 4
        for t in study.timings:
            assert set(t.segdiff) == set(t.exh)
        assert study.median_ratio("scan", "warm") > 0
        assert study.hard_queries()

    def test_ablations(self):
        seg_rows = ablations.run_segmenters(days=DAYS)
        assert {r.name for r in seg_rows} == {
            "sliding-window", "bottom-up", "swab"
        }
        sp = ablations.run_self_pairs(days=DAYS)
        assert sp["with self-pairs"]["rows"] >= sp["paper-literal"]["rows"]
        be = ablations.run_backends(days=DAYS, repeats=1)
        assert be["memory"]["hits"] == be["sqlite"]["hits"]

    def test_planner_ablation(self):
        totals = ablations.run_planner(days=DAYS, n_queries=4, repeats=1)
        assert set(totals) == {"scan", "index", "auto", "oracle"}
        assert totals["oracle"] <= min(totals["scan"], totals["index"]) + 1e-9

    def test_access_method_ablation(self):
        out = ablations.run_access_methods(days=DAYS, repeats=1)
        for times in out.values():
            assert set(times) == {"scan", "index", "grid"}

    def test_space_model(self):
        from repro.experiments import space_model

        rows = space_model.run(epsilons=EPS, days=DAYS)
        for row in rows.values():
            assert row.predicted_ratio > 0
            assert row.measured_cell_ratio > 0
            assert 5.0 <= row.c2_effective <= 7.0

    def test_page_cost(self):
        from repro.experiments import page_cost

        rows = page_cost.run(days=DAYS)
        assert {r.label for r in rows} == {"selective", "canonical", "hard"}
        for row in rows:
            assert row.segdiff_scan > 0 and row.exh_scan > 0
            assert row.exh_scan > row.segdiff_scan


class TestMains:
    """Every experiment's main() renders without error."""

    @pytest.mark.parametrize(
        "module",
        [table3_compression, table4_corners],
    )
    def test_cheap_mains(self, module, capsys):
        out = module.main()
        assert out
        assert capsys.readouterr().out.strip() == out.strip()

"""Tests for the feature stores: memory, SQLite, and their equivalence."""

import os

import pytest

from repro.core.corners import collect_features
from repro.core.parallelogram import Parallelogram
from repro.core.queries import DropQuery, JumpQuery
from repro.errors import InvalidParameterError, StorageError
from repro.storage import MemoryFeatureStore, SqliteFeatureStore
from repro.types import DataSegment


def feature_sets(epsilon=0.3):
    """A small zoo of parallelograms covering several cases."""
    chains = [
        # (cd, ab) pairs with varied slopes
        (DataSegment(0, 0, 10, 8), DataSegment(10, 8, 20, -5)),
        (DataSegment(10, 8, 20, -5), DataSegment(20, -5, 35, -2)),
        (DataSegment(20, -5, 35, -2), DataSegment(35, -2, 50, 9)),
        (DataSegment(0, 0, 10, 8), DataSegment(20, -5, 35, -2)),
    ]
    out = [collect_features(Parallelogram.from_segments(cd, ab), epsilon)
           for cd, ab in chains]
    out.append(
        collect_features(
            Parallelogram.self_pair(DataSegment(10, 8, 20, -5)), epsilon
        )
    )
    return out


QUERIES = [
    DropQuery(15.0, -3.0),
    DropQuery(40.0, -1.0),
    DropQuery(5.0, -10.0),
    JumpQuery(15.0, 3.0),
    JumpQuery(40.0, 1.0),
]


def load(store):
    for fs in feature_sets():
        store.add(fs)
    store.finalize()
    return store


class TestMemoryStore:
    def test_counts(self):
        store = load(MemoryFeatureStore())
        counts = store.counts()
        assert counts.total > 0
        assert counts.drop_points >= counts.drop_lines

    def test_scan_equals_index_mode(self):
        store = load(MemoryFeatureStore())
        for q in QUERIES:
            assert store.search(q, mode="scan") == store.search(q, mode="index")

    def test_search_before_finalize_fails(self):
        store = MemoryFeatureStore()
        store.add(feature_sets()[0])
        with pytest.raises(StorageError):
            store.search(QUERIES[0])

    def test_invalid_mode_rejected(self):
        store = load(MemoryFeatureStore())
        with pytest.raises(InvalidParameterError):
            store.search(QUERIES[0], mode="hash")

    def test_append_after_finalize_then_refinalize(self):
        store = MemoryFeatureStore()
        store.add(feature_sets()[0])
        store.finalize()
        before = store.counts().total
        store.add(feature_sets()[1])
        store.finalize()
        assert store.counts().total > before

    def test_closed_store_unusable(self):
        store = load(MemoryFeatureStore())
        store.close()
        with pytest.raises(StorageError):
            store.counts()

    def test_sizes_positive(self):
        store = load(MemoryFeatureStore())
        assert store.feature_bytes() > 0
        assert store.index_bytes() > 0
        assert store.disk_bytes() == store.feature_bytes() + store.index_bytes()

    def test_context_manager(self):
        with MemoryFeatureStore() as store:
            store.add(feature_sets()[0])
        with pytest.raises(StorageError):
            store.counts()


class TestSqliteStore:
    def test_roundtrip_tempfile(self):
        store = load(SqliteFeatureStore())
        path = store.path
        assert os.path.exists(path)
        assert store.counts().total > 0
        store.close()
        assert not os.path.exists(path), "temp file must be removed"

    def test_explicit_path_kept(self, tmp_path):
        path = str(tmp_path / "features.sqlite")
        store = load(SqliteFeatureStore(path))
        store.close()
        assert os.path.exists(path)

    def test_reopen_existing_database(self, tmp_path):
        path = str(tmp_path / "features.sqlite")
        store = load(SqliteFeatureStore(path))
        results = {repr(q): store.search(q) for q in QUERIES}
        store.close()
        reopened = SqliteFeatureStore(path)
        for q in QUERIES:
            assert reopened.search(q) == results[repr(q)]
        reopened.close()

    def test_scan_equals_index(self):
        with load(SqliteFeatureStore()) as store:
            for q in QUERIES:
                assert store.search(q, mode="scan") == store.search(q, mode="index")

    def test_cold_equals_warm(self):
        with load(SqliteFeatureStore()) as store:
            for q in QUERIES:
                assert store.search(q, cache="cold") == store.search(q, cache="warm")

    def test_index_mode_requires_finalize(self):
        store = SqliteFeatureStore()
        store.add(feature_sets()[0])
        with pytest.raises(StorageError):
            store.search(QUERIES[0], mode="index")
        # but scan works on unindexed data
        assert isinstance(store.search(QUERIES[0], mode="scan"), list)
        store.close()

    def test_invalid_mode_and_cache_rejected(self):
        with load(SqliteFeatureStore()) as store:
            with pytest.raises(InvalidParameterError):
                store.search(QUERIES[0], mode="hash")
            with pytest.raises(InvalidParameterError):
                store.search(QUERIES[0], cache="lukewarm")

    def test_sizes_measured(self):
        with load(SqliteFeatureStore()) as store:
            feat = store.feature_bytes()
            idx = store.index_bytes()
            assert feat > 0
            assert idx > 0
            assert store.disk_bytes() == feat + idx

    def test_drop_indexes_zeroes_index_size(self):
        with load(SqliteFeatureStore()) as store:
            assert store.index_bytes() > 0
            store.drop_indexes()
            assert store.index_bytes() == 0

    def test_incremental_append(self):
        with SqliteFeatureStore() as store:
            store.add(feature_sets()[0])
            store.finalize()
            n1 = store.counts().total
            store.add(feature_sets()[1])
            store.finalize()
            assert store.counts().total > n1


class TestBackendEquivalence:
    def test_same_results_both_backends(self):
        mem = load(MemoryFeatureStore())
        sq = load(SqliteFeatureStore())
        try:
            for q in QUERIES:
                assert mem.search(q) == sq.search(q), f"mismatch for {q}"
        finally:
            sq.close()

    def test_same_counts_both_backends(self):
        mem = load(MemoryFeatureStore())
        sq = load(SqliteFeatureStore())
        try:
            assert mem.counts() == sq.counts()
        finally:
            sq.close()

"""Tests for the multi-sensor TransectIndex."""

import pytest

from repro.core.transect import CorroboratedEvent, TransectIndex
from repro.datagen import TimeSeries, piecewise_series
from repro.errors import InvalidParameterError

HOUR = 3600.0


def sensor_with_drop(drop_at: float, depth: float, name: str) -> TimeSeries:
    """Flat 10, drop of `depth` at `drop_at` over 10 min, recover later."""
    series = piecewise_series(
        [0.0, drop_at, drop_at + 600.0, drop_at + 3 * HOUR, drop_at + 4 * HOUR],
        [10.0, 10.0, 10.0 - depth, 10.0 - depth, 10.0],
        dt=300.0,
    )
    return TimeSeries(series.times, series.values, name=name)


@pytest.fixture
def transect():
    sensors = {
        "bottom": sensor_with_drop(2 * HOUR, 8.0, "bottom"),
        "mid": sensor_with_drop(2 * HOUR + 900.0, 5.0, "mid"),
        "rim": sensor_with_drop(12 * HOUR, 4.0, "rim"),  # unrelated, later
        "flat": piecewise_series([0.0, 20 * HOUR], [10.0, 10.0], dt=300.0),
    }
    t = TransectIndex.build(sensors, epsilon=0.1, window=8 * HOUR)
    yield t
    t.close()


class TestBuild:
    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            TransectIndex.build({}, 0.1, HOUR)

    def test_sensor_access(self, transect):
        assert len(transect) == 4
        assert transect.sensor_names == ["bottom", "flat", "mid", "rim"]
        assert transect.index_for("bottom").stats().n_observations > 0
        with pytest.raises(InvalidParameterError):
            transect.index_for("nope")

    def test_stats_aggregate(self, transect):
        stats = transect.stats()
        assert stats["sensors"] == 4
        assert stats["observations"] == sum(
            s.n_observations for s in stats["per_sensor"].values()
        )


class TestPerSensorSearch:
    def test_drop_search_omits_quiet_sensors(self, transect):
        hits = transect.search_drops(HOUR, -3.0)
        assert "flat" not in hits
        assert {"bottom", "mid", "rim"} <= set(hits)

    def test_depth_filter(self, transect):
        hits = transect.search_drops(HOUR, -6.0)
        assert set(hits) == {"bottom"}

    def test_jump_search(self, transect):
        hits = transect.search_jumps(2 * HOUR, 3.0)
        assert "bottom" in hits  # the recovery ramp rises 8 degrees
        assert "flat" not in hits


class TestCorroboration:
    def test_finds_aligned_event(self, transect):
        events = transect.search_corroborated(
            HOUR, -3.0, min_sensors=2, slack=HOUR
        )
        assert events
        best = max(events, key=lambda e: e.n_sensors)
        assert {"bottom", "mid"} <= set(best.sensors)
        lo, hi = best.window
        assert lo <= 2 * HOUR + 900.0 + 600.0 <= hi + HOUR

    def test_unaligned_sensor_not_grouped_with_early_event(self, transect):
        events = transect.search_corroborated(
            HOUR, -3.5, min_sensors=2, slack=900.0
        )
        for ev in events:
            assert not ({"rim"} == set(ev.sensors))
            if "rim" in ev.sensors:
                # rim's drop is 10 hours later; it must not share a group
                # with the bottom/mid event
                pytest.fail(f"rim grouped into {ev.sensors}")

    def test_min_sensors_filter(self, transect):
        all_events = transect.search_corroborated(
            HOUR, -3.0, min_sensors=1, slack=900.0
        )
        strict = transect.search_corroborated(
            HOUR, -3.0, min_sensors=3, slack=900.0
        )
        assert len(strict) <= len(all_events)

    def test_validation(self, transect):
        with pytest.raises(InvalidParameterError):
            transect.search_corroborated(HOUR, -3.0, min_sensors=0)
        with pytest.raises(InvalidParameterError):
            transect.search_corroborated(HOUR, -3.0, min_sensors=99)
        with pytest.raises(InvalidParameterError):
            transect.search_corroborated(HOUR, -3.0, slack=-1.0)

    def test_no_hits_no_events(self, transect):
        assert transect.search_corroborated(HOUR, -30.0) == []

    def test_event_structure(self, transect):
        events = transect.search_corroborated(HOUR, -3.0, min_sensors=2,
                                              slack=HOUR)
        for ev in events:
            assert isinstance(ev, CorroboratedEvent)
            assert ev.n_sensors == len(ev.hits)
            lo, hi = ev.window
            assert lo <= hi


class TestCadTransect:
    def test_canyon_bottom_dominates(self):
        """On real-shaped CAD data, bottom sensors report more drops."""
        from repro.datagen import CADConfig, CADTransectGenerator

        cfg = CADConfig(
            days=20, seed=9, n_sensors=7, anomaly_rate=0.0,
            event_probability=0.9,
        )
        gen = CADTransectGenerator(cfg)
        data = gen.generate_all()
        transect = TransectIndex.build(data, 0.2, 8 * HOUR)
        try:
            depths = {
                name: gen.depth_factor(i)
                for i, name in enumerate(gen.sensor_names())
            }
            deepest = max(depths, key=depths.get)
            shallowest = min(depths, key=depths.get)

            def deepest_witness(sensor: str) -> float:
                hits = transect.index_for(sensor).search_deepest_drops(
                    1, 2 * HOUR, data=data[sensor]
                )
                return hits[0].witness.dv if hits else 0.0

            # the canyon bottom's worst drop is deeper than the rim's
            assert deepest_witness(deepest) < deepest_witness(shallowest)
        finally:
            transect.close()

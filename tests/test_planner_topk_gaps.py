"""Tests for the adaptive planner, top-k deepest search, and gap episodes."""

import pytest

from repro.baselines import NaiveScan
from repro.core.index import SegDiffIndex
from repro.core.planner import QueryPlanner
from repro.datagen import piecewise_series
from repro.errors import InvalidParameterError, StorageError
from repro.storage import MemoryFeatureStore, SqliteFeatureStore

HOUR = 3600.0


@pytest.fixture
def walk_index(walk_series):
    idx = SegDiffIndex.build(walk_series, epsilon=0.2, window=8 * HOUR)
    yield idx
    idx.close()


class TestStoreSampling:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_sample_points_shape(self, walk_series, backend):
        idx = SegDiffIndex.build(walk_series, 0.2, 8 * HOUR, backend=backend)
        try:
            sample = idx.store.sample_points("drop", 64)
            assert sample is not None
            assert sample.ndim == 2 and sample.shape[1] == 2
            assert 1 <= sample.shape[0] <= 64
        finally:
            idx.close()

    @pytest.mark.parametrize("store_cls", [MemoryFeatureStore, SqliteFeatureStore])
    def test_empty_store_samples_none(self, store_cls):
        with store_cls() as store:
            store.finalize()
            assert store.sample_points("drop", 10) is None
            assert store.extreme_feature_dv("drop") is None

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_extreme_feature_dv_signs(self, walk_series, backend):
        idx = SegDiffIndex.build(walk_series, 0.2, 8 * HOUR, backend=backend)
        try:
            deepest = idx.store.extreme_feature_dv("drop")
            highest = idx.store.extreme_feature_dv("jump")
            assert deepest < 0 < highest
        finally:
            idx.close()

    def test_backends_agree_on_extremes(self, walk_series):
        mem = SegDiffIndex.build(walk_series, 0.2, 8 * HOUR, backend="memory")
        sql = SegDiffIndex.build(walk_series, 0.2, 8 * HOUR, backend="sqlite")
        try:
            assert mem.store.extreme_feature_dv("drop") == pytest.approx(
                sql.store.extreme_feature_dv("drop")
            )
        finally:
            mem.close()
            sql.close()


class TestPlanner:
    def test_validation(self, walk_index):
        with pytest.raises(InvalidParameterError):
            QueryPlanner(walk_index.store, sample_size=0)
        with pytest.raises(InvalidParameterError):
            QueryPlanner(walk_index.store, scan_threshold=0.0)

    def test_selectivity_bounds(self, walk_index):
        planner = QueryPlanner(walk_index.store)
        tiny = planner.estimate_selectivity("drop", HOUR, -1e6)
        huge = planner.estimate_selectivity("drop", 8 * HOUR, -1e-6)
        assert 0.0 <= tiny <= huge <= 1.0
        assert tiny == 0.0

    def test_mode_choice_follows_selectivity(self, walk_index):
        planner = QueryPlanner(walk_index.store, scan_threshold=0.02)
        assert planner.choose_mode("drop", HOUR, -1e6) == "index"
        assert planner.choose_mode("drop", 8 * HOUR, -1e-6) == "scan"

    def test_empty_store_prefers_scan(self):
        with MemoryFeatureStore() as store:
            store.finalize()
            planner = QueryPlanner(store)
            assert planner.choose_mode("drop", 1.0, -1.0) == "scan"

    def test_auto_mode_returns_same_results(self, walk_index):
        expect = walk_index.search_drops(HOUR, -2.0, mode="index")
        assert walk_index.search_drops(HOUR, -2.0, mode="auto") == expect

    def test_invalidate_resamples(self, walk_index):
        planner = walk_index.planner
        planner.estimate_selectivity("drop", HOUR, -2.0)
        assert planner._samples
        planner.invalidate()
        assert not planner._samples


class TestTopK:
    def test_matches_naive_deepest(self, walk_series):
        idx = SegDiffIndex.build(walk_series, epsilon=0.1, window=8 * HOUR)
        hits = idx.search_deepest_drops(3, HOUR, data=walk_series)
        assert len(hits) == 3
        depths = [h.witness.dv for h in hits]
        assert depths == sorted(depths)

        # the naive baseline's deepest sampled drop bounds ours from below
        naive_events = NaiveScan(walk_series).search_drops(HOUR, -0.001)
        naive_deepest = min(e.dv for e in naive_events)
        assert hits[0].witness.dv <= naive_deepest + 1e-9
        idx.close()

    def test_k_larger_than_available(self, simple_series):
        idx = SegDiffIndex.build(simple_series, 0.1, 8 * HOUR)
        hits = idx.search_deepest_drops(1000, HOUR, data=simple_series)
        assert 1 <= len(hits) < 1000
        idx.close()

    def test_flat_series_returns_empty(self):
        flat = piecewise_series([0.0, 10 * HOUR], [5.0, 5.0], dt=300.0)
        idx = SegDiffIndex.build(flat, 0.0, 8 * HOUR)
        assert idx.search_deepest_drops(3, HOUR) == []
        idx.close()

    def test_k_validation(self, walk_index):
        with pytest.raises(InvalidParameterError):
            walk_index.search_deepest_drops(0, HOUR)

    def test_uses_approximation_when_no_data(self, walk_series):
        idx = SegDiffIndex.build(walk_series, epsilon=0.2, window=8 * HOUR)
        hits = idx.search_deepest_drops(2, HOUR)
        exact = idx.search_deepest_drops(2, HOUR, data=walk_series)
        # approximation-based depth within epsilon of the exact one
        assert hits[0].witness.dv == pytest.approx(
            exact[0].witness.dv, abs=0.2 + 1e-6
        )
        idx.close()


class TestGapEpisodes:
    def make_gappy(self):
        """Two flat-drop episodes separated by a 6-hour outage."""
        a = piecewise_series(
            [0.0, HOUR, HOUR + 600.0, 2 * HOUR], [10.0, 10.0, 5.0, 5.0],
            dt=300.0,
        )
        b = piecewise_series(
            [8 * HOUR, 9 * HOUR, 9 * HOUR + 600.0, 10 * HOUR],
            [12.0, 12.0, 6.0, 6.0],
            dt=300.0,
        )
        return a, b

    def test_ingest_episodes_counts_gaps(self):
        a, b = self.make_gappy()
        merged = a.concat(b)
        idx = SegDiffIndex(0.1, 8 * HOUR)
        gaps = idx.ingest_episodes(merged, max_gap=HOUR)
        idx.finalize()
        assert gaps == 1
        assert len(idx.episode_approximations()) == 2
        idx.close()

    def test_no_result_spans_the_gap(self):
        a, b = self.make_gappy()
        merged = a.concat(b)
        idx = SegDiffIndex(0.1, 8 * HOUR)
        idx.ingest_episodes(merged, max_gap=HOUR)
        idx.finalize()
        # without the gap break, the 10->6 fall from episode A's start to
        # episode B's end could be reported; with it, never
        pairs = idx.search_drops(8 * HOUR, -3.0)
        assert pairs
        for p in pairs:
            same_episode = (p.t_c <= a.t_end and p.t_a <= a.t_end) or (
                p.t_d >= b.t_start and p.t_b >= b.t_start
            )
            assert same_episode, f"pair spans the gap: {p}"
        idx.close()

    def test_both_episodes_searchable(self):
        a, b = self.make_gappy()
        merged = a.concat(b)
        idx = SegDiffIndex(0.1, 8 * HOUR)
        idx.ingest_episodes(merged, max_gap=HOUR)
        idx.finalize()
        pairs = idx.search_drops(HOUR, -4.0)
        ends = {p.t_a for p in pairs}
        assert any(t <= a.t_end for t in ends), "episode A drop found"
        assert any(t >= b.t_start for t in ends), "episode B drop found"
        idx.close()

    def test_approximation_raises_on_episodes(self):
        a, b = self.make_gappy()
        idx = SegDiffIndex(0.1, 8 * HOUR)
        idx.ingest_episodes(a.concat(b), max_gap=HOUR)
        idx.finalize()
        with pytest.raises(InvalidParameterError, match="episodes"):
            idx.approximation()
        idx.close()

    def test_mark_gap_on_sealed_index_rejected(self, walk_index):
        with pytest.raises(StorageError):
            walk_index.mark_gap()

    def test_invalid_max_gap_rejected(self, walk_series):
        idx = SegDiffIndex(0.1, 8 * HOUR)
        with pytest.raises(InvalidParameterError):
            idx.ingest_episodes(walk_series, max_gap=0.0)
        idx.close()

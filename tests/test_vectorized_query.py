"""Differential tests for the vectorized query hot path.

The columnar ``*_array`` read path (``vectorize=None``/``True``) must be
observationally identical to the scalar tuple-at-a-time path
(``vectorize=False``): bit-identical pairs in the same §4.4 order,
identical EXPLAIN row counts, and the same resilience behaviour
(deadlines fire inside array scans, degraded candidates-only answers
stay Theorem-1 supersets).  Also covers the MiniDB columnar view's
write invalidation and the fault wrapper's scalar fallback for
duck-typed stores without array primitives.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.corners import collect_features
from repro.core.index import SegDiffIndex
from repro.core.live import LiveIndex
from repro.core.parallelogram import Parallelogram
from repro.core.queries import DropQuery, JumpQuery
from repro.datagen import random_walk_series
from repro.engine import QuerySession, ResiliencePolicy, ResultStatus
from repro.engine.executor import _use_arrays
from repro.errors import QueryTimeout
from repro.storage import MemoryFeatureStore
from repro.storage.base import rows_to_block
from repro.storage.faults import FaultyStoreWrapper, ReadFaultPolicy
from repro.storage.minidb import MiniDbFeatureStore
from repro.types import DataSegment

HOUR = 3600.0
BACKENDS = ("memory", "sqlite", "minidb")

DROP = DropQuery(HOUR, -2.0)


@pytest.fixture(scope="module")
def walk_series():
    return random_walk_series(500, dt=300.0, step_std=0.8, seed=23)


@pytest.fixture(scope="module", params=BACKENDS)
def backend_sessions(request, walk_series):
    """(scalar session, vectorized session) over one shared store."""
    index = SegDiffIndex.build(
        walk_series, 0.2, 8 * HOUR, backend=request.param
    )
    yield (
        QuerySession(index.store, vectorize=False),
        QuerySession(index.store),
    )
    index.close()


def _query(kind, t_hours, v):
    if kind == "drop":
        return DropQuery(t_hours * HOUR, -abs(v))
    return JumpQuery(t_hours * HOUR, abs(v))


query_strategy = st.builds(
    _query,
    st.sampled_from(["drop", "jump"]),
    st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
)


# ---------------------------------------------------------------------- #
# differential: vectorized ≡ scalar on persisted stores
# ---------------------------------------------------------------------- #


class TestDifferential:
    @settings(deadline=None, max_examples=20)
    @given(grid=st.lists(query_strategy, min_size=1, max_size=4),
           mode=st.sampled_from(["scan", "index"]))
    def test_loop_and_batch_match_scalar(self, backend_sessions, grid, mode):
        scalar, vect = backend_sessions
        expect = [scalar.search(q, mode=mode) for q in grid]
        assert [vect.search(q, mode=mode) for q in grid] == expect
        assert vect.search_batch(grid, mode=mode) == expect
        assert scalar.search_batch(grid, mode=mode) == expect

    @settings(deadline=None, max_examples=8)
    @given(q=query_strategy, mode=st.sampled_from(["scan", "index"]))
    def test_explain_row_counts_match_scalar(self, backend_sessions, q, mode):
        scalar, vect = backend_sessions
        a = scalar.explain(q, mode=mode)
        b = vect.explain(q, mode=mode)
        assert b.n_pairs == a.n_pairs
        assert len(b.operators) == len(a.operators)
        for op_a, op_b in zip(a.operators, b.operators):
            assert op_b.operator == op_a.operator
            assert op_b.access == op_a.access
            assert op_b.estimated_rows == op_a.estimated_rows
            assert op_b.actual_rows == op_a.actual_rows
            assert op_b.rows_fetched == op_a.rows_fetched

    def test_refined_answers_match_scalar(self, backend_sessions,
                                          walk_series):
        scalar, vect = backend_sessions
        for mode in ("scan", "index"):
            assert (
                vect.search(DROP, mode=mode, data=walk_series)
                == scalar.search(DROP, mode=mode, data=walk_series)
            )


# ---------------------------------------------------------------------- #
# differential: live snapshots under random seal schedules
# ---------------------------------------------------------------------- #


class TestLiveSnapshots:
    @settings(deadline=None, max_examples=10)
    @given(data=st.data())
    def test_snapshot_vectorized_equals_scalar(self, data):
        seed = data.draw(st.integers(0, 2**16))
        n = data.draw(st.integers(min_value=120, max_value=260))
        series = random_walk_series(n, dt=300.0, step_std=0.8, seed=seed)
        live = LiveIndex(0.2, 8 * HOUR, seal_rows=2**62)
        try:
            lo = 0
            while lo < n:
                chunk = data.draw(st.integers(min_value=20, max_value=80))
                hi = min(n, lo + chunk)
                live.append_array(series.times[lo:hi], series.values[lo:hi])
                lo = hi
                if lo < n and data.draw(st.booleans()):
                    live.seal()
            queries = [DROP, JumpQuery(2 * HOUR, 0.5),
                       DropQuery(4 * HOUR, -0.5)]
            with live.snapshot() as snap:
                for mode in ("scan", "index"):
                    for q in queries:
                        assert (
                            snap.execute(q, mode=mode).pairs
                            == snap.execute(
                                q, mode=mode, vectorize=False
                            ).pairs
                        )
                    batch_v = snap.search_batch_results(queries, mode=mode)
                    batch_s = snap.search_batch_results(
                        queries, mode=mode, vectorize=False
                    )
                    assert (
                        [r.pairs for r in batch_v]
                        == [r.pairs for r in batch_s]
                    )
        finally:
            live.close()


# ---------------------------------------------------------------------- #
# resilience on the array path
# ---------------------------------------------------------------------- #


class TestResilienceOnArrays:
    def test_hang_mid_array_scan_respects_deadline(self, walk_series):
        index = SegDiffIndex.build(
            walk_series, 0.2, 8 * HOUR, backend="memory"
        )
        try:
            wrapper = FaultyStoreWrapper(
                index.store,
                ReadFaultPolicy(hang_at={1}, hang_slice_s=0.01),
            )
            sess = QuerySession(wrapper)
            # the engine must pick the array primitives on the wrapper,
            # so the hang fires inside an array call
            assert _use_arrays(wrapper, None)
            t0 = time.monotonic()
            with pytest.raises(QueryTimeout):
                sess.search(DROP, mode="index", timeout_ms=150.0)
            # budget 0.15s + one 0.01s hang slice + CI headroom
            assert time.monotonic() - t0 < 2.0
            assert wrapper.faults_injected == 1
        finally:
            index.close()

    def test_degraded_candidates_superset_on_vectorized_path(
        self, walk_series
    ):
        index = SegDiffIndex.build(
            walk_series, 0.2, 8 * HOUR, backend="memory"
        )
        try:
            full = QuerySession(index.store).search(
                DROP, mode="index", data=walk_series
            )
            policy = ResiliencePolicy(
                timeout_ms=60_000.0, degrade="candidates",
                degrade_margin_ms=120_000.0,
            )
            sess = QuerySession(index.store, resilience=policy)
            assert _use_arrays(index.store, None)
            outcome = sess.search_outcome(
                DROP, mode="index", data=walk_series
            )
            assert outcome.status is ResultStatus.DEGRADED
            # zero false negatives (Theorem 1): candidates ⊇ refined
            assert {hit.pair for hit in full} <= set(outcome.pairs)
        finally:
            index.close()


# ---------------------------------------------------------------------- #
# MiniDB columnar view: write invalidation
# ---------------------------------------------------------------------- #


def _feature_sets(epsilon=0.3):
    chains = [
        (DataSegment(0, 0, 10, 8), DataSegment(10, 8, 20, -5)),
        (DataSegment(10, 8, 20, -5), DataSegment(20, -5, 35, -2)),
        (DataSegment(20, -5, 35, -2), DataSegment(35, -2, 50, 9)),
        (DataSegment(0, 0, 10, 8), DataSegment(20, -5, 35, -2)),
    ]
    return [
        collect_features(Parallelogram.from_segments(cd, ab), epsilon)
        for cd, ab in chains
    ]


class TestColumnarInvalidation:
    def test_append_after_scan_shows_fresh_rows(self):
        store = MiniDbFeatureStore()
        try:
            sets = _feature_sets()
            for fs in sets[:2]:
                store.add(fs)
            first = store.scan_points_array("drop")
            assert not first.flags.writeable
            ref = rows_to_block(list(store.scan_points("drop")), 6)
            assert np.array_equal(first, ref)
            # cached serve returns the identical block
            assert np.array_equal(store.scan_points_array("drop"), first)
            for fs in sets[2:]:
                store.add(fs)
            second = store.scan_points_array("drop")
            ref2 = rows_to_block(list(store.scan_points("drop")), 6)
            assert second.shape[0] > first.shape[0]
            assert np.array_equal(second, ref2)
        finally:
            store.close()


# ---------------------------------------------------------------------- #
# fault wrapper: scalar fallback for duck-typed stores
# ---------------------------------------------------------------------- #


class _ScalarOnlyStore:
    """Duck-typed store exposing only the scalar read primitives."""

    _ARRAY_NAMES = frozenset({
        "scan_points_array", "probe_point_index_array",
        "scan_lines_array", "probe_line_index_array",
    })

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        if name in self._ARRAY_NAMES:
            raise AttributeError(name)
        return getattr(self._inner, name)


class TestArrayFallback:
    def test_wrapper_synthesizes_blocks_from_scalar_scans(self, walk_series):
        index = SegDiffIndex.build(
            walk_series, 0.2, 8 * HOUR, backend="memory"
        )
        try:
            wrapper = FaultyStoreWrapper(_ScalarOnlyStore(index.store), None)
            block = wrapper.scan_points_array("drop")
            ref = rows_to_block(list(index.store.scan_points("drop")), 6)
            assert np.array_equal(block, ref)
            probe = wrapper.probe_line_index_array("jump", HOUR)
            ref = rows_to_block(
                list(index.store.probe_line_index("jump", HOUR)), 8
            )
            assert np.array_equal(probe, ref)
            # engine over the fallback wrapper still matches scalar
            expect = QuerySession(index.store, vectorize=False).search(
                DROP, mode="index"
            )
            assert QuerySession(wrapper).search(DROP, mode="index") == expect
        finally:
            index.close()

"""Tests for the Table 2 / appendix corner reduction.

The load-bearing property: for ANY pair of data segments and ANY query,
the stored (ε-shifted) corner features answer "does the query region
intersect the shifted parallelogram?" exactly — via the union of the
Section 4.4 point and line predicates — matching an exact polygon-clipping
oracle.  That is precisely the claim of the case analysis, and a wrong
boundary choice, guard condition, or shift direction fails this test.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.corners import SlopeCase, classify_case, collect_features
from repro.core.feature_space import QueryRegion
from repro.core.parallelogram import Parallelogram
from repro.core.queries import line_mask, point_mask
from repro.types import DataSegment

coords = st.integers(min_value=-8, max_value=8)


@st.composite
def segment_pairs(draw, adjacent_allowed=True):
    t_d = draw(st.integers(min_value=0, max_value=5))
    t_c = draw(st.integers(min_value=t_d + 1, max_value=9))
    min_b = t_c if adjacent_allowed else t_c + 1
    t_b = draw(st.integers(min_value=min_b, max_value=12))
    t_a = draw(st.integers(min_value=t_b + 1, max_value=16))
    v_d, v_c, v_b, v_a = (draw(coords) for _ in range(4))
    cd = DataSegment(float(t_d), float(v_d), float(t_c), float(v_c))
    ab = DataSegment(float(t_b), float(v_b), float(t_a), float(v_a))
    return cd, ab


class TestClassification:
    @pytest.mark.parametrize(
        "k_cd, k_ab, expected",
        [
            (1.0, -1.0, SlopeCase.CASE1),
            (1.0, 0.0, SlopeCase.CASE1),
            (0.0, 0.0, SlopeCase.CASE1),  # tie: k_AB <= 0 wins
            (1.0, 2.0, SlopeCase.CASE2),
            (1.0, 1.0, SlopeCase.CASE2),
            (0.0, 3.0, SlopeCase.CASE2),
            (2.0, 1.0, SlopeCase.CASE3),
            (-1.0, 0.0, SlopeCase.CASE4),
            (-1.0, 5.0, SlopeCase.CASE4),
            (-1.0, -1.0, SlopeCase.CASE5),
            (-1.0, -2.0, SlopeCase.CASE5),
            (-2.0, -1.0, SlopeCase.CASE6),
        ],
    )
    def test_case_table(self, k_cd, k_ab, expected):
        assert classify_case(k_cd, k_ab) == expected

    @given(
        k_cd=st.floats(min_value=-10, max_value=10, allow_nan=False),
        k_ab=st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
    def test_every_slope_pair_is_classified(self, k_cd, k_ab):
        case = classify_case(k_cd, k_ab)
        assert case in set(SlopeCase) - {SlopeCase.SELF}


class TestCollectedShapes:
    def test_case1_drop_keeps_bc_ac(self):
        cd = DataSegment(0.0, 0.0, 2.0, 4.0)  # k >= 0
        ab = DataSegment(3.0, 6.0, 6.0, 0.0)  # k <= 0
        fs = collect_features(Parallelogram.from_segments(cd, ab), epsilon=0.0)
        assert fs.case == SlopeCase.CASE1
        assert fs.drop_corner_count == 2
        p = Parallelogram.from_segments(cd, ab)
        assert fs.drop_points[0] == p.bc
        assert fs.drop_points[1] == p.ac
        assert len(fs.drop_lines) == 1

    def test_case2_drop_keeps_only_bc(self):
        cd = DataSegment(0.0, 0.0, 2.0, 2.0)
        ab = DataSegment(3.0, 0.0, 5.0, 6.0)  # k_ab=3 >= k_cd=1
        fs = collect_features(Parallelogram.from_segments(cd, ab), epsilon=0.5)
        assert fs.case == SlopeCase.CASE2
        assert fs.drop_corner_count == 1
        assert len(fs.drop_points) == 1
        assert not fs.drop_lines  # a single corner has no boundary edges

    def test_case5_drop_three_corners(self):
        cd = DataSegment(0.0, 4.0, 2.0, 2.0)  # k = -1
        ab = DataSegment(3.0, 2.0, 5.0, -4.0)  # k = -3 <= -1
        fs = collect_features(Parallelogram.from_segments(cd, ab), epsilon=0.0)
        assert fs.case == SlopeCase.CASE5
        assert fs.drop_corner_count == 3
        assert len(fs.drop_lines) == 2

    def test_shift_direction(self):
        cd = DataSegment(0.0, 0.0, 2.0, 4.0)
        ab = DataSegment(3.0, 6.0, 6.0, 0.0)
        p = Parallelogram.from_segments(cd, ab)
        fs = collect_features(p, epsilon=1.0)
        if fs.drop_points:
            assert fs.drop_points[0].dv == p.bc.dv - 1.0
        if fs.jump_points:
            assert fs.jump_points[0].dv == p.bc.dv + 1.0

    def test_guard_prunes_impossible_drops(self):
        # both segments rising, AB starting above CD's end: no drop possible
        cd = DataSegment(0.0, 0.0, 2.0, 4.0)
        ab = DataSegment(3.0, 5.0, 5.0, 9.0)
        fs = collect_features(Parallelogram.from_segments(cd, ab), epsilon=0.1)
        assert fs.drop_corner_count == 0
        assert not fs.drop_points

    def test_self_pair_always_collects_both(self):
        fs = collect_features(
            Parallelogram.self_pair(DataSegment(0.0, 0.0, 2.0, 4.0)), 0.2
        )
        assert fs.case == SlopeCase.SELF
        assert len(fs.drop_points) == 2
        assert len(fs.jump_points) == 2
        assert len(fs.drop_lines) == 1

    def test_polyline_ordered_by_dt(self):
        for _ in range(1):
            cd = DataSegment(0.0, 4.0, 2.0, 2.0)
            ab = DataSegment(3.0, 2.0, 5.0, -4.0)
            fs = collect_features(Parallelogram.from_segments(cd, ab), 0.3)
            dts = [p.dt for p in fs.drop_points]
            assert dts == sorted(dts)


def _query_says_hit(fs, kind: str, t_thr: float, v_thr: float) -> bool:
    """Union of the Section 4.4 point and line predicates over features."""
    points = fs.drop_points if kind == "drop" else fs.jump_points
    lines = fs.drop_lines if kind == "drop" else fs.jump_lines
    if points:
        dt = np.array([p.dt for p in points])
        dv = np.array([p.dv for p in points])
        if point_mask(kind, dt, dv, t_thr, v_thr).any():
            return True
    if lines:
        dt1 = np.array([s.p.dt for s in lines])
        dv1 = np.array([s.p.dv for s in lines])
        dt2 = np.array([s.q.dt for s in lines])
        dv2 = np.array([s.q.dv for s in lines])
        if line_mask(kind, dt1, dv1, dt2, dv2, t_thr, v_thr).any():
            return True
    return False


def _razor_edge(fs, kind, t_thr, v_thr, tol=1e-7) -> bool:
    """Whether the query sits numerically on a decision boundary."""
    points = fs.drop_points if kind == "drop" else fs.jump_points
    lines = fs.drop_lines if kind == "drop" else fs.jump_lines
    for p in points:
        if abs(p.dt - t_thr) < tol or abs(p.dv - v_thr) < tol:
            return True
    for seg in lines:
        for p in (seg.p, seg.q):
            if abs(p.dt - t_thr) < tol or abs(p.dv - v_thr) < tol:
                return True
        if seg.p.dt <= t_thr <= seg.q.dt and seg.q.dt > seg.p.dt:
            if abs(seg.value_at(max(seg.p.dt, min(t_thr, seg.q.dt))) - v_thr) < tol:
                return True
    return False


shifted_eps = st.sampled_from([0.0, 0.25, 0.5, 1.0])
query_T = st.floats(min_value=0.3, max_value=20.0)


class TestQueryEquivalence:
    """Predicates over collected corners == exact shifted-parallelogram
    intersection, for all six cases and the self-pair."""

    @given(
        pair=segment_pairs(),
        eps=shifted_eps,
        t_thr=query_T,
        v_depth=st.floats(min_value=0.05, max_value=15.0),
    )
    @settings(max_examples=1000, deadline=None)
    def test_drop_equivalence(self, pair, eps, t_thr, v_depth):
        cd, ab = pair
        v_thr = -(eps + v_depth)  # V < -eps: realistic tolerance regime
        para = Parallelogram.from_segments(cd, ab)
        fs = collect_features(para, eps)
        assume(not _razor_edge(fs, "drop", t_thr, v_thr))
        region = QueryRegion.drop(t_thr, v_thr)
        shifted = [(dt, dv - eps) for dt, dv in para.vertices()]
        oracle = region.intersects_polygon(shifted)
        assert _query_says_hit(fs, "drop", t_thr, v_thr) == oracle

    @given(
        pair=segment_pairs(),
        eps=shifted_eps,
        t_thr=query_T,
        v_height=st.floats(min_value=0.05, max_value=15.0),
    )
    @settings(max_examples=1000, deadline=None)
    def test_jump_equivalence(self, pair, eps, t_thr, v_height):
        cd, ab = pair
        v_thr = eps + v_height  # V > eps
        para = Parallelogram.from_segments(cd, ab)
        fs = collect_features(para, eps)
        assume(not _razor_edge(fs, "jump", t_thr, v_thr))
        region = QueryRegion.jump(t_thr, v_thr)
        shifted = [(dt, dv + eps) for dt, dv in para.vertices()]
        oracle = region.intersects_polygon(shifted)
        assert _query_says_hit(fs, "jump", t_thr, v_thr) == oracle

    @given(
        seg=segment_pairs().map(lambda pr: pr[0]),
        eps=shifted_eps,
        t_thr=query_T,
        v_depth=st.floats(min_value=0.05, max_value=15.0),
    )
    @settings(max_examples=500, deadline=None)
    def test_self_pair_drop_equivalence(self, seg, eps, t_thr, v_depth):
        v_thr = -(eps + v_depth)
        para = Parallelogram.self_pair(seg)
        fs = collect_features(para, eps)
        assume(not _razor_edge(fs, "drop", t_thr, v_thr))
        region = QueryRegion.drop(t_thr, v_thr)
        shifted = [(dt, dv - eps) for dt, dv in para.vertices()]
        oracle = region.intersects_polygon(shifted)
        assert _query_says_hit(fs, "drop", t_thr, v_thr) == oracle

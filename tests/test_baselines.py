"""Tests for the Exh and naive baselines."""

import os

import pytest

from repro.baselines import ExhIndex, NaiveScan
from repro.datagen import TimeSeries, piecewise_series, random_walk_series
from repro.errors import InvalidParameterError, QueryError, StorageError

HOUR = 3600.0


@pytest.fixture
def drop_series():
    return piecewise_series(
        [0.0, 2 * HOUR, 2 * HOUR + 600.0, 4 * HOUR, 5 * HOUR],
        [10.0, 10.0, 4.0, 4.0, 12.0],
        dt=300.0,
    )


def event_set(events):
    return {(e.t_first, e.t_second, round(e.dv, 9)) for e in events}


class TestNaive:
    def test_finds_known_drop(self, drop_series):
        naive = NaiveScan(drop_series)
        hits = naive.search_drops(HOUR, -3.0)
        assert hits
        for ev in hits:
            assert ev.dv <= -3.0
            assert 0 < ev.dt <= HOUR

    def test_finds_known_jump(self, drop_series):
        hits = NaiveScan(drop_series).search_jumps(HOUR, 3.0)
        assert hits
        for ev in hits:
            assert ev.dv >= 3.0

    def test_matches_brute_force(self):
        series = random_walk_series(60, dt=100.0, step_std=1.0, seed=8)
        t, v = series.times, series.values
        expected = set()
        for i in range(len(t)):
            for j in range(i + 1, len(t)):
                if t[j] - t[i] <= 500.0 and v[j] - v[i] <= -1.0:
                    expected.add((t[i], t[j], round(v[j] - v[i], 9)))
        got = event_set(NaiveScan(series).search_drops(500.0, -1.0))
        assert got == expected

    def test_validation(self, drop_series):
        naive = NaiveScan(drop_series)
        with pytest.raises(InvalidParameterError):
            naive.search_drops(HOUR, 3.0)
        with pytest.raises(InvalidParameterError):
            naive.search_jumps(HOUR, -3.0)
        with pytest.raises(InvalidParameterError):
            naive.search_drops(0.0, -3.0)


class TestExhConstruction:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ExhIndex(0.0)
        with pytest.raises(InvalidParameterError):
            ExhIndex(10.0, backend="mysql")

    def test_pair_count_small_example(self):
        series = TimeSeries([0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 2.0, 3.0])
        exh = ExhIndex.build(series, window=2.0)
        # pairs within dt <= 2: (0,1),(0,2),(1,2),(1,3),(2,3) = 5
        assert exh.n_pairs() == 5

    def test_non_increasing_time_rejected(self):
        exh = ExhIndex(10.0)
        exh.append(0.0, 0.0)
        with pytest.raises(InvalidParameterError):
            exh.append(0.0, 1.0)

    def test_t_beyond_window_rejected(self, drop_series):
        exh = ExhIndex.build(drop_series, window=HOUR)
        with pytest.raises(QueryError):
            exh.search_drops(2 * HOUR, -3.0)

    def test_memory_index_requires_finalize(self):
        exh = ExhIndex(10.0)
        exh.append(0.0, 0.0)
        exh.append(1.0, 1.0)
        with pytest.raises(StorageError):
            exh.search_jumps(5.0, 0.5)

    def test_closed_index_unusable(self, drop_series):
        exh = ExhIndex.build(drop_series, HOUR)
        exh.close()
        with pytest.raises(StorageError):
            exh.n_pairs()


class TestExhCorrectness:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_equals_naive_on_drops(self, backend, drop_series):
        exh = ExhIndex.build(drop_series, window=8 * HOUR, backend=backend)
        try:
            naive = NaiveScan(drop_series)
            for (t_thr, v_thr) in [(HOUR, -3.0), (2 * HOUR, -1.0), (600.0, -5.0)]:
                assert event_set(exh.search_drops(t_thr, v_thr)) == event_set(
                    naive.search_drops(t_thr, v_thr)
                )
        finally:
            exh.close()

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_equals_naive_on_jumps(self, backend, drop_series):
        exh = ExhIndex.build(drop_series, window=8 * HOUR, backend=backend)
        try:
            naive = NaiveScan(drop_series)
            assert event_set(exh.search_jumps(2 * HOUR, 3.0)) == event_set(
                naive.search_jumps(2 * HOUR, 3.0)
            )
        finally:
            exh.close()

    def test_scan_equals_index_mode(self, drop_series):
        for backend in ("memory", "sqlite"):
            exh = ExhIndex.build(drop_series, 8 * HOUR, backend=backend)
            try:
                a = event_set(exh.search_drops(HOUR, -3.0, mode="scan"))
                b = event_set(exh.search_drops(HOUR, -3.0, mode="index"))
                assert a == b
            finally:
                exh.close()

    def test_cold_equals_warm_cache(self, drop_series):
        exh = ExhIndex.build(drop_series, 8 * HOUR, backend="sqlite")
        try:
            a = event_set(exh.search_drops(HOUR, -3.0, cache="cold"))
            b = event_set(exh.search_drops(HOUR, -3.0, cache="warm"))
            assert a == b
        finally:
            exh.close()

    def test_memory_equals_sqlite(self, drop_series):
        mem = ExhIndex.build(drop_series, 8 * HOUR, backend="memory")
        sq = ExhIndex.build(drop_series, 8 * HOUR, backend="sqlite")
        try:
            assert mem.n_pairs() == sq.n_pairs()
            assert event_set(mem.search_drops(HOUR, -3.0)) == event_set(
                sq.search_drops(HOUR, -3.0)
            )
        finally:
            sq.close()


class TestExhAccounting:
    def test_sizes_positive(self, drop_series):
        for backend in ("memory", "sqlite"):
            exh = ExhIndex.build(drop_series, 8 * HOUR, backend=backend)
            try:
                assert exh.feature_bytes() > 0
                assert exh.index_bytes() > 0
                assert exh.disk_bytes() == exh.feature_bytes() + exh.index_bytes()
            finally:
                exh.close()

    def test_tempfile_cleanup(self, drop_series):
        exh = ExhIndex.build(drop_series, HOUR, backend="sqlite")
        path = exh.path
        assert os.path.exists(path)
        exh.close()
        assert not os.path.exists(path)

    def test_grows_with_window(self):
        series = random_walk_series(200, dt=60.0, seed=3)
        small = ExhIndex.build(series, window=300.0)
        large = ExhIndex.build(series, window=3000.0)
        assert large.n_pairs() > small.n_pairs()

    def test_incremental_equals_batch(self, drop_series):
        batch = ExhIndex.build(drop_series, HOUR)
        inc = ExhIndex(HOUR)
        half = len(drop_series) // 2
        inc.ingest(drop_series.head(half))
        inc.finalize()
        for t, v in list(zip(drop_series.times, drop_series.values))[half:]:
            inc.append(float(t), float(v))
        inc.finalize()
        assert inc.n_pairs() == batch.n_pairs()
        assert event_set(inc.search_drops(HOUR, -3.0)) == event_set(
            batch.search_drops(HOUR, -3.0)
        )

"""Tests for the 2-D grid access method."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.queries import DropQuery, JumpQuery, point_mask
from repro.errors import InvalidParameterError
from repro.storage import MemoryFeatureStore
from repro.storage.grid_index import GridIndex


def make_rows(seed: int, m: int = 300) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dt = rng.uniform(0.0, 100.0, size=m)
    dv = rng.normal(0.0, 10.0, size=m)
    ident = rng.uniform(0.0, 1.0, size=(m, 4))
    return np.column_stack([dt, dv, ident])


class TestGridIndex:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            GridIndex(np.zeros((3,)))
        with pytest.raises(InvalidParameterError):
            GridIndex(np.zeros((3, 1)))
        with pytest.raises(InvalidParameterError):
            GridIndex(np.zeros((3, 2)), cells_per_axis=0)

    def test_empty_rows(self):
        grid = GridIndex(np.empty((0, 6)))
        assert grid.query("drop", 10.0, -1.0).shape[0] == 0
        assert grid.cells_examined(10.0, -1.0, "drop") == 0

    def test_single_row(self):
        rows = np.array([[5.0, -3.0, 1.0, 2.0, 3.0, 4.0]])
        grid = GridIndex(rows)
        assert grid.query("drop", 10.0, -2.0).shape[0] == 1
        assert grid.query("drop", 4.0, -2.0).shape[0] == 0
        assert grid.query("drop", 10.0, -4.0).shape[0] == 0

    def test_t_before_data_range(self):
        rows = np.array([[5.0, -3.0, 0, 0, 0, 0], [8.0, 1.0, 0, 0, 0, 0]])
        grid = GridIndex(rows)
        assert grid.query("drop", 1.0, -1.0).shape[0] == 0

    def test_unknown_kind(self):
        grid = GridIndex(make_rows(1))
        with pytest.raises(InvalidParameterError):
            grid.query("dip", 1.0, 1.0)

    @given(
        seed=st.integers(min_value=0, max_value=5000),
        t_thr=st.floats(min_value=0.5, max_value=120.0),
        v_thr=st.floats(min_value=-30.0, max_value=-0.1),
        cells=st.sampled_from([1, 4, 16, 64]),
    )
    @settings(max_examples=150, deadline=None)
    def test_grid_equals_scan_drop(self, seed, t_thr, v_thr, cells):
        rows = make_rows(seed)
        grid = GridIndex(rows, cells_per_axis=cells)
        got = grid.query("drop", t_thr, v_thr)
        mask = point_mask("drop", rows[:, 0], rows[:, 1], t_thr, v_thr)
        expected = rows[mask]
        assert sorted(map(tuple, got)) == sorted(map(tuple, expected))

    @given(
        seed=st.integers(min_value=0, max_value=5000),
        t_thr=st.floats(min_value=0.5, max_value=120.0),
        v_thr=st.floats(min_value=0.1, max_value=30.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_grid_equals_scan_jump(self, seed, t_thr, v_thr):
        rows = make_rows(seed)
        grid = GridIndex(rows, cells_per_axis=16)
        got = grid.query("jump", t_thr, v_thr)
        mask = point_mask("jump", rows[:, 0], rows[:, 1], t_thr, v_thr)
        assert sorted(map(tuple, got)) == sorted(map(tuple, rows[mask]))

    def test_selective_query_touches_few_cells(self):
        rows = make_rows(3, m=2000)
        grid = GridIndex(rows, cells_per_axis=32)
        narrow = grid.cells_examined(5.0, -25.0, "drop")
        broad = grid.cells_examined(95.0, -0.5, "drop")
        assert narrow < broad
        assert broad <= 32 * 32


class TestMemoryStoreGridMode:
    def test_grid_mode_matches_scan(self, walk_series):
        from repro.core.index import SegDiffIndex

        idx = SegDiffIndex.build(walk_series, 0.2, 8 * 3600.0)
        store = idx.store
        assert isinstance(store, MemoryFeatureStore)
        queries = [
            DropQuery(3600.0, -2.0),
            DropQuery(7200.0, -0.5),
            JumpQuery(3600.0, 2.0),
        ]
        for q in queries:
            assert store.search(q, mode="grid") == store.search(q, mode="scan")
        idx.close()

    def test_invalid_mode_still_rejected(self, walk_series):
        from repro.core.index import SegDiffIndex

        idx = SegDiffIndex.build(walk_series, 0.2, 8 * 3600.0)
        with pytest.raises(InvalidParameterError):
            idx.store.search(DropQuery(3600.0, -2.0), mode="rtree")
        idx.close()

    def test_grid_rebuilt_after_append(self):
        from repro.core.corners import collect_features
        from repro.core.parallelogram import Parallelogram
        from repro.types import DataSegment

        store = MemoryFeatureStore()
        fs1 = collect_features(
            Parallelogram.self_pair(DataSegment(0, 10, 100, 2)), 0.1
        )
        store.add(fs1)
        store.finalize()
        q = DropQuery(200.0, -1.0)
        first = store.search(q, mode="grid")
        fs2 = collect_features(
            Parallelogram.self_pair(DataSegment(100, 2, 200, -10)), 0.1
        )
        store.add(fs2)
        store.finalize()
        second = store.search(q, mode="grid")
        assert len(second) > len(first)
        store.close()

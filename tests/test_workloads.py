"""Tests for query workload generators."""

import pytest

from repro.core.queries import DropQuery
from repro.errors import InvalidParameterError
from repro.workloads import cad_query_set, random_drop_queries

HOUR = 3600.0


class TestRandomDropQueries:
    def test_count_and_bounds(self):
        grid = random_drop_queries(50, window=8 * HOUR, seed=1)
        assert len(grid) == 50
        for q in grid:
            assert 300.0 <= q.t_threshold <= 8 * HOUR
            assert -35.0 <= q.v_threshold <= -0.5

    def test_seed_reproducible(self):
        a = random_drop_queries(20, 8 * HOUR, seed=5)
        b = random_drop_queries(20, 8 * HOUR, seed=5)
        assert a.coverage() == b.coverage()

    def test_coverage_matches_queries(self):
        grid = random_drop_queries(10, 8 * HOUR, seed=2)
        cov = grid.coverage()
        assert len(cov) == 10
        assert cov[0] == (
            grid.queries[0].t_threshold,
            grid.queries[0].v_threshold,
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            random_drop_queries(0, 8 * HOUR)
        with pytest.raises(InvalidParameterError):
            random_drop_queries(5, window=100.0, t_min=300.0)
        with pytest.raises(InvalidParameterError):
            random_drop_queries(5, 8 * HOUR, v_range=(-1.0, -5.0))
        with pytest.raises(InvalidParameterError):
            random_drop_queries(5, 8 * HOUR, v_range=(-1.0, 5.0))


class TestCadQuerySet:
    def test_contains_canonical_query(self):
        grid = cad_query_set()
        assert DropQuery(HOUR, -3.0) in set(grid.queries)

    def test_respects_window_cap(self):
        grid = cad_query_set(window=HOUR)
        assert all(q.t_threshold <= HOUR for q in grid)

    def test_tiny_window_rejected(self):
        with pytest.raises(InvalidParameterError):
            cad_query_set(window=60.0)

"""Model-based (stateful) tests for the MiniDB engine.

Hypothesis drives random operation sequences against the pager and a set
of heap files, checking them at every step against trivial in-memory
models (a dict of pages; lists of rows).  This is the style of testing
that catches cross-structure corruption — the class of bug the
append-mode file regression belonged to.
"""

import os
import tempfile

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.storage.faults import FaultInjected, FaultInjector, FaultPolicy
from repro.storage.minidb import (
    PAGE_CAPACITY,
    PAGE_SIZE,
    HeapFile,
    MiniDatabase,
    Pager,
)


class PagerMachine(RuleBasedStateMachine):
    """Random allocate/write/read/drop-cache sequences vs a dict model."""

    def __init__(self):
        super().__init__()
        fd, self.path = tempfile.mkstemp(suffix=".pages")
        os.close(fd)
        os.unlink(self.path)
        self.pager = Pager(self.path, cache_pages=3)  # tiny: force evictions
        self.model = {}

    pages = Bundle("pages")

    @rule(target=pages)
    def allocate(self):
        pid = self.pager.allocate()
        self.model[pid] = bytes(PAGE_CAPACITY)
        return pid

    @rule(page=pages, fill=st.integers(min_value=0, max_value=255))
    def write(self, page, fill):
        # callers own only the first PAGE_CAPACITY bytes; the trailer
        # belongs to the pager's checksum
        data = bytes([fill]) * PAGE_CAPACITY + bytes(PAGE_SIZE - PAGE_CAPACITY)
        self.pager.write(page, data)
        self.model[page] = data[:PAGE_CAPACITY]

    @rule(page=pages)
    def read(self, page):
        assert self.pager.read(page)[:PAGE_CAPACITY] == self.model[page]

    @rule()
    def drop_cache(self):
        self.pager.drop_cache()

    @rule()
    def flush(self):
        self.pager.flush()

    @invariant()
    def page_count_consistent(self):
        assert self.pager.n_pages == len(self.model)

    def teardown(self):
        self.pager.close()
        if os.path.exists(self.path):
            os.unlink(self.path)


class HeapsMachine(RuleBasedStateMachine):
    """Interleaved appends/reads across several heaps sharing one pager."""

    WIDTHS = (2, 6, 8)

    def __init__(self):
        super().__init__()
        fd, self.path = tempfile.mkstemp(suffix=".pages")
        os.close(fd)
        os.unlink(self.path)
        self.pager = Pager(self.path, cache_pages=4)
        self.heaps = {w: HeapFile(self.pager, w) for w in self.WIDTHS}
        self.models = {w: [] for w in self.WIDTHS}
        self.rids = {w: [] for w in self.WIDTHS}

    @rule(
        width=st.sampled_from(WIDTHS),
        value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    def append(self, width, value):
        row = tuple(value + i for i in range(width))
        rid = self.heaps[width].append(row)
        self.models[width].append(row)
        self.rids[width].append(rid)

    @rule(width=st.sampled_from(WIDTHS), idx=st.integers(min_value=0, max_value=10_000))
    def random_access(self, width, idx):
        if not self.rids[width]:
            return
        idx %= len(self.rids[width])
        assert self.heaps[width].get(self.rids[width][idx]) == self.models[width][idx]

    @rule()
    def drop_cache(self):
        self.pager.drop_cache()

    @invariant()
    def scans_match_models(self):
        for width in self.WIDTHS:
            rows = [row for _rid, row in self.heaps[width].scan()]
            assert rows == self.models[width]

    def teardown(self):
        self.pager.close()
        if os.path.exists(self.path):
            os.unlink(self.path)


class CrashRecoveryMachine(RuleBasedStateMachine):
    """Random interleavings of transactional inserts, simulated power
    cuts at arbitrary write ops, reopen+recovery, and fsck — checked
    against the list of rows whose transactions committed.

    After a crash the database may legitimately be in one of two states:
    the last committed snapshot, or (when the cut hit after the commit
    record reached disk but before control returned) the in-flight
    transaction's state.  Anything else — partial transactions, corrupt
    pages, fsck complaints — is a bug.
    """

    WIDTH = 4

    def __init__(self):
        super().__init__()
        self.dir = tempfile.mkdtemp()
        self.path = os.path.join(self.dir, "db.mdb")
        self.injector = FaultInjector()
        self.db = MiniDatabase(
            self.path, cache_pages=3, opener=self.injector.open
        )
        with self.db.transaction():
            self.db.create_table("t", self.WIDTH)
        self.committed = []  # rows of committed transactions, in order
        self.next_val = 0

    def _rows(self, n):
        base = self.next_val
        self.next_val += n
        return [
            (float(base + i), 1.0, 2.0, 3.0) for i in range(n)
        ]

    def _insert_txn(self, rows):
        with self.db.transaction():
            t = self.db.table("t")
            for r in rows:
                t.insert(r)

    def _recover(self, pending):
        """Reopen after a simulated power cut and validate the state."""
        self.injector.close_all()
        self.injector = FaultInjector()
        self.db = MiniDatabase(
            self.path, cache_pages=3, opener=self.injector.open
        )
        assert self.db.check() == []
        rows_now = [r for _rid, r in self.db.table("t").scan()]
        assert rows_now in (self.committed, self.committed + pending), (
            "recovered state is not a committed prefix"
        )
        self.committed = rows_now

    @rule(n=st.integers(min_value=1, max_value=30))
    def insert_batch(self, n):
        rows = self._rows(n)
        try:
            self._insert_txn(rows)
        except FaultInjected:  # a leftover armed fault fired
            self._recover(rows)
        else:
            self.committed.extend(rows)

    @rule(
        n=st.integers(min_value=1, max_value=30),
        offset=st.integers(min_value=1, max_value=40),
        mode=st.sampled_from(["crash", "torn"]),
        torn_bytes=st.integers(min_value=1, max_value=PAGE_SIZE),
    )
    def crash_during_batch(self, n, offset, mode, torn_bytes):
        self.injector.arm(
            FaultPolicy(
                fail_at=self.injector.op_count + offset,
                mode=mode,
                torn_bytes=torn_bytes,
            )
        )
        rows = self._rows(n)
        try:
            self._insert_txn(rows)
        except FaultInjected:
            self._recover(rows)
        else:
            self.committed.extend(rows)
            self.injector.arm(FaultPolicy())  # disarm: it never fired

    @rule()
    def checkpoint(self):
        self.db.checkpoint()

    @rule()
    def clean_reopen(self):
        self.db.close()
        self.injector.close_all()
        self.injector = FaultInjector()
        self.db = MiniDatabase(
            self.path, cache_pages=3, opener=self.injector.open
        )

    @rule()
    def fsck(self):
        assert self.db.check() == []

    @invariant()
    def committed_rows_visible(self):
        rows = [r for _rid, r in self.db.table("t").scan()]
        assert rows == self.committed

    def teardown(self):
        try:
            self.db.close()
        except FaultInjected:
            pass
        self.injector.close_all()


TestPagerMachine = pytest.mark.filterwarnings("ignore")(
    PagerMachine.TestCase
)
TestPagerMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)

TestHeapsMachine = HeapsMachine.TestCase
TestHeapsMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)

TestCrashRecoveryMachine = pytest.mark.filterwarnings("ignore")(
    CrashRecoveryMachine.TestCase
)
TestCrashRecoveryMachine.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)

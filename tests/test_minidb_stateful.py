"""Model-based (stateful) tests for the MiniDB engine.

Hypothesis drives random operation sequences against the pager and a set
of heap files, checking them at every step against trivial in-memory
models (a dict of pages; lists of rows).  This is the style of testing
that catches cross-structure corruption — the class of bug the
append-mode file regression belonged to.
"""

import os
import tempfile

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.storage.minidb import PAGE_SIZE, HeapFile, Pager


class PagerMachine(RuleBasedStateMachine):
    """Random allocate/write/read/drop-cache sequences vs a dict model."""

    def __init__(self):
        super().__init__()
        fd, self.path = tempfile.mkstemp(suffix=".pages")
        os.close(fd)
        os.unlink(self.path)
        self.pager = Pager(self.path, cache_pages=3)  # tiny: force evictions
        self.model = {}

    pages = Bundle("pages")

    @rule(target=pages)
    def allocate(self):
        pid = self.pager.allocate()
        self.model[pid] = bytes(PAGE_SIZE)
        return pid

    @rule(page=pages, fill=st.integers(min_value=0, max_value=255))
    def write(self, page, fill):
        data = bytes([fill]) * PAGE_SIZE
        self.pager.write(page, data)
        self.model[page] = data

    @rule(page=pages)
    def read(self, page):
        assert self.pager.read(page) == self.model[page]

    @rule()
    def drop_cache(self):
        self.pager.drop_cache()

    @rule()
    def flush(self):
        self.pager.flush()

    @invariant()
    def page_count_consistent(self):
        assert self.pager.n_pages == len(self.model)

    def teardown(self):
        self.pager.close()
        if os.path.exists(self.path):
            os.unlink(self.path)


class HeapsMachine(RuleBasedStateMachine):
    """Interleaved appends/reads across several heaps sharing one pager."""

    WIDTHS = (2, 6, 8)

    def __init__(self):
        super().__init__()
        fd, self.path = tempfile.mkstemp(suffix=".pages")
        os.close(fd)
        os.unlink(self.path)
        self.pager = Pager(self.path, cache_pages=4)
        self.heaps = {w: HeapFile(self.pager, w) for w in self.WIDTHS}
        self.models = {w: [] for w in self.WIDTHS}
        self.rids = {w: [] for w in self.WIDTHS}

    @rule(
        width=st.sampled_from(WIDTHS),
        value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    def append(self, width, value):
        row = tuple(value + i for i in range(width))
        rid = self.heaps[width].append(row)
        self.models[width].append(row)
        self.rids[width].append(rid)

    @rule(width=st.sampled_from(WIDTHS), idx=st.integers(min_value=0, max_value=10_000))
    def random_access(self, width, idx):
        if not self.rids[width]:
            return
        idx %= len(self.rids[width])
        assert self.heaps[width].get(self.rids[width][idx]) == self.models[width][idx]

    @rule()
    def drop_cache(self):
        self.pager.drop_cache()

    @invariant()
    def scans_match_models(self):
        for width in self.WIDTHS:
            rows = [row for _rid, row in self.heaps[width].scan()]
            assert rows == self.models[width]

    def teardown(self):
        self.pager.close()
        if os.path.exists(self.path):
            os.unlink(self.path)


TestPagerMachine = pytest.mark.filterwarnings("ignore")(
    PagerMachine.TestCase
)
TestPagerMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)

TestHeapsMachine = HeapsMachine.TestCase
TestHeapsMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)

"""Tests for the unified query engine: plans, cost model, sessions,
batched execution, EXPLAIN, and cross-backend equivalence."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.index import SegDiffIndex
from repro.core.queries import DropQuery, JumpQuery
from repro.core.tiered import TieredIndex
from repro.core.transect import TransectIndex
from repro.datagen import TimeSeries, random_walk_series
from repro.engine import (
    BACKEND_COSTS,
    CostModel,
    ExplainReport,
    LineCrossOp,
    PointRangeOp,
    QueryPlan,
    QuerySession,
    RefineOp,
    build_plan,
)
from repro.errors import InvalidParameterError

HOUR = 3600.0
BACKENDS = ("memory", "sqlite", "minidb")


@pytest.fixture(scope="module")
def walk_series():
    return random_walk_series(400, dt=300.0, step_std=0.8, seed=71)


@pytest.fixture(scope="module")
def indexes(walk_series):
    built = {
        b: SegDiffIndex.build(walk_series, 0.2, 8 * HOUR, backend=b)
        for b in BACKENDS
    }
    yield built
    for idx in built.values():
        idx.close()


QUERIES = [
    DropQuery(HOUR, -2.0),
    DropQuery(4 * HOUR, -0.5),
    JumpQuery(2 * HOUR, 1.0),
]


class TestPlans:
    def test_build_plan_structure(self):
        plan = build_plan(DropQuery(HOUR, -2.0), point_access="index")
        assert isinstance(plan, QueryPlan)
        assert plan.point_op == PointRangeOp("drop", HOUR, -2.0, "index")
        assert plan.line_op == LineCrossOp("drop", HOUR, -2.0, "index")
        assert plan.refine_op is None

    def test_grid_plan_uses_index_lines(self):
        plan = build_plan(DropQuery(HOUR, -2.0), point_access="grid")
        assert plan.point_op.access == "grid"
        assert plan.line_op.access == "index"

    def test_invalid_access_rejected(self):
        with pytest.raises(InvalidParameterError):
            build_plan(DropQuery(HOUR, -2.0), point_access="hash")
        with pytest.raises(InvalidParameterError):
            build_plan(DropQuery(HOUR, -2.0), line_access="grid")

    def test_describe_renders_operators(self):
        plan = build_plan(
            DropQuery(HOUR, -2.0), point_access="scan", refine=RefineOp()
        )
        text = plan.describe()
        assert "PointRangeOp" in text and "LineCrossOp" in text
        assert "RefineOp" in text and "UnionDedupOp" in text


class TestCostModel:
    def test_backend_costs_exist_for_all_backends(self, indexes):
        for backend, index in indexes.items():
            assert index.store.BACKEND == backend
            assert backend in BACKEND_COSTS

    def test_operator_costs_orders_access_paths(self, indexes):
        cost = CostModel(indexes["memory"].store)
        selective = PointRangeOp("drop", 600.0, -1e6, "scan")
        hard = PointRangeOp("drop", 8 * HOUR, -1e-9, "scan")
        assert cost.choose_access(selective) == "index"
        assert cost.choose_access(hard) == "scan"

    def test_auto_plan_may_split_access_paths(self, indexes):
        cost = CostModel(indexes["memory"].store)
        plan = cost.plan(DropQuery(8 * HOUR, -1e-9), mode="auto")
        assert plan.point_op.access in ("scan", "index")
        assert plan.line_op.access in ("scan", "index")

    def test_forced_mode_bypasses_model(self, indexes):
        cost = CostModel(indexes["memory"].store)
        plan = cost.plan(DropQuery(HOUR, -2.0), mode="scan")
        assert plan.point_op.access == "scan"
        assert plan.line_op.access == "scan"


class TestSessionSearch:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("query", QUERIES, ids=str)
    def test_modes_agree_within_backend(self, indexes, backend, query):
        sess = indexes[backend].session
        scan = sess.search(query, mode="scan")
        assert sess.search(query, mode="index") == scan
        assert sess.search(query, mode="auto") == scan

    def test_refine_through_session(self, indexes, walk_series):
        sess = indexes["memory"].session
        hits = sess.search(DropQuery(HOUR, -2.0), data=walk_series)
        pairs = sess.search(DropQuery(HOUR, -2.0))
        assert len(hits) == len(pairs)
        assert all(hasattr(h, "witness") for h in hits)

    def test_invalid_mode_rejected(self, indexes):
        with pytest.raises(InvalidParameterError):
            indexes["memory"].session.search(QUERIES[0], mode="btree")

    def test_concurrent_session_reads_agree(self, indexes):
        # MiniDB reads are serialized by the session lock; this must be
        # safe (and correct) from many threads
        sess = indexes["minidb"].session
        expected = sess.search(DropQuery(HOUR, -2.0))
        results = []
        errors = []

        def worker():
            try:
                results.append(sess.search(DropQuery(HOUR, -2.0)))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(r == expected for r in results)


class TestBatchedExecution:
    GRID = [
        DropQuery(t * HOUR, v)
        for t in (0.5, 1.0, 4.0, 8.0)
        for v in (-3.0, -1.0)
    ] + [JumpQuery(2 * HOUR, 0.5)]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mode", ["auto", "scan", "index"])
    def test_batch_equals_loop(self, indexes, backend, mode):
        sess = indexes[backend].session
        assert sess.search_batch(self.GRID, mode=mode) == [
            sess.search(q, mode=mode) for q in self.GRID
        ]

    def test_batch_rejects_grid_mode(self, indexes):
        with pytest.raises(InvalidParameterError):
            indexes["memory"].session.search_batch(self.GRID, mode="grid")

    def test_index_facade(self, indexes):
        idx = indexes["memory"]
        assert idx.search_batch(self.GRID) == [
            idx.session.search(q, mode="auto") for q in self.GRID
        ]


class TestExplain:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reports_estimates_and_actuals(self, indexes, backend):
        report = indexes[backend].explain_report("drop", HOUR, -2.0)
        assert isinstance(report, ExplainReport)
        assert report.backend == backend
        assert report.chosen_mode in ("scan", "index")
        assert len(report.operators) == 2
        point, line = report.operators
        assert point.operator == "point_range"
        assert line.operator == "line_cross"
        for op in report.operators:
            assert op.estimated_rows >= 0
            assert 0 <= op.actual_rows <= op.rows_fetched
        assert report.n_pairs == len(
            indexes[backend].search_drops(HOUR, -2.0)
        )

    def test_pages_read_only_on_minidb(self, indexes):
        assert indexes["minidb"].explain_report("drop", HOUR, -2.0).pages_read > 0
        assert indexes["memory"].explain_report("drop", HOUR, -2.0).pages_read is None
        assert indexes["sqlite"].explain_report("drop", HOUR, -2.0).pages_read is None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_render_mentions_plan(self, indexes, backend):
        text = indexes[backend].explain_report("drop", HOUR, -2.0).render()
        assert "EXPLAIN drop search" in text
        assert "point_range" in text and "line_cross" in text
        assert "est_rows" in text and "actual_rows" in text

    def test_legacy_dict_explain_kept(self, indexes):
        plan = indexes["sqlite"].explain("drop", HOUR, -2.0)
        for key in (
            "query", "epsilon", "window", "false_positive_bound",
            "estimated_selectivity", "estimated_matches", "chosen_mode",
            "point_rows", "line_rows", "plan",
        ):
            assert key in plan
        assert isinstance(plan["plan"], QueryPlan)


class TestInvalidation:
    def test_append_invalidates_session_samples(self):
        series = random_walk_series(150, dt=300.0, step_std=0.8, seed=5)
        index = SegDiffIndex(0.2, 4 * HOUR)
        try:
            index.ingest(series)
            index.checkpoint()
            index.planner.estimate_selectivity("drop", HOUR, -2.0)
            assert index.planner._samples
            t0 = float(series.times[-1])
            for i in range(1, 60):
                index.append(t0 + 300.0 * i, float(np.sin(i)) * 3.0)
            assert not index.planner._samples, (
                "appending must invalidate cached selectivity samples"
            )
            index.finalize()
            assert not index.planner._samples
        finally:
            index.close()


class TestFacadePassThrough:
    def test_tiered_accepts_engine_options(self, walk_series):
        tiered = TieredIndex.build(walk_series, (0.1, 0.4), 8 * HOUR)
        try:
            base = tiered.search_drops(HOUR, -2.0)
            assert tiered.search_drops(HOUR, -2.0, mode="auto") == base
            assert (
                tiered.search_drops(HOUR, -2.0, mode="scan", cache="warm")
                == base
            )
            jumps = tiered.search_jumps(HOUR, 2.0)
            assert tiered.search_jumps(HOUR, 2.0, mode="auto") == jumps
        finally:
            tiered.close()

    def test_transect_accepts_engine_options(self, walk_series):
        shifted = TimeSeries(walk_series.times, walk_series.values - 0.5)
        transect = TransectIndex.build(
            {"a": walk_series, "b": shifted}, 0.2, 8 * HOUR
        )
        try:
            base = transect.search_drops(HOUR, -2.0)
            assert transect.search_drops(HOUR, -2.0, mode="auto") == base
            assert transect.search_drops(HOUR, -2.0, cache="warm") == base
            corr = transect.search_corroborated(HOUR, -2.0, min_sensors=1)
            assert (
                transect.search_corroborated(
                    HOUR, -2.0, min_sensors=1, mode="auto"
                )
                == corr
            )
        finally:
            transect.close()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    v_thr=st.floats(min_value=-6.0, max_value=-0.25),
    t_minutes=st.integers(min_value=10, max_value=240),
)
@settings(max_examples=8, deadline=None)
def test_cross_backend_differential(seed, v_thr, t_minutes):
    """All three backends return the identical segment-pair set in both
    scan and index mode — the engine's single union/dedup implementation
    cannot diverge per backend."""
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.uniform(120.0, 600.0, size=50))
    v = np.cumsum(rng.normal(0.0, 1.5, size=50))
    series = TimeSeries(t, v)
    built = [
        SegDiffIndex.build(series, 0.3, 4 * HOUR, backend=b) for b in BACKENDS
    ]
    try:
        t_thr = t_minutes * 60.0
        drop = DropQuery(t_thr, v_thr)
        jump = JumpQuery(t_thr, -v_thr)
        reference_drop = built[0].store.search(drop, mode="scan")
        reference_jump = built[0].store.search(jump, mode="scan")
        for index in built:
            for mode in ("scan", "index"):
                assert index.store.search(drop, mode=mode) == reference_drop
                assert index.store.search(jump, mode=mode) == reference_jump
    finally:
        for index in built:
            index.close()


def test_session_lock_only_when_needed():
    series = random_walk_series(80, dt=300.0, step_std=0.8, seed=3)
    mem = SegDiffIndex.build(series, 0.2, 4 * HOUR, backend="memory")
    mini = SegDiffIndex.build(series, 0.2, 4 * HOUR, backend="minidb")
    try:
        assert QuerySession(mem.store)._lock is None
        assert QuerySession(mini.store)._lock is not None
    finally:
        mem.close()
        mini.close()

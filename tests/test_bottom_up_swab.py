"""Tests for the batch bottom-up and SWAB segmenters (ablation substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen import TimeSeries, piecewise_series
from repro.errors import InvalidParameterError, InvalidSeriesError
from repro.segmentation import (
    BottomUpSegmenter,
    SlidingWindowSegmenter,
    SWABSegmenter,
    max_abs_error,
    segment_series,
    verify_tolerance,
)

finite_vals = st.floats(min_value=-100, max_value=100, allow_nan=False)


@pytest.mark.parametrize("cls", [BottomUpSegmenter, SWABSegmenter])
class TestCommonBehaviour:
    def test_straight_line_merges_to_one(self, cls):
        s = TimeSeries(np.arange(20.0), 3.0 * np.arange(20.0))
        segs = cls(0.1).segment(s)
        assert len(segs) == 1

    def test_two_points(self, cls):
        s = TimeSeries([0.0, 1.0], [0.0, 2.0])
        segs = cls(0.1).segment(s)
        assert len(segs) == 1
        assert segs[0].rise == 2.0

    def test_single_point_rejected(self, cls):
        with pytest.raises(InvalidSeriesError):
            cls(0.1).segment(TimeSeries([0.0], [0.0]))

    def test_error_bound_respected(self, cls, walk_series):
        epsilon = 1.0
        segs = cls(epsilon).segment(walk_series)
        assert verify_tolerance(walk_series, segs, epsilon)

    def test_contiguous_output(self, cls, walk_series):
        segs = cls(0.8).segment(walk_series)
        for a, b in zip(segs, segs[1:]):
            assert (a.t_end, a.v_end) == (b.t_start, b.v_start)
        assert segs[0].t_start == walk_series.t_start
        assert segs[-1].t_end == walk_series.t_end


class TestBottomUp:
    def test_recovers_exact_breakpoints(self):
        s = piecewise_series(
            [0.0, 400.0, 900.0, 1500.0], [0.0, 8.0, -4.0, -4.0], dt=100.0
        )
        segs = BottomUpSegmenter(0.0).segment(s)
        assert [g.t_start for g in segs] == [0.0, 400.0, 900.0]

    def test_usually_no_worse_than_sliding_window(self, cad_week):
        """Bottom-up's global merges should compress at least as well on
        smooth sensor data (the claim the ablation bench quantifies)."""
        eps = 0.5
        sw = SlidingWindowSegmenter(eps).segment(cad_week)
        bu = BottomUpSegmenter(eps).segment(cad_week)
        assert len(bu) <= len(sw) * 1.2

    @given(
        values=st.lists(finite_vals, min_size=2, max_size=50),
        epsilon=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_error_bound_property(self, values, epsilon):
        series = TimeSeries(np.arange(len(values), dtype=float), values)
        segs = BottomUpSegmenter(epsilon).segment(series)
        assert max_abs_error(series, segs) <= epsilon / 2.0 + 1e-6


class TestSWAB:
    def test_buffer_size_validation(self):
        with pytest.raises(InvalidParameterError):
            SWABSegmenter(0.1, buffer_size=3)

    def test_small_series_delegates_to_bottom_up(self):
        s = TimeSeries(np.arange(10.0), np.arange(10.0) ** 2)
        swab = SWABSegmenter(1.0, buffer_size=50).segment(s)
        bu = BottomUpSegmenter(1.0).segment(s)
        assert swab == bu

    def test_long_series_progress_and_bound(self):
        rngv = np.cumsum(np.random.default_rng(3).normal(0, 1, size=500))
        s = TimeSeries(np.arange(500.0), rngv)
        segs = SWABSegmenter(1.0, buffer_size=60).segment(s)
        assert verify_tolerance(s, segs, 1.0)
        assert segs[-1].t_end == s.t_end

    @given(
        values=st.lists(finite_vals, min_size=2, max_size=80),
        epsilon=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_error_bound_property(self, values, epsilon):
        series = TimeSeries(np.arange(len(values), dtype=float), values)
        segs = SWABSegmenter(epsilon, buffer_size=10).segment(series)
        assert max_abs_error(series, segs) <= epsilon / 2.0 + 1e-6


class TestDispatch:
    def test_segment_series_methods(self, walk_series):
        for method in ("sliding-window", "bottom-up", "swab"):
            segs = segment_series(walk_series, 0.5, method=method)
            assert verify_tolerance(walk_series, segs, 0.5)

    def test_unknown_method_rejected(self, walk_series):
        with pytest.raises(InvalidParameterError, match="unknown"):
            segment_series(walk_series, 0.5, method="top-down")

    def test_negative_epsilon_rejected(self, walk_series):
        with pytest.raises(InvalidParameterError):
            segment_series(walk_series, -0.5)

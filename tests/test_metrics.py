"""Tests for segmentation metrics."""

import numpy as np
import pytest

from repro.datagen import TimeSeries
from repro.errors import InvalidParameterError
from repro.segmentation import (
    SlidingWindowSegmenter,
    compression_rate,
    max_abs_error,
    mean_abs_error,
    verify_tolerance,
)
from repro.types import DataSegment


@pytest.fixture
def line_series():
    return TimeSeries(np.arange(10.0), np.arange(10.0))


class TestCompressionRate:
    def test_single_segment(self, line_series):
        segs = [DataSegment(0.0, 0.0, 9.0, 9.0)]
        assert compression_rate(line_series, segs) == 10.0

    def test_no_segments_rejected(self, line_series):
        with pytest.raises(InvalidParameterError):
            compression_rate(line_series, [])

    def test_matches_paper_definition(self, walk_series):
        segs = SlidingWindowSegmenter(0.5).segment(walk_series)
        assert compression_rate(walk_series, segs) == len(walk_series) / len(segs)


class TestErrorMetrics:
    def test_exact_fit_zero_error(self, line_series):
        segs = [DataSegment(0.0, 0.0, 9.0, 9.0)]
        assert max_abs_error(line_series, segs) == 0.0
        assert mean_abs_error(line_series, segs) == 0.0

    def test_known_deviation(self):
        series = TimeSeries([0.0, 1.0, 2.0], [0.0, 1.0, 0.0])
        segs = [DataSegment(0.0, 0.0, 2.0, 0.0)]
        assert max_abs_error(series, segs) == 1.0
        assert mean_abs_error(series, segs) == pytest.approx(1.0 / 3.0)

    def test_partial_coverage_rejected(self):
        series = TimeSeries([0.0, 1.0, 2.0], [0.0, 1.0, 0.0])
        segs = [DataSegment(0.0, 0.0, 1.0, 1.0)]
        with pytest.raises(InvalidParameterError, match="cover"):
            max_abs_error(series, segs)

    def test_non_contiguous_rejected(self):
        series = TimeSeries([0.0, 1.0, 2.0], [0.0, 1.0, 0.0])
        segs = [DataSegment(0.0, 0.0, 0.5, 1.0), DataSegment(1.0, 1.0, 2.0, 0.0)]
        with pytest.raises(Exception):
            max_abs_error(series, segs)


class TestVerifyTolerance:
    def test_accepts_within(self):
        series = TimeSeries([0.0, 1.0, 2.0], [0.0, 0.4, 0.0])
        segs = [DataSegment(0.0, 0.0, 2.0, 0.0)]
        assert verify_tolerance(series, segs, epsilon=1.0)

    def test_rejects_beyond(self):
        series = TimeSeries([0.0, 1.0, 2.0], [0.0, 2.0, 0.0])
        segs = [DataSegment(0.0, 0.0, 2.0, 0.0)]
        assert not verify_tolerance(series, segs, epsilon=1.0)

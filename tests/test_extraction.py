"""Tests for Algorithm 1 (windowed feature extraction)."""

import pytest

from repro.core.extraction import FeatureExtractor
from repro.errors import InvalidParameterError, InvalidSeriesError
from repro.storage import MemoryFeatureStore
from repro.types import DataSegment


def chain(*points):
    """Contiguous segments through the given (t, v) breakpoints."""
    return [
        DataSegment(points[i][0], points[i][1], points[i + 1][0], points[i + 1][1])
        for i in range(len(points) - 1)
    ]


def extractor(window=100.0, epsilon=0.0, self_pairs=True):
    store = MemoryFeatureStore()
    return FeatureExtractor(epsilon, window, store, emit_self_pairs=self_pairs), store


class TestValidation:
    def test_negative_epsilon_rejected(self):
        with pytest.raises(InvalidParameterError):
            FeatureExtractor(-0.1, 10.0, MemoryFeatureStore())

    def test_nonpositive_window_rejected(self):
        with pytest.raises(InvalidParameterError):
            FeatureExtractor(0.1, 0.0, MemoryFeatureStore())

    def test_non_contiguous_segments_rejected(self):
        ext, _ = extractor()
        ext.add_segment(DataSegment(0.0, 0.0, 10.0, 1.0))
        with pytest.raises(InvalidSeriesError):
            ext.add_segment(DataSegment(11.0, 1.0, 20.0, 2.0))


class TestPairing:
    def test_pair_counts_within_window(self):
        ext, _ = extractor(window=100.0, self_pairs=False)
        for seg in chain((0, 0), (10, 1), (20, 0), (30, 1)):
            ext.add_segment(seg)
        # segment 2 pairs with 1; segment 3 pairs with 1,2: total 3
        assert ext.stats.n_pairs == 3
        assert ext.stats.n_segments == 3

    def test_far_segments_not_paired(self):
        ext, _ = extractor(window=15.0, self_pairs=False)
        for seg in chain((0, 0), (10, 1), (20, 0), (40, 1)):
            ext.add_segment(seg)
        # seg3 [20,40]: window start = 20-15 = 5 -> pairs with seg1? seg1
        # ends at 10 > 5, yes; seg2 ends 20 > 5 yes.
        # seg2 [10,20]: start 10-15 < 0 -> pairs with seg1.
        assert ext.stats.n_pairs == 3

    def test_history_pruned(self):
        ext, _ = extractor(window=10.0, self_pairs=False)
        segs = chain((0, 0), (10, 1), (30, 0), (50, 1), (70, 0))
        for seg in segs:
            ext.add_segment(seg)
        # each new segment only reaches the immediately previous one
        assert ext.stats.n_pairs == 3
        assert len(ext._history) <= 2

    def test_truncation_applied(self):
        ext, store = extractor(window=5.0, epsilon=0.0, self_pairs=False)
        # long first segment, then a short one; window reaches only 5 back
        ext.add_segment(DataSegment(0.0, 0.0, 20.0, 20.0))
        ext.add_segment(DataSegment(20.0, 20.0, 22.0, 21.0))
        assert ext.stats.n_truncated == 1
        store.finalize()
        # every stored pair must start at the truncated boundary 15.0
        counts = store.counts()
        assert counts.total > 0
        from repro.core.queries import JumpQuery

        hits = store.search(JumpQuery(5.0, 0.5), mode="scan")
        assert all(h.t_d >= 15.0 for h in hits)

    def test_self_pairs_emitted(self):
        ext, _ = extractor(self_pairs=True)
        for seg in chain((0, 0), (10, 5), (20, 0)):
            ext.add_segment(seg)
        assert ext.stats.n_self_pairs == 2

    def test_self_pairs_disabled(self):
        ext, _ = extractor(self_pairs=False)
        for seg in chain((0, 0), (10, 5), (20, 0)):
            ext.add_segment(seg)
        assert ext.stats.n_self_pairs == 0


class TestStats:
    def test_corner_histogram_counts_non_self_cases(self):
        ext, _ = extractor(epsilon=0.5, self_pairs=True)
        for seg in chain((0, 0), (10, 5), (20, 0), (30, 8)):
            ext.add_segment(seg)
        hist = ext.stats.corner_histogram
        assert sum(hist.values()) > 0
        assert set(hist) == {1, 2, 3}

    def test_effective_corner_count_range(self):
        ext, _ = extractor(epsilon=0.5)
        for seg in chain((0, 0), (10, 5), (20, 0), (30, 8), (40, 2)):
            ext.add_segment(seg)
        eff = ext.stats.effective_corner_count()
        assert 1.0 <= eff <= 3.0

    def test_percentages_sum_to_100(self):
        ext, _ = extractor(epsilon=0.5)
        for seg in chain((0, 0), (10, 5), (20, 0), (30, 8), (40, 2)):
            ext.add_segment(seg)
        pct = ext.stats.corner_percentages()
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_empty_stats(self):
        ext, _ = extractor()
        assert ext.stats.effective_corner_count() == 0.0
        assert sum(ext.stats.corner_percentages().values()) == 0.0

"""Unit tests for the partition tier primitives (storage layer).

Covers the manifest's atomic generation-stamped transitions, the sound
time-pruning predicate, pin-counted deferred disposal, and the
seal/compaction copy path.
"""

import json
import os

import numpy as np
import pytest

from repro.core.index import SegDiffIndex
from repro.errors import InvalidParameterError, StorageError
from repro.obs.metrics import REGISTRY
from repro.storage.memory_store import MemoryFeatureStore
from repro.storage.partitions import (
    FEATURE_TABLES,
    MANIFEST_NAME,
    Partition,
    PartitionManifest,
    PartitionSpec,
    copy_store_into,
)


def spec(pid="p000000", t_min=0.0, t_max=100.0, fmin=None, fmax=None,
         rows=10, n_segments=3, file=None):
    return PartitionSpec(
        partition_id=pid,
        t_min=t_min,
        t_max=t_max,
        feature_t_min=t_min if fmin is None else fmin,
        feature_t_max=t_max if fmax is None else fmax,
        rows=rows,
        n_segments=n_segments,
        file=file,
    )


class TestPartitionSpec:
    def test_overlaps_time_none_is_unrestricted(self):
        assert spec().overlaps_time(None)

    @pytest.mark.parametrize(
        "t_range,expected",
        [
            ((0.0, 100.0), True),     # exact cover
            ((50.0, 60.0), True),     # inside
            ((-10.0, 0.0), True),     # touches left edge (closed)
            ((100.0, 200.0), True),   # touches right edge (closed)
            ((-10.0, -1.0), False),   # fully left
            ((101.0, 200.0), False),  # fully right
        ],
    )
    def test_overlaps_time(self, t_range, expected):
        assert spec().overlaps_time(t_range) is expected

    def test_feature_bounds_drive_pruning_not_observation_bounds(self):
        # pairs reach back up to a window before the partition's own
        # segments: pruning must use the feature extent
        s = spec(t_min=50.0, t_max=100.0, fmin=20.0, fmax=100.0)
        assert s.overlaps_time((25.0, 30.0))
        assert not s.overlaps_time((0.0, 10.0))

    def test_json_roundtrip(self):
        s = spec(file="p000000.sqlite")
        assert PartitionSpec.from_json(s.to_json()) == s


class TestManifest:
    def test_save_load_roundtrip(self, tmp_path):
        m = PartitionManifest(epsilon=0.2, window=3600.0)
        m = m.with_sealed(spec(), watermark=100.0, n_observations=42)
        m.save(str(tmp_path))
        loaded = PartitionManifest.load(str(tmp_path))
        assert loaded == m
        assert not os.path.exists(
            os.path.join(str(tmp_path), MANIFEST_NAME + ".tmp")
        )

    def test_transitions_bump_generation(self):
        m = PartitionManifest(epsilon=0.2, window=3600.0)
        m1 = m.with_sealed(spec("a"), 100.0, 10)
        m2 = m1.with_sealed(spec("b", 100.0, 200.0), 200.0, 20)
        m3 = m2.with_replaced(["a", "b"], spec("c", 0.0, 200.0))
        m4 = m3.with_dropped(["c"])
        m5 = m4.with_finalized()
        assert [x.generation for x in (m, m1, m2, m3, m4, m5)] == list(range(6))
        assert m2.watermark == 200.0 and m2.n_observations == 20
        assert [s.partition_id for s in m3.partitions] == ["c"]
        assert m4.partitions == ()
        assert m5.finalized

    def test_with_replaced_unknown_ids_raises(self):
        m = PartitionManifest(epsilon=0.2, window=3600.0)
        with pytest.raises(InvalidParameterError):
            m.with_replaced(["nope"], spec())

    def test_load_missing_or_bad_version_raises(self, tmp_path):
        with pytest.raises(StorageError):
            PartitionManifest.load(str(tmp_path))
        path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(path, "w") as fh:
            json.dump({"version": 999}, fh)
        with pytest.raises(StorageError):
            PartitionManifest.load(str(tmp_path))

    def test_exists_and_listed_files(self, tmp_path):
        assert not PartitionManifest.exists(str(tmp_path))
        m = PartitionManifest(epsilon=0.2, window=3600.0)
        m = m.with_sealed(spec(file="p000000.sqlite"), 100.0, 1)
        m = m.with_sealed(spec("p1", 100.0, 200.0), 200.0, 2)  # in-memory
        m.save(str(tmp_path))
        assert PartitionManifest.exists(str(tmp_path))
        assert m.listed_files() == ["p000000.sqlite"]


class TestPartitionPinning:
    def _partition(self, tmp_path, counted=False):
        path = os.path.join(str(tmp_path), "p000000.bin")
        with open(path, "wb") as fh:
            fh.write(b"payload")
        store = MemoryFeatureStore()
        store.finalize()
        return Partition(spec(file="p000000.bin"), store, path=path,
                         counted=counted), path

    def test_retire_defers_disposal_to_last_pin(self, tmp_path):
        part, path = self._partition(tmp_path)
        part.pin()
        part.pin()
        part.retire()
        assert part.retired
        assert os.path.exists(path)  # two readers still pinned
        part.release()
        assert os.path.exists(path)
        part.release()
        assert not os.path.exists(path)  # last pin gone -> disposed
        with pytest.raises(StorageError):
            part.pin()

    def test_retire_unpinned_disposes_immediately(self, tmp_path):
        part, path = self._partition(tmp_path)
        part.retire()
        assert not os.path.exists(path)

    def test_over_release_raises(self, tmp_path):
        part, _ = self._partition(tmp_path)
        with pytest.raises(StorageError):
            part.release()

    def test_retire_is_idempotent_for_the_gauge(self, tmp_path):
        gauge = lambda: REGISTRY.snapshot().get("repro_partitions_active", 0.0)
        before = gauge()
        part, _ = self._partition(tmp_path, counted=True)
        assert gauge() == before + 1
        part.retire()
        part.retire()
        part.close()
        assert gauge() == before

    def test_retire_drops_cached_session(self, tmp_path):
        part, _ = self._partition(tmp_path)
        part.pin()  # keep alive past retire
        session = part.session()
        assert part.session() is session  # cached
        part.retire()
        assert part._session is None  # stale samples dropped with it
        part.release()


class TestCopyStoreInto:
    def test_copy_preserves_rows_and_segments(self):
        rng = np.random.default_rng(7)
        ts = np.cumsum(rng.uniform(30.0, 300.0, 120))
        vs = np.cumsum(rng.normal(0.0, 1.5, 120))
        src_index = SegDiffIndex(0.5, 4 * 3600.0)
        for t, v in zip(ts, vs):
            src_index.append(float(t), float(v))
        src_index.finalize()

        dest = MemoryFeatureStore()
        copied = copy_store_into([src_index.store], dest)

        total = 0
        for table in FEATURE_TABLES:
            a = src_index.store.read_table_rows(table)
            b = dest.read_table_rows(table)
            assert np.array_equal(a, b), table
            total += a.shape[0]
        assert copied == total
        assert dest.load_segments() == src_index.store.load_segments()
        src_index.close()
        dest.close()

    def test_concatenation_order_is_source_order(self):
        # two halves copied in order must equal the one-store layout
        rng = np.random.default_rng(11)
        ts = np.cumsum(rng.uniform(30.0, 300.0, 160))
        vs = np.cumsum(rng.normal(0.0, 1.5, 160))
        whole = SegDiffIndex(0.5, 4 * 3600.0)
        for t, v in zip(ts, vs):
            whole.append(float(t), float(v))
        whole.finalize()

        # split the *stored rows* at an arbitrary byte-identical boundary
        # by copying through two intermediate stores
        half_a, half_b = MemoryFeatureStore(), MemoryFeatureStore()
        for table in FEATURE_TABLES:
            rows = whole.store.read_table_rows(table)
            cut = rows.shape[0] // 2

            class _Batch:
                pass

            for dest_store, part_rows in ((half_a, rows[:cut]),
                                          (half_b, rows[cut:])):
                batch = _Batch()
                for name in FEATURE_TABLES:
                    width = 6 if name.endswith("points") else 8
                    setattr(batch, name, np.empty((0, width)))
                setattr(batch, table, part_rows)
                dest_store.add_features_bulk(batch)
        half_a.finalize()
        half_b.finalize()

        merged = MemoryFeatureStore()
        copy_store_into([half_a, half_b], merged)
        for table in FEATURE_TABLES:
            assert np.array_equal(
                merged.read_table_rows(table),
                whole.store.read_table_rows(table),
            ), table
        for s in (half_a, half_b, merged):
            s.close()
        whole.close()

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import (
    CADConfig,
    CADTransectGenerator,
    TimeSeries,
    piecewise_series,
    random_walk_series,
)

HOUR = 3600.0


@pytest.fixture(scope="session")
def cad_day():
    """One day of one synthetic CAD sensor plus its ground-truth events."""
    cfg = CADConfig(days=1, seed=101, event_probability=0.9, anomaly_rate=0.0)
    gen = CADTransectGenerator(cfg)
    series = gen.generate(12)
    return series, gen.events


@pytest.fixture(scope="session")
def cad_week():
    """A week of one synthetic CAD sensor (noisier, with anomalies)."""
    cfg = CADConfig(days=7, seed=202)
    gen = CADTransectGenerator(cfg)
    return gen.generate(12)


@pytest.fixture
def simple_series() -> TimeSeries:
    """A tiny hand-checkable series: flat, drop, recover, rise."""
    return piecewise_series(
        breakpoints=[0.0, 600.0, 900.0, 1500.0, 2400.0],
        values=[10.0, 10.0, 4.0, 4.0, 12.0],
        dt=300.0,
    )


@pytest.fixture
def walk_series() -> TimeSeries:
    """A moderate random walk for pipeline tests."""
    return random_walk_series(400, dt=300.0, step_std=0.8, seed=11)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)

"""Cross-cutting integration properties of the whole pipeline.

These complement the Theorem 1 audits in ``test_guarantees.py`` with
structural invariants: backend equivalence, window semantics, query
monotonicity, baseline coverage, and streaming growth.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import ExhIndex
from repro.core.index import SegDiffIndex
from repro.datagen import TimeSeries

HOUR = 3600.0


def make_walk(seed: int, n: int = 80) -> TimeSeries:
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.uniform(120.0, 600.0, size=n))
    v = np.cumsum(rng.normal(0.0, 1.5, size=n))
    return TimeSeries(t, v)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    v_thr=st.floats(min_value=-8.0, max_value=-0.5),
    t_minutes=st.integers(min_value=10, max_value=240),
)
@settings(max_examples=25, deadline=None)
def test_backends_identical_on_random_walks(seed, v_thr, t_minutes):
    """Memory and SQLite stores return exactly the same pairs."""
    series = make_walk(seed)
    t_thr = t_minutes * 60.0
    mem = SegDiffIndex.build(series, 0.3, 4 * HOUR, backend="memory")
    sql = SegDiffIndex.build(series, 0.3, 4 * HOUR, backend="sqlite")
    try:
        assert mem.search_drops(t_thr, v_thr) == sql.search_drops(t_thr, v_thr)
        assert mem.search_jumps(t_thr, -v_thr) == sql.search_jumps(
            t_thr, -v_thr
        )
    finally:
        mem.close()
        sql.close()


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_no_pair_reaches_back_past_the_window(seed):
    """Algorithm 1's window: a result's start period begins at most ``w``
    before its end period begins (t_b - t_d <= w)."""
    series = make_walk(seed)
    window = 2 * HOUR
    idx = SegDiffIndex.build(series, 0.3, window)
    for pairs in (
        idx.search_drops(window, -0.5),
        idx.search_jumps(window, 0.5),
    ):
        for p in pairs:
            assert p.t_b - p.t_d <= window + 1e-6


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    v_shallow=st.floats(min_value=-3.0, max_value=-0.5),
    extra_depth=st.floats(min_value=0.1, max_value=5.0),
    t_small=st.integers(min_value=10, max_value=120),
    t_extra=st.integers(min_value=1, max_value=120),
)
@settings(max_examples=25, deadline=None)
def test_query_monotonicity(seed, v_shallow, extra_depth, t_small, t_extra):
    """Larger regions can only return more pairs."""
    series = make_walk(seed, n=60)
    idx = SegDiffIndex.build(series, 0.3, 4 * HOUR)
    small = set(
        p.as_tuple() for p in idx.search_drops(t_small * 60.0, v_shallow - extra_depth)
    )
    large = set(
        p.as_tuple()
        for p in idx.search_drops((t_small + t_extra) * 60.0, v_shallow)
    )
    assert small <= large


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    v_thr=st.floats(min_value=-6.0, max_value=-0.5),
)
@settings(max_examples=20, deadline=None)
def test_segdiff_covers_every_exh_event(seed, v_thr):
    """Exh's sampled events are true events, so SegDiff must cover each."""
    series = make_walk(seed, n=60)
    t_thr = HOUR
    idx = SegDiffIndex.build(series, 0.3, 4 * HOUR)
    exh = ExhIndex.build(series, 4 * HOUR)
    pairs = idx.search_drops(t_thr, v_thr)
    for ev in exh.search_drops(t_thr, v_thr):
        covered = any(
            p.t_d - 1e-9 <= ev.t_first <= p.t_c + 1e-9
            and p.t_b - 1e-9 <= ev.t_second <= p.t_a + 1e-9
            for p in pairs
        )
        assert covered, f"Exh event {ev} escaped SegDiff"


def test_streaming_results_grow_monotonically():
    """As the stream advances, a fixed query's result set only grows."""
    series = make_walk(99, n=200)
    idx = SegDiffIndex(0.3, 4 * HOUR)
    seen: set = set()
    chunk = len(series) // 4
    for i in range(4):
        lo, hi = i * chunk, min((i + 1) * chunk, len(series))
        for j in range(lo, hi):
            obs = series[j]
            idx.append(obs.t, obs.v)
        idx.checkpoint()
        current = {p.as_tuple() for p in idx.search_drops(HOUR, -1.0)}
        assert seen <= current, "earlier results disappeared mid-stream"
        seen = current
    idx.finalize()
    final = {p.as_tuple() for p in idx.search_drops(HOUR, -1.0)}
    assert seen <= final
    idx.close()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    epsilon=st.sampled_from([0.0, 0.5]),
)
@settings(max_examples=15, deadline=None)
def test_verified_hits_meet_threshold_exactly(seed, epsilon):
    """rank_hits(verified_only=True) filters to exact-threshold events."""
    from repro.core.queries import DropQuery
    from repro.core.results import rank_hits

    series = make_walk(seed, n=60)
    idx = SegDiffIndex.build(series, epsilon, 4 * HOUR)
    q = DropQuery(HOUR, -2.0)
    pairs = idx.search_drops(q.t_threshold, q.v_threshold)
    for hit in rank_hits(pairs, series, q, verified_only=True):
        assert hit.witness.dv <= q.v_threshold + 1e-9
        assert 0 < hit.witness.dt <= q.t_threshold + 1e-9

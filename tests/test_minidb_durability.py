"""Crash-safety tests for MiniDB: checksums, WAL recovery, and fsck.

The centerpiece is a **crash matrix**: a fixed multi-transaction workload
is first run fault-free to count every file-level write operation, then
re-run once per operation with a simulated power cut at exactly that op.
After every crash the database must reopen cleanly, pass fsck, and
contain exactly a committed prefix of the workload's transactions — never
a partial transaction, never corrupt data.
"""

import os

import pytest

from repro.errors import CorruptionError, StorageError
from repro.storage.faults import FaultInjected, FaultInjector, FaultPolicy
from repro.storage.minidb import (
    PAGE_CAPACITY,
    PAGE_SIZE,
    MiniDatabase,
    Pager,
)

# ---------------------------------------------------------------------- #
# the workload under test: one DDL transaction (create table, bulk
# insert, build an index) followed by several batches of indexed inserts.
# cache_pages=3 forces mid-transaction evictions through the WAL; the
# batches are sized so B+tree leaf splits happen during insert_indexed.
# ---------------------------------------------------------------------- #

WIDTH = 16
BATCH = 50
N_TXNS = 8


def row(i: int):
    return tuple(float(i * 10 + c) for c in range(WIDTH))


def workload(path: str, opener=None) -> None:
    db = MiniDatabase(path, cache_pages=3, opener=opener)
    with db.transaction():
        t = db.create_table("events", WIDTH)
        for i in range(BATCH):
            t.insert(row(i))
        t.create_index("by_key", (0, 1))
    n = BATCH
    for _ in range(1, N_TXNS):
        with db.transaction():
            t = db.table("events")
            for i in range(n, n + BATCH):
                t.insert_indexed(row(i))
            db.set_meta("count", n + BATCH)
        n += BATCH
    db.close()


def count_write_ops(tmp_path) -> int:
    """Fault-free run: how many crash points does the workload expose?"""
    inj = FaultInjector()
    workload(str(tmp_path / "count.mdb"), opener=inj.open)
    inj.close_all()
    return inj.op_count


def assert_recovered_state_valid(path: str, crash_point) -> None:
    """Reopen after a crash; the state must be a committed prefix."""
    db = MiniDatabase(path)
    try:
        problems = db.check()
        assert problems == [], (
            f"fsck after crash at op {crash_point}: {problems}"
        )
        if db.has_table("events"):
            t = db.table("events")
            n = t.n_rows
            # atomicity: only whole transactions are ever visible
            assert n % BATCH == 0 and 0 < n <= N_TXNS * BATCH, (
                f"crash at op {crash_point} exposed a partial "
                f"transaction ({n} rows)"
            )
            rows = [r for _rid, r in t.scan()]
            assert rows == [row(i) for i in range(n)]
            entries = list(t.index("by_key").scan_from())
            assert len(entries) == n
            assert [k for k, _rid in entries] == sorted(
                (r[0], r[1]) for r in rows
            )
            count = db.get_meta("count")
            if n > BATCH:  # set_meta commits with each later batch
                assert count == n
    finally:
        db.close()


class TestCrashMatrix:
    def test_every_crash_point_recovers(self, tmp_path):
        """Simulate a power cut at EVERY write op of the workload."""
        n_ops = count_write_ops(tmp_path)
        assert n_ops >= 50, (
            f"workload exposes only {n_ops} crash points; the matrix "
            "must cover at least 50"
        )
        for k in range(1, n_ops + 1):
            d = tmp_path / f"crash_{k}"
            d.mkdir()
            path = str(d / "w.mdb")
            inj = FaultInjector(FaultPolicy(fail_at=k, mode="crash"))
            with pytest.raises(FaultInjected):
                workload(path, opener=inj.open)
            inj.close_all()
            assert_recovered_state_valid(path, k)

    def test_torn_write_points_recover(self, tmp_path):
        """Partial-sector writes: only a prefix of the failing write
        reaches disk.  Every third op, with two different tear sizes."""
        n_ops = count_write_ops(tmp_path)
        for torn_bytes in (3, 97):
            for k in range(1, n_ops + 1, 3):
                d = tmp_path / f"torn_{torn_bytes}_{k}"
                d.mkdir()
                path = str(d / "w.mdb")
                inj = FaultInjector(
                    FaultPolicy(fail_at=k, mode="torn", torn_bytes=torn_bytes)
                )
                with pytest.raises(FaultInjected):
                    workload(path, opener=inj.open)
                inj.close_all()
                assert_recovered_state_valid(path, f"{k} (torn {torn_bytes})")

    def test_double_crash_during_recovery(self, tmp_path):
        """A second power cut while recovery itself is replaying the WAL
        must leave the file recoverable (replay is idempotent)."""
        path = str(tmp_path / "w.mdb")
        inj = FaultInjector(FaultPolicy(fail_at=40, mode="crash"))
        with pytest.raises(FaultInjected):
            workload(path, opener=inj.open)
        inj.close_all()
        for k in range(1, 6):  # crash early in the recovery's own writes
            inj2 = FaultInjector(FaultPolicy(fail_at=k, mode="crash"))
            try:
                MiniDatabase(path, opener=inj2.open).close()
            except FaultInjected:
                pass
            inj2.close_all()
        assert_recovered_state_valid(path, "double crash")


class TestTransientErrors:
    def test_failed_transaction_rolls_back_and_retries(self, tmp_path):
        """A transient OSError aborts the transaction; the rollback leaves
        the database consistent and the retry succeeds."""
        path = str(tmp_path / "w.mdb")
        inj = FaultInjector()
        db = MiniDatabase(path, cache_pages=3, opener=inj.open)
        with db.transaction():
            t = db.create_table("events", WIDTH)
            for i in range(BATCH):
                t.insert(row(i))
            t.create_index("by_key", (0, 1))
        inj.arm(FaultPolicy(fail_at=inj.op_count + 2, mode="error"))
        with pytest.raises(OSError):
            with db.transaction():
                t = db.table("events")
                for i in range(BATCH, 2 * BATCH):
                    t.insert_indexed(row(i))
        assert db.table("events").n_rows == BATCH
        assert db.check() == []
        with db.transaction():  # the fault was transient: retry works
            t = db.table("events")
            for i in range(BATCH, 2 * BATCH):
                t.insert_indexed(row(i))
            db.set_meta("count", 2 * BATCH)
        assert db.table("events").n_rows == 2 * BATCH
        assert db.check() == []
        db.close()
        inj.close_all()
        assert_recovered_state_valid(path, "transient error")


class TestChecksums:
    def _built_db(self, tmp_path) -> str:
        path = str(tmp_path / "c.mdb")
        with MiniDatabase(path) as db:
            t = db.create_table("t", 4)
            for i in range(500):
                t.insert((float(i), 1.0, 2.0, 3.0))
            t.create_index("ix", (0,))
        return path

    @pytest.mark.parametrize("offset_in_page", [0, 100, PAGE_CAPACITY - 1])
    def test_bit_flip_detected_never_returned(self, tmp_path, offset_in_page):
        """A flipped bit in a data page must surface as CorruptionError —
        the corrupt bytes must never be handed back as row data."""
        path = self._built_db(tmp_path)
        # flip one bit in page 1 (first heap page)
        with open(path, "r+b") as fh:
            fh.seek(PAGE_SIZE + offset_in_page)
            byte = fh.read(1)[0]
            fh.seek(PAGE_SIZE + offset_in_page)
            fh.write(bytes([byte ^ 0x01]))
        db = MiniDatabase(path)
        try:
            with pytest.raises(CorruptionError, match="checksum"):
                list(db.table("t").scan())
        finally:
            db.close()

    def test_bit_flip_reported_by_fsck(self, tmp_path):
        path = self._built_db(tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(2 * PAGE_SIZE + 50)
            byte = fh.read(1)[0]
            fh.seek(2 * PAGE_SIZE + 50)
            fh.write(bytes([byte ^ 0x80]))
        db = MiniDatabase(path)
        try:
            problems = db.check()
            assert problems, "fsck missed the flipped bit"
            assert any("checksum" in str(p) for p in problems)
        finally:
            db.close()

    def test_clean_database_passes_fsck(self, tmp_path):
        path = self._built_db(tmp_path)
        db = MiniDatabase(path)
        try:
            assert db.check() == []
        finally:
            db.close()

    def test_checksums_off_skips_verification(self, tmp_path):
        """The ablation/benchmark configuration must keep working."""
        path = str(tmp_path / "nochk.mdb")
        with MiniDatabase(path, checksums=False, wal=False) as db:
            t = db.create_table("t", 2)
            for i in range(100):
                t.insert((float(i), 0.0))
        with MiniDatabase(path, checksums=False, wal=False) as db:
            assert db.table("t").n_rows == 100


class TestFsckStructural:
    def test_catalog_rowcount_mismatch_reported(self, tmp_path):
        path = str(tmp_path / "c.mdb")
        with MiniDatabase(path) as db:
            t = db.create_table("t", 2)
            for i in range(10):
                t.insert((float(i), 0.0))
            # lie in the catalog (then recompute the page checksum by
            # writing through the pager so only the count is wrong)
            t._info["n_rows"] = 99
        db = MiniDatabase(path)
        try:
            problems = db.check()
            assert any("99" in str(p) for p in problems)
        finally:
            db.close()

    def test_index_entry_count_mismatch_reported(self, tmp_path):
        path = str(tmp_path / "c.mdb")
        with MiniDatabase(path) as db:
            t = db.create_table("t", 2)
            for i in range(10):
                t.insert((float(i), 0.0))
            t.create_index("ix", (0,))
            t._info["indexes"]["ix"]["n_entries"] = 3
        db = MiniDatabase(path)
        try:
            problems = db.check()
            assert any("catalog records 3" in str(p) for p in problems)
        finally:
            db.close()


class TestLifecycle:
    def test_pager_close_is_idempotent(self, tmp_path):
        p = Pager(str(tmp_path / "p.pages"))
        p.close()
        p.close()  # second close is a no-op, not an error

    def test_database_close_is_idempotent(self, tmp_path):
        db = MiniDatabase(str(tmp_path / "d.mdb"))
        db.close()
        db.close()

    def test_pager_context_manager(self, tmp_path):
        with Pager(str(tmp_path / "p.pages")) as p:
            pid = p.allocate()
            p.write(pid, bytes(PAGE_SIZE))
        with pytest.raises(StorageError):
            p.read(pid)

    def test_closed_database_raises_storage_error(self, tmp_path):
        db = MiniDatabase(str(tmp_path / "d.mdb"))
        db.close()
        with pytest.raises(StorageError):
            db.create_table("t", 2)

    def test_clean_close_removes_wal(self, tmp_path):
        path = str(tmp_path / "d.mdb")
        with MiniDatabase(path) as db:
            t = db.create_table("t", 2)
            t.insert((1.0, 2.0))
        assert os.path.exists(path)
        assert not os.path.exists(path + ".wal")

    def test_rollback_restores_pre_transaction_state(self, tmp_path):
        path = str(tmp_path / "d.mdb")
        db = MiniDatabase(path)
        with db.transaction():
            t = db.create_table("t", 2)
            for i in range(100):
                t.insert((float(i), 0.0))
        with pytest.raises(RuntimeError):
            with db.transaction():
                t = db.table("t")
                for i in range(100, 200):
                    t.insert((float(i), 0.0))
                raise RuntimeError("abort")
        t = db.table("t")
        assert t.n_rows == 100
        assert [r for _rid, r in t.scan()] == [
            (float(i), 0.0) for i in range(100)
        ]
        assert db.check() == []
        db.close()

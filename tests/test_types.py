"""Unit tests for core value types and the exception hierarchy."""

import math

import pytest

from repro.errors import (
    InvalidParameterError,
    InvalidSegmentError,
    InvalidSeriesError,
    QueryError,
    ReproError,
    StorageError,
)
from repro.types import DataSegment, Event, Observation, SegmentPair


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            InvalidSeriesError,
            InvalidParameterError,
            InvalidSegmentError,
            StorageError,
            QueryError,
        ):
            assert issubclass(exc, ReproError)

    def test_repro_error_derives_from_exception(self):
        assert issubclass(ReproError, Exception)


class TestObservation:
    def test_unpacks_as_pair(self):
        t, v = Observation(1.0, 2.0)
        assert (t, v) == (1.0, 2.0)

    def test_is_hashable_and_equal_by_value(self):
        assert Observation(1.0, 2.0) == Observation(1.0, 2.0)
        assert len({Observation(1.0, 2.0), Observation(1.0, 2.0)}) == 1


class TestDataSegment:
    def test_basic_properties(self):
        seg = DataSegment(0.0, 10.0, 4.0, 2.0)
        assert seg.duration == 4.0
        assert seg.rise == -8.0
        assert seg.slope == -2.0

    def test_value_at_interior_and_extension(self):
        seg = DataSegment(0.0, 0.0, 2.0, 4.0)
        assert seg.value_at(1.0) == 2.0
        assert seg.value_at(3.0) == 6.0  # extrapolation along the line

    def test_contains_time(self):
        seg = DataSegment(1.0, 0.0, 3.0, 0.0)
        assert seg.contains_time(1.0)
        assert seg.contains_time(3.0)
        assert not seg.contains_time(3.1)

    def test_zero_duration_rejected(self):
        with pytest.raises(InvalidSegmentError):
            DataSegment(1.0, 0.0, 1.0, 5.0)

    def test_reversed_times_rejected(self):
        with pytest.raises(InvalidSegmentError):
            DataSegment(2.0, 0.0, 1.0, 5.0)

    def test_non_finite_rejected(self):
        with pytest.raises(InvalidSegmentError):
            DataSegment(0.0, math.nan, 1.0, 5.0)
        with pytest.raises(InvalidSegmentError):
            DataSegment(0.0, 0.0, 1.0, math.inf)

    def test_truncation_keeps_line(self):
        seg = DataSegment(0.0, 0.0, 10.0, 10.0)
        cut = seg.truncated_to_start(4.0)
        assert cut.t_start == 4.0
        assert cut.v_start == 4.0
        assert cut.t_end == 10.0
        assert cut.slope == seg.slope

    def test_truncation_noop_before_start(self):
        seg = DataSegment(5.0, 0.0, 10.0, 10.0)
        assert seg.truncated_to_start(1.0) is seg

    def test_truncation_beyond_end_rejected(self):
        seg = DataSegment(0.0, 0.0, 10.0, 10.0)
        with pytest.raises(InvalidSegmentError):
            seg.truncated_to_start(10.0)


class TestEvent:
    def test_dt_and_classification(self):
        ev = Event(0.0, 600.0, -4.0)
        assert ev.dt == 600.0
        assert ev.is_drop(v_threshold=-3.0, t_threshold=3600.0)
        assert not ev.is_drop(v_threshold=-5.0, t_threshold=3600.0)
        assert not ev.is_drop(v_threshold=-3.0, t_threshold=300.0)

    def test_jump_classification(self):
        ev = Event(0.0, 600.0, 4.0)
        assert ev.is_jump(v_threshold=3.0, t_threshold=3600.0)
        assert not ev.is_jump(v_threshold=5.0, t_threshold=3600.0)

    def test_zero_span_is_neither(self):
        ev = Event(5.0, 5.0, 0.0)
        assert not ev.is_drop(-1.0, 100.0)
        assert not ev.is_jump(1.0, 100.0)


class TestSegmentPair:
    def test_periods(self):
        pair = SegmentPair(0.0, 10.0, 10.0, 25.0)
        assert pair.start_period == (0.0, 10.0)
        assert pair.end_period == (10.0, 25.0)
        assert not pair.is_self_pair

    def test_self_pair_detection(self):
        pair = SegmentPair(3.0, 9.0, 3.0, 9.0)
        assert pair.is_self_pair

    def test_round_trips_as_tuple(self):
        pair = SegmentPair(0.0, 1.0, 2.0, 3.0)
        assert SegmentPair(*pair.as_tuple()) == pair

    def test_out_of_order_rejected(self):
        with pytest.raises(InvalidSegmentError):
            SegmentPair(10.0, 0.0, 10.0, 25.0)
        with pytest.raises(InvalidSegmentError):
            SegmentPair(0.0, 10.0, 25.0, 10.0)

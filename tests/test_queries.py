"""Tests for query predicates and SQL builders.

The SQL text is executed against a scratch SQLite database loaded with the
same rows the numpy predicates see, asserting both judge identically —
including the corrected line-crossing formula (DESIGN.md §5.2).
"""

import sqlite3

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.queries import (
    DropQuery,
    JumpQuery,
    line_mask,
    line_query_sql,
    point_mask,
    point_query_sql,
)
from repro.errors import InvalidParameterError


class TestQueryValidation:
    def test_drop_query_signs(self):
        DropQuery(10.0, -1.0)
        with pytest.raises(InvalidParameterError):
            DropQuery(10.0, 1.0)
        with pytest.raises(InvalidParameterError):
            DropQuery(10.0, 0.0)
        with pytest.raises(InvalidParameterError):
            DropQuery(0.0, -1.0)

    def test_jump_query_signs(self):
        JumpQuery(10.0, 1.0)
        with pytest.raises(InvalidParameterError):
            JumpQuery(10.0, -1.0)

    def test_query_region_kind(self):
        assert DropQuery(1.0, -1.0).region.kind == "drop"
        assert JumpQuery(1.0, 1.0).region.kind == "jump"


class TestPointMask:
    def test_drop_semantics(self):
        dt = np.array([1.0, 5.0, 11.0])
        dv = np.array([-4.0, -2.0, -4.0])
        mask = point_mask("drop", dt, dv, t_thr=10.0, v_thr=-3.0)
        assert list(mask) == [True, False, False]

    def test_jump_semantics(self):
        dt = np.array([1.0, 5.0])
        dv = np.array([4.0, 2.0])
        mask = point_mask("jump", dt, dv, t_thr=10.0, v_thr=3.0)
        assert list(mask) == [True, False]

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            point_mask("dip", np.array([1.0]), np.array([1.0]), 1.0, 1.0)


class TestLineMask:
    def test_crossing_detected(self):
        # edge from (5, -1) to (15, -6): at T=10 its value is -3.5 <= -3
        mask = line_mask(
            "drop",
            np.array([5.0]),
            np.array([-1.0]),
            np.array([15.0]),
            np.array([-6.0]),
            t_thr=10.0,
            v_thr=-3.0,
        )
        assert mask[0]

    def test_late_crossing_rejected(self):
        # same edge but at T=6 its value is -1.5 > -3
        mask = line_mask(
            "drop",
            np.array([5.0]),
            np.array([-1.0]),
            np.array([15.0]),
            np.array([-6.0]),
            t_thr=6.0,
            v_thr=-3.0,
        )
        assert not mask[0]

    def test_end_inside_not_a_line_hit(self):
        # first end is inside the region: the point query's job, not ours
        mask = line_mask(
            "drop",
            np.array([5.0]),
            np.array([-4.0]),
            np.array([15.0]),
            np.array([-6.0]),
            t_thr=10.0,
            v_thr=-3.0,
        )
        assert not mask[0]

    def test_jump_crossing(self):
        mask = line_mask(
            "jump",
            np.array([5.0]),
            np.array([1.0]),
            np.array([15.0]),
            np.array([6.0]),
            t_thr=10.0,
            v_thr=3.0,
        )
        assert mask[0]

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            line_mask(
                "dip",
                np.array([1.0]),
                np.array([1.0]),
                np.array([2.0]),
                np.array([1.0]),
                1.0,
                1.0,
            )


def _run_sql(kind, rows_points, rows_lines, t_thr, v_thr):
    conn = sqlite3.connect(":memory:")
    conn.execute(
        "CREATE TABLE pts (dt REAL, dv REAL, t_d REAL, t_c REAL, "
        "t_b REAL, t_a REAL)"
    )
    conn.execute(
        "CREATE TABLE lns (dt1 REAL, dv1 REAL, dt2 REAL, dv2 REAL, "
        "t_d REAL, t_c REAL, t_b REAL, t_a REAL)"
    )
    conn.executemany("INSERT INTO pts VALUES (?,?,?,?,?,?)", rows_points)
    conn.executemany("INSERT INTO lns VALUES (?,?,?,?,?,?,?,?)", rows_lines)
    sql = (
        point_query_sql(kind, "pts")
        + " UNION "
        + line_query_sql(kind, "lns")
    )
    out = conn.execute(sql, {"T": t_thr, "V": v_thr}).fetchall()
    conn.close()
    return sorted(out)


@st.composite
def feature_rows(draw):
    n_pts = draw(st.integers(min_value=0, max_value=8))
    n_lns = draw(st.integers(min_value=0, max_value=8))
    vals = st.floats(min_value=-20, max_value=20, allow_nan=False)
    dts = st.floats(min_value=0, max_value=30, allow_nan=False)
    pts = []
    for i in range(n_pts):
        pts.append((draw(dts), draw(vals), float(i), float(i + 1), float(i + 2), float(i + 3)))
    lns = []
    for i in range(n_lns):
        a, b = sorted([draw(dts), draw(dts)])
        lns.append(
            (a, draw(vals), b, draw(vals), float(i), float(i + 1), float(i + 2), float(i + 3))
        )
    return pts, lns


class TestSqlMatchesPredicates:
    @given(
        rows=feature_rows(),
        t_thr=st.floats(min_value=0.5, max_value=25),
        v_thr=st.floats(min_value=-15, max_value=-0.5),
    )
    @settings(max_examples=150, deadline=None)
    def test_drop_sql_equals_numpy(self, rows, t_thr, v_thr):
        pts, lns = rows
        # avoid razor-thin boundary disagreements between SQL and numpy
        for row in pts:
            assume(abs(row[0] - t_thr) > 1e-6 and abs(row[1] - v_thr) > 1e-6)
        for row in lns:
            assume(abs(row[0] - t_thr) > 1e-6 and abs(row[2] - t_thr) > 1e-6)
            assume(abs(row[1] - v_thr) > 1e-6 and abs(row[3] - v_thr) > 1e-6)
            if row[0] <= t_thr < row[2]:
                mid = row[1] + (row[3] - row[1]) / (row[2] - row[0]) * (t_thr - row[0])
                assume(abs(mid - v_thr) > 1e-6)

        sql_hits = _run_sql("drop", pts, lns, t_thr, v_thr)

        hits = set()
        if pts:
            arr = np.array(pts)
            mask = point_mask("drop", arr[:, 0], arr[:, 1], t_thr, v_thr)
            hits |= {tuple(r[2:6]) for r in arr[mask]}
        if lns:
            arr = np.array(lns)
            mask = line_mask(
                "drop", arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3], t_thr, v_thr
            )
            hits |= {tuple(r[4:8]) for r in arr[mask]}
        assert sorted(hits) == sql_hits

    def test_index_hints_are_legal_sql(self):
        sql = point_query_sql("drop", "pts", "NOT INDEXED")
        assert "NOT INDEXED" in sql
        sql = line_query_sql("jump", "lns", "INDEXED BY foo")
        assert "INDEXED BY foo" in sql

"""Tests for concurrent reads (SQLite backend) and the explain facility."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.index import SegDiffIndex
from repro.datagen import random_walk_series
from repro.errors import InvalidParameterError, QueryError

HOUR = 3600.0


@pytest.fixture(scope="module")
def sqlite_index():
    series = random_walk_series(300, dt=300.0, step_std=0.8, seed=33)
    index = SegDiffIndex.build(series, 0.2, 8 * HOUR, backend="sqlite")
    yield index
    index.close()


class TestConcurrentReads:
    def test_parallel_searches_agree(self, sqlite_index):
        expected = sqlite_index.search_drops(HOUR, -2.0)

        def query(_i):
            return sqlite_index.search_drops(HOUR, -2.0)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(query, range(32)))
        assert all(r == expected for r in results)

    def test_parallel_mixed_queries(self, sqlite_index):
        jobs = [
            (HOUR, -2.0, "index"),
            (2 * HOUR, -1.0, "scan"),
            (0.5 * HOUR, -4.0, "index"),
        ] * 6
        expected = {
            job: sqlite_index.search_drops(job[0], job[1], mode=job[2])
            for job in set(jobs)
        }

        def query(job):
            return job, sqlite_index.search_drops(job[0], job[1], mode=job[2])

        with ThreadPoolExecutor(max_workers=6) as pool:
            for job, result in pool.map(query, jobs):
                assert result == expected[job]

    def test_parallel_cold_cache_queries(self, sqlite_index):
        expected = sqlite_index.search_drops(HOUR, -2.0)

        def query(_i):
            return sqlite_index.search_drops(HOUR, -2.0, cache="cold")

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(query, range(8)))
        assert all(r == expected for r in results)


class TestExplain:
    def test_reports_plan_and_estimates(self, sqlite_index):
        plan = sqlite_index.explain("drop", HOUR, -2.0)
        assert plan["epsilon"] == 0.2
        assert plan["false_positive_bound"] == 0.4
        assert 0.0 <= plan["estimated_selectivity"] <= 1.0
        assert plan["chosen_mode"] in ("scan", "index")
        assert plan["point_rows"] > 0
        assert plan["query"].t_threshold == HOUR

    def test_selective_query_chooses_index(self, sqlite_index):
        plan = sqlite_index.explain("drop", 600.0, -1e6)
        assert plan["estimated_selectivity"] == 0.0
        assert plan["chosen_mode"] == "index"
        assert plan["estimated_matches"] == 0

    def test_hard_query_chooses_scan(self, sqlite_index):
        plan = sqlite_index.explain("drop", 8 * HOUR, -1e-9)
        assert plan["chosen_mode"] == "scan"
        assert plan["estimated_matches"] > 0

    def test_jump_explain(self, sqlite_index):
        plan = sqlite_index.explain("jump", HOUR, 2.0)
        assert plan["point_rows"] > 0

    def test_validation(self, sqlite_index):
        with pytest.raises(InvalidParameterError):
            sqlite_index.explain("dip", HOUR, -2.0)
        with pytest.raises(QueryError):
            sqlite_index.explain("drop", 100 * HOUR, -2.0)

    def test_explain_agrees_with_auto_mode(self, sqlite_index):
        plan = sqlite_index.explain("drop", HOUR, -2.0)
        auto = sqlite_index.search_drops(HOUR, -2.0, mode="auto")
        forced = sqlite_index.search_drops(HOUR, -2.0, mode=plan["chosen_mode"])
        assert auto == forced

"""Tests for index persistence: reopen a built index from its file."""

import pytest

from repro.core.index import SegDiffIndex
from repro.errors import StorageError
from repro.storage import MemoryFeatureStore, SqliteFeatureStore

HOUR = 3600.0


@pytest.fixture
def built_path(tmp_path, walk_series):
    path = str(tmp_path / "walk.idx")
    index = SegDiffIndex.build(
        walk_series, epsilon=0.2, window=8 * HOUR,
        backend="sqlite", path=path,
    )
    stats = index.stats()
    results = index.search_drops(HOUR, -2.0)
    index.close()
    return path, stats, results


class TestOpen:
    def test_search_matches_original(self, built_path):
        path, _stats, expected = built_path
        with SegDiffIndex.open(path) as reopened:
            assert reopened.search_drops(HOUR, -2.0) == expected

    def test_parameters_recovered(self, built_path):
        path, stats, _results = built_path
        with SegDiffIndex.open(path) as reopened:
            assert reopened.epsilon == 0.2
            assert reopened.window == 8 * HOUR
            re_stats = reopened.stats()
            assert re_stats.n_observations == stats.n_observations
            assert re_stats.n_segments == stats.n_segments
            assert re_stats.store_counts == stats.store_counts

    def test_approximation_recovered(self, built_path, walk_series):
        path, _stats, _results = built_path
        with SegDiffIndex.open(path) as reopened:
            f = reopened.approximation()
            import numpy as np

            errors = np.abs(f(walk_series.times) - walk_series.values)
            assert errors.max() <= 0.1 + 1e-9  # eps/2

    def test_reopened_index_is_sealed(self, built_path):
        path, _stats, _results = built_path
        with SegDiffIndex.open(path) as reopened:
            with pytest.raises(StorageError):
                reopened.append(1e12, 0.0)

    def test_topk_works_after_reopen(self, built_path, walk_series):
        path, _stats, _results = built_path
        with SegDiffIndex.open(path) as reopened:
            hits = reopened.search_deepest_drops(2, HOUR)
            exact = reopened.search_deepest_drops(2, HOUR, data=walk_series)
            assert len(hits) == 2
            assert hits[0].pair == exact[0].pair or hits[0].witness.dv == (
                pytest.approx(exact[0].witness.dv, abs=0.2 + 1e-6)
            )

    def test_open_unfinalized_file_rejected(self, tmp_path):
        path = str(tmp_path / "empty.idx")
        store = SqliteFeatureStore(path)
        store.close()
        with pytest.raises(StorageError, match="metadata"):
            SegDiffIndex.open(path)

    def test_open_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.idx"
        path.write_text("hello world")
        with pytest.raises(StorageError):
            SegDiffIndex.open(str(path))


class TestStoreSegmentApi:
    @pytest.mark.parametrize("store_cls", [MemoryFeatureStore, SqliteFeatureStore])
    def test_segments_round_trip(self, store_cls):
        from repro.types import DataSegment

        with store_cls() as store:
            segs = [
                DataSegment(0.0, 1.0, 5.0, 2.0),
                DataSegment(5.0, 2.0, 9.0, -1.0),
            ]
            for seg in segs:
                store.add_segment(seg)
            assert store.load_segments() == segs

    @pytest.mark.parametrize("store_cls", [MemoryFeatureStore, SqliteFeatureStore])
    def test_meta_round_trip(self, store_cls):
        with store_cls() as store:
            assert store.get_meta("epsilon") is None
            store.set_meta("epsilon", 0.25)
            store.set_meta("epsilon", 0.5)  # overwrite
            assert store.get_meta("epsilon") == 0.5

    def test_segments_excluded_from_feature_size(self, walk_series, tmp_path):
        """Side tables must not pollute the paper's size accounting."""
        path = str(tmp_path / "x.idx")
        index = SegDiffIndex.build(
            walk_series, 0.2, 8 * HOUR, backend="sqlite", path=path
        )
        feature_bytes = index.store.feature_bytes()
        # count segment-table bytes via dbstat directly
        seg_bytes = index.store._conn.execute(
            "SELECT SUM(pgsize) FROM dbstat WHERE name = 'segments'"
        ).fetchone()[0]
        assert seg_bytes and seg_bytes > 0
        total_db = index.store._conn.execute(
            "SELECT SUM(pgsize) FROM dbstat"
        ).fetchone()[0]
        assert feature_bytes < total_db
        index.close()

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def csv_path(tmp_path):
    path = str(tmp_path / "data.csv")
    assert main(["generate", "--days", "2", "--seed", "3", "--out", path]) == 0
    return path


@pytest.fixture
def index_path(tmp_path, csv_path):
    smooth = str(tmp_path / "smooth.csv")
    assert main(["smooth", csv_path, "--out", smooth]) == 0
    idx = str(tmp_path / "cad.idx")
    assert (
        main(
            ["build", smooth, "--epsilon", "0.2", "--window-hours", "8",
             "--index", idx]
        )
        == 0
    )
    return idx


class TestGenerate:
    def test_writes_csv(self, csv_path):
        from repro.datagen import load_series_csv

        series = load_series_csv(csv_path)
        assert len(series) == 2 * 288

    def test_output_message(self, capsys, tmp_path):
        path = str(tmp_path / "x.csv")
        main(["generate", "--days", "1", "--out", path])
        out = capsys.readouterr().out
        assert "288 observations" in out


class TestBuildAndSearch:
    def test_drop_search(self, index_path, capsys):
        assert main(["search", index_path, "--drop", "-3"]) == 0
        out = capsys.readouterr().out
        assert "matching periods" in out

    def test_jump_search(self, index_path, capsys):
        assert main(["search", index_path, "--jump", "2"]) == 0
        assert "matching periods" in capsys.readouterr().out

    def test_search_with_refinement(self, index_path, tmp_path, capsys, csv_path):
        smooth = str(tmp_path / "smooth.csv")
        assert (
            main(
                ["search", index_path, "--drop", "-3", "--data", smooth,
                 "--limit", "3"]
            )
            == 0
        )

    def test_requires_exactly_one_threshold(self, index_path, capsys):
        assert main(["search", index_path]) == 2
        assert main(["search", index_path, "--drop", "-3", "--jump", "3"]) == 2
        assert (
            main(["search", index_path, "--drop", "-3", "--deepest", "5"]) == 2
        )

    def test_deepest_search(self, index_path, capsys):
        assert main(["search", index_path, "--deepest", "3"]) == 0
        out = capsys.readouterr().out
        assert "deepest drops" in out

    def test_deepest_search_with_data(self, index_path, tmp_path, capsys):
        smooth = str(tmp_path / "smooth.csv")
        assert (
            main(["search", index_path, "--deepest", "2", "--data", smooth])
            == 0
        )

    def test_auto_mode(self, index_path):
        assert main(["search", index_path, "--drop", "-3", "--mode", "auto"]) == 0

    def test_summary_output(self, index_path, tmp_path, capsys):
        smooth = str(tmp_path / "smooth.csv")
        assert (
            main(["search", index_path, "--drop", "-3", "--data", smooth,
                  "--summary"])
            == 0
        )
        out = capsys.readouterr().out
        assert "witnessed events" in out

    def test_scan_mode(self, index_path):
        assert main(["search", index_path, "--drop", "-3", "--mode", "scan"]) == 0

    def test_stats(self, index_path, capsys):
        assert main(["stats", index_path]) == 0
        out = capsys.readouterr().out
        assert "epsilon:  0.2" in out
        assert "rows:" in out

    def test_stats_metrics_table(self, index_path, capsys):
        assert main(["stats", index_path, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "epsilon:  0.2" in out
        assert "repro_store_rows_written_total" in out

    def test_stats_metrics_only(self, capsys):
        assert main(["stats", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "repro_segmenter_segments_total" in out

    def test_stats_metrics_jsonl_validates(self, capsys):
        import json
        import os

        from repro.obs.export import validate_jsonl

        assert main(["stats", "--metrics", "--metrics-format", "jsonl"]) == 0
        out = capsys.readouterr().out
        schema_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks", "metrics.schema.json",
        )
        with open(schema_path) as fh:
            schema = json.load(fh)
        assert validate_jsonl(out.splitlines(), schema) > 0

    def test_stats_metrics_prometheus(self, capsys):
        assert main(
            ["stats", "--metrics", "--metrics-format", "prometheus"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_queries_total counter" in out

    def test_stats_without_index_or_metrics_errors(self, capsys):
        assert main(["stats"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_search_trace_prints_span_tree(self, index_path, capsys):
        from repro.obs import set_tracing_enabled

        try:
            assert main(
                ["search", index_path, "--drop", "-3", "--trace"]
            ) == 0
        finally:
            set_tracing_enabled(False)
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "query.search" in out
        assert "op.point_range" in out

    def test_verbose_flag_configures_logging(self, index_path):
        assert main(["--verbose", "search", index_path, "--drop", "-3"]) == 0

    def test_search_garbage_index_fails_cleanly(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.idx"
        bogus.write_text("not a database")
        assert main(["search", str(bogus), "--drop", "-3"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_meta_fails_cleanly(self, tmp_path, capsys):
        import sqlite3

        path = str(tmp_path / "empty.sqlite")
        sqlite3.connect(path).close()
        assert main(["search", path, "--drop", "-3"]) == 1


class TestSmoothing:
    def test_smooth_roundtrip(self, tmp_path, csv_path):
        out = str(tmp_path / "s.csv")
        assert main(["smooth", csv_path, "--out", out]) == 0
        from repro.datagen import load_series_csv

        a = load_series_csv(csv_path)
        b = load_series_csv(out)
        assert len(a) == len(b)


class TestFsck:
    def test_clean_sqlite_index(self, index_path, capsys):
        assert main(["fsck", index_path]) == 0
        assert "ok" in capsys.readouterr().out

    def test_clean_minidb(self, tmp_path, capsys):
        from repro.storage.minidb import MiniDatabase

        path = str(tmp_path / "t.mdb")
        with MiniDatabase(path) as db:
            t = db.create_table("t", 2)
            for i in range(100):
                t.insert((float(i), 0.0))
        assert main(["fsck", path]) == 0
        assert "(minidb): ok" in capsys.readouterr().out

    def test_corrupted_minidb_reported(self, tmp_path, capsys):
        from repro.storage.minidb import PAGE_SIZE, MiniDatabase

        path = str(tmp_path / "t.mdb")
        with MiniDatabase(path) as db:
            t = db.create_table("t", 2)
            for i in range(100):
                t.insert((float(i), 0.0))
        with open(path, "r+b") as fh:
            fh.seek(PAGE_SIZE + 17)
            fh.write(b"\xff")
        assert main(["fsck", path]) == 1
        out = capsys.readouterr().out
        assert "problem" in out and "checksum" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["fsck", str(tmp_path / "nope.mdb")]) == 2
        assert "error:" in capsys.readouterr().err


class TestBuildMetricsOut:
    def test_build_writes_validated_metrics_jsonl(
        self, tmp_path, csv_path, capsys
    ):
        import json
        import os

        from repro.obs.export import validate_jsonl

        idx = str(tmp_path / "m.idx")
        out = str(tmp_path / "metrics.jsonl")
        assert (
            main(["build", csv_path, "--index", idx, "--metrics-out", out])
            == 0
        )
        assert "metric series" in capsys.readouterr().out
        schema_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks", "metrics.schema.json",
        )
        with open(schema_path) as fh:
            schema = json.load(fh)
        with open(out) as fh:
            lines = fh.read().splitlines()
        assert validate_jsonl(lines, schema) == len(lines)
        names = {json.loads(line)["name"] for line in lines}
        assert "repro_store_rows_written_total" in names
        assert "repro_build_episode_seconds" in names


class TestBuildResume:
    def test_build_with_checkpoints(self, tmp_path, csv_path, capsys):
        idx = str(tmp_path / "ck.idx")
        assert (
            main(["build", csv_path, "--index", idx,
                  "--checkpoint-every", "100"])
            == 0
        )
        assert "built" in capsys.readouterr().out
        assert main(["fsck", idx]) == 0

    def test_resume_interrupted_build(self, tmp_path, csv_path, capsys):
        from repro.core.index import SegDiffIndex
        from repro.datagen import load_series_csv
        from repro.storage.sqlite_store import SqliteFeatureStore

        series = load_series_csv(csv_path)
        idx = str(tmp_path / "part.idx")
        # interrupt a build mid-stream (checkpoint, then "crash")
        partial = SegDiffIndex(0.2, 8 * 3600.0, SqliteFeatureStore(idx))
        for t, v in zip(series.times[:200], series.values[:200]):
            partial.append(float(t), float(v))
        partial.checkpoint()
        partial.store._conn.close()

        assert (
            main(["build", csv_path, "--index", idx, "--resume"]) == 0
        )
        assert "built" in capsys.readouterr().out
        # the resumed index equals a from-scratch build
        ref_idx = str(tmp_path / "ref.idx")
        assert main(["build", csv_path, "--index", ref_idx]) == 0
        capsys.readouterr()
        resumed = SegDiffIndex.open(idx)
        ref = SegDiffIndex.open(ref_idx)
        try:
            assert set(resumed.search_drops(3600.0, -3.0)) == set(
                ref.search_drops(3600.0, -3.0)
            )
        finally:
            resumed.close()
            ref.close()

    def test_resume_ignores_divergent_flags(self, tmp_path, csv_path, capsys):
        from repro.core.index import SegDiffIndex
        from repro.datagen import load_series_csv
        from repro.storage.sqlite_store import SqliteFeatureStore

        series = load_series_csv(csv_path)
        idx = str(tmp_path / "p.idx")
        partial = SegDiffIndex(0.2, 8 * 3600.0, SqliteFeatureStore(idx))
        for t, v in zip(series.times[:100], series.values[:100]):
            partial.append(float(t), float(v))
        partial.checkpoint()
        partial.store._conn.close()

        assert (
            main(["build", csv_path, "--index", idx, "--resume",
                  "--epsilon", "0.9"])
            == 0
        )
        assert "flags ignored" in capsys.readouterr().err
        reopened = SegDiffIndex.open(idx)
        try:
            assert reopened.epsilon == 0.2
        finally:
            reopened.close()

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def csv_path(tmp_path):
    path = str(tmp_path / "data.csv")
    assert main(["generate", "--days", "2", "--seed", "3", "--out", path]) == 0
    return path


@pytest.fixture
def index_path(tmp_path, csv_path):
    smooth = str(tmp_path / "smooth.csv")
    assert main(["smooth", csv_path, "--out", smooth]) == 0
    idx = str(tmp_path / "cad.idx")
    assert (
        main(
            ["build", smooth, "--epsilon", "0.2", "--window-hours", "8",
             "--index", idx]
        )
        == 0
    )
    return idx


class TestGenerate:
    def test_writes_csv(self, csv_path):
        from repro.datagen import load_series_csv

        series = load_series_csv(csv_path)
        assert len(series) == 2 * 288

    def test_output_message(self, capsys, tmp_path):
        path = str(tmp_path / "x.csv")
        main(["generate", "--days", "1", "--out", path])
        out = capsys.readouterr().out
        assert "288 observations" in out


class TestBuildAndSearch:
    def test_drop_search(self, index_path, capsys):
        assert main(["search", index_path, "--drop", "-3"]) == 0
        out = capsys.readouterr().out
        assert "matching periods" in out

    def test_jump_search(self, index_path, capsys):
        assert main(["search", index_path, "--jump", "2"]) == 0
        assert "matching periods" in capsys.readouterr().out

    def test_search_with_refinement(self, index_path, tmp_path, capsys, csv_path):
        smooth = str(tmp_path / "smooth.csv")
        assert (
            main(
                ["search", index_path, "--drop", "-3", "--data", smooth,
                 "--limit", "3"]
            )
            == 0
        )

    def test_requires_exactly_one_threshold(self, index_path, capsys):
        assert main(["search", index_path]) == 2
        assert main(["search", index_path, "--drop", "-3", "--jump", "3"]) == 2
        assert (
            main(["search", index_path, "--drop", "-3", "--deepest", "5"]) == 2
        )

    def test_deepest_search(self, index_path, capsys):
        assert main(["search", index_path, "--deepest", "3"]) == 0
        out = capsys.readouterr().out
        assert "deepest drops" in out

    def test_deepest_search_with_data(self, index_path, tmp_path, capsys):
        smooth = str(tmp_path / "smooth.csv")
        assert (
            main(["search", index_path, "--deepest", "2", "--data", smooth])
            == 0
        )

    def test_auto_mode(self, index_path):
        assert main(["search", index_path, "--drop", "-3", "--mode", "auto"]) == 0

    def test_summary_output(self, index_path, tmp_path, capsys):
        smooth = str(tmp_path / "smooth.csv")
        assert (
            main(["search", index_path, "--drop", "-3", "--data", smooth,
                  "--summary"])
            == 0
        )
        out = capsys.readouterr().out
        assert "witnessed events" in out

    def test_scan_mode(self, index_path):
        assert main(["search", index_path, "--drop", "-3", "--mode", "scan"]) == 0

    def test_stats(self, index_path, capsys):
        assert main(["stats", index_path]) == 0
        out = capsys.readouterr().out
        assert "epsilon:  0.2" in out
        assert "rows:" in out

    def test_search_garbage_index_fails_cleanly(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.idx"
        bogus.write_text("not a database")
        assert main(["search", str(bogus), "--drop", "-3"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_meta_fails_cleanly(self, tmp_path, capsys):
        import sqlite3

        path = str(tmp_path / "empty.sqlite")
        sqlite3.connect(path).close()
        assert main(["search", path, "--drop", "-3"]) == 1


class TestSmoothing:
    def test_smooth_roundtrip(self, tmp_path, csv_path):
        out = str(tmp_path / "s.csv")
        assert main(["smooth", csv_path, "--out", out]) == 0
        from repro.datagen import load_series_csv

        a = load_series_csv(csv_path)
        b = load_series_csv(out)
        assert len(a) == len(b)

"""Tests for the SegDiffIndex API."""

import numpy as np
import pytest

from repro.core.index import SegDiffIndex
from repro.datagen import piecewise_series
from repro.errors import InvalidParameterError, QueryError, StorageError

HOUR = 3600.0


@pytest.fixture
def drop_series():
    """Flat at 10, drops to 4 in 10 minutes, flat, recovers."""
    return piecewise_series(
        [0.0, 2 * HOUR, 2 * HOUR + 600.0, 4 * HOUR, 5 * HOUR],
        [10.0, 10.0, 4.0, 4.0, 12.0],
        dt=300.0,
    )


class TestBuild:
    def test_build_memory(self, drop_series):
        idx = SegDiffIndex.build(drop_series, epsilon=0.1, window=8 * HOUR)
        assert idx.stats().n_observations == len(drop_series)
        assert idx.stats().n_segments >= 4

    def test_build_sqlite(self, drop_series, tmp_path):
        idx = SegDiffIndex.build(
            drop_series, 0.1, 8 * HOUR,
            backend="sqlite", path=str(tmp_path / "ix.sqlite"),
        )
        try:
            assert idx.search_drops(HOUR, -3.0)
        finally:
            idx.close()

    def test_unknown_backend_rejected(self, drop_series):
        with pytest.raises(InvalidParameterError):
            SegDiffIndex.build(drop_series, 0.1, HOUR, backend="csv")

    def test_streaming_matches_batch(self, drop_series):
        batch = SegDiffIndex.build(drop_series, 0.1, 8 * HOUR)
        stream = SegDiffIndex(0.1, 8 * HOUR)
        for t, v in zip(drop_series.times, drop_series.values):
            stream.append(float(t), float(v))
        stream.finalize()
        q = (HOUR, -3.0)
        assert stream.search_drops(*q) == batch.search_drops(*q)
        assert stream.stats().n_segments == batch.stats().n_segments

    def test_append_after_finalize_rejected(self, drop_series):
        idx = SegDiffIndex.build(drop_series, 0.1, HOUR)
        with pytest.raises(StorageError):
            idx.append(1e9, 0.0)

    def test_checkpoint_makes_searchable_midstream(self, drop_series):
        idx = SegDiffIndex(0.1, 8 * HOUR)
        for t, v in zip(drop_series.times, drop_series.values):
            idx.append(float(t), float(v))
        idx.checkpoint()
        hits = idx.search_drops(HOUR, -3.0)
        assert hits  # drop happened early; visible before finalize
        idx.finalize()
        assert len(idx.search_drops(HOUR, -3.0)) >= len(hits)


class TestSearch:
    def test_finds_the_drop(self, drop_series):
        idx = SegDiffIndex.build(drop_series, 0.1, 8 * HOUR)
        hits = idx.search_drops(HOUR, -3.0)
        assert hits
        # the drop ends at 2h+600s; some hit must cover that moment
        assert any(p.t_b <= 2 * HOUR + 600.0 <= p.t_a for p in hits)

    def test_finds_the_jump(self, drop_series):
        idx = SegDiffIndex.build(drop_series, 0.1, 8 * HOUR)
        hits = idx.search_jumps(2 * HOUR, 5.0)
        assert hits
        assert any(p.t_b <= 5 * HOUR <= p.t_a for p in hits)

    def test_no_hits_for_impossible_drop(self, drop_series):
        idx = SegDiffIndex.build(drop_series, 0.1, 8 * HOUR)
        assert idx.search_drops(HOUR, -30.0) == []

    def test_t_beyond_window_rejected(self, drop_series):
        idx = SegDiffIndex.build(drop_series, 0.1, window=HOUR)
        with pytest.raises(QueryError):
            idx.search_drops(2 * HOUR, -3.0)

    def test_invalid_thresholds_rejected(self, drop_series):
        idx = SegDiffIndex.build(drop_series, 0.1, 8 * HOUR)
        with pytest.raises(InvalidParameterError):
            idx.search_drops(HOUR, 3.0)
        with pytest.raises(InvalidParameterError):
            idx.search_jumps(HOUR, -3.0)

    def test_scan_equals_index_mode(self, drop_series):
        idx = SegDiffIndex.build(drop_series, 0.1, 8 * HOUR)
        assert idx.search_drops(HOUR, -3.0, mode="scan") == idx.search_drops(
            HOUR, -3.0, mode="index"
        )

    def test_refined_search_ranks_by_severity(self, drop_series):
        idx = SegDiffIndex.build(drop_series, 0.1, 8 * HOUR)
        hits = idx.search_drops_refined(HOUR, -3.0, drop_series)
        assert hits
        sevs = [h.severity for h in hits]
        assert sevs == sorted(sevs, reverse=True)
        assert hits[0].witness.dv <= -3.0

    def test_verified_only_removes_tolerance_fps(self, drop_series):
        idx = SegDiffIndex.build(drop_series, epsilon=1.0, window=8 * HOUR)
        all_hits = idx.search_drops_refined(HOUR, -5.9, drop_series)
        strict = idx.search_drops_refined(
            HOUR, -5.9, drop_series, verified_only=True
        )
        assert len(strict) <= len(all_hits)
        for h in strict:
            assert h.witness.dv <= -5.9


class TestIntrospection:
    def test_stats_fields(self, drop_series):
        idx = SegDiffIndex.build(drop_series, 0.1, 8 * HOUR)
        st = idx.stats()
        assert st.epsilon == 0.1
        assert st.window == 8 * HOUR
        assert st.compression_rate == pytest.approx(
            st.n_observations / st.n_segments
        )
        assert st.disk_bytes == st.feature_bytes + st.index_bytes

    def test_approximation_respects_tolerance(self, drop_series):
        eps = 0.5
        idx = SegDiffIndex.build(drop_series, eps, 8 * HOUR)
        f = idx.approximation()
        errors = np.abs(f(drop_series.times) - drop_series.values)
        assert errors.max() <= eps / 2.0 + 1e-9

    def test_segments_copy_isolated(self, drop_series):
        idx = SegDiffIndex.build(drop_series, 0.1, 8 * HOUR)
        segs = idx.segments
        segs.clear()
        assert idx.segments  # internal list untouched

    def test_context_manager_closes(self, drop_series):
        with SegDiffIndex.build(drop_series, 0.1, 8 * HOUR) as idx:
            assert idx.search_drops(HOUR, -3.0)
        with pytest.raises(StorageError):
            idx.search_drops(HOUR, -3.0)

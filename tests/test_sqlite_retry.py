"""Tests for SqliteFeatureStore's lock-contention hardening.

Transient ``database is locked`` / ``database is busy`` errors must be
retried with backoff and only then surface as ``StorageError``;
non-transient OperationalErrors must not be retried at all.
"""

import sqlite3

import pytest

from repro.core.corners import collect_features
from repro.core.parallelogram import Parallelogram
from repro.errors import StorageError
from repro.storage import sqlite_store
from repro.storage.sqlite_store import SqliteFeatureStore


@pytest.fixture(autouse=True)
def no_real_sleep(monkeypatch):
    """Retries must not slow the test suite down."""
    sleeps = []
    monkeypatch.setattr(sqlite_store.time, "sleep", sleeps.append)
    return sleeps


class Flaky:
    """Callable failing ``n`` times with the given error, then returning."""

    def __init__(self, n, message="database is locked", result="ok"):
        self.remaining = n
        self.message = message
        self.result = result
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise sqlite3.OperationalError(self.message)
        return self.result


class TestWithRetry:
    def test_transient_error_retried_until_success(self, no_real_sleep):
        store = SqliteFeatureStore()
        try:
            fn = Flaky(3)
            assert store._with_retry(fn) == "ok"
            assert fn.calls == 4
            assert len(no_real_sleep) == 3
        finally:
            store.close()

    def test_backoff_is_exponential(self, no_real_sleep):
        store = SqliteFeatureStore()
        try:
            store._with_retry(Flaky(3))
            assert no_real_sleep == sorted(no_real_sleep)
            assert no_real_sleep[1] == pytest.approx(no_real_sleep[0] * 2)
        finally:
            store.close()

    def test_exhausted_retries_raise_storage_error(self, no_real_sleep):
        store = SqliteFeatureStore(max_retries=3)
        try:
            fn = Flaky(99)
            with pytest.raises(StorageError, match="3 attempt"):
                store._with_retry(fn)
            assert fn.calls == 3
        finally:
            store.close()

    def test_busy_message_also_transient(self, no_real_sleep):
        store = SqliteFeatureStore()
        try:
            assert store._with_retry(Flaky(1, "database is busy")) == "ok"
        finally:
            store.close()

    def test_non_transient_error_not_retried(self, no_real_sleep):
        store = SqliteFeatureStore()
        try:
            fn = Flaky(99, "no such table: nope")
            with pytest.raises(StorageError, match="no such table"):
                store._with_retry(fn)
            assert fn.calls == 1
            assert no_real_sleep == []
        finally:
            store.close()


class TestConnectionConfig:
    def test_busy_timeout_pragma_applied(self):
        store = SqliteFeatureStore(busy_timeout=2.5)
        try:
            (ms,) = store._conn.execute("PRAGMA busy_timeout").fetchone()
            assert ms == 2500
        finally:
            store.close()

    def test_write_path_recovers_from_contention(self, tmp_path):
        """End to end: a flush hitting a locked database succeeds once the
        lock clears."""

        class ContendedConn:
            """Delegates to a real connection; the first few executemany
            calls see a locked database."""

            def __init__(self, conn, failures):
                self._conn = conn
                self._failures = failures

            def executemany(self, sql, rows):
                if self._failures > 0:
                    self._failures -= 1
                    raise sqlite3.OperationalError("database is locked")
                return self._conn.executemany(sql, rows)

            def __getattr__(self, name):
                return getattr(self._conn, name)

        store = SqliteFeatureStore(str(tmp_path / "s.sqlite"))
        try:
            from repro.types import DataSegment

            cd = DataSegment(0.0, 0.0, 10.0, 8.0)
            ab = DataSegment(10.0, 8.0, 20.0, -5.0)
            fs = collect_features(
                Parallelogram.from_segments(cd, ab), epsilon=0.1
            )
            store.add(fs)
            store._conn = ContendedConn(store._conn, failures=2)
            store.finalize()  # flush + index build: must survive the lock
            assert store.counts().total > 0
        finally:
            store.close()

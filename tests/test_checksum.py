"""Tests for the Merkle-style checksum trees (repro.storage.checksum).

The anti-entropy contract: two row sets differ in k rows out of n →
``diff_trees`` localizes the damage to exactly the k leaves holding
those rows, reading O(k·log n) checksum ranges instead of n rows.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage import checksum as cks
from repro.storage.memory_store import MemoryFeatureStore
from repro.storage.sqlite_store import SqliteFeatureStore


def rows_of(n, width=6, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, width))


class TestBuildTree:
    def test_leaf_count(self):
        tree = cks.build_tree(rows_of(130), "drop_points", leaf_size=16)
        assert tree.n_leaves == math.ceil(130 / 16)
        assert tree.n_rows == 130

    def test_levels_halve_up_to_root(self):
        tree = cks.build_tree(rows_of(200), "drop_points", leaf_size=8)
        sizes = [len(level) for level in tree.levels]
        assert sizes[0] == tree.n_leaves
        for below, above in zip(sizes, sizes[1:]):
            assert above == math.ceil(below / 2)
        assert sizes[-1] == 1

    def test_empty_table_has_one_leaf(self):
        tree = cks.build_tree(np.empty((0, 6)), "drop_points")
        assert tree.n_leaves == 1
        assert tree.root == tree.levels[0][0]

    def test_deterministic(self):
        rows = rows_of(97)
        a = cks.build_tree(rows, "drop_points", leaf_size=10)
        b = cks.build_tree(rows.copy(), "drop_points", leaf_size=10)
        assert a.root == b.root
        assert a.levels == b.levels

    def test_leaf_of_row_matches_leaf_range(self):
        tree = cks.build_tree(rows_of(100), "drop_points", leaf_size=7)
        for row in (0, 6, 7, 50, 99):
            leaf = tree.leaf_of_row(row)
            start, stop = tree.leaf_range(leaf)
            assert start <= row < stop


class TestDiffTrees:
    def test_identical_trees_cost_one_comparison(self):
        rows = rows_of(500)
        a = cks.build_tree(rows, "drop_points", leaf_size=16)
        b = cks.build_tree(rows.copy(), "drop_points", leaf_size=16)
        ranges, checked = cks.diff_trees(a, b)
        assert ranges == []
        assert checked == 1  # root comparison settles it

    def test_single_mutation_localized_to_its_leaf(self):
        rows = rows_of(512)
        bad = rows.copy()
        bad[300, 2] += 1.0
        a = cks.build_tree(rows, "drop_points", leaf_size=16)
        b = cks.build_tree(bad, "drop_points", leaf_size=16)
        ranges, checked = cks.diff_trees(a, b)
        leaf = a.leaf_of_row(300)
        assert ranges == [a.leaf_range(leaf)]
        # descent cost is the tree height x branching, nowhere near 512
        assert checked <= 2 * len(a.levels) + 1

    def test_shape_mismatch_flags_whole_table(self):
        a = cks.build_tree(rows_of(100), "drop_points", leaf_size=16)
        b = cks.build_tree(rows_of(90), "drop_points", leaf_size=16)
        ranges, checked = cks.diff_trees(a, b)
        assert ranges == [(0, 100)]
        assert checked == 1

    def test_k_mutations_cost_k_log_n_not_n(self):
        n, k = 4096, 5
        rows = rows_of(n)
        bad = rows.copy()
        mutated = [7, 900, 1800, 2700, 4000]
        for row in mutated:
            bad[row, 0] += 1.0
        a = cks.build_tree(rows, "drop_points", leaf_size=16)
        b = cks.build_tree(bad, "drop_points", leaf_size=16)
        ranges, checked = cks.diff_trees(a, b)
        assert len(ranges) == k  # the rows land in k distinct leaves
        covered = [r for r in ranges for m in mutated if r[0] <= m < r[1]]
        assert len(covered) == k
        # O(k log n) with slack for shared upper levels; a full
        # row-by-row scan would be n = 4096
        assert checked <= 2 * k * len(a.levels)
        assert checked < n // 8

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=600),
        seed=st.integers(min_value=0, max_value=2**16),
        leaf=st.sampled_from([4, 16, 64]),
        data=st.data(),
    )
    def test_property_single_mutation_exact_leaf(self, n, seed, leaf, data):
        """Any single damaged row diverges in exactly its own leaf."""
        rows = rows_of(n, seed=seed)
        row = data.draw(st.integers(min_value=0, max_value=n - 1))
        bad = rows.copy()
        bad[row, data.draw(st.integers(0, rows.shape[1] - 1))] += 0.5
        a = cks.build_tree(rows, "drop_points", leaf_size=leaf)
        b = cks.build_tree(bad, "drop_points", leaf_size=leaf)
        ranges, _ = cks.diff_trees(a, b)
        assert ranges == [a.leaf_range(a.leaf_of_row(row))]


class TestPersistence:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_roundtrip(self, tmp_path, backend, walk_series):
        from repro.core.index import SegDiffIndex

        if backend == "sqlite":
            store = SqliteFeatureStore(str(tmp_path / "t.idx"))
        else:
            store = MemoryFeatureStore()
        index = SegDiffIndex(0.3, 4 * 3600.0, store)
        index.ingest(walk_series)
        index.finalize()
        sealed = index.seal_checksums(leaf_size=32)
        loaded = cks.load_trees(index.store)
        assert loaded is not None
        for table in cks.TABLES:
            assert loaded[table] == sealed[table]
        index.close()

    def test_absent_trees_load_as_none(self):
        store = MemoryFeatureStore()
        store.finalize()
        assert cks.load_trees(store) is None
        store.close()

    def test_truncated_tree_raises(self, walk_series):
        from repro.core.index import SegDiffIndex

        index = SegDiffIndex.build(walk_series, 0.3, 4 * 3600.0)
        index.seal_checksums()
        # damage the persisted tree: drop one interior node key
        assert index.store.get_meta("cks/drop_points/0/0") is not None
        index.store._meta.pop("cks/drop_points/0/0")
        with pytest.raises(StorageError, match="truncated"):
            cks.load_trees(index.store)
        index.close()


class TestStoreTrees:
    def test_covers_all_four_tables(self, walk_series):
        from repro.core.index import SegDiffIndex

        index = SegDiffIndex.build(walk_series, 0.3, 4 * 3600.0)
        trees = cks.store_trees(index.store)
        assert set(trees) == set(cks.TABLES)
        counts = index.store.counts()
        assert trees["drop_points"].n_rows == counts.drop_points
        assert trees["jump_lines"].n_rows == counts.jump_lines
        index.close()

    def test_detects_corrupted_read(self, walk_series):
        """A silently corrupted read diverges from the clean trees."""
        from repro.core.index import SegDiffIndex
        from repro.storage.faults import FaultyStoreWrapper, ReadFaultPolicy

        index = SegDiffIndex.build(walk_series, 0.3, 4 * 3600.0)
        clean = cks.store_trees(index.store)
        chaotic = FaultyStoreWrapper(
            index.store, ReadFaultPolicy(corrupt_at={1})
        )
        dirty = cks.store_trees(chaotic)
        ranges, _ = cks.diff_trees(clean["drop_points"], dirty["drop_points"])
        assert len(ranges) == 1  # one flipped row -> one leaf
        index.close()

"""Tests for the observability layer: metrics registry, tracing spans,
slow-query log, exporters, and the structured storage logs."""

import json
import logging
import os
import threading
import time

import pytest

from repro.obs import (
    REGISTRY,
    MetricsRegistry,
    clear_traces,
    enabled_ctx,
    iter_spans,
    parse_prometheus,
    recent_traces,
    render_span_tree,
    render_table,
    set_tracing_enabled,
    span,
    to_jsonl,
    to_prometheus,
    validate_jsonl,
    validate_schema,
)
from repro.obs import metrics as obs_metrics
from repro.obs import slowlog

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "metrics.schema.json",
)


@pytest.fixture
def registry():
    return MetricsRegistry()


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #


class TestRegistry:
    def test_counter_inc(self, registry):
        c = registry.counter("c_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_registration_is_idempotent(self, registry):
        a = registry.counter("x_total", labels={"k": "1"})
        b = registry.counter("x_total", labels={"k": "1"})
        assert a is b
        other = registry.counter("x_total", labels={"k": "2"})
        assert other is not a

    def test_type_conflict_raises(self, registry):
        registry.counter("y_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("y_total")

    def test_labels_are_distinct_series(self, registry):
        registry.counter("z_total", labels={"backend": "a"}).inc(1)
        registry.counter("z_total", labels={"backend": "b"}).inc(2)
        by_labels = {
            s.labels_dict().get("backend"): s.value
            for s in registry.collect()
        }
        assert by_labels == {"a": 1.0, "b": 2.0}

    def test_gauge_up_and_down(self, registry):
        g = registry.gauge("open")
        g.inc()
        g.inc()
        g.dec()
        assert g.value == 1.0
        g.set(7.5)
        assert g.value == 7.5

    def test_reset_zeroes_in_place(self, registry):
        c = registry.counter("r_total")
        c.inc(3)
        registry.reset()
        assert c.value == 0
        c.inc()  # the pre-reset handle is still live
        assert c.value == 1

    def test_disabled_metrics_do_not_record(self, registry):
        c = registry.counter("d_total")
        aon = registry.counter("a_total", always_on=True)
        obs_metrics.set_enabled(False)
        try:
            c.inc()
            aon.inc()
        finally:
            obs_metrics.set_enabled(True)
        assert c.value == 0
        assert aon.value == 1  # always-on ignores the switch

    def test_counter_under_threads(self, registry):
        c = registry.counter("t_total")
        n_threads, n_incs = 8, 10_000

        def worker():
            for _ in range(n_incs):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * n_incs


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 2.0, 5.0, 99.0):
            h.observe(v)
        # per-bucket (non-cumulative): le=1 gets {0.5, 1.0}, le=2 gets
        # {1.5, 2.0}, le=5 gets {5.0}, +Inf gets {99.0}
        assert h.per_bucket_counts() == [2, 2, 1, 1]
        sample = h.sample()
        assert [n for _le, n in sample.buckets] == [2, 4, 5, 6]
        assert sample.buckets[-1][0] == float("inf")
        assert sample.count == 6
        assert sample.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 99.0)

    def test_non_increasing_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("bad", buckets=(1.0, 1.0))

    def test_timer_records_elapsed(self, registry):
        h = registry.histogram("t_seconds", buckets=(0.0001, 10.0))
        with h.time():
            time.sleep(0.002)
        assert h.count == 1
        assert 0.001 < h.total < 10.0

    def test_timer_skips_work_when_disabled(self, registry):
        h = registry.histogram("off_seconds")
        obs_metrics.set_enabled(False)
        try:
            with h.time():
                pass
        finally:
            obs_metrics.set_enabled(True)
        assert h.count == 0


# ---------------------------------------------------------------------- #
# tracing
# ---------------------------------------------------------------------- #


class TestTracing:
    def setup_method(self):
        set_tracing_enabled(False)
        clear_traces()

    def test_disabled_by_default_records_nothing(self):
        with span("root"):
            pass
        assert recent_traces() == []

    def test_nesting_and_attributes(self):
        with enabled_ctx():
            with span("root") as r:
                r.set_attribute("k", "v")
                with span("child.a"):
                    with span("leaf"):
                        pass
                with span("child.b"):
                    pass
        roots = recent_traces()
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "root"
        assert root.attributes == {"k": "v"}
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert root.children[0].children[0].name == "leaf"
        assert [s.name for s in iter_spans(root)] == [
            "root", "child.a", "leaf", "child.b",
        ]

    def test_exception_recorded_and_reraised(self):
        with enabled_ctx():
            with pytest.raises(RuntimeError, match="boom"):
                with span("root"):
                    with span("inner"):
                        raise RuntimeError("boom")
        root = recent_traces()[0]
        assert root.error == "RuntimeError: boom"
        assert root.children[0].error == "RuntimeError: boom"
        assert root.duration >= root.children[0].duration

    def test_render_span_tree(self):
        with enabled_ctx():
            with span("query.search") as r:
                r.set_attribute("pairs", 3)
                with span("op.point_range"):
                    pass
        text = render_span_tree(recent_traces()[0])
        lines = text.splitlines()
        assert lines[0].startswith("query.search")
        assert "[pairs=3]" in lines[0]
        assert lines[1].startswith("  op.point_range")
        assert "ms" in lines[1]

    def test_trace_ring_buffer_is_bounded(self):
        with enabled_ctx():
            for i in range(100):
                with span(f"r{i}"):
                    pass
        roots = recent_traces()
        assert len(roots) == 64
        assert roots[-1].name == "r99"

    def test_query_span_children_cover_the_root(self):
        """A search trace's direct children must account for (almost)
        all of the root span's time — the leaf-sum acceptance check."""
        from repro.core.index import SegDiffIndex
        from repro.datagen import CADConfig, CADTransectGenerator

        series = CADTransectGenerator(CADConfig(days=6, n_sensors=1)).generate(0)
        index = SegDiffIndex.build(series, epsilon=0.2, window=8 * 3600.0)
        clear_traces()
        try:
            with enabled_ctx():
                index.search_drops(3600.0, -0.5)
        finally:
            index.close()
        roots = [r for r in recent_traces() if r.name == "query.search"]
        assert len(roots) == 1
        root = roots[0]
        names = [c.name for c in root.children]
        assert "query.plan" in names
        assert "op.point_range" in names
        assert "op.union_dedup" in names
        child_sum = sum(c.duration for c in root.children)
        assert child_sum <= root.duration + 1e-6
        assert child_sum >= 0.7 * root.duration


# ---------------------------------------------------------------------- #
# slow-query log
# ---------------------------------------------------------------------- #


class TestSlowQueryLog:
    def setup_method(self):
        slowlog.clear()

    def test_threshold_zero_logs_every_query(self, caplog):
        from repro.core.index import SegDiffIndex
        from repro.core.queries import DropQuery
        from repro.datagen import CADConfig, CADTransectGenerator
        from repro.engine.session import QuerySession

        series = CADTransectGenerator(CADConfig(days=2, n_sensors=1)).generate(0)
        index = SegDiffIndex.build(series, epsilon=0.2, window=8 * 3600.0)
        try:
            session = QuerySession(index.store, slow_query_threshold=0.0)
            with caplog.at_level(logging.WARNING, logger="repro.engine"):
                session.search(DropQuery(3600.0, -3.0))
        finally:
            index.close()
        records = slowlog.recent()
        assert len(records) == 1
        rec = records[0]
        assert rec.api == "search"
        assert rec.duration_s >= 0.0
        assert "point" in rec.plan or "Point" in rec.plan
        assert rec.operators and rec.operators[0]["operator"] == "point_range"
        assert any("slow query" in m for m in caplog.messages)
        d = rec.to_dict()
        assert d["api"] == "search" and "duration_ms" in d

    def test_no_threshold_means_no_log(self):
        from repro.core.index import SegDiffIndex
        from repro.datagen import CADConfig, CADTransectGenerator

        assert slowlog.default_threshold() is None
        series = CADTransectGenerator(CADConfig(days=1, n_sensors=1)).generate(0)
        index = SegDiffIndex.build(series, epsilon=0.2, window=8 * 3600.0)
        try:
            index.search_drops(3600.0, -3.0)
        finally:
            index.close()
        assert len(slowlog.recent()) == 0

    def test_default_threshold_fallback(self):
        from repro.core.index import SegDiffIndex
        from repro.datagen import CADConfig, CADTransectGenerator

        series = CADTransectGenerator(CADConfig(days=1, n_sensors=1)).generate(0)
        index = SegDiffIndex.build(series, epsilon=0.2, window=8 * 3600.0)
        slowlog.set_default_threshold(0.0)
        try:
            index.search_drops(3600.0, -3.0)
        finally:
            slowlog.set_default_threshold(None)
            index.close()
        assert len(slowlog.recent()) == 1

    def test_bounded_buffer(self):
        log = slowlog.SlowQueryLog(maxlen=4)
        for i in range(10):
            log.add(slowlog.SlowQueryRecord(
                api="search", backend="memory", duration_s=float(i),
                threshold_s=0.0, plan="p", n_pairs=0,
            ))
        assert len(log) == 4
        assert [r.duration_s for r in log.recent()] == [6.0, 7.0, 8.0, 9.0]
        assert len(log.recent(2)) == 2


# ---------------------------------------------------------------------- #
# exporters
# ---------------------------------------------------------------------- #


class TestExport:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests", labels={"backend": "m"}).inc(3)
        reg.gauge("open").set(2.0)
        h = reg.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
        h.observe(0.005)
        h.observe(0.5)
        return reg

    def test_prometheus_round_trip(self):
        reg = self._populated()
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed["req_total"] == {"backend=m": 3.0}
        assert parsed["open"] == {"": 2.0}
        assert parsed["lat_seconds_count"][""] == 2.0
        assert parsed["lat_seconds_sum"][""] == pytest.approx(0.505)
        buckets = parsed["lat_seconds_bucket"]
        assert buckets["le=0.01"] == 1.0
        assert buckets["le=1"] == 2.0
        assert buckets["le=+Inf"] == 2.0

    def test_jsonl_matches_checked_in_schema(self):
        with open(SCHEMA_PATH) as fh:
            schema = json.load(fh)
        reg = self._populated()
        n = validate_jsonl(to_jsonl(reg).splitlines(), schema)
        assert n == 3

    def test_global_registry_dump_matches_schema(self):
        with open(SCHEMA_PATH) as fh:
            schema = json.load(fh)
        text = to_jsonl(REGISTRY)
        n = validate_jsonl(text.splitlines(), schema)
        assert n == len(text.splitlines())

    def test_validate_schema_rejects_bad_records(self):
        with open(SCHEMA_PATH) as fh:
            schema = json.load(fh)
        validate_schema(
            {"name": "a", "type": "counter", "labels": {}, "value": 1.0},
            schema,
        )
        with pytest.raises(ValueError, match="missing required"):
            validate_schema({"name": "a", "type": "counter"}, schema)
        with pytest.raises(ValueError, match="enum"):
            validate_schema(
                {"name": "a", "type": "summary", "labels": {}}, schema
            )
        with pytest.raises(ValueError, match="unexpected key"):
            validate_schema(
                {"name": "a", "type": "gauge", "labels": {}, "bogus": 1},
                schema,
            )

    def test_render_table_lists_every_series(self):
        reg = self._populated()
        text = render_table(reg)
        assert "req_total" in text
        assert "backend=m" in text
        assert "lat_seconds" in text
        assert text.splitlines()[0].startswith("metric")


# ---------------------------------------------------------------------- #
# structured storage logs
# ---------------------------------------------------------------------- #


class TestStorageLogging:
    @staticmethod
    def _crashing_workload(path, opener):
        """Multi-transaction workload crashed mid-flight; a small page
        cache forces evictions through the WAL so committed frames are
        pending transfer at many crash points."""
        from repro.storage.minidb import MiniDatabase

        db = MiniDatabase(path, cache_pages=3, opener=opener)
        with db.transaction():
            t = db.create_table("events", 16)
            for i in range(50):
                t.insert(tuple(float(i * 10 + c) for c in range(16)))
            t.create_index("by_key", (0, 1))
        for batch in range(1, 4):
            with db.transaction():
                t = db.table("events")
                for i in range(batch * 50, (batch + 1) * 50):
                    t.insert_indexed(
                        tuple(float(i * 10 + c) for c in range(16))
                    )
        db.close()

    def test_wal_replay_emits_info_record(self, tmp_path, caplog):
        from repro.storage.faults import (
            FaultInjected,
            FaultInjector,
            FaultPolicy,
        )
        from repro.storage.minidb import MiniDatabase

        # crash the workload at every 7th write op; at least one crash
        # point must land between a WAL commit and its transfer, making
        # the subsequent reopen replay (and log) the committed frames
        inj = FaultInjector()
        self._crashing_workload(str(tmp_path / "count.mdb"), inj.open)
        inj.close_all()
        n_ops = inj.op_count
        saw_replay = False
        with caplog.at_level(logging.INFO, logger="repro.storage"):
            for k in range(5, n_ops, 7):
                path = str(tmp_path / f"w{k}.mdb")
                inj = FaultInjector(FaultPolicy(fail_at=k, mode="crash"))
                with pytest.raises(FaultInjected):
                    self._crashing_workload(path, inj.open)
                inj.close_all()
                MiniDatabase(path).close()
                if any(
                    "WAL replay" in r.message and r.name == "repro.storage"
                    for r in caplog.records
                ):
                    saw_replay = True
                    break
        assert saw_replay, "no crash point produced a logged WAL replay"

    def test_checksum_failure_emits_error_record(self, tmp_path, caplog):
        from repro.errors import CorruptionError
        from repro.storage.minidb import PAGE_SIZE, MiniDatabase

        path = str(tmp_path / "c.mdb")
        with MiniDatabase(path) as db:
            t = db.create_table("t", 4)
            for i in range(200):
                t.insert((float(i), 1.0, 2.0, 3.0))
        with open(path, "r+b") as fh:
            fh.seek(PAGE_SIZE + 100)
            byte = fh.read(1)[0]
            fh.seek(PAGE_SIZE + 100)
            fh.write(bytes([byte ^ 0x01]))
        db = MiniDatabase(path)
        try:
            with caplog.at_level(logging.ERROR, logger="repro.storage"):
                with pytest.raises(CorruptionError):
                    list(db.table("t").scan())
        finally:
            db.close()
        assert any(
            "checksum" in r.message.lower() and r.levelno == logging.ERROR
            for r in caplog.records
        )

    def test_checksum_failure_bumps_counter(self, tmp_path):
        from repro.errors import CorruptionError
        from repro.storage.minidb import PAGE_SIZE, MiniDatabase

        counter = REGISTRY.counter("repro_minidb_checksum_failures_total")
        before = counter.value
        path = str(tmp_path / "c2.mdb")
        with MiniDatabase(path) as db:
            t = db.create_table("t", 4)
            for i in range(200):
                t.insert((float(i), 1.0, 2.0, 3.0))
        with open(path, "r+b") as fh:
            fh.seek(PAGE_SIZE + 7)
            byte = fh.read(1)[0]
            fh.seek(PAGE_SIZE + 7)
            fh.write(bytes([byte ^ 0x01]))
        db = MiniDatabase(path)
        try:
            with pytest.raises(CorruptionError):
                list(db.table("t").scan())
        finally:
            db.close()
        assert counter.value > before


# ---------------------------------------------------------------------- #
# end-to-end: the pipeline actually feeds the registry
# ---------------------------------------------------------------------- #


class TestPipelineMetrics:
    def test_build_and_search_populate_registry(self):
        from repro.core.index import SegDiffIndex
        from repro.datagen import CADConfig, CADTransectGenerator

        segs = REGISTRY.counter("repro_segmenter_segments_total")
        pairs = REGISTRY.counter("repro_extractor_pairs_total")
        queries = REGISTRY.counter(
            "repro_engine_queries_total", labels={"api": "search"}
        )
        fetched = REGISTRY.counter(
            "repro_engine_rows_fetched_total",
            labels={"operator": "point_range"},
        )
        episode = REGISTRY.histogram("repro_build_episode_seconds")
        b_segs, b_pairs = segs.value, pairs.value
        b_queries, b_fetched = queries.value, fetched.value
        b_episodes = episode.count

        series = CADTransectGenerator(CADConfig(days=2, n_sensors=1)).generate(0)
        index = SegDiffIndex.build(series, epsilon=0.2, window=8 * 3600.0)
        try:
            found = index.search_drops(3600.0, -3.0)
        finally:
            index.close()
        assert segs.value > b_segs
        assert pairs.value > b_pairs
        assert queries.value == b_queries + 1
        assert fetched.value >= b_fetched + len(found)
        assert episode.count == b_episodes + 1

    def test_parallel_build_records_per_episode_timings(self, tmp_path):
        import numpy as np

        from repro.core.index import SegDiffIndex
        from repro.datagen import CADConfig, CADTransectGenerator, TimeSeries

        episode = REGISTRY.histogram("repro_build_episode_seconds")
        before = episode.count
        parts_t, parts_v = [], []
        offset = 0.0
        for k in range(3):
            chunk = CADTransectGenerator(
                CADConfig(days=1, n_sensors=1, seed=k)
            ).generate(0)
            t = np.asarray(chunk.times, dtype=float) + offset
            parts_t.append(t)
            parts_v.append(np.asarray(chunk.values, dtype=float))
            offset = float(t[-1]) + 86400.0
        series = TimeSeries(
            np.concatenate(parts_t), np.concatenate(parts_v)
        )
        index = SegDiffIndex.build(
            series, epsilon=0.2, window=3600.0,
            workers=2, max_gap=7200.0,
        )
        index.close()
        assert episode.count == before + 3  # one observation per episode

    def test_overhead_guard_counter_hot_path(self):
        """An inc() must stay cheap enough to be always-on: a million
        increments in well under a second on any CI box."""
        reg = MetricsRegistry()
        c = reg.counter("hot_total")
        t0 = time.perf_counter()
        for _ in range(1_000_000):
            c.inc()
        elapsed = time.perf_counter() - t0
        assert c.value == 1_000_000
        assert elapsed < 5.0  # ~0.2-0.4s typical; generous for slow CI

"""Equivalence tests for the batched/parallel index-build fast path.

The contract under test is strict: ``ingest_array`` /
``ingest_episodes_fast`` / ``ingest_parallel`` must be **bit-for-bit**
equivalent to the streaming :meth:`SegDiffIndex.append` reference path —
identical segments, identical stored feature rows in identical order,
identical :class:`ExtractionStats` — for every batch size and worker
count, on every backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.index import SegDiffIndex
from repro.datagen import TimeSeries
from repro.errors import InvalidParameterError, InvalidSeriesError
from repro.segmentation import SlidingWindowSegmenter

HOUR = 3600.0

TABLES = ("drop", "jump")


def make_walk(seed: int, n: int = 200, gaps: bool = False) -> TimeSeries:
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.uniform(60.0, 600.0, size=n))
    v = np.cumsum(rng.normal(0.0, 1.2, size=n))
    if gaps:
        # shove two long outages into the middle of the series
        t = t.copy()
        t[n // 3:] += 6 * HOUR
        t[2 * n // 3:] += 6 * HOUR
    return TimeSeries(t, v)


def all_rows(index):
    """Every stored feature row, as comparable float arrays."""
    out = {}
    for kind in TABLES:
        out[f"{kind}_points"] = np.asarray(
            index.store.scan_points(kind), dtype=float
        )
        out[f"{kind}_lines"] = np.asarray(
            index.store.scan_lines(kind), dtype=float
        )
    return out


def assert_identical(reference, candidate):
    assert reference.segments == candidate.segments
    ref_stats, cand_stats = reference.stats(), candidate.stats()
    assert ref_stats.n_observations == cand_stats.n_observations
    assert ref_stats.extraction == cand_stats.extraction
    ref_rows, cand_rows = all_rows(reference), all_rows(candidate)
    for table in ref_rows:
        assert ref_rows[table].shape == cand_rows[table].shape, table
        assert np.array_equal(ref_rows[table], cand_rows[table]), table


class TestBatchedEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        batch_size=st.integers(min_value=1, max_value=257),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_batch_size_matches_streaming(self, seed, batch_size):
        series = make_walk(seed, n=120)
        scalar = SegDiffIndex.build(series, 0.4, 2 * HOUR, batch_size=0)
        fast = SegDiffIndex.build(
            series, 0.4, 2 * HOUR, batch_size=batch_size
        )
        try:
            assert_identical(scalar, fast)
        finally:
            scalar.close()
            fast.close()

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        batch_size=st.integers(min_value=1, max_value=257),
    )
    @settings(max_examples=15, deadline=None)
    def test_episodes_match_streaming(self, seed, batch_size):
        series = make_walk(seed, n=120, gaps=True)
        scalar = SegDiffIndex.build(
            series, 0.4, 2 * HOUR, batch_size=0, max_gap=HOUR
        )
        fast = SegDiffIndex.build(
            series, 0.4, 2 * HOUR, batch_size=batch_size, max_gap=HOUR
        )
        try:
            assert_identical(scalar, fast)
        finally:
            scalar.close()
            fast.close()

    def test_no_self_pairs_variant(self):
        series = make_walk(3)
        scalar = SegDiffIndex.build(
            series, 0.4, 2 * HOUR, batch_size=0, emit_self_pairs=False
        )
        fast = SegDiffIndex.build(
            series, 0.4, 2 * HOUR, batch_size=37, emit_self_pairs=False
        )
        try:
            assert_identical(scalar, fast)
        finally:
            scalar.close()
            fast.close()

    @pytest.mark.parametrize("backend", ["sqlite", "minidb"])
    def test_file_backends_match_streaming(self, backend, tmp_path):
        series = make_walk(11, n=150, gaps=True)
        scalar = SegDiffIndex.build(
            series, 0.4, 2 * HOUR, backend=backend,
            path=str(tmp_path / "scalar.idx"), batch_size=0, max_gap=HOUR,
        )
        fast = SegDiffIndex.build(
            series, 0.4, 2 * HOUR, backend=backend,
            path=str(tmp_path / "fast.idx"), batch_size=64, max_gap=HOUR,
        )
        try:
            assert_identical(scalar, fast)
        finally:
            scalar.close()
            fast.close()


class TestParallelEquivalence:
    def test_workers_match_streaming(self):
        series = make_walk(5, n=240, gaps=True)
        scalar = SegDiffIndex.build(
            series, 0.4, 2 * HOUR, batch_size=0, max_gap=HOUR
        )
        par = SegDiffIndex.build(
            series, 0.4, 2 * HOUR, workers=2, max_gap=HOUR
        )
        try:
            assert_identical(scalar, par)
        finally:
            scalar.close()
            par.close()

    def test_single_episode_parallel_build(self):
        # no gaps: one episode, the pool path degenerates to in-process
        series = make_walk(6, n=100)
        scalar = SegDiffIndex.build(series, 0.4, 2 * HOUR, batch_size=0)
        par = SegDiffIndex.build(series, 0.4, 2 * HOUR, workers=4)
        try:
            assert_identical(scalar, par)
        finally:
            scalar.close()
            par.close()

    def test_parallel_minidb(self, tmp_path):
        series = make_walk(7, n=200, gaps=True)
        scalar = SegDiffIndex.build(
            series, 0.4, 2 * HOUR, backend="minidb",
            path=str(tmp_path / "s.idx"), batch_size=0, max_gap=HOUR,
        )
        par = SegDiffIndex.build(
            series, 0.4, 2 * HOUR, backend="minidb",
            path=str(tmp_path / "p.idx"), workers=3, max_gap=HOUR,
        )
        try:
            assert_identical(scalar, par)
            assert par.store.check() == []
        finally:
            scalar.close()
            par.close()

    def test_parallel_requires_fresh_index(self):
        series = make_walk(8, n=60)
        index = SegDiffIndex(0.4, 2 * HOUR)
        index.append(100.0, 1.0)
        with pytest.raises(InvalidParameterError):
            index.ingest_parallel(series, max_gap=HOUR, workers=2)

    def test_gap_counts_agree(self):
        series = make_walk(9, n=120, gaps=True)
        a = SegDiffIndex(0.4, 2 * HOUR)
        b = SegDiffIndex(0.4, 2 * HOUR)
        c = SegDiffIndex(0.4, 2 * HOUR)
        assert a.ingest_episodes(series, HOUR) == 2
        assert b.ingest_episodes_fast(series, max_gap=HOUR) == 2
        assert c.ingest_parallel(series, max_gap=HOUR, workers=2) == 2


class TestSegmenterBatchAPI:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_push_batch_matches_push(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 150))
        ts = np.cumsum(rng.uniform(0.5, 3.0, size=n))
        vs = np.cumsum(rng.normal(0.0, 1.0, size=n))
        scalar = SlidingWindowSegmenter(0.5)
        batched = SlidingWindowSegmenter(0.5)
        out_scalar = []
        for t, v in zip(ts, vs):
            out_scalar.extend(scalar.push(float(t), float(v)))
        out_scalar.extend(scalar.finish())
        out_batched = []
        i = 0
        while i < n:  # feed in random-sized chunks
            step = int(rng.integers(1, 32))
            out_batched.extend(batched.push_batch(ts[i:i + step],
                                                  vs[i:i + step]))
            i += step
        out_batched.extend(batched.finish())
        assert out_scalar == out_batched

    def test_push_batch_rejects_bad_input(self):
        seg = SlidingWindowSegmenter(0.5)
        with pytest.raises(InvalidSeriesError):
            seg.push_batch(np.array([[1.0]]), np.array([[1.0]]))
        with pytest.raises(InvalidSeriesError):
            seg.push_batch(np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(InvalidSeriesError):
            # non-increasing timestamps rejected before any consumption
            seg.push_batch(np.array([1.0, 1.0]), np.array([0.0, 0.0]))


class TestExplainCacheCounters:
    def test_minidb_explain_reports_pool_counters(self, tmp_path):
        series = make_walk(10, n=150)
        index = SegDiffIndex.build(
            series, 0.4, 2 * HOUR, backend="minidb",
            path=str(tmp_path / "m.idx"),
        )
        try:
            report = index.explain_report("drop", HOUR, -2.0)
            assert report.pages_read is not None and report.pages_read > 0
            assert report.cache_hits is not None
            assert report.cache_misses is not None
            assert report.cache_hits + report.cache_misses == report.pages_read
            assert "pool hits" in report.render()
        finally:
            index.close()

    def test_memory_explain_has_no_counters(self):
        series = make_walk(10, n=80)
        index = SegDiffIndex.build(series, 0.4, 2 * HOUR)
        try:
            report = index.explain_report("drop", HOUR, -2.0)
            assert report.pages_read is None
            assert report.cache_hits is None
            assert report.cache_misses is None
            assert "pool hits" not in report.render()
        finally:
            index.close()

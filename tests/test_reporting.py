"""Tests for result summaries."""

import pytest

from repro.core.reporting import render_summary, summarize_hits
from repro.core.results import SearchHit
from repro.errors import InvalidParameterError
from repro.types import Event, SegmentPair

HOUR = 3600.0
DAY = 86400.0


def hit(day: int, hour: float, depth: float, minutes: float) -> SearchHit:
    end = day * DAY + hour * HOUR
    start = end - minutes * 60.0
    return SearchHit(
        SegmentPair(start - 600, start, end - 300, end + 300),
        Event(start, end, -depth),
    )


@pytest.fixture
def hits():
    return [
        hit(0, 3.0, 4.0, 40.0),
        hit(0, 4.0, 3.2, 30.0),
        hit(1, 3.5, 6.0, 55.0),
        hit(2, 3.2, 3.0, 25.0),
        hit(2, 3.8, 5.0, 45.0),
        hit(2, 15.0, 3.5, 20.0),  # an afternoon outlier
        SearchHit(SegmentPair(0, 1, 2, 3), None),  # unwitnessed
    ]


class TestSummarize:
    def test_counts(self, hits):
        s = summarize_hits(hits)
        assert s.n_hits == 7
        assert s.n_witnessed == 6

    def test_per_day(self, hits):
        s = summarize_hits(hits)
        assert s.events_per_day == {0: 2, 1: 1, 2: 3}
        assert s.busiest_day == 2

    def test_peak_hour_is_early_morning(self, hits):
        s = summarize_hits(hits)
        assert s.peak_hour == 3
        assert s.events_per_hour_of_day[3] == 4

    def test_depth_stats(self, hits):
        s = summarize_hits(hits)
        assert s.deepest == 6.0
        q25, q50, q75 = s.depth_quantiles
        assert q25 <= q50 <= q75
        assert 3.0 <= q50 <= 6.0

    def test_duration_stats(self, hits):
        s = summarize_hits(hits)
        assert s.longest == 55.0 * 60.0

    def test_empty(self):
        s = summarize_hits([])
        assert s.n_hits == 0
        assert s.busiest_day == -1
        assert s.peak_hour == -1

    def test_all_unwitnessed(self):
        s = summarize_hits([SearchHit(SegmentPair(0, 1, 2, 3), None)])
        assert s.n_hits == 1
        assert s.n_witnessed == 0


class TestRender:
    def test_report_contents(self, hits):
        text = render_summary(summarize_hits(hits))
        assert "6 with witnessed events" in text
        assert "deepest 6.00" in text
        assert "peak hour: 03:00" in text
        assert "03h    4" in text

    def test_empty_report(self):
        text = render_summary(summarize_hits([]))
        assert "0 with witnessed events" in text

    def test_bar_width_validation(self, hits):
        with pytest.raises(InvalidParameterError):
            render_summary(summarize_hits(hits), bar_width=0)

    def test_histogram_covers_24_hours(self, hits):
        text = render_summary(summarize_hits(hits))
        for hour in range(24):
            assert f"{hour:02d}h" in text


class TestEndToEnd:
    def test_summary_of_real_search(self, cad_week):
        from repro.core.index import SegDiffIndex
        from repro.core.queries import DropQuery
        from repro.core.results import rank_hits

        index = SegDiffIndex.build(cad_week, 0.2, 8 * HOUR)
        pairs = index.search_drops(HOUR, -3.0)
        hits = rank_hits(pairs, cad_week, DropQuery(HOUR, -3.0))
        summary = summarize_hits(hits)
        assert summary.n_witnessed > 0
        # CAD events end in the early morning (onset 2-5 am + <=1 h drop)
        assert 0 <= summary.peak_hour <= 9
        index.close()

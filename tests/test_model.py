"""Tests for the Data Generating Model G (PiecewiseLinearSignal)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.datagen import PiecewiseLinearSignal, TimeSeries
from repro.errors import InvalidParameterError, InvalidSeriesError
from repro.types import DataSegment


def make_signal():
    return PiecewiseLinearSignal([0.0, 10.0, 20.0], [0.0, 10.0, 0.0])


class TestConstruction:
    def test_needs_two_breakpoints(self):
        with pytest.raises(InvalidSeriesError):
            PiecewiseLinearSignal([0.0], [1.0])

    def test_from_series_matches_samples(self):
        series = TimeSeries([0.0, 5.0, 7.0], [1.0, -1.0, 3.0])
        sig = PiecewiseLinearSignal.from_series(series)
        assert np.allclose(sig(series.times), series.values)

    def test_from_segments_contiguous(self):
        segs = [DataSegment(0, 0, 1, 5), DataSegment(1, 5, 3, 1)]
        sig = PiecewiseLinearSignal.from_segments(segs)
        assert sig(1.0) == 5.0
        assert sig(3.0) == 1.0

    def test_from_segments_gap_rejected(self):
        segs = [DataSegment(0, 0, 1, 5), DataSegment(2, 5, 3, 1)]
        with pytest.raises(InvalidSeriesError):
            PiecewiseLinearSignal.from_segments(segs)

    def test_from_segments_value_mismatch_rejected(self):
        segs = [DataSegment(0, 0, 1, 5), DataSegment(1, 4, 3, 1)]
        with pytest.raises(InvalidSeriesError):
            PiecewiseLinearSignal.from_segments(segs)

    def test_from_segments_empty_rejected(self):
        with pytest.raises(InvalidSeriesError):
            PiecewiseLinearSignal.from_segments([])


class TestEvaluation:
    def test_interpolates_linearly(self):
        sig = make_signal()
        assert sig(5.0) == 5.0
        assert sig(15.0) == 5.0

    def test_exact_at_breakpoints(self):
        sig = make_signal()
        assert sig(0.0) == 0.0
        assert sig(10.0) == 10.0
        assert sig(20.0) == 0.0

    def test_vectorized_evaluation(self):
        sig = make_signal()
        out = sig(np.array([0.0, 5.0, 10.0]))
        assert np.allclose(out, [0.0, 5.0, 10.0])

    def test_outside_domain_rejected(self):
        sig = make_signal()
        with pytest.raises(InvalidParameterError):
            sig(-0.1)
        with pytest.raises(InvalidParameterError):
            sig(20.1)

    def test_event_between(self):
        sig = make_signal()
        ev = sig.event_between(5.0, 15.0)
        assert ev.dt == 10.0
        assert ev.dv == 0.0
        ev2 = sig.event_between(10.0, 20.0)
        assert ev2.dv == -10.0

    def test_event_requires_order(self):
        with pytest.raises(InvalidParameterError):
            make_signal().event_between(15.0, 5.0)


class TestPieces:
    def test_pieces_roundtrip(self):
        sig = make_signal()
        pieces = list(sig.pieces())
        assert len(pieces) == 2
        assert pieces[0] == DataSegment(0.0, 0.0, 10.0, 10.0)
        assert pieces[1] == DataSegment(10.0, 10.0, 20.0, 0.0)

    def test_pieces_overlapping_selects(self):
        sig = PiecewiseLinearSignal([0, 1, 2, 3, 4], [0, 1, 0, 1, 0])
        hits = list(sig.pieces_overlapping(1.5, 2.5))
        assert [p.t_start for p in hits] == [1.0, 2.0]

    def test_pieces_overlapping_empty_range(self):
        sig = make_signal()
        assert list(sig.pieces_overlapping(5.0, 4.0)) == []


class TestExtrema:
    def test_min_max_on_full_domain(self):
        sig = make_signal()
        assert sig.min_max_on(0.0, 20.0) == (0.0, 10.0)

    def test_min_max_within_piece(self):
        sig = make_signal()
        lo, hi = sig.min_max_on(2.0, 4.0)
        assert (lo, hi) == (2.0, 4.0)

    def test_min_max_empty_interval_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_signal().min_max_on(4.0, 2.0)

    def test_max_abs_error_vs_self_is_zero(self):
        sig = make_signal()
        assert sig.max_abs_error_vs(sig) == 0.0

    def test_max_abs_error_vs_shifted(self):
        a = PiecewiseLinearSignal([0.0, 10.0], [0.0, 0.0])
        b = PiecewiseLinearSignal([0.0, 10.0], [2.0, 2.0])
        assert a.max_abs_error_vs(b) == 2.0

    def test_max_abs_error_detects_interior_breakpoint(self):
        a = PiecewiseLinearSignal([0.0, 10.0], [0.0, 0.0])
        b = PiecewiseLinearSignal([0.0, 5.0, 10.0], [0.0, 3.0, 0.0])
        assert a.max_abs_error_vs(b) == 3.0

    def test_non_overlapping_signals_rejected(self):
        a = PiecewiseLinearSignal([0.0, 1.0], [0.0, 0.0])
        b = PiecewiseLinearSignal([2.0, 3.0], [0.0, 0.0])
        with pytest.raises(InvalidParameterError):
            a.max_abs_error_vs(b)


def test_resample_round_trip():
    sig = make_signal()
    series = sig.resample([0.0, 2.5, 20.0], name="rs")
    assert series.name == "rs"
    assert np.allclose(series.values, [0.0, 2.5, 0.0])


@given(
    values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=2,
        max_size=20,
    ),
    frac=st.floats(min_value=0.0, max_value=1.0),
)
def test_interpolation_stays_within_local_bounds(values, frac):
    """Model G never exceeds the values of its bracketing samples."""
    times = list(range(len(values)))
    sig = PiecewiseLinearSignal(times, values)
    t = times[0] + frac * (times[-1] - times[0])
    lo, hi = sig.min_max_on(times[0], times[-1])
    assert lo - 1e-9 <= sig(t) <= hi + 1e-9

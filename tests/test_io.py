"""Tests for CSV series IO."""

import pytest

from repro.datagen import load_series_csv, random_walk_series, save_series_csv
from repro.errors import InvalidSeriesError


class TestRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        series = random_walk_series(100, seed=5)
        path = tmp_path / "series.csv"
        save_series_csv(series, path)
        loaded = load_series_csv(path, name=series.name)
        assert loaded == series

    def test_load_sets_name(self, tmp_path):
        series = random_walk_series(3, seed=5)
        path = tmp_path / "s.csv"
        save_series_csv(series, path)
        assert load_series_csv(path, name="abc").name == "abc"
        assert str(path) in load_series_csv(path).name


class TestMalformedInput:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,1\n1,2\n")
        with pytest.raises(InvalidSeriesError, match="header"):
            load_series_csv(path)

    def test_wrong_field_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,v\n0,1,2\n")
        with pytest.raises(InvalidSeriesError, match="2 fields"):
            load_series_csv(path)

    def test_non_numeric_field(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,v\n0,abc\n")
        with pytest.raises(InvalidSeriesError, match="non-numeric"):
            load_series_csv(path)

    def test_empty_body(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,v\n")
        with pytest.raises(InvalidSeriesError, match="no observations"):
            load_series_csv(path)

    def test_error_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,v\n0,1\n1,zzz\n")
        with pytest.raises(InvalidSeriesError, match=":3"):
            load_series_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ok.csv"
        path.write_text("t,v\n0,1\n\n1,2\n")
        assert len(load_series_csv(path)) == 2

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "NaN", "Infinity"])
    def test_non_finite_value_rejected(self, tmp_path, bad):
        path = tmp_path / "bad.csv"
        path.write_text(f"t,v\n0,1\n1,{bad}\n")
        with pytest.raises(InvalidSeriesError, match="non-finite"):
            load_series_csv(path)

    def test_non_finite_timestamp_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,v\n0,1\ninf,2\n")
        with pytest.raises(InvalidSeriesError, match=r":3.*non-finite"):
            load_series_csv(path)

    def test_decreasing_timestamp_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,v\n0,1\n5,2\n3,4\n")
        with pytest.raises(InvalidSeriesError, match=r":4.*does not increase"):
            load_series_csv(path)

    def test_duplicate_timestamp_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,v\n0,1\n0,2\n")
        with pytest.raises(InvalidSeriesError, match="does not increase"):
            load_series_csv(path)

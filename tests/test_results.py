"""Tests for result refinement (witness events, ranking)."""

import pytest

from repro.core.queries import DropQuery, JumpQuery
from repro.core.results import SearchHit, rank_hits, witness_event
from repro.datagen import PiecewiseLinearSignal, piecewise_series
from repro.types import Event, SegmentPair

HOUR = 3600.0


@pytest.fixture
def series():
    return piecewise_series(
        [0.0, HOUR, HOUR + 600.0, 2 * HOUR, 3 * HOUR],
        [10.0, 10.0, 3.0, 3.0, 11.0],
        dt=300.0,
    )


class TestWitnessEvent:
    def test_locates_the_drop(self, series):
        pair = SegmentPair(0.0, HOUR, HOUR, HOUR + 600.0)
        ev = witness_event(pair, series, DropQuery(HOUR, -3.0))
        assert ev is not None
        assert ev.dv == pytest.approx(-7.0)
        assert HOUR - 1e-6 <= ev.t_first <= HOUR + 1e-6 or ev.t_first < HOUR

    def test_respects_t_budget(self, series):
        pair = SegmentPair(0.0, HOUR, HOUR, HOUR + 600.0)
        ev = witness_event(pair, series, DropQuery(300.0, -1.0))
        assert ev.dt <= 300.0 + 1e-6
        # in 300s the signal can only fall half the 600-second ramp
        assert ev.dv == pytest.approx(-3.5)

    def test_jump_witness(self, series):
        pair = SegmentPair(HOUR, 2 * HOUR, 2 * HOUR, 3 * HOUR)
        ev = witness_event(pair, series, JumpQuery(HOUR, 3.0))
        assert ev.dv > 0

    def test_accepts_signal_input(self, series):
        sig = PiecewiseLinearSignal.from_series(series)
        pair = SegmentPair(0.0, HOUR, HOUR, HOUR + 600.0)
        a = witness_event(pair, series, DropQuery(HOUR, -3.0))
        b = witness_event(pair, sig, DropQuery(HOUR, -3.0))
        assert a == b

    def test_pair_outside_data_returns_none(self, series):
        pair = SegmentPair(10 * HOUR, 11 * HOUR, 11 * HOUR, 12 * HOUR)
        assert witness_event(pair, series, DropQuery(HOUR, -3.0)) is None


class TestRankHits:
    def make_pairs(self):
        return [
            SegmentPair(0.0, HOUR, HOUR, HOUR + 600.0),  # the real drop
            SegmentPair(HOUR + 600.0, 2 * HOUR, HOUR + 600.0, 2 * HOUR),  # flat
        ]

    def test_sorted_by_severity(self, series):
        hits = rank_hits(self.make_pairs(), series, DropQuery(HOUR, -3.0))
        assert len(hits) == 2
        assert hits[0].severity >= hits[1].severity
        assert hits[0].pair == self.make_pairs()[0]

    def test_verified_only_filters(self, series):
        hits = rank_hits(
            self.make_pairs(), series, DropQuery(HOUR, -3.0), verified_only=True
        )
        assert len(hits) == 1
        assert hits[0].witness.dv <= -3.0

    def test_empty_input(self, series):
        assert rank_hits([], series, DropQuery(HOUR, -3.0)) == []


class TestSearchHit:
    def test_severity_without_witness(self):
        hit = SearchHit(SegmentPair(0, 1, 1, 2), None)
        assert hit.severity == 0.0

    def test_severity_magnitude(self):
        hit = SearchHit(SegmentPair(0, 1, 1, 2), Event(0.0, 1.0, -4.5))
        assert hit.severity == 4.5

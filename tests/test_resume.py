"""Tests for streaming checkpoint/resume of SegDiffIndex.

A resumed index must produce exactly the features a never-interrupted
build would have produced: same segments, same search results, no
duplicated or missing pairs.
"""

import math

import pytest

from repro.core.index import SegDiffIndex
from repro.datagen.series import TimeSeries
from repro.errors import StorageError
from repro.storage.sqlite_store import SqliteFeatureStore

EPS = 0.2
WINDOW = 8 * 3600.0


def make_series(n=1500):
    ts = [float(i * 60) for i in range(n)]
    vs = [
        math.sin(i / 25.0) * 4.0 + (0.0 if i < n * 3 // 4 else -7.0)
        for i in range(n)
    ]
    return TimeSeries(ts, vs, name="resume-test")


@pytest.fixture
def series():
    return make_series()


def build_interrupted(path, series, stop_at):
    """Ingest a prefix, checkpoint, then 'crash' without closing."""
    index = SegDiffIndex(EPS, WINDOW, SqliteFeatureStore(path))
    for t, v in zip(series.times[:stop_at], series.values[:stop_at]):
        index.append(float(t), float(v))
    index.checkpoint()
    # simulate the process dying: drop the connection, skip close()
    index.store._conn.close()


class TestResume:
    @pytest.mark.parametrize("stop_at", [100, 700, 1400])
    def test_resumed_equals_uninterrupted(self, tmp_path, series, stop_at):
        ref = SegDiffIndex.build(
            series, EPS, WINDOW, backend="sqlite",
            path=str(tmp_path / "ref.sqlite"),
        )
        ref_pairs = set(ref.search_drops(3600.0, -3.0))
        ref_segments = ref.segments
        ref.close()

        path = str(tmp_path / "crashed.sqlite")
        build_interrupted(path, series, stop_at)
        resumed = SegDiffIndex.resume(path)
        # replay the WHOLE stream: duplicates must be skipped
        resumed.ingest(series)
        resumed.finalize()
        try:
            assert resumed.segments == ref_segments
            assert set(resumed.search_drops(3600.0, -3.0)) == ref_pairs
            assert resumed._n_observations == len(series)
        finally:
            resumed.close()

    def test_resume_then_open(self, tmp_path, series):
        path = str(tmp_path / "c.sqlite")
        build_interrupted(path, series, 800)
        resumed = SegDiffIndex.resume(path)
        resumed.ingest(series)
        resumed.finalize()
        n_pairs = len(resumed.search_drops(3600.0, -3.0))
        resumed.close()

        reopened = SegDiffIndex.open(path)
        try:
            assert len(reopened.search_drops(3600.0, -3.0)) == n_pairs
        finally:
            reopened.close()

    def test_multiple_checkpoints_and_crashes(self, tmp_path, series):
        """Crash, resume, crash again, resume again — still exact."""
        path = str(tmp_path / "c.sqlite")
        build_interrupted(path, series, 400)
        mid = SegDiffIndex.resume(path)
        for t, v in zip(series.times[:900], series.values[:900]):
            mid.append(float(t), float(v))
        mid.checkpoint()
        mid.store._conn.close()

        final = SegDiffIndex.resume(path)
        final.ingest(series)
        final.finalize()
        ref = SegDiffIndex.build(series, EPS, WINDOW)
        try:
            assert set(final.search_drops(3600.0, -3.0)) == set(
                ref.search_drops(3600.0, -3.0)
            )
        finally:
            final.close()
            ref.close()


class TestResumeGuards:
    def test_resume_sealed_index_rejected(self, tmp_path, series):
        path = str(tmp_path / "sealed.sqlite")
        SegDiffIndex.build(
            series, EPS, WINDOW, backend="sqlite", path=path
        ).close()
        with pytest.raises(StorageError, match="sealed"):
            SegDiffIndex.resume(path)

    def test_open_checkpoint_rejected(self, tmp_path, series):
        path = str(tmp_path / "ck.sqlite")
        build_interrupted(path, series, 500)
        with pytest.raises(StorageError, match="checkpoint"):
            SegDiffIndex.open(path)

    def test_resume_without_metadata_rejected(self, tmp_path):
        path = str(tmp_path / "empty.sqlite")
        SqliteFeatureStore(path).close()
        with pytest.raises(StorageError, match="metadata"):
            SegDiffIndex.resume(path)

    def test_resume_unknown_backend_rejected(self, tmp_path):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="backend"):
            SegDiffIndex.resume(str(tmp_path / "x"), backend="papyrus")

    def test_checkpointed_n_observations_counts_covered_only(
        self, tmp_path, series
    ):
        """The checkpoint claims only observations inside closed
        segments, so a full replay never double-counts."""
        path = str(tmp_path / "c.sqlite")
        build_interrupted(path, series, 1000)
        resumed = SegDiffIndex.resume(path)
        resumed.ingest(series)
        resumed.finalize()
        try:
            assert resumed._n_observations == len(series)
        finally:
            resumed.close()


class TestMidStreamCrash:
    """Crashes at arbitrary points BETWEEN checkpoints.

    The durable state must roll back to the last checkpoint exactly — a
    commit sneaking in between checkpoints (e.g. from a feature-buffer
    flush) can persist a segment without all of its pairs, which a
    resume can never repair.  Found by killing a real CLI build mid-
    flight: the resumed index was missing feature rows.
    """

    def test_sqlite_crash_between_checkpoints_is_exact(
        self, tmp_path, series
    ):
        ref = SegDiffIndex.build(
            series, EPS, WINDOW, backend="sqlite",
            path=str(tmp_path / "ref.sqlite"),
        )
        ref_counts = ref.store.counts().total
        ref_pairs = set(ref.search_drops(3600.0, -3.0))
        ref_segments = ref.segments
        ref.close()

        path = str(tmp_path / "crashed.sqlite")
        index = SegDiffIndex(EPS, WINDOW, SqliteFeatureStore(path))
        for i, (t, v) in enumerate(zip(series.times, series.values)):
            index.append(float(t), float(v))
            if i > 0 and i % 200 == 0:
                index.checkpoint()
            if i == 1337:  # well past the last checkpoint at i=1200
                break
        # crash: close the connection, discarding uncommitted work
        index.store._conn.close()

        resumed = SegDiffIndex.resume(path)
        resumed.ingest(series)
        resumed.finalize()
        try:
            assert resumed.segments == ref_segments
            assert resumed._n_observations == len(series)
            assert resumed.store.counts().total == ref_counts
            assert set(resumed.search_drops(3600.0, -3.0)) == ref_pairs
        finally:
            resumed.close()

    def test_minidb_crash_between_checkpoints_is_exact(
        self, tmp_path, series
    ):
        from repro.storage.minidb import MiniDbFeatureStore

        ref = SegDiffIndex.build(series, EPS, WINDOW)
        ref_counts = ref.store.counts().total
        ref_pairs = set(ref.search_drops(3600.0, -3.0))
        ref_segments = ref.segments

        path = str(tmp_path / "crashed.mdb")
        index = SegDiffIndex(EPS, WINDOW, MiniDbFeatureStore(path))
        for i, (t, v) in enumerate(zip(series.times, series.values)):
            index.append(float(t), float(v))
            if i > 0 and i % 200 == 0:
                index.checkpoint()
            if i == 1337:
                break
        # crash: drop the raw file handles without any flush/commit
        index.store.db.pager._file.close()
        index.store.db.pager.wal._file.close()

        resumed = SegDiffIndex.resume(path, backend="minidb")
        resumed.ingest(series)
        resumed.finalize()
        try:
            assert resumed.segments == ref_segments
            assert resumed._n_observations == len(series)
            assert resumed.store.counts().total == ref_counts
            assert set(resumed.search_drops(3600.0, -3.0)) == ref_pairs
        finally:
            resumed.close()
            ref.close()


class TestResumeMinidb:
    def test_resume_minidb_backend(self, tmp_path, series):
        from repro.storage.minidb import MiniDbFeatureStore

        path = str(tmp_path / "c.mdb")
        index = SegDiffIndex(EPS, WINDOW, MiniDbFeatureStore(path))
        for t, v in zip(series.times[:800], series.values[:800]):
            index.append(float(t), float(v))
        index.checkpoint()
        # "crash": close the pager without the store's cleanup
        index.store.db.pager.close()

        resumed = SegDiffIndex.resume(path, backend="minidb")
        resumed.ingest(series)
        resumed.finalize()
        ref = SegDiffIndex.build(series, EPS, WINDOW)
        try:
            assert resumed.segments == ref.segments
            assert set(resumed.search_drops(3600.0, -3.0)) == set(
                ref.search_drops(3600.0, -3.0)
            )
        finally:
            resumed.close()
            ref.close()

"""Tests for the MiniDB feature-store backend (equivalence + page costs)."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.index import SegDiffIndex
from repro.core.queries import DropQuery, JumpQuery
from repro.datagen import TimeSeries, random_walk_series
from repro.errors import InvalidParameterError, StorageError
from repro.storage.minidb import MiniDbFeatureStore

HOUR = 3600.0


@pytest.fixture(scope="module")
def pair_of_indexes():
    series = random_walk_series(300, dt=300.0, step_std=0.8, seed=17)
    # pool large enough to hold the whole working set, so the warm-cache
    # test measures caching rather than LRU thrash on sequential scans
    store = MiniDbFeatureStore(cache_pages=8192)
    mini = SegDiffIndex(0.2, 8 * HOUR, store)
    mini.ingest(series)
    mini.finalize()
    mem = SegDiffIndex.build(series, 0.2, 8 * HOUR, backend="memory")
    yield mini, mem, series
    mini.close()
    mem.close()


QUERIES = [
    (DropQuery(HOUR, -2.0)),
    (DropQuery(4 * HOUR, -0.5)),
    (DropQuery(0.5 * HOUR, -5.0)),
    (JumpQuery(HOUR, 2.0)),
    (JumpQuery(4 * HOUR, 0.5)),
]


class TestEquivalence:
    @pytest.mark.parametrize("query", QUERIES, ids=str)
    @pytest.mark.parametrize("mode", ["scan", "index"])
    @pytest.mark.parametrize("cache", ["warm", "cold"])
    def test_matches_memory_backend(self, pair_of_indexes, query, mode, cache):
        mini, mem, _series = pair_of_indexes
        expected = mem.store.search(query, mode="scan")
        got = mini.store.search(query, mode=mode, cache=cache)
        assert got == expected

    def test_counts_match(self, pair_of_indexes):
        mini, mem, _ = pair_of_indexes
        assert mini.store.counts() == mem.store.counts()

    def test_extremes_match(self, pair_of_indexes):
        mini, mem, _ = pair_of_indexes
        assert mini.store.extreme_feature_dv("drop") == pytest.approx(
            mem.store.extreme_feature_dv("drop")
        )
        assert mini.store.extreme_feature_dv("jump") == pytest.approx(
            mem.store.extreme_feature_dv("jump")
        )

    def test_sample_points(self, pair_of_indexes):
        mini, _mem, _ = pair_of_indexes
        sample = mini.store.sample_points("drop", 32)
        assert sample is not None and 1 <= len(sample) <= 32

    def test_topk_and_auto_work_on_minidb(self, pair_of_indexes):
        mini, _mem, series = pair_of_indexes
        hits = mini.search_deepest_drops(2, HOUR, data=series)
        assert len(hits) == 2
        auto = mini.search_drops(HOUR, -2.0, mode="auto")
        assert auto == mini.search_drops(HOUR, -2.0, mode="index")


class TestPageCosts:
    def test_query_stats_populated(self, pair_of_indexes):
        mini, _mem, _ = pair_of_indexes
        mini.store.search(DropQuery(HOUR, -2.0), mode="scan", cache="cold")
        stats = mini.store.last_query_stats
        assert stats is not None
        assert stats.page_reads > 0
        assert stats.misses > 0  # cold cache: everything missed

    def test_warm_cache_hits(self, pair_of_indexes):
        mini, _mem, _ = pair_of_indexes
        q = DropQuery(HOUR, -2.0)
        mini.store.search(q, mode="scan", cache="warm")  # prime
        mini.store.search(q, mode="scan", cache="warm")
        stats = mini.store.last_query_stats
        assert stats.hits > 0
        assert stats.disk_reads == 0  # fully cached

    def test_index_selective_query_reads_fewer_pages(self, pair_of_indexes):
        """A highly selective query must touch far fewer pages via the
        B+tree than via a full scan — the B-tree's raison d'etre."""
        mini, _mem, _ = pair_of_indexes
        q = DropQuery(0.25 * HOUR, -6.0)  # few or no results
        mini.store.search(q, mode="scan", cache="cold")
        scan_reads = mini.store.last_query_stats.page_reads
        mini.store.search(q, mode="index", cache="cold")
        index_reads = mini.store.last_query_stats.page_reads
        assert index_reads < scan_reads / 2

    def test_index_hard_query_pays_random_io(self, pair_of_indexes):
        """On a huge-result query the index fetches a heap page per match
        and loses to the scan — Figures 19-20 from first principles."""
        mini, _mem, _ = pair_of_indexes
        q = DropQuery(8 * HOUR, -0.01)
        mini.store.search(q, mode="scan", cache="cold")
        scan_reads = mini.store.last_query_stats.page_reads
        mini.store.search(q, mode="index", cache="cold")
        index_reads = mini.store.last_query_stats.page_reads
        assert index_reads > scan_reads


class TestLifecycle:
    def test_persistence_roundtrip(self, tmp_path):
        series = random_walk_series(150, dt=300.0, step_std=0.8, seed=9)
        path = str(tmp_path / "walk.mdb")
        index = SegDiffIndex.build(
            series, 0.2, 4 * HOUR, backend="minidb", path=path
        )
        expected = index.search_drops(HOUR, -2.0)
        index.close()
        assert os.path.exists(path)

        store = MiniDbFeatureStore(path)
        try:
            assert store.get_meta("epsilon") == 0.2
            got = store.search(DropQuery(HOUR, -2.0))
            assert got == expected
            assert store.load_segments()
        finally:
            store.close()

    def test_tempfile_removed_on_close(self):
        store = MiniDbFeatureStore()
        path = store.path
        assert os.path.exists(path)
        store.close()
        assert not os.path.exists(path)

    def test_stale_index_rejected(self):
        from repro.core.corners import collect_features
        from repro.core.parallelogram import Parallelogram
        from repro.types import DataSegment

        store = MiniDbFeatureStore()
        try:
            fs = collect_features(
                Parallelogram.self_pair(DataSegment(0, 5, 10, -5)), 0.1
            )
            store.add(fs)
            with pytest.raises(StorageError, match="stale|missing"):
                store.search(DropQuery(5.0, -1.0), mode="index")
            assert store.search(DropQuery(5.0, -1.0), mode="scan")
            store.finalize()
            assert store.search(DropQuery(5.0, -1.0), mode="index")
        finally:
            store.close()

    def test_invalid_modes_rejected(self, pair_of_indexes):
        mini, _mem, _ = pair_of_indexes
        with pytest.raises(InvalidParameterError):
            mini.store.search(QUERIES[0], mode="grid")
        with pytest.raises(InvalidParameterError):
            mini.store.search(QUERIES[0], cache="tepid")

    def test_closed_store_unusable(self):
        store = MiniDbFeatureStore()
        store.close()
        with pytest.raises(StorageError):
            store.counts()


@given(
    seed=st.integers(min_value=0, max_value=5000),
    v_thr=st.floats(min_value=-6.0, max_value=-0.5),
    t_minutes=st.integers(min_value=10, max_value=200),
)
@settings(max_examples=10, deadline=None)
def test_minidb_equivalence_property(seed, v_thr, t_minutes):
    """MiniDB agrees with the memory backend on random walks."""
    import numpy as np

    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.uniform(120.0, 600.0, size=60))
    v = np.cumsum(rng.normal(0.0, 1.5, size=60))
    series = TimeSeries(t, v)
    mini = SegDiffIndex.build(series, 0.3, 4 * HOUR, backend="minidb")
    mem = SegDiffIndex.build(series, 0.3, 4 * HOUR, backend="memory")
    try:
        t_thr = t_minutes * 60.0
        assert mini.search_drops(t_thr, v_thr) == mem.search_drops(t_thr, v_thr)
    finally:
        mini.close()
        mem.close()

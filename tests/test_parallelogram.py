"""Tests for the Lemma 3 parallelogram construction and geometry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.feature_space import FeaturePoint, QueryRegion
from repro.core.parallelogram import Parallelogram
from repro.errors import InvalidParameterError
from repro.types import DataSegment

coords = st.integers(min_value=-10, max_value=10)


@st.composite
def segment_pairs(draw):
    """Two ordered data segments with integer endpoints (t_B >= t_C)."""
    t_d = draw(st.integers(min_value=0, max_value=6))
    t_c = draw(st.integers(min_value=t_d + 1, max_value=10))
    t_b = draw(st.integers(min_value=t_c, max_value=14))
    t_a = draw(st.integers(min_value=t_b + 1, max_value=18))
    v_d, v_c, v_b, v_a = (draw(coords) for _ in range(4))
    cd = DataSegment(float(t_d), float(v_d), float(t_c), float(v_c))
    ab = DataSegment(float(t_b), float(v_b), float(t_a), float(v_a))
    return cd, ab


class TestConstruction:
    def test_corner_formulas(self):
        cd = DataSegment(0.0, 5.0, 2.0, 7.0)
        ab = DataSegment(4.0, 6.0, 7.0, 3.0)
        p = Parallelogram.from_segments(cd, ab)
        assert p.bc == FeaturePoint(2.0, -1.0)  # (4-2, 6-7)
        assert p.bd == FeaturePoint(4.0, 1.0)  # (4-0, 6-5)
        assert p.ad == FeaturePoint(7.0, -2.0)  # (7-0, 3-5)
        assert p.ac == FeaturePoint(5.0, -4.0)  # (7-2, 3-7)

    def test_out_of_order_segments_rejected(self):
        cd = DataSegment(5.0, 0.0, 8.0, 0.0)
        ab = DataSegment(0.0, 0.0, 2.0, 0.0)
        with pytest.raises(InvalidParameterError):
            Parallelogram.from_segments(cd, ab)

    def test_adjacent_segments_allowed(self):
        cd = DataSegment(0.0, 0.0, 2.0, 1.0)
        ab = DataSegment(2.0, 1.0, 4.0, 0.0)
        p = Parallelogram.from_segments(cd, ab)
        assert p.bc == FeaturePoint(0.0, 0.0)

    def test_self_pair_degenerates(self):
        seg = DataSegment(0.0, 10.0, 4.0, 2.0)
        p = Parallelogram.self_pair(seg)
        assert p.is_self_pair
        assert p.bc == FeaturePoint(0.0, 0.0)
        assert p.ad == FeaturePoint(4.0, -8.0)
        assert len(p.vertices()) == 2

    def test_segment_pair_tuple(self):
        cd = DataSegment(0.0, 5.0, 2.0, 7.0)
        ab = DataSegment(4.0, 6.0, 7.0, 3.0)
        pair = Parallelogram.from_segments(cd, ab).segment_pair()
        assert pair.as_tuple() == (0.0, 2.0, 4.0, 7.0)

    @given(segment_pairs())
    def test_is_a_parallelogram(self, pair):
        """Opposite sides have equal direction vectors (Lemma 3 part 1)."""
        cd, ab = pair
        p = Parallelogram.from_segments(cd, ab)
        bc, bd, ad, ac = p.bc, p.bd, p.ad, p.ac
        # BC->BD direction equals AC->AD direction (the CD direction)
        assert bd.dt - bc.dt == pytest.approx(ad.dt - ac.dt)
        assert bd.dv - bc.dv == pytest.approx(ad.dv - ac.dv)
        # BC->AC direction equals BD->AD direction (the AB direction)
        assert ac.dt - bc.dt == pytest.approx(ad.dt - bd.dt)
        assert ac.dv - bc.dv == pytest.approx(ad.dv - bd.dv)
        # directions match the data segments
        assert bd.dt - bc.dt == pytest.approx(cd.duration)
        assert bd.dv - bc.dv == pytest.approx(cd.rise)
        assert ac.dt - bc.dt == pytest.approx(ab.duration)
        assert ac.dv - bc.dv == pytest.approx(ab.rise)


class TestLemma3Containment:
    @given(
        pair=segment_pairs(),
        s=st.floats(min_value=0, max_value=1),
        r=st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=300)
    def test_cross_segment_features_are_inside(self, pair, s, r):
        """The feature of any (point on CD, point on AB) pair lies in the
        parallelogram (Lemma 3 part 2)."""
        cd, ab = pair
        p = Parallelogram.from_segments(cd, ab)
        t1 = cd.t_start + s * cd.duration
        t2 = ab.t_start + r * ab.duration
        feature = FeaturePoint(t2 - t1, ab.value_at(t2) - cd.value_at(t1))
        assert p.contains(feature, tol=1e-6)

    @given(
        seg=segment_pairs().map(lambda pr: pr[0]),
        s=st.floats(min_value=0, max_value=1),
        r=st.floats(min_value=0, max_value=1),
    )
    def test_within_segment_features_inside_self_pair(self, seg, s, r):
        lo, hi = sorted([s, r])
        p = Parallelogram.self_pair(seg)
        t1 = seg.t_start + lo * seg.duration
        t2 = seg.t_start + hi * seg.duration
        feature = FeaturePoint(t2 - t1, seg.value_at(t2) - seg.value_at(t1))
        assert p.contains(feature, tol=1e-6)

    def test_point_outside_is_rejected(self):
        cd = DataSegment(0.0, 0.0, 1.0, 0.0)
        ab = DataSegment(2.0, 0.0, 3.0, 0.0)
        p = Parallelogram.from_segments(cd, ab)
        # parallelogram is the segment dt in [1, 3], dv = 0
        assert not p.contains(FeaturePoint(2.0, 1.0))
        assert not p.contains(FeaturePoint(4.0, 0.0))
        assert p.contains(FeaturePoint(2.0, 0.0))


class TestRegionIntersection:
    def make(self):
        # CD rises 0->4 over [0,2]; AB falls 6->0 over [4,7]
        cd = DataSegment(0.0, 0.0, 2.0, 4.0)
        ab = DataSegment(4.0, 6.0, 7.0, 0.0)
        return Parallelogram.from_segments(cd, ab)

    def test_intersects_when_corner_inside(self):
        p = self.make()
        # corner AC = (5, -4): a drop of 4 over 5 time units
        assert p.intersects(QueryRegion.drop(5.0, -3.5))

    def test_no_intersection_when_too_deep(self):
        p = self.make()
        assert not p.intersects(QueryRegion.drop(10.0, -7.0))

    def test_no_intersection_when_too_fast(self):
        p = self.make()
        # any drop needs at least some time: BC=(2,2), deepest at AC=(5,-4);
        # with T=2 the reachable dv minimum is at dt=2 on edge (BC..), all >= 0
        assert not p.intersects(QueryRegion.drop(2.0, -1.0))


class TestExtremes:
    def test_min_dv_within_budget(self):
        cd = DataSegment(0.0, 0.0, 2.0, 4.0)
        ab = DataSegment(4.0, 6.0, 7.0, 0.0)
        p = Parallelogram.from_segments(cd, ab)
        # unconstrained minimum is corner AC = (5, -4)
        assert p.min_dv_within(10.0) == pytest.approx(-4.0)
        # at T=3.5 the best is on the lower-left edge between BC(2,2) and AC(5,-4)
        assert p.min_dv_within(3.5) == pytest.approx(2.0 + (3.5 - 2.0) * (-6.0 / 3.0))

    def test_max_dv_within_budget(self):
        cd = DataSegment(0.0, 4.0, 2.0, 0.0)
        ab = DataSegment(4.0, 0.0, 7.0, 6.0)
        p = Parallelogram.from_segments(cd, ab)
        # highest jump: AB's top (6 at t=7) minus CD's bottom (0 at t=2),
        # i.e. corner AC = (5, 6)
        assert p.max_dv_within(10.0) == pytest.approx(6.0)

    def test_budget_before_parallelogram_returns_none(self):
        cd = DataSegment(0.0, 0.0, 2.0, 0.0)
        ab = DataSegment(5.0, 0.0, 7.0, 0.0)
        p = Parallelogram.from_segments(cd, ab)
        assert p.min_dv_within(2.0) is None  # min dt of pairs is 3

    def test_nonpositive_budget_rejected(self):
        p = Parallelogram.self_pair(DataSegment(0.0, 0.0, 1.0, 1.0))
        with pytest.raises(InvalidParameterError):
            p.min_dv_within(0.0)

    @given(pair=segment_pairs(), budget=st.integers(min_value=1, max_value=25))
    @settings(max_examples=200)
    def test_extremes_bound_sampled_features(self, pair, budget):
        """Every achievable feature within the budget lies between the
        reported min and max."""
        cd, ab = pair
        p = Parallelogram.from_segments(cd, ab)
        lo = p.min_dv_within(float(budget))
        hi = p.max_dv_within(float(budget))
        found_any = False
        for s in (0.0, 0.25, 0.5, 0.75, 1.0):
            for r in (0.0, 0.25, 0.5, 0.75, 1.0):
                t1 = cd.t_start + s * cd.duration
                t2 = ab.t_start + r * ab.duration
                if t2 - t1 > budget or t2 <= t1:
                    continue
                found_any = True
                dv = ab.value_at(t2) - cd.value_at(t1)
                assert lo - 1e-6 <= dv <= hi + 1e-6
        if found_any:
            assert lo is not None and hi is not None

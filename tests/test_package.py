"""Public API surface tests: everything advertised is importable and sane."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.feature_space",
            "repro.core.parallelogram",
            "repro.core.corners",
            "repro.core.extraction",
            "repro.core.queries",
            "repro.core.index",
            "repro.core.results",
            "repro.core.reporting",
            "repro.core.guarantees",
            "repro.core.planner",
            "repro.core.tiered",
            "repro.core.transect",
            "repro.datagen",
            "repro.segmentation",
            "repro.storage",
            "repro.storage.minidb",
            "repro.baselines",
            "repro.workloads",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_submodules_import(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} must have a module docstring"

    def test_subpackage_all_names_resolve(self):
        for module_name in (
            "repro.core",
            "repro.datagen",
            "repro.segmentation",
            "repro.storage",
            "repro.baselines",
            "repro.workloads",
        ):
            mod = importlib.import_module(module_name)
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{module_name}.{name} missing"

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_quickstart_snippet_from_readme(self):
        """The README's quickstart must keep working verbatim."""
        from repro import SegDiffIndex
        from repro.datagen import generate_cad_day

        series, _truth = generate_cad_day()
        index = SegDiffIndex.build(series, epsilon=0.2, window=8 * 3600)
        pairs = index.search_drops(t_threshold=3600, v_threshold=-3.0)
        assert isinstance(pairs, list)
        index.close()

"""Tests for sharded indexes (repro.engine.sharding).

Covers the scatter-gather/merge equivalence with a single index, shard
routing, replica failover and honest lost-shard reporting, and the
checksum anti-entropy verify/repair loop — including the Hypothesis
property that a single mutated replica row is localized to exactly its
leaf range and repair restores byte-identical rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.index import SegDiffIndex
from repro.datagen.series import TimeSeries
from repro.engine import (
    ResiliencePolicy,
    ResultStatus,
    Shard,
    ShardedIndex,
    ShardSpec,
)
from repro.errors import InvalidParameterError, StorageError
from repro.obs.metrics import REGISTRY
from repro.storage import checksum as cks
from repro.storage.faults import FaultyStoreWrapper, ReadFaultPolicy

HOUR = 3600.0
EPS = 0.2
WINDOW = 2 * HOUR
MAX_GAP = HOUR
T, V = HOUR, -2.0  # the (T, V) drop query used throughout


def gapped_series(episodes=6, n=200, seed=0, drop=3.0):
    """Episodes of a random walk separated by day-long sampling gaps."""
    rng = np.random.default_rng(seed)
    ts, vs = [], []
    t0 = 0.0
    for _ in range(episodes):
        t = t0 + np.arange(n) * 60.0
        v = np.cumsum(rng.normal(0, 0.05, n))
        v[n // 3 : n // 3 + 5] -= np.linspace(0, drop, 5)
        ts.append(t)
        vs.append(v)
        t0 = t[-1] + 24 * HOUR
    return TimeSeries(
        times=np.concatenate(ts), values=np.concatenate(vs), name="s"
    )


def pair_set(pairs):
    return sorted(p.as_tuple() for p in pairs)


@pytest.fixture(scope="module")
def series():
    return gapped_series()


@pytest.fixture(scope="module")
def plain_answer(series):
    with SegDiffIndex.build(series, EPS, WINDOW, max_gap=MAX_GAP) as idx:
        yield pair_set(idx.search_drops(T, V))


class TestShardedEqualsPlain:
    def test_multi_shard_union_equals_single_index(
        self, series, plain_answer
    ):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=4, max_gap=MAX_GAP
        ) as sharded:
            assert len(sharded.shards) == 4
            outcome = sharded.search_outcome("drop", T, V)
            assert outcome.status is ResultStatus.COMPLETE
            assert pair_set(outcome.pairs) == plain_answer

    def test_one_shard_is_bit_identical(self, series, plain_answer):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=1, max_gap=MAX_GAP
        ) as sharded:
            outcome = sharded.search_outcome("drop", T, V)
            assert pair_set(outcome.pairs) == plain_answer

    def test_jumps_merge_too(self, series):
        with SegDiffIndex.build(
            series, EPS, WINDOW, max_gap=MAX_GAP
        ) as idx, ShardedIndex.build(
            series, EPS, WINDOW, n_shards=3, max_gap=MAX_GAP
        ) as sharded:
            outcome = sharded.search_outcome("jump", T, -V)
            assert pair_set(outcome.pairs) == pair_set(
                idx.search_jumps(T, -V)
            )

    def test_replicas_are_bit_identical(self, series):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=2, max_gap=MAX_GAP, replicas=3
        ) as sharded:
            for shard in sharded.shards:
                base = shard.primary.store
                for replica in shard.replicas[1:]:
                    for table in cks.TABLES:
                        np.testing.assert_array_equal(
                            base.read_table_rows(table),
                            replica.store.read_table_rows(table),
                        )


class TestRouting:
    def test_t_range_touches_only_overlapping_shards(self, series):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=3, max_gap=MAX_GAP
        ) as sharded:
            first = sharded.shards[0].spec
            routed = sharded.route(None, (first.t_min, first.t_max))
            assert [s.shard_id for s in routed] == [first.shard_id]
            assert len(sharded.route(None, None)) == 3

    def test_disjoint_range_is_complete_and_empty(self, series):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=2, max_gap=MAX_GAP
        ) as sharded:
            outcome = sharded.search_outcome(
                "drop", T, V, t_range=(-2e9, -1e9)
            )
            assert outcome.status is ResultStatus.COMPLETE
            assert outcome.pairs == []
            assert "no shard overlaps" in outcome.completeness.reason

    def test_sensor_routing_in_transect(self):
        sensors = {
            "a": gapped_series(episodes=1, seed=1),
            "b": gapped_series(episodes=1, seed=2),
        }
        with ShardedIndex.build_transect(
            sensors, EPS, WINDOW
        ) as sharded:
            routed = sharded.route(["b"], None)
            assert [s.shard_id for s in routed] == ["b"]
            merged = sharded.search_outcome("drop", T, V)
            only_b = sharded.search_outcome("drop", T, V, sensors=["b"])
            assert set(pair_set(only_b.pairs)) <= set(
                pair_set(merged.pairs)
            )

    def test_time_sharding_requires_max_gap(self, series):
        with pytest.raises(TypeError):
            ShardedIndex.build(series, EPS, WINDOW, n_shards=2)

    def test_duplicate_shard_ids_rejected(self, series):
        idx = SegDiffIndex.build(series, EPS, WINDOW)
        spec = ShardSpec("x", 0.0, 1.0)
        with pytest.raises(InvalidParameterError, match="duplicate"):
            ShardedIndex(
                [Shard(spec, [idx]), Shard(spec, [idx])], EPS, WINDOW
            )
        idx.close()


class TestFailover:
    def test_replica_killed_mid_query_still_complete(
        self, series, plain_answer
    ):
        """Chaos: primary replica errors -> failover -> COMPLETE."""
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=2, max_gap=MAX_GAP, replicas=2
        ) as sharded:
            shard = sharded.shards[0]
            # every read of the primary now fails with StorageError
            shard.replicas[0].store = FaultyStoreWrapper(
                shard.replicas[0].store,
                ReadFaultPolicy(fail_next=10**9),
            )
            shard.replicas[0]._session = None
            before = REGISTRY.get("repro_shard_failovers_total").value
            outcome = sharded.search_outcome("drop", T, V)
            assert outcome.status is ResultStatus.COMPLETE
            assert pair_set(outcome.pairs) == plain_answer
            after = REGISTRY.get("repro_shard_failovers_total").value
            assert after == before + 1

    def test_no_surviving_replica_names_lost_shard(
        self, series, plain_answer
    ):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=2, max_gap=MAX_GAP
        ) as sharded:
            lost = sharded.shards[0]
            lost.replicas[0].store = FaultyStoreWrapper(
                lost.replicas[0].store, ReadFaultPolicy(fail_next=10**9)
            )
            lost.replicas[0]._session = None
            outcome = sharded.search_outcome("drop", T, V)
            assert outcome.status is ResultStatus.DEGRADED
            assert outcome.completeness.unfinished == (lost.shard_id,)
            assert lost.shard_id in outcome.completeness.reason
            survivor = sharded.shards[1].shard_id
            assert survivor in outcome.completeness.finished
            # survivors' answers are a sound subset of the full answer
            assert set(pair_set(outcome.pairs)) < set(plain_answer)

    def test_every_shard_lost_is_failed(self, series):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=2, max_gap=MAX_GAP
        ) as sharded:
            for shard in sharded.shards:
                shard.replicas[0].store = FaultyStoreWrapper(
                    shard.replicas[0].store,
                    ReadFaultPolicy(fail_next=10**9),
                )
                shard.replicas[0]._session = None
            outcome = sharded.search_outcome("drop", T, V)
            assert outcome.status is ResultStatus.FAILED
            assert outcome.error is not None
            assert len(outcome.completeness.unfinished) == 2

    def test_open_breaker_fails_over(self, series, plain_answer):
        """A tripped primary breaker routes the query to the replica."""
        policy = ResiliencePolicy(
            breaker_failures=1, breaker_cooldown_ms=3_600_000.0
        )
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=1, max_gap=MAX_GAP,
            replicas=2, resilience=policy,
        ) as sharded:
            shard = sharded.shards[0]
            shard.replicas[0].store = FaultyStoreWrapper(
                shard.replicas[0].store, ReadFaultPolicy(fail_next=1)
            )
            shard.replicas[0]._session = None
            # first query trips the breaker, fails over, still COMPLETE
            first = sharded.search_outcome("drop", T, V)
            assert first.status is ResultStatus.COMPLETE
            # breaker now open: CircuitOpenError -> immediate failover
            second = sharded.search_outcome("drop", T, V)
            assert second.status is ResultStatus.COMPLETE
            assert pair_set(second.pairs) == plain_answer


class TestVerifyRepair:
    def test_clean_build_verifies_clean(self, series):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=2, max_gap=MAX_GAP, replicas=2
        ) as sharded:
            report = sharded.verify()
            assert report.clean
            assert report.shards_checked == 2
            # sealed-vs-primary plus one sibling, per shard
            assert report.replicas_checked == 4

    def test_mutated_replica_localized_and_repaired(self, series):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=2, max_gap=MAX_GAP, replicas=2
        ) as sharded:
            shard = sharded.shards[1]
            replica = shard.replicas[1]
            clean = replica.store.read_table_rows("drop_points")
            bad = clean[5:6].copy()
            bad[0, 1] += 4.0
            replica.store.replace_table_rows("drop_points", 5, bad)

            report = sharded.verify()
            assert not report.clean
            assert len(report.divergences) == 1
            div = report.divergences[0]
            assert (div.shard_id, div.replica) == (shard.shard_id, 1)
            assert div.table == "drop_points"
            tree = cks.store_trees(shard.primary.store)["drop_points"]
            assert div.ranges == (tree.leaf_range(tree.leaf_of_row(5)),)

            after = sharded.repair(report)
            assert after.clean
            np.testing.assert_array_equal(
                replica.store.read_table_rows("drop_points"), clean
            )

    def test_verify_cost_is_k_log_n_not_full_scan(self, series):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=1, max_gap=MAX_GAP, replicas=2
        ) as sharded:
            shard = sharded.shards[0]
            replica = shard.replicas[1]
            n_rows = replica.store.read_table_rows("drop_points").shape[0]
            assert n_rows > 200  # big enough that log n << n
            k = 3
            for row in (0, n_rows // 2, n_rows - 1):
                bad = replica.store.read_table_rows("drop_points", row,
                                                    row + 1).copy()
                bad[0, 0] += 1.0
                replica.store.replace_table_rows("drop_points", row, bad)

            before = REGISTRY.get("repro_verify_ranges_checked").value
            report = sharded.verify(leaf_size=8)
            checked = (
                REGISTRY.get("repro_verify_ranges_checked").value - before
            )
            assert report.ranges_checked == checked
            assert not report.clean
            tree = cks.build_tree(
                shard.primary.store.read_table_rows("drop_points"),
                "drop_points", leaf_size=8,
            )
            # k divergent rows: O(k log n) checksum ranges, not the
            # O(n) a full row-scan diff would read
            assert checked <= 4 * (1 + 2 * k * len(tree.levels))
            assert checked < n_rows

    def test_primary_drift_repaired_from_sibling_and_resealed(
        self, series
    ):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=1, max_gap=MAX_GAP, replicas=2
        ) as sharded:
            shard = sharded.shards[0]
            primary = shard.primary
            clean = primary.store.read_table_rows("jump_points")
            bad = clean[0:1].copy()
            bad[0, 0] += 2.0
            primary.store.replace_table_rows("jump_points", 0, bad)

            report = sharded.verify()
            sealed_divs = [
                d for d in report.divergences if d.against == "sealed"
            ]
            assert sealed_divs and sealed_divs[0].replica == 0
            after = sharded.repair(report)
            assert after.clean
            np.testing.assert_array_equal(
                primary.store.read_table_rows("jump_points"), clean
            )
            # the seal was refreshed: a fresh verify is also clean
            assert sharded.verify().clean

    def test_rebuild_from_peer_checksum_gated_cutover(self, series):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=1, max_gap=MAX_GAP, replicas=2
        ) as sharded:
            shard = sharded.shards[0]
            replica = shard.replicas[1]
            old_store = replica.store
            sharded._rebuild_replica(shard, 1, shard.primary)
            assert replica.store is not old_store
            for table in cks.TABLES:
                np.testing.assert_array_equal(
                    replica.store.read_table_rows(table),
                    shard.primary.store.read_table_rows(table),
                )
            assert sharded.verify().clean
            # the rebuilt replica still answers queries
            outcome = shard.search_outcome("drop", T, V)
            assert outcome.status is ResultStatus.COMPLETE

    @settings(max_examples=15, deadline=None)
    @given(
        table=st.sampled_from(list(cks.TABLES)),
        data=st.data(),
    )
    def test_property_single_mutation_exact_leaf_and_byte_repair(
        self, table, data
    ):
        """Any single mutated replica row diverges in exactly its leaf
        range, and repair restores byte-identical rows."""
        series = gapped_series(episodes=2, n=150, seed=7)
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=1, max_gap=MAX_GAP,
            replicas=2, leaf_size=8,
        ) as sharded:
            shard = sharded.shards[0]
            replica = shard.replicas[1]
            clean = replica.store.read_table_rows(table)
            n = clean.shape[0]
            if n == 0:
                return
            row = data.draw(
                st.integers(min_value=0, max_value=n - 1), label="row"
            )
            col = data.draw(
                st.integers(min_value=0, max_value=clean.shape[1] - 1),
                label="col",
            )
            bad = clean[row : row + 1].copy()
            bad[0, col] += 0.5
            replica.store.replace_table_rows(table, row, bad)

            report = sharded.verify()
            divs = [d for d in report.divergences]
            assert len(divs) == 1
            tree = cks.build_tree(clean, table, leaf_size=8)
            assert divs[0].table == table
            assert divs[0].ranges == (
                tree.leaf_range(tree.leaf_of_row(row)),
            )
            after = sharded.repair(report)
            assert after.clean
            np.testing.assert_array_equal(
                replica.store.read_table_rows(table), clean
            )


class TestSqlitePersistence:
    def test_read_replace_roundtrip(self, tmp_path, walk_series):
        with SegDiffIndex.build(
            walk_series, EPS, WINDOW, backend="sqlite",
            path=str(tmp_path / "x.idx"),
        ) as index:
            rows = index.store.read_table_rows("drop_points")
            assert rows.shape[1] == 6
            patch = rows[3:5].copy()
            patch[:, 1] += 1.0
            index.store.replace_table_rows("drop_points", 3, patch)
            again = index.store.read_table_rows("drop_points", 3, 5)
            np.testing.assert_array_equal(again, patch)

    def test_manifest_roundtrip_and_reopen(self, tmp_path, series):
        d = str(tmp_path)
        sharded = ShardedIndex.build(
            series, EPS, WINDOW, n_shards=2, max_gap=MAX_GAP,
            replicas=2, backend="sqlite", directory=d,
        )
        sharded.save_manifest(d)
        want = pair_set(sharded.search_outcome("drop", T, V).pairs)
        sharded.close()

        with ShardedIndex.open(d) as reopened:
            assert len(reopened.shards) == 2
            outcome = reopened.search_outcome("drop", T, V)
            assert pair_set(outcome.pairs) == want
            assert reopened.verify().clean

    def test_sqlite_divergence_repaired_in_place(self, tmp_path, series):
        import sqlite3

        d = str(tmp_path)
        sharded = ShardedIndex.build(
            series, EPS, WINDOW, n_shards=1, max_gap=MAX_GAP,
            replicas=2, backend="sqlite", directory=d,
        )
        sharded.save_manifest(d)
        sharded.close()
        path = str(tmp_path / "t0-r1.sqlite")
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE drop_points SET dv = dv + 9 WHERE rowid = 2"
        )
        conn.commit()
        conn.close()
        with ShardedIndex.open(d) as reopened:
            report = reopened.verify()
            assert not report.clean
            assert reopened.repair(report).clean


class TestBreakerLabels:
    def test_same_backend_distinct_names_distinct_series(self):
        from repro.engine.resilience import CircuitBreaker

        CircuitBreaker(backend="memory", name="shardA/r0")
        CircuitBreaker(backend="memory", name="shardB/r0")
        a = REGISTRY.get(
            "repro_breaker_state",
            {"backend": "memory", "name": "shardA/r0"},
        )
        b = REGISTRY.get(
            "repro_breaker_state",
            {"backend": "memory", "name": "shardB/r0"},
        )
        assert a is not None and b is not None and a is not b

    def test_name_defaults_to_backend(self):
        from repro.engine.resilience import CircuitBreaker

        breaker = CircuitBreaker(backend="t-default-name")
        assert breaker.name == "t-default-name"
        assert REGISTRY.get(
            "repro_breaker_state",
            {"backend": "t-default-name", "name": "t-default-name"},
        ) is not None


class TestHigherLevelEntryPoints:
    def test_tiered_search_outcome_routes(self, walk_series):
        from repro.core.tiered import TieredIndex

        with TieredIndex.build(
            walk_series, [0.1, 0.8], WINDOW
        ) as tiered:
            outcome = tiered.search_outcome("drop", T, V)
            assert outcome.status is ResultStatus.COMPLETE
            assert pair_set(outcome.pairs) == pair_set(
                tiered.search_drops(T, V)
            )

    def test_transect_as_sharded_matches_per_sensor(self):
        from repro.core.transect import TransectIndex

        sensors = {
            "a": gapped_series(episodes=1, seed=3),
            "b": gapped_series(episodes=1, seed=4),
        }
        transect = TransectIndex.build(sensors, EPS, WINDOW)
        try:
            per_sensor = transect.search_drops(T, V)
            want = sorted(
                p.as_tuple()
                for pairs in per_sensor.values()
                for p in pairs
            )
            outcome = transect.search_outcome("drop", T, V)
            assert outcome.status is ResultStatus.COMPLETE
            assert pair_set(outcome.pairs) == sorted(set(want))
            assert transect.as_sharded() is transect.as_sharded()
        finally:
            transect.close()

    def test_metrics_registered(self, series):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=2, max_gap=MAX_GAP
        ) as sharded:
            sharded.search_outcome("drop", T, V)
            for shard in sharded.shards:
                counter = REGISTRY.get(
                    "repro_shard_queries_total",
                    {"shard": shard.shard_id, "status": "ok"},
                )
                assert counter is not None and counter.value >= 1


class TestShardCLI:
    @pytest.fixture
    def shard_dir(self, tmp_path, series):
        from repro.cli import main
        from repro.datagen import save_series_csv

        csv = str(tmp_path / "s.csv")
        save_series_csv(series, csv)
        d = str(tmp_path / "shards")
        assert main([
            "shard-build", csv, "--directory", d,
            "--shards", "2", "--replicas", "2",
            "--max-gap", str(MAX_GAP),
        ]) == 0
        return d

    def test_verify_clean_then_corrupt_then_repair(self, shard_dir):
        import os
        import sqlite3

        from repro.cli import main

        assert main(["verify", shard_dir]) == 0
        victim = next(
            os.path.join(shard_dir, f)
            for f in sorted(os.listdir(shard_dir))
            if f.endswith("-r1.sqlite")
        )
        conn = sqlite3.connect(victim)
        conn.execute("UPDATE drop_points SET dv = dv + 9 WHERE rowid = 1")
        conn.commit()
        conn.close()
        assert main(["verify", shard_dir]) == 1
        assert main(["repair", shard_dir]) == 0
        assert main(["verify", shard_dir]) == 0

    def test_verify_unsealed_single_index_errors(self, tmp_path,
                                                 walk_series):
        from repro.cli import main

        path = str(tmp_path / "plain.idx")
        with SegDiffIndex.build(
            walk_series, EPS, WINDOW, backend="sqlite", path=path
        ):
            pass
        assert main(["verify", path]) == 1

"""Tests for the robust smoothing preprocessing."""

import numpy as np
import pytest

from repro.datagen import TimeSeries, robust_loess, moving_average, sinusoid_series
from repro.errors import InvalidParameterError


def spiked_line(n=60, spike_at=30, spike=15.0):
    t = np.arange(n, dtype=float)
    v = 0.5 * t  # clean line
    v[spike_at] += spike
    return TimeSeries(t, v), 0.5 * t


class TestRobustLoess:
    def test_removes_isolated_spike(self):
        series, clean = spiked_line()
        smoothed = robust_loess(series, span=7, iterations=2)
        residual = np.abs(smoothed.values - clean)
        assert residual.max() < 0.5, "spike should be rejected by bisquare"

    def test_plain_loess_keeps_spike_influence(self):
        """Without robust iterations the spike leaks into the fit."""
        series, clean = spiked_line()
        plain = robust_loess(series, span=7, iterations=0)
        robust = robust_loess(series, span=7, iterations=2)
        leak_plain = np.abs(plain.values - clean).max()
        leak_robust = np.abs(robust.values - clean).max()
        assert leak_plain > leak_robust

    def test_preserves_genuine_sharp_drop(self):
        """A multi-sample CAD-like drop must survive smoothing."""
        t = np.arange(100, dtype=float)
        v = np.where(t < 50, 10.0, 2.0)  # sustained 8-degree drop
        series = TimeSeries(t, v)
        smoothed = robust_loess(series, span=7, iterations=2)
        assert smoothed.values[:45].mean() > 9.0
        assert smoothed.values[55:].mean() < 3.0

    def test_exact_on_straight_line(self):
        t = np.arange(30, dtype=float)
        series = TimeSeries(t, 2.0 * t + 1.0)
        smoothed = robust_loess(series, span=7)
        assert np.allclose(smoothed.values, series.values, atol=1e-8)

    def test_short_series_global_fit(self):
        series = TimeSeries([0.0, 1.0, 2.0], [0.0, 1.0, 2.0])
        smoothed = robust_loess(series, span=9)
        assert np.allclose(smoothed.values, series.values, atol=1e-8)

    def test_reduces_noise_variance(self):
        noisy = sinusoid_series(300, noise_std=0.5, seed=2)
        clean = sinusoid_series(300, noise_std=0.0)
        smoothed = robust_loess(noisy, span=9, iterations=1)
        err_before = np.std(noisy.values - clean.values)
        err_after = np.std(smoothed.values - clean.values)
        assert err_after < err_before

    @pytest.mark.parametrize("kwargs", [
        {"span": 2},
        {"span": 8},
        {"iterations": -1},
    ])
    def test_invalid_params_rejected(self, kwargs):
        series = TimeSeries(np.arange(20.0), np.zeros(20))
        with pytest.raises(InvalidParameterError):
            robust_loess(series, **kwargs)

    def test_keeps_timestamps(self):
        series = sinusoid_series(50, noise_std=0.1, seed=1)
        smoothed = robust_loess(series)
        assert np.array_equal(smoothed.times, series.times)


class TestMovingAverage:
    def test_flattens_noise(self):
        noisy = sinusoid_series(200, noise_std=0.5, seed=4)
        clean = sinusoid_series(200, noise_std=0.0)
        smoothed = moving_average(noisy, window=5)
        assert np.std(smoothed.values - clean.values) < np.std(
            noisy.values - clean.values
        )

    def test_identity_window_one(self):
        s = sinusoid_series(20)
        assert moving_average(s, window=1) == s

    def test_even_window_rejected(self):
        with pytest.raises(InvalidParameterError):
            moving_average(sinusoid_series(20), window=4)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(InvalidParameterError):
            moving_average(sinusoid_series(20), window=0)

"""Tests for resilient query serving: deadlines, admission control,
circuit breakers, degraded modes, retry unification, and the read-path
chaos harness (docs/resilience.md)."""

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.index import SegDiffIndex
from repro.core.queries import DropQuery, JumpQuery
from repro.datagen import random_walk_series
from repro.engine import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    QueryGuard,
    QuerySession,
    ResiliencePolicy,
    ResultStatus,
    RetryPolicy,
)
from repro.errors import (
    CircuitOpenError,
    InvalidParameterError,
    QueryCancelled,
    QueryRejected,
    QueryTimeout,
    ResilienceError,
    StorageError,
)
from repro.obs.metrics import REGISTRY
from repro.storage.faults import FaultyStoreWrapper, ReadFaultPolicy

HOUR = 3600.0

DROP = DropQuery(HOUR, -2.0)
JUMP = JumpQuery(2 * HOUR, 1.0)


class FakeClock:
    """A controllable monotonic clock for deadline/breaker tests."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def counter_value(name, labels=None):
    metric = REGISTRY.get(name, labels)
    return metric.value if metric is not None else 0.0


@pytest.fixture(scope="module")
def walk_series():
    return random_walk_series(400, dt=300.0, step_std=0.8, seed=71)


@pytest.fixture(scope="module")
def memory_index(walk_series):
    index = SegDiffIndex.build(walk_series, 0.2, 8 * HOUR, backend="memory")
    yield index
    index.close()


@pytest.fixture(scope="module")
def reference(memory_index):
    """No-fault answers for the two canonical queries (mode='index')."""
    sess = QuerySession(memory_index.store)
    return {
        "drop": sess.search(DROP, mode="index"),
        "jump": sess.search(JUMP, mode="index"),
    }


def make_session(memory_index, policy=None, fault_policy=None):
    wrapper = FaultyStoreWrapper(memory_index.store, fault_policy)
    return wrapper, QuerySession(wrapper, resilience=policy)


# ---------------------------------------------------------------------- #
# deadlines and guards
# ---------------------------------------------------------------------- #


class TestDeadline:
    def test_budget_accounting(self):
        clock = FakeClock()
        d = Deadline(2.0, clock=clock)
        assert d.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert d.elapsed() == pytest.approx(1.5)
        assert d.remaining() == pytest.approx(0.5)
        assert not d.expired()
        clock.advance(1.0)
        assert d.expired()
        assert d.remaining() < 0

    def test_from_timeout_ms(self):
        d = Deadline.from_timeout_ms(250.0, clock=FakeClock())
        assert d.budget_s == pytest.approx(0.25)

    def test_invalid_budget(self):
        with pytest.raises(InvalidParameterError):
            Deadline(0.0)
        with pytest.raises(InvalidParameterError):
            Deadline(-1.0)


class TestQueryGuard:
    def test_tick_raises_after_deadline_with_completeness(self):
        clock = FakeClock()
        guard = QueryGuard(deadline=Deadline(1.0, clock=clock))
        guard.start_op("point_range")
        guard.finish_op("point_range")
        guard.start_op("line_cross")
        guard.tick()  # within budget: no-op
        clock.advance(1.1)
        with pytest.raises(QueryTimeout) as exc_info:
            guard.tick()
        exc = exc_info.value
        assert "line_cross" in str(exc)
        assert exc.completeness is not None
        assert exc.completeness.finished == ("point_range",)
        assert exc.completeness.unfinished == ("line_cross",)

    def test_cancel(self):
        guard = QueryGuard()
        guard.tick()
        guard.cancel()
        with pytest.raises(QueryCancelled):
            guard.tick()

    def test_wrap_iter_ticks_periodically(self):
        clock = FakeClock()
        guard = QueryGuard(deadline=Deadline(1.0, clock=clock), check_every=10)
        rows = iter(range(100))

        def expire_midway():
            for i, row in enumerate(guard.wrap_iter(rows)):
                if i == 42:
                    clock.advance(2.0)
                yield row

        consumed = []
        with pytest.raises(QueryTimeout):
            for row in expire_midway():
                consumed.append(row)
        # cancelled at the next multiple-of-10 checkpoint, not at the end
        assert 42 < len(consumed) <= 52

    def test_near_deadline_fraction_and_margin(self):
        clock = FakeClock()
        guard = QueryGuard(
            deadline=Deadline(1.0, clock=clock), degrade_fraction=0.25
        )
        assert not guard.near_deadline()
        clock.advance(0.8)  # 0.2 left < 0.25 margin
        assert guard.near_deadline()

        clock2 = FakeClock()
        explicit = QueryGuard(
            deadline=Deadline(1.0, clock=clock2), degrade_margin_s=0.9
        )
        clock2.advance(0.2)  # 0.8 left < 0.9 explicit margin
        assert explicit.near_deadline()

        assert not QueryGuard().near_deadline()  # no deadline at all

    def test_call_routes_through_breaker(self):
        breaker = CircuitBreaker(failure_threshold=1, backend="t-guard")
        guard = QueryGuard(breaker=breaker)
        with pytest.raises(StorageError):
            guard.call(lambda: (_ for _ in ()).throw(StorageError("boom")))
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            guard.call(lambda: 1)
        # without a breaker, call() is a plain invocation
        assert QueryGuard().call(lambda: 42) == 42

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            QueryGuard(degrade="bogus")
        with pytest.raises(InvalidParameterError):
            QueryGuard(check_every=0)


# ---------------------------------------------------------------------- #
# retry policy
# ---------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_retries_transient_with_backoff(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.01, multiplier=2.0,
            name="t-backoff", sleep=sleeps.append,
        )
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise StorageError("transient")
            return "ok"

        assert policy.run(flaky) == "ok"
        assert calls["n"] == 3
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_exhaustion_wraps_final_failure(self):
        policy = RetryPolicy(max_attempts=3, name="t-wrap", sleep=lambda s: None)

        def always():
            raise StorageError("still broken")

        with pytest.raises(StorageError, match="after 3 attempt") as exc_info:
            policy.run(
                always,
                wrap=lambda exc, n: StorageError(
                    f"{exc} (after {n} attempt(s))"
                ),
            )
        assert isinstance(exc_info.value.__cause__, StorageError)

    def test_non_transient_not_retried(self):
        policy = RetryPolicy(max_attempts=5, name="t-perm", sleep=lambda s: None)
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise StorageError("corrupt")

        with pytest.raises(StorageError, match="corrupt"):
            policy.run(fatal, transient=lambda exc: False)
        assert calls["n"] == 1

    def test_uncaught_types_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, name="t-type", sleep=lambda s: None)
        calls = {"n": 0}

        def wrong_type():
            calls["n"] += 1
            raise ValueError("not storage")

        with pytest.raises(ValueError):
            policy.run(wrong_type)
        assert calls["n"] == 1

    def test_retry_metric_incremented(self):
        policy = RetryPolicy(max_attempts=3, name="t-metric", sleep=lambda s: None)
        before = counter_value(
            "repro_retry_attempts_total", {"policy": "t-metric"}
        )
        calls = {"n": 0}

        def once():
            calls["n"] += 1
            if calls["n"] == 1:
                raise StorageError("busy")
            return 1

        assert policy.run(once) == 1
        after = counter_value(
            "repro_retry_attempts_total", {"policy": "t-metric"}
        )
        assert after == before + 1


# ---------------------------------------------------------------------- #
# circuit breaker
# ---------------------------------------------------------------------- #


class TestCircuitBreaker:
    @staticmethod
    def _fail():
        raise StorageError("backend down")

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        b = CircuitBreaker(
            failure_threshold=3, cooldown_s=1.0, backend="t-open", clock=clock
        )
        for _ in range(2):
            with pytest.raises(StorageError):
                b.call(self._fail)
        assert b.state == "closed"
        with pytest.raises(StorageError):
            b.call(self._fail)
        assert b.state == "open"
        # fail fast without invoking fn
        calls = {"n": 0}

        def count():
            calls["n"] += 1

        with pytest.raises(CircuitOpenError):
            b.call(count)
        assert calls["n"] == 0
        assert counter_value("repro_breaker_state", {"backend": "t-open", "name": "t-open"}) == 2.0

    def test_success_resets_consecutive_count(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=2, backend="t-reset", clock=clock)
        with pytest.raises(StorageError):
            b.call(self._fail)
        b.call(lambda: "ok")  # breaks the streak
        with pytest.raises(StorageError):
            b.call(self._fail)
        assert b.state == "closed"

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        b = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, backend="t-probe", clock=clock
        )
        with pytest.raises(StorageError):
            b.call(self._fail)
        assert b.state == "open"
        clock.advance(1.5)
        assert b.state == "half_open"
        assert counter_value("repro_breaker_state", {"backend": "t-probe", "name": "t-probe"}) == 1.0
        assert b.call(lambda: "healed") == "healed"
        assert b.state == "closed"
        assert counter_value("repro_breaker_state", {"backend": "t-probe", "name": "t-probe"}) == 0.0

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        b = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, backend="t-reopen", clock=clock
        )
        with pytest.raises(StorageError):
            b.call(self._fail)
        clock.advance(1.5)
        with pytest.raises(StorageError):
            b.call(self._fail)  # failed probe
        assert b.state == "open"
        clock.advance(0.5)  # cool-down restarted: still open
        assert b.state == "open"
        clock.advance(0.6)
        assert b.state == "half_open"

    def test_single_probe_in_flight(self):
        clock = FakeClock()
        b = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, backend="t-single", clock=clock
        )
        with pytest.raises(StorageError):
            b.call(self._fail)
        clock.advance(1.5)

        def slow_probe():
            # a second caller arriving while the probe runs is rejected
            with pytest.raises(CircuitOpenError):
                b.call(lambda: "me too")
            return "probe ok"

        assert b.call(slow_probe) == "probe ok"
        assert b.state == "closed"


# ---------------------------------------------------------------------- #
# admission control
# ---------------------------------------------------------------------- #


class TestAdmissionController:
    def test_sheds_when_saturated_and_no_queue(self):
        ac = AdmissionController(max_concurrency=1, max_queue=0)
        before = counter_value("repro_queries_shed_total")
        ac.acquire()
        with pytest.raises(QueryRejected):
            ac.acquire()
        assert ac.shed_count == 1
        assert counter_value("repro_queries_shed_total") == before + 1
        ac.release()
        ac.acquire()  # free again
        ac.release()

    def test_queue_wait_times_out(self):
        ac = AdmissionController(
            max_concurrency=1, max_queue=1, queue_timeout_s=0.05
        )
        ac.acquire()
        t0 = time.monotonic()
        with pytest.raises(QueryRejected, match="timed out"):
            ac.acquire()
        assert time.monotonic() - t0 < 1.0
        ac.release()

    def test_queue_wait_bounded_by_deadline(self):
        ac = AdmissionController(
            max_concurrency=1, max_queue=1, queue_timeout_s=10.0
        )
        ac.acquire()
        t0 = time.monotonic()
        with pytest.raises(QueryRejected):
            ac.acquire(Deadline(0.05))
        assert time.monotonic() - t0 < 1.0
        ac.release()

    def test_queued_query_admitted_on_release(self):
        ac = AdmissionController(
            max_concurrency=1, max_queue=1, queue_timeout_s=5.0
        )
        ac.acquire()
        admitted = threading.Event()

        def waiter():
            ac.acquire()
            admitted.set()
            ac.release()

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.02)
        assert not admitted.is_set()
        ac.release()
        t.join(timeout=5.0)
        assert admitted.is_set()
        assert ac.active == 0

    def test_admit_context_releases_on_error(self):
        ac = AdmissionController(max_concurrency=1)
        with pytest.raises(RuntimeError):
            with ac.admit():
                assert ac.active == 1
                raise RuntimeError("query failed")
        assert ac.active == 0

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            AdmissionController(0)
        with pytest.raises(InvalidParameterError):
            AdmissionController(1, max_queue=-1)


# ---------------------------------------------------------------------- #
# end-to-end: deadlines through the engine (chaos harness)
# ---------------------------------------------------------------------- #


class TestDeadlinesEndToEnd:
    def test_hanging_store_respects_deadline(self, memory_index):
        """A store call that hangs forever returns within the budget."""
        wrapper, sess = make_session(
            memory_index,
            fault_policy=ReadFaultPolicy(hang_at={1}, hang_slice_s=0.01),
        )
        before = counter_value("repro_query_timeouts_total")
        t0 = time.monotonic()
        with pytest.raises(QueryTimeout) as exc_info:
            sess.search(DROP, mode="index", timeout_ms=150.0)
        elapsed = time.monotonic() - t0
        # budget 0.15s + one 0.01s hang slice, with generous CI headroom
        assert elapsed < 2.0
        assert counter_value("repro_query_timeouts_total") == before + 1
        completeness = exc_info.value.completeness
        assert completeness is not None
        assert "point_range" in completeness.unfinished
        assert wrapper.faults_injected == 1

    def test_partial_pairs_attached_on_midquery_timeout(self, memory_index):
        """Timeout after the point operator carries its partial pairs."""
        wrapper, sess = make_session(
            memory_index,
            fault_policy=ReadFaultPolicy(hang_at={2}, hang_slice_s=0.01),
        )
        with pytest.raises(QueryTimeout) as exc_info:
            sess.search(DROP, mode="index", timeout_ms=150.0)
        exc = exc_info.value
        assert exc.completeness is not None
        assert exc.completeness.finished == ("point_range",)
        assert "line_cross" in exc.completeness.unfinished
        assert exc.partial_pairs is not None

    def test_no_timeout_within_budget(self, memory_index, reference):
        _, sess = make_session(memory_index)
        outcome = sess.search_outcome(DROP, mode="index", timeout_ms=60_000.0)
        assert outcome.status is ResultStatus.COMPLETE
        assert outcome.pairs == reference["drop"]

    def test_batch_timeout_covers_whole_grid(self, memory_index):
        wrapper, sess = make_session(
            memory_index,
            fault_policy=ReadFaultPolicy(hang_at={1}, hang_slice_s=0.01),
        )
        with pytest.raises(QueryTimeout):
            sess.search_batch([DROP, JUMP], mode="index", timeout_ms=150.0)


# ---------------------------------------------------------------------- #
# end-to-end: degraded mode
# ---------------------------------------------------------------------- #


class TestDegradedMode:
    def test_degraded_is_superset_of_refined(self, memory_index, walk_series):
        """degrade='candidates' answers contain every refined hit."""
        full = QuerySession(memory_index.store).search(
            DROP, mode="index", data=walk_series
        )
        # margin larger than the budget: the refine pass is always
        # "near the deadline" and is skipped deterministically
        policy = ResiliencePolicy(
            timeout_ms=60_000.0, degrade="candidates",
            degrade_margin_ms=120_000.0,
        )
        _, sess = make_session(memory_index, policy=policy)
        before = counter_value("repro_queries_degraded_total")
        outcome = sess.search_outcome(DROP, mode="index", data=walk_series)
        assert outcome.status is ResultStatus.DEGRADED
        assert outcome.hits is None
        assert counter_value("repro_queries_degraded_total") == before + 1
        assert outcome.completeness is not None
        # zero false negatives (Theorem 1): candidates ⊇ refined answer
        assert {hit.pair for hit in full} <= set(outcome.pairs)

    def test_degrade_not_triggered_far_from_deadline(
        self, memory_index, walk_series
    ):
        policy = ResiliencePolicy(
            timeout_ms=60_000.0, degrade="candidates", degrade_margin_ms=1.0
        )
        _, sess = make_session(memory_index, policy=policy)
        outcome = sess.search_outcome(DROP, mode="index", data=walk_series)
        assert outcome.status is ResultStatus.COMPLETE
        assert outcome.hits is not None
        full = QuerySession(memory_index.store).search(
            DROP, mode="index", data=walk_series
        )
        assert outcome.hits == full

    def test_per_query_degrade_override(self, memory_index, walk_series):
        """degrade= on search() works without any session policy."""
        policy = ResiliencePolicy(
            timeout_ms=60_000.0, degrade_margin_ms=120_000.0
        )
        _, sess = make_session(memory_index, policy=policy)
        outcome = sess.search_outcome(
            DROP, mode="index", data=walk_series, degrade="candidates"
        )
        assert outcome.status is ResultStatus.DEGRADED


# ---------------------------------------------------------------------- #
# end-to-end: batch failure isolation
# ---------------------------------------------------------------------- #


class TestBatchFailureIsolation:
    def test_one_failing_group_leaves_rest_of_grid(
        self, memory_index, reference
    ):
        # call 1 = drop group's point fetch fails; jump group (calls 2-3)
        # is untouched
        wrapper, sess = make_session(
            memory_index, fault_policy=ReadFaultPolicy(error_at={1})
        )
        outcomes = sess.search_batch_outcomes([DROP, JUMP], mode="index")
        assert len(outcomes) == 2
        drop_out, jump_out = outcomes
        assert drop_out.status is ResultStatus.FAILED
        assert isinstance(drop_out.error, StorageError)
        assert drop_out.pairs == []
        assert jump_out.status is ResultStatus.COMPLETE
        assert jump_out.error is None
        assert jump_out.pairs == reference["jump"]

    def test_search_batch_reraises_first_group_error(self, memory_index):
        wrapper, sess = make_session(
            memory_index, fault_policy=ReadFaultPolicy(error_at={1})
        )
        with pytest.raises(StorageError, match="injected read fault"):
            sess.search_batch([DROP, JUMP], mode="index")

    def test_healthy_batch_unaffected(self, memory_index, reference):
        _, sess = make_session(memory_index)
        results = sess.search_batch([DROP, JUMP], mode="index")
        assert results == [reference["drop"], reference["jump"]]


# ---------------------------------------------------------------------- #
# end-to-end: circuit breaker through the session
# ---------------------------------------------------------------------- #


class TestBreakerEndToEnd:
    def test_open_failfast_and_recovery(self, memory_index, reference):
        policy = ResiliencePolicy(breaker_failures=3, breaker_cooldown_ms=80.0)
        wrapper, sess = make_session(
            memory_index, policy=policy,
            fault_policy=ReadFaultPolicy(fail_next=3),
        )
        for _ in range(3):
            with pytest.raises(StorageError):
                sess.search(DROP, mode="index")
        assert sess.breaker.state == "open"
        assert (
            counter_value("repro_breaker_state", {"backend": "memory", "name": "memory"}) == 2.0
        )

        # while open: fail fast, the store is never touched
        calls_before = wrapper.read_calls
        with pytest.raises(CircuitOpenError):
            sess.search(DROP, mode="index")
        assert wrapper.read_calls == calls_before

        # after the cool-down the half-open probe heals the circuit
        time.sleep(0.1)
        assert sess.breaker.state == "half_open"
        pairs = sess.search(DROP, mode="index")
        assert sess.breaker.state == "closed"
        assert pairs == reference["drop"]


# ---------------------------------------------------------------------- #
# end-to-end: admission control under concurrency (stress smoke)
# ---------------------------------------------------------------------- #


class TestAdmissionStress:
    def test_sixteen_concurrent_searches_no_deadlock(
        self, memory_index, reference
    ):
        """16 threads against max_concurrency=4: every query either
        completes correctly or is shed; nothing deadlocks or is lost."""
        n_threads = 16
        policy = ResiliencePolicy(max_concurrency=4, max_queue=0)
        wrapper, sess = make_session(
            memory_index, policy=policy,
            fault_policy=ReadFaultPolicy(
                latency_at=set(range(1, 20 * n_threads)), latency_s=0.02
            ),
        )
        shed_before = counter_value("repro_queries_shed_total")
        barrier = threading.Barrier(n_threads)
        completed, shed, unexpected = [], [], []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            try:
                pairs = sess.search(DROP, mode="index")
            except QueryRejected:
                with lock:
                    shed.append(1)
            except BaseException as exc:  # noqa: BLE001 - recorded, asserted
                with lock:
                    unexpected.append(exc)
            else:
                with lock:
                    completed.append(pairs)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads), "deadlocked workers"
        assert not unexpected
        assert len(completed) + len(shed) == n_threads
        assert len(shed) >= 1  # saturation with no queue must shed
        assert len(completed) >= policy.max_concurrency
        # shed accounting is exact: controller count == observed == metric
        assert sess.admission.shed_count == len(shed)
        assert (
            counter_value("repro_queries_shed_total") - shed_before
            == len(shed)
        )
        for pairs in completed:
            assert pairs == reference["drop"]


# ---------------------------------------------------------------------- #
# property: no fault schedule yields a silently short answer
# ---------------------------------------------------------------------- #


class TestFaultScheduleProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        error_at=st.sets(st.integers(min_value=1, max_value=4), max_size=4),
        fail_next=st.integers(min_value=0, max_value=2),
    )
    def test_complete_results_match_no_fault_run(
        self, memory_index, reference, error_at, fail_next
    ):
        """Any injected fault schedule → either the exact no-fault answer
        (COMPLETE) or a typed resilience/storage error — never a silently
        truncated result set."""
        wrapper, sess = make_session(
            memory_index,
            fault_policy=ReadFaultPolicy(
                error_at=set(error_at), fail_next=fail_next
            ),
        )
        for query, key in ((DROP, "drop"), (JUMP, "jump")):
            try:
                outcome = sess.search_outcome(query, mode="index")
            except (StorageError, ResilienceError):
                continue  # typed failure: loudly incomplete, acceptable
            assert outcome.status is ResultStatus.COMPLETE
            assert outcome.pairs == reference[key]


# ---------------------------------------------------------------------- #
# store-level retry unification
# ---------------------------------------------------------------------- #


class TestMiniDbOpenRetry:
    def test_transient_open_failure_retried(self, tmp_path, monkeypatch):
        from repro.storage.minidb import store as mstore

        # build a valid store first so the retried open succeeds
        path = str(tmp_path / "retry.minidb")
        mstore.MiniDbFeatureStore(path).close()

        real = mstore.MiniDatabase
        calls = {"n": 0}

        def flaky(*a, **kw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise StorageError("database file is locked")
            return real(*a, **kw)

        monkeypatch.setattr(mstore, "MiniDatabase", flaky)
        monkeypatch.setattr(mstore._OPEN_RETRY, "sleep", lambda s: None)
        before = counter_value(
            "repro_retry_attempts_total", {"policy": "minidb_open"}
        )
        store = mstore.MiniDbFeatureStore(path)
        store.close()
        assert calls["n"] == 2
        assert (
            counter_value(
                "repro_retry_attempts_total", {"policy": "minidb_open"}
            )
            == before + 1
        )

    def test_corruption_not_retried(self, tmp_path, monkeypatch):
        from repro.errors import CorruptionError
        from repro.storage.minidb import store as mstore

        calls = {"n": 0}

        def corrupt(*a, **kw):
            calls["n"] += 1
            raise CorruptionError("bad page checksum")

        monkeypatch.setattr(mstore, "MiniDatabase", corrupt)
        monkeypatch.setattr(mstore._OPEN_RETRY, "sleep", lambda s: None)
        with pytest.raises(CorruptionError):
            mstore.MiniDbFeatureStore(str(tmp_path / "corrupt.minidb"))
        assert calls["n"] == 1


class TestSqliteRetryUnification:
    def test_sqlite_store_uses_shared_policy(self, tmp_path):
        from repro.storage.sqlite_store import SqliteFeatureStore

        store = SqliteFeatureStore(str(tmp_path / "r.sqlite"))
        try:
            policy = store._retry_policy()
            assert isinstance(policy, RetryPolicy)
            assert policy.name == "sqlite"
            assert policy.max_attempts == store.max_retries
            assert policy.base_delay == pytest.approx(0.02)
            # cached, but rebuilt when max_retries changes
            assert store._retry_policy() is policy
            store.max_retries = policy.max_attempts + 1
            assert store._retry_policy().max_attempts == store.max_retries
        finally:
            store.close()


# ---------------------------------------------------------------------- #
# observability surface
# ---------------------------------------------------------------------- #


class TestResilienceMetrics:
    def test_core_series_registered(self):
        assert REGISTRY.get("repro_query_timeouts_total") is not None
        assert REGISTRY.get("repro_queries_shed_total") is not None
        assert REGISTRY.get("repro_queries_degraded_total") is not None

    def test_breaker_gauge_and_retry_counter_labelled(self):
        CircuitBreaker(backend="t-registered")
        assert (
            REGISTRY.get(
                "repro_breaker_state",
                {"backend": "t-registered", "name": "t-registered"},
            )
            is not None
        )
        RetryPolicy(name="t-registered")
        assert (
            REGISTRY.get(
                "repro_retry_attempts_total", {"policy": "t-registered"}
            )
            is not None
        )

    def test_stats_cli_surfaces_resilience_metrics(self, capsys):
        from repro.cli import main

        assert main(["stats", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "repro_query_timeouts_total" in out
        assert "repro_queries_shed_total" in out


# ---------------------------------------------------------------------- #
# CLI flags
# ---------------------------------------------------------------------- #


class TestCliResilienceFlags:
    @pytest.fixture
    def index_path(self, tmp_path):
        from repro.cli import main

        csv = str(tmp_path / "data.csv")
        assert main(["generate", "--days", "2", "--seed", "3",
                     "--out", csv]) == 0
        smooth = str(tmp_path / "smooth.csv")
        assert main(["smooth", csv, "--out", smooth]) == 0
        idx = str(tmp_path / "cad.idx")
        assert main(["build", smooth, "--epsilon", "0.2",
                     "--window-hours", "8", "--index", idx]) == 0
        return idx

    def test_search_with_resilience_flags(self, index_path, capsys):
        from repro.cli import main

        assert main([
            "search", index_path, "--drop", "-3",
            "--timeout-ms", "60000", "--degrade", "candidates",
            "--max-concurrency", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "matching periods" in out

    def test_search_without_flags_unchanged(self, index_path, capsys):
        from repro.cli import main

        assert main(["search", index_path, "--drop", "-3"]) == 0
        capsys.readouterr()

"""Tests for the online sliding-window segmenter.

Includes a quadratic reference implementation (re-scan the window on
every extension, exactly as Keogh et al. describe it) and property tests
asserting the O(1)-per-point slope-funnel version produces identical
segments and respects the Definition 2 / Lemma 1 error bound.
"""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen import PiecewiseLinearSignal, TimeSeries, piecewise_series
from repro.errors import InvalidSeriesError
from repro.segmentation import (
    SlidingWindowSegmenter,
    compression_rate,
    max_abs_error,
    verify_tolerance,
)
from repro.types import DataSegment


def reference_sliding_window(series: TimeSeries, epsilon: float):
    """Quadratic re-scan version of the same algorithm (test oracle).

    Also returns the smallest decision margin ``| |chord - v| - eps/2 |``
    encountered: when it is at float-rounding scale, the accept/reject
    choice is arithmetically ambiguous and an O(1) reformulation may
    legitimately decide differently, so equivalence tests skip such
    inputs.
    """
    t, v = series.times, series.values
    max_err = epsilon / 2.0
    segments = []
    min_margin = float("inf")
    anchor = 0
    end = 1
    i = 2
    while i < len(t):
        # try to extend the segment to point i
        slope = (v[i] - v[anchor]) / (t[i] - t[anchor])
        ok = True
        for j in range(anchor + 1, i):
            chord = v[anchor] + slope * (t[j] - t[anchor])
            deviation = abs(chord - v[j])
            min_margin = min(min_margin, abs(deviation - max_err))
            if deviation > max_err:
                ok = False
                break
        if ok:
            end = i
        else:
            segments.append(
                DataSegment(t[anchor], v[anchor], t[end], v[end])
            )
            anchor = end
            end = i
        i += 1
    segments.append(DataSegment(t[anchor], v[anchor], t[end], v[end]))
    return segments, min_margin


finite_vals = st.floats(min_value=-1000, max_value=1000, allow_nan=False)


class TestBasics:
    def test_straight_line_one_segment(self):
        s = TimeSeries(np.arange(10.0), 2.0 * np.arange(10.0))
        segs = SlidingWindowSegmenter(0.1).segment(s)
        assert len(segs) == 1
        assert segs[0].t_start == 0.0 and segs[0].t_end == 9.0

    def test_two_point_series(self):
        s = TimeSeries([0.0, 1.0], [0.0, 5.0])
        segs = SlidingWindowSegmenter(0.5).segment(s)
        assert segs == [DataSegment(0.0, 0.0, 1.0, 5.0)]

    def test_single_point_rejected(self):
        with pytest.raises(InvalidSeriesError):
            SlidingWindowSegmenter(0.5).segment(TimeSeries([0.0], [0.0]))

    def test_v_shape_two_segments(self):
        s = piecewise_series([0.0, 500.0, 1000.0], [0.0, -10.0, 0.0], dt=100.0)
        segs = SlidingWindowSegmenter(0.01).segment(s)
        assert len(segs) == 2
        assert segs[0].t_end == 500.0

    def test_zero_epsilon_recovers_breakpoints(self):
        s = piecewise_series(
            [0.0, 300.0, 600.0, 1200.0], [0.0, 3.0, -2.0, -2.0], dt=100.0
        )
        segs = SlidingWindowSegmenter(0.0).segment(s)
        boundaries = {g.t_start for g in segs} | {segs[-1].t_end}
        assert {0.0, 300.0, 600.0, 1200.0} <= boundaries

    def test_segments_are_contiguous_and_interpolating(self):
        s = TimeSeries(np.arange(50.0), np.sin(np.arange(50.0)))
        segs = SlidingWindowSegmenter(0.3).segment(s)
        for a, b in zip(segs, segs[1:]):
            assert a.t_end == b.t_start
            assert a.v_end == b.v_start
        # endpoints are actual samples
        sample_map = dict(zip(s.times, s.values))
        for seg in segs:
            assert sample_map[seg.t_start] == seg.v_start
            assert sample_map[seg.t_end] == seg.v_end

    def test_larger_epsilon_never_more_segments(self):
        s = TimeSeries(np.arange(200.0), np.sin(np.arange(200.0) / 3.0) * 5)
        counts = [
            len(SlidingWindowSegmenter(eps).segment(s))
            for eps in (0.1, 0.5, 1.0, 2.0)
        ]
        assert counts == sorted(counts, reverse=True)


class TestStreaming:
    def test_push_finish_equals_batch(self):
        s = TimeSeries(np.arange(100.0), np.cumsum(np.sin(np.arange(100.0))))
        batch = SlidingWindowSegmenter(0.4).segment(s)
        stream = SlidingWindowSegmenter(0.4)
        out = []
        for t, v in zip(s.times, s.values):
            out.extend(stream.push(float(t), float(v)))
        out.extend(stream.finish())
        assert out == batch

    def test_non_increasing_time_rejected(self):
        seg = SlidingWindowSegmenter(0.1)
        seg.push(0.0, 0.0)
        seg.push(1.0, 0.0)
        with pytest.raises(InvalidSeriesError):
            seg.push(1.0, 5.0)

    def test_finish_resets_state(self):
        seg = SlidingWindowSegmenter(0.1)
        seg.push(0.0, 0.0)
        seg.push(1.0, 1.0)
        assert len(seg.finish()) == 1
        assert seg.finish() == []  # nothing pending after reset


class TestErrorBound:
    @pytest.mark.parametrize("epsilon", [0.0, 0.1, 0.5, 2.0])
    def test_definition2_error_bound(self, epsilon, walk_series):
        segs = SlidingWindowSegmenter(epsilon).segment(walk_series)
        assert verify_tolerance(walk_series, segs, epsilon)

    def test_lemma1_holds_between_samples(self, walk_series):
        """|f(t) - G(t)| <= eps/2 at non-sampled times too (Lemma 1)."""
        epsilon = 1.0
        segs = SlidingWindowSegmenter(epsilon).segment(walk_series)
        f = PiecewiseLinearSignal.from_segments(segs)
        g = PiecewiseLinearSignal.from_series(walk_series)
        assert f.max_abs_error_vs(g) <= epsilon / 2.0 + 1e-9


class TestFunnelMatchesReference:
    @given(
        values=st.lists(finite_vals, min_size=2, max_size=60),
        epsilon=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_equivalent_to_quadratic_rescan(self, values, epsilon):
        from hypothesis import assume

        series = TimeSeries(np.arange(len(values), dtype=float), values)
        fast = SlidingWindowSegmenter(epsilon).segment(series)
        slow, margin = reference_sliding_window(series, epsilon)
        # skip arithmetically ambiguous inputs (decision exactly on the
        # eps/2 boundary, where rounding order legitimately differs)
        assume(margin > 1e-7)
        assert fast == slow

    @given(
        values=st.lists(finite_vals, min_size=2, max_size=80),
        epsilon=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_error_bound_property(self, values, epsilon):
        series = TimeSeries(np.arange(len(values), dtype=float), values)
        segs = SlidingWindowSegmenter(epsilon).segment(series)
        assert max_abs_error(series, segs) <= epsilon / 2.0 + 1e-6

    @given(
        values=st.lists(finite_vals, min_size=2, max_size=80),
        epsilon=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_segments_partition_series(self, values, epsilon):
        series = TimeSeries(np.arange(len(values), dtype=float), values)
        segs = SlidingWindowSegmenter(epsilon).segment(series)
        assert segs[0].t_start == series.t_start
        assert segs[-1].t_end == series.t_end
        assert compression_rate(series, segs) >= 1.0

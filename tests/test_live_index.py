"""Tests for the live (streaming, time-partitioned) index.

The headline contract is **batch ≡ live**: a LiveIndex fed a stream —
through any schedule of seals, compactions and reopens — answers every
query identically to a batch-built :class:`SegDiffIndex` over the same
observations.  On top of that: snapshot isolation under a concurrent
writer, crash-consistent manifests, TTL retention that never disturbs
pinned readers, and partition pruning visible in ``explain``.
"""

import os
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.index import SegDiffIndex
from repro.core.live import LiveIndex
from repro.core.tiered import LiveTieredIndex
from repro.errors import (
    InvalidParameterError,
    QueryError,
    StorageError,
)
from repro.obs.metrics import REGISTRY
from repro.storage.partitions import MANIFEST_NAME, PartitionManifest

HOUR = 3600.0

EPS = 0.8
WINDOW = 300.0

DROP_QUERIES = [(30.0, -1.0), (80.0, -2.5), (150.0, -4.0), (300.0, -0.5)]
JUMP_QUERIES = [(30.0, 1.0), (150.0, 2.5)]


def make_walk(seed, n=600):
    rng = np.random.default_rng(seed)
    ts = np.cumsum(rng.uniform(0.5, 3.0, n))
    vs = np.cumsum(rng.normal(0.0, 1.0, n))
    return ts, vs


def reference_index(ts, vs, finalize=True):
    ref = SegDiffIndex(EPS, WINDOW)
    for t, v in zip(ts, vs):
        ref.append(float(t), float(v))
    if finalize:
        ref.finalize()
    else:
        ref.checkpoint()
    return ref


def tuples(pairs):
    return [p.as_tuple() for p in pairs]


def assert_equivalent(ref, live_like):
    """Every canonical query answers identically on both."""
    for T, V in DROP_QUERIES:
        assert tuples(ref.search_drops(T, V)) == tuples(
            live_like.search_drops(T, V)
        ), ("drop", T, V)
    for T, V in JUMP_QUERIES:
        assert tuples(ref.search_jumps(T, V)) == tuples(
            live_like.search_jumps(T, V)
        ), ("jump", T, V)


class TestBatchLiveEquivalence:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 10_000),
        seal_rows=st.sampled_from([50, 400, 3000, 10**9]),
        use_array=st.booleans(),
    )
    def test_differential_equivalence_memory(self, seed, seal_rows, use_array):
        ts, vs = make_walk(seed, n=300)
        ref = reference_index(ts, vs)
        live = LiveIndex(EPS, WINDOW, seal_rows=seal_rows)
        if use_array:
            live.append_array(ts, vs, batch_size=97)
        else:
            for t, v in zip(ts, vs):
                live.append(float(t), float(v))
        live.finalize()
        assert_equivalent(ref, live)
        # auto mode routes through per-partition cost models; the answer
        # must not depend on the access path
        T, V = DROP_QUERIES[1]
        assert tuples(live.search_drops(T, V, mode="auto")) == tuples(
            ref.search_drops(T, V)
        )
        ref.close()
        live.close()

    def test_equivalence_sqlite_backend_and_reopen(self, tmp_path):
        ts, vs = make_walk(3, n=500)
        ref = reference_index(ts, vs)
        d = str(tmp_path / "live.d")
        live = LiveIndex(EPS, WINDOW, directory=d, seal_rows=2000)
        live.append_array(ts, vs, batch_size=60)
        live.finalize()
        assert len(live.partitions) >= 2  # actually partitioned
        assert_equivalent(ref, live)
        live.close()
        # durable: a fresh process (SegDiffIndex.open_live) sees the
        # identical answers
        reopened = SegDiffIndex.open_live(d)
        assert reopened.finalized
        assert_equivalent(ref, reopened)
        reopened.close()
        ref.close()

    def test_search_batch_matches_per_query_search(self):
        from repro.core.queries import DropQuery, JumpQuery

        ts, vs = make_walk(5, n=400)
        live = LiveIndex(EPS, WINDOW, seal_rows=300)
        live.append_array(ts, vs, batch_size=50)
        live.finalize()
        queries = [DropQuery(T, V) for T, V in DROP_QUERIES] + [
            JumpQuery(T, V) for T, V in JUMP_QUERIES
        ]
        batched = live.search_batch(queries)
        with live.snapshot() as snap:
            for q, got in zip(queries, batched):
                want = (
                    snap.search_drops(q.t_threshold, q.v_threshold)
                    if q.kind == "drop"
                    else snap.search_jumps(q.t_threshold, q.v_threshold)
                )
                assert tuples(got) == tuples(want)
        live.close()


class TestTimePruning:
    def _live(self, seed=7):
        ts, vs = make_walk(seed, n=500)
        live = LiveIndex(EPS, WINDOW, seal_rows=300)
        live.append_array(ts, vs, batch_size=40)
        live.finalize()
        return live, ts

    def test_t_range_filters_by_overlap(self):
        live, ts = self._live()
        T, V = 150.0, -1.0
        lo, hi = float(ts[100]), float(ts[220])
        full = live.search_drops(T, V)
        ranged = live.search_drops(T, V, t_range=(lo, hi))
        want = [p for p in full if p.t_a >= lo and p.t_d <= hi]
        assert tuples(ranged) == tuples(want)
        assert 0 < len(ranged) < len(full)
        live.close()

    def test_explain_reports_pruned_partitions(self):
        live, ts = self._live()
        specs = live.partitions
        assert len(specs) >= 3
        lo, hi = float(ts[0]), float(ts[40])
        fully_outside = sum(
            1 for s in specs
            if s.feature_t_max < lo or s.feature_t_min > hi
        )
        assert fully_outside >= 1
        ex = live.explain("drop", 150.0, -1.0, t_range=(lo, hi))
        assert ex["partitions_total"] == len(specs)
        assert ex["partitions_pruned"] >= fully_outside
        assert (
            ex["partitions_scanned"] + ex["partitions_pruned"]
            == ex["partitions_total"]
        )
        # pruning must not change the answer
        assert ex["n_pairs"] == len(live.search_drops(150.0, -1.0,
                                                      t_range=(lo, hi)))
        live.close()

    def test_t_range_on_plain_index_session(self):
        # the same predicate works un-partitioned, straight through the
        # engine session
        ts, vs = make_walk(9, n=300)
        ref = reference_index(ts, vs)
        T, V = 150.0, -1.0
        lo, hi = float(ts[50]), float(ts[150])
        full = ref.search_drops(T, V)
        ranged = ref.search_drops(T, V, t_range=(lo, hi))
        want = [p for p in full if p.t_a >= lo and p.t_d <= hi]
        assert tuples(ranged) == tuples(want)
        with pytest.raises(InvalidParameterError):
            ref.search_drops(T, V, t_range=(hi, lo))
        ref.close()


class TestSnapshotIsolation:
    def test_snapshot_equals_checkpointed_prefix(self):
        ts, vs = make_walk(13, n=600)
        live = LiveIndex(EPS, WINDOW, seal_rows=400)
        live.append_array(ts[:350], vs[:350])
        with live.snapshot() as snap:
            n = snap.n_observations
            assert n == 350
            ref = reference_index(ts[:n], vs[:n], finalize=False)
            for T, V in DROP_QUERIES:
                assert tuples(snap.search_drops(T, V)) == tuples(
                    ref.search_drops(T, V)
                )
            # the writer moves on; the pinned snapshot must not
            live.append_array(ts[350:], vs[350:])
            live.seal()
            live.compact(max_rows=10**9)
            for T, V in DROP_QUERIES:
                assert tuples(snap.search_drops(T, V)) == tuples(
                    ref.search_drops(T, V)
                )
            ref.close()
        live.close()

    def test_sixteen_readers_under_concurrent_writer(self):
        ts, vs = make_walk(17, n=1200)
        live = LiveIndex(EPS, WINDOW, seal_rows=300, auto_compact=True,
                         compact_rows=600)
        live.append_array(ts[:200], vs[:200])
        stop = threading.Event()
        errors = []

        def writer():
            i = 200
            try:
                while i < len(ts) and not stop.is_set():
                    j = min(i + 50, len(ts))
                    live.append_array(ts[i:j], vs[i:j])
                    i = j
                    live.seal()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                for _ in range(5):
                    with live.snapshot() as snap:
                        first = {
                            (T, V): tuples(snap.search_drops(T, V))
                            for T, V in DROP_QUERIES[:2]
                        }
                        # re-query: a pinned snapshot never changes,
                        # whatever the writer does meanwhile
                        for _ in range(3):
                            for (T, V), want in first.items():
                                got = tuples(snap.search_drops(T, V))
                                if got != want:
                                    raise AssertionError(
                                        f"snapshot drifted for {(T, V)}"
                                    )
            except Exception as exc:
                errors.append(exc)

        w = threading.Thread(target=writer)
        readers = [threading.Thread(target=reader) for _ in range(16)]
        w.start()
        for r in readers:
            r.start()
        for r in readers:
            r.join()
        stop.set()
        w.join()
        assert errors == []
        # and after the dust settles the live answer is the batch answer
        live.finalize()
        ref = reference_index(ts, vs)
        assert_equivalent(ref, live)
        ref.close()
        live.close()

    def test_ttl_retention_preserves_pinned_readers(self, tmp_path):
        ts, vs = make_walk(19, n=500)
        d = str(tmp_path / "live.d")
        live = LiveIndex(EPS, WINDOW, directory=d, seal_rows=300)
        live.append_array(ts, vs, batch_size=40)
        live.seal()
        assert len(live.partitions) >= 3
        snap = live.snapshot()
        before = {
            (T, V): tuples(snap.search_drops(T, V)) for T, V in DROP_QUERIES
        }
        specs_before = live.partitions
        # expire everything strictly older than the second-newest
        cutoff_ttl = float(
            live.watermark - live.partitions[-2].t_max + 1e-9
        )
        dropped = live.expire(ttl=cutoff_ttl)
        assert dropped  # retention really dropped partitions
        old_files = {
            os.path.join(d, s.file)
            for s in specs_before if s.partition_id in dropped
        }
        remaining = {s.partition_id for s in live.partitions}
        assert not set(dropped) & remaining
        # the pinned reader still sees every partition it opened over
        for (T, V), want in before.items():
            assert tuples(snap.search_drops(T, V)) == want
        for f in old_files:
            assert os.path.exists(f)  # disposal deferred to last unpin
        snap.close()
        for s in live.partitions:
            pass  # live set unaffected by reader close
        for f in old_files:
            assert not os.path.exists(f)  # reaped with the pin
        live.close()


class TestCrashRecovery:
    def test_failed_manifest_install_rolls_back_cleanly(self, tmp_path,
                                                        monkeypatch):
        ts, vs = make_walk(23, n=400)
        d = str(tmp_path / "live.d")
        live = LiveIndex(EPS, WINDOW, directory=d, seal_rows=10**9)
        live.append_array(ts, vs)

        real_replace = os.replace

        def boom(src, dst):
            if dst.endswith(MANIFEST_NAME):
                raise OSError("simulated power loss at manifest install")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            live.seal()
        monkeypatch.setattr(os, "replace", real_replace)
        # the failed seal left no partition, no orphan file, and the hot
        # data intact — retrying just works (the hot-partition WAL is
        # the only other legitimate resident)
        assert live.partitions == []
        assert all(
            f in (MANIFEST_NAME, "hot.wal") for f in os.listdir(d)
        ), os.listdir(d)
        assert live.seal() is not None
        live.finalize()
        ref = reference_index(ts, vs)
        assert_equivalent(ref, live)
        ref.close()
        live.close()

    def test_crash_mid_seal_sweeps_orphan_and_replays(self, tmp_path):
        ts, vs = make_walk(29, n=500)
        d = str(tmp_path / "live.d")
        live = LiveIndex(EPS, WINDOW, directory=d, seal_rows=10**9)
        live.append_array(ts[:250], vs[:250])
        live.seal()
        sealed_file = os.path.join(d, live.partitions[0].file)
        generation = live.generation
        live.close()

        # crash matrix, step between "store file durable" and "manifest
        # installed": an unreferenced partition file and a torn tmp
        # manifest are on disk
        orphan = os.path.join(d, "p000001.sqlite")
        with open(sealed_file, "rb") as src, open(orphan, "wb") as dst:
            dst.write(src.read())
        with open(os.path.join(d, MANIFEST_NAME + ".tmp"), "w") as fh:
            fh.write("{torn")

        reopened = LiveIndex.open(d)
        assert not os.path.exists(orphan)
        assert not os.path.exists(os.path.join(d, MANIFEST_NAME + ".tmp"))
        assert reopened.generation == generation  # previous gen intact
        # the producer replays its stream; pre-watermark rows are skipped
        reopened.append_array(ts, vs)
        reopened.finalize()
        ref = reference_index(ts, vs)
        assert_equivalent(ref, reopened)
        reopened.close()
        ref.close()

    def test_reopen_resumes_observation_count_and_watermark(self, tmp_path):
        ts, vs = make_walk(31, n=400)
        d = str(tmp_path / "live.d")
        live = LiveIndex(EPS, WINDOW, directory=d, seal_rows=500)
        live.append_array(ts, vs)
        live.seal()
        wm = live.watermark
        live.close()
        reopened = LiveIndex.open(d)
        assert reopened.watermark == wm
        # covered observations restart from the manifest; replaying the
        # whole stream may only add the uncovered tail
        assert 0 < reopened.n_observations <= len(ts)
        reopened.close()

    def test_open_or_create_rejects_parameter_mismatch(self, tmp_path):
        d = str(tmp_path / "live.d")
        live = LiveIndex.open_or_create(EPS, WINDOW, d)
        live.close()
        with pytest.raises(StorageError):
            LiveIndex.open_or_create(EPS * 2, WINDOW, d)
        again = LiveIndex.open_or_create(EPS, WINDOW, d)
        again.close()

    def test_create_over_existing_manifest_requires_open(self, tmp_path):
        d = str(tmp_path / "live.d")
        LiveIndex(EPS, WINDOW, directory=d).close()
        with pytest.raises(StorageError):
            LiveIndex(EPS, WINDOW, directory=d)


class TestCompactionAndLifecycle:
    def test_compaction_is_lossless_and_invalidates_sessions(self):
        ts, vs = make_walk(37, n=500)
        live = LiveIndex(EPS, WINDOW, seal_rows=250)
        live.append_array(ts, vs, batch_size=40)
        live.finalize()
        n_parts = len(live.partitions)
        assert n_parts >= 3
        before = {
            (T, V): tuples(live.search_drops(T, V)) for T, V in DROP_QUERIES
        }
        # regression (planner-sample invalidation): warm a partition's
        # cached session, then compact it away — retire must drop it
        victim = live._sealed[0]
        warmed = victim.session()
        assert victim.session() is warmed
        merges = live.compact(max_rows=10**9, min_run=2)
        assert merges >= 1
        assert len(live.partitions) < n_parts
        assert victim.retired and victim._session is None
        for (T, V), want in before.items():
            assert tuples(live.search_drops(T, V)) == want
        live.close()

    def test_seal_keeps_segmenter_tail_pending(self):
        # sealing mid-stream must not flush the open segment: finalize
        # after any seal schedule yields the batch answer (covered by the
        # differential test) and, mid-stream, the watermark only moves
        # at segment closes
        ts, vs = make_walk(41, n=200)
        live = LiveIndex(EPS, WINDOW, seal_rows=10**9)
        live.append_array(ts, vs)
        wm = live.watermark
        live.seal()
        assert live.watermark == wm  # seal closed no extra segment
        live.finalize()
        assert live.watermark == float(ts[-1])  # finalize flushed the tail
        live.close()

    def test_validation_errors(self):
        live = LiveIndex(EPS, WINDOW)
        with pytest.raises(QueryError):
            live.search_drops(WINDOW + 1.0, -1.0)
        with pytest.raises(InvalidParameterError):
            LiveIndex(EPS, WINDOW, seal_rows=0)
        with pytest.raises(InvalidParameterError):
            LiveIndex(EPS, WINDOW, backend="sqlite")  # needs a directory
        with pytest.raises(InvalidParameterError):
            live.expire()  # no ttl configured, none given
        live.finalize()
        with pytest.raises(StorageError):
            live.append(1.0, 1.0)
        live.close()
        with pytest.raises(StorageError):
            live.snapshot()

    def test_metrics_move(self):
        def snap():
            s = REGISTRY.snapshot()
            return {
                "seals": s.get("repro_partition_seals_total", 0.0),
                "compactions": s.get("repro_compactions_total", 0.0),
                "expired": s.get("repro_partitions_expired_total", 0.0),
                "active": s.get("repro_partitions_active", 0.0),
                "flush_n": s.get("repro_partition_flush_rows_count", 0.0),
            }

        ts, vs = make_walk(43, n=500)
        before = snap()
        live = LiveIndex(EPS, WINDOW, seal_rows=250)
        live.append_array(ts, vs, batch_size=40)
        live.seal()
        mid = snap()
        assert mid["seals"] > before["seals"]
        assert mid["flush_n"] > before["flush_n"]
        assert mid["active"] > before["active"]
        live.compact(max_rows=10**9)
        # everything is merged into one partition whose t_max == the
        # watermark, so a zero ttl expires it
        live.expire(ttl=0.0)
        after = snap()
        assert after["compactions"] > mid["compactions"]
        assert after["expired"] > mid["expired"]
        live.close()
        assert snap()["active"] == before["active"]


class TestLiveTiered:
    def test_tier_routing_and_equivalence(self):
        ts, vs = make_walk(47, n=400)
        tiered = LiveTieredIndex([EPS, 4 * EPS], WINDOW, seal_rows=300)
        tiered.append_array(ts, vs)
        tiered.finalize()
        fine_ref = reference_index(ts, vs)
        assert tuples(tiered.search_drops(150.0, -2.0)) == tuples(
            fine_ref.search_drops(150.0, -2.0)
        )
        coarse_ref = SegDiffIndex(4 * EPS, WINDOW)
        for t, v in zip(ts, vs):
            coarse_ref.append(float(t), float(v))
        coarse_ref.finalize()
        assert tuples(
            tiered.search_drops(150.0, -2.0, max_tolerance=8 * EPS)
        ) == tuples(coarse_ref.search_drops(150.0, -2.0))
        fine_ref.close()
        coarse_ref.close()
        tiered.close()

    def test_tiered_directory_resume(self, tmp_path):
        ts, vs = make_walk(53, n=300)
        d = str(tmp_path / "tiers")
        tiered = LiveTieredIndex([EPS, 4 * EPS], WINDOW, directory=d,
                                 seal_rows=10**9)
        tiered.append_array(ts[:150], vs[:150])
        tiered.seal()
        wm = tiered.watermark
        tiered.close()
        again = LiveTieredIndex([EPS, 4 * EPS], WINDOW, directory=d)
        assert again.watermark == wm
        again.append_array(ts, vs)
        again.finalize()
        ref = reference_index(ts, vs)
        assert tuples(again.search_drops(150.0, -2.0)) == tuples(
            ref.search_drops(150.0, -2.0)
        )
        ref.close()
        again.close()

"""Tests for the multi-tolerance TieredIndex."""

import pytest

from repro.core.guarantees import audit_completeness, audit_soundness
from repro.core.queries import DropQuery
from repro.core.tiered import TieredIndex
from repro.datagen import PiecewiseLinearSignal
from repro.errors import InvalidParameterError

HOUR = 3600.0
EPSILONS = (0.1, 0.4, 1.6)


@pytest.fixture(scope="module")
def tiered(request):
    from repro.datagen import random_walk_series

    series = random_walk_series(300, dt=300.0, step_std=0.8, seed=21)
    t = TieredIndex.build(series, EPSILONS, 8 * HOUR)
    t._test_series = series  # stash for guarantee audits
    yield t
    t.close()


class TestConstruction:
    def test_tiers_sorted_and_deduped(self):
        t = TieredIndex([1.0, 0.1, 1.0], 100.0)
        assert t.epsilons == [0.1, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            TieredIndex([], 100.0)

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            TieredIndex([-0.5], 100.0)

    def test_tier_access(self, tiered):
        assert tiered.tier(0.4).epsilon == 0.4
        with pytest.raises(InvalidParameterError):
            tiered.tier(0.2)

    def test_stats_cover_all_tiers(self, tiered):
        stats = tiered.stats()
        assert set(stats) == set(EPSILONS)
        assert tiered.total_disk_bytes() == sum(
            s.disk_bytes for s in stats.values()
        )

    def test_coarser_tiers_are_smaller(self, tiered):
        stats = tiered.stats()
        sizes = [stats[e].store_counts.total for e in sorted(EPSILONS)]
        assert sizes == sorted(sizes, reverse=True)


class TestRouting:
    def test_none_uses_finest(self, tiered):
        assert tiered.choose_tier(None) == 0.1

    def test_routing_thresholds(self, tiered):
        assert tiered.choose_tier(0.1) == 0.1  # nothing admissible -> finest
        assert tiered.choose_tier(0.2) == 0.1
        assert tiered.choose_tier(0.8) == 0.4
        assert tiered.choose_tier(3.2) == 1.6
        assert tiered.choose_tier(100.0) == 1.6

    def test_negative_tolerance_rejected(self, tiered):
        with pytest.raises(InvalidParameterError):
            tiered.choose_tier(-1.0)

    def test_search_delegates_to_chosen_tier(self, tiered):
        direct = tiered.tier(1.6).search_drops(HOUR, -5.0)
        routed = tiered.search_drops(HOUR, -5.0, max_tolerance=4.0)
        assert routed == direct

    def test_jump_routing(self, tiered):
        direct = tiered.tier(0.4).search_jumps(HOUR, 5.0)
        routed = tiered.search_jumps(HOUR, 5.0, max_tolerance=1.0)
        assert routed == direct


class TestGuaranteesPerTier:
    @pytest.mark.parametrize("tolerance", [None, 1.0, 4.0])
    def test_every_route_is_complete_and_sound(self, tiered, tolerance):
        series = tiered._test_series
        signal = PiecewiseLinearSignal.from_series(series)
        q = DropQuery(HOUR, -3.0)
        pairs = tiered.search_drops(
            q.t_threshold, q.v_threshold, max_tolerance=tolerance
        )
        eps = tiered.choose_tier(tolerance)
        assert not audit_completeness(pairs, signal, q)
        assert not audit_soundness(pairs, signal, q, eps)

    def test_coarse_tier_no_fewer_covered_events(self, tiered):
        """Both tiers cover all true events; the coarse one may add FPs
        but the fine tier's witnesses stay covered."""
        from repro.core.guarantees import covers, true_event_witnesses

        series = tiered._test_series
        signal = PiecewiseLinearSignal.from_series(series)
        q = DropQuery(HOUR, -3.0)
        coarse = tiered.search_drops(q.t_threshold, q.v_threshold, 4.0)
        for witness in true_event_witnesses(signal, q):
            assert covers(coarse, witness)

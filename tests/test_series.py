"""Unit and property tests for the TimeSeries container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.datagen import TimeSeries
from repro.errors import InvalidSeriesError
from repro.types import Observation


class TestConstruction:
    def test_basic(self):
        s = TimeSeries([0.0, 1.0, 2.0], [5.0, 6.0, 7.0], name="x")
        assert len(s) == 3
        assert s.name == "x"
        assert s.t_start == 0.0
        assert s.t_end == 2.0
        assert s.duration == 2.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidSeriesError):
            TimeSeries([0.0, 1.0], [5.0])

    def test_empty_rejected(self):
        with pytest.raises(InvalidSeriesError):
            TimeSeries([], [])

    def test_non_monotonic_rejected(self):
        with pytest.raises(InvalidSeriesError):
            TimeSeries([0.0, 2.0, 1.0], [1.0, 2.0, 3.0])

    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(InvalidSeriesError):
            TimeSeries([0.0, 1.0, 1.0], [1.0, 2.0, 3.0])

    def test_nan_rejected(self):
        with pytest.raises(InvalidSeriesError):
            TimeSeries([0.0, 1.0], [1.0, float("nan")])

    def test_2d_rejected(self):
        with pytest.raises(InvalidSeriesError):
            TimeSeries([[0.0, 1.0]], [[1.0, 2.0]])

    def test_arrays_are_read_only(self):
        s = TimeSeries([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            s.times[0] = 99.0
        with pytest.raises(ValueError):
            s.values[0] = 99.0

    def test_input_arrays_not_aliased(self):
        t = np.array([0.0, 1.0])
        v = np.array([1.0, 2.0])
        s = TimeSeries(t, v)
        t[0] = 42.0
        assert s.times[0] == 0.0


class TestProtocol:
    def test_iteration_yields_observations(self):
        s = TimeSeries([0.0, 1.0], [5.0, 6.0])
        obs = list(s)
        assert obs == [Observation(0.0, 5.0), Observation(1.0, 6.0)]

    def test_indexing(self):
        s = TimeSeries([0.0, 1.0], [5.0, 6.0])
        assert s[1] == Observation(1.0, 6.0)

    def test_equality_by_content(self):
        a = TimeSeries([0.0, 1.0], [5.0, 6.0])
        b = TimeSeries([0.0, 1.0], [5.0, 6.0])
        c = TimeSeries([0.0, 1.0], [5.0, 7.0])
        assert a == b
        assert a != c

    def test_repr_contains_name_and_length(self):
        s = TimeSeries([0.0, 1.0], [5.0, 6.0], name="s1")
        assert "s1" in repr(s)
        assert "n=2" in repr(s)


class TestDerivedSeries:
    def test_slice_time(self):
        s = TimeSeries([0.0, 1.0, 2.0, 3.0], [1.0, 2.0, 3.0, 4.0])
        sub = s.slice_time(1.0, 2.0)
        assert list(sub.times) == [1.0, 2.0]

    def test_slice_time_empty_raises(self):
        s = TimeSeries([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(InvalidSeriesError):
            s.slice_time(5.0, 6.0)

    def test_head(self):
        s = TimeSeries([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert len(s.head(2)) == 2
        with pytest.raises(InvalidSeriesError):
            s.head(0)

    def test_with_values(self):
        s = TimeSeries([0.0, 1.0], [1.0, 2.0])
        s2 = s.with_values([9.0, 8.0])
        assert list(s2.values) == [9.0, 8.0]
        assert np.array_equal(s2.times, s.times)

    def test_shift_time(self):
        s = TimeSeries([0.0, 1.0], [1.0, 2.0])
        assert s.shift_time(10.0).t_start == 10.0

    def test_concat(self):
        a = TimeSeries([0.0, 1.0], [1.0, 2.0])
        b = TimeSeries([2.0, 3.0], [3.0, 4.0])
        assert len(a.concat(b)) == 4

    def test_concat_overlapping_rejected(self):
        a = TimeSeries([0.0, 2.0], [1.0, 2.0])
        b = TimeSeries([1.0, 3.0], [3.0, 4.0])
        with pytest.raises(InvalidSeriesError):
            a.concat(b)

    def test_from_observations(self):
        s = TimeSeries.from_observations([(0.0, 1.0), (1.0, 2.0)])
        assert len(s) == 2
        with pytest.raises(InvalidSeriesError):
            TimeSeries.from_observations([])

    def test_sampling_interval_median(self):
        s = TimeSeries([0.0, 10.0, 20.0, 25.0], [0, 0, 0, 0])
        assert s.sampling_interval() == 10.0
        assert TimeSeries([0.0], [0.0]).sampling_interval() == 0.0


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
def test_series_accepts_any_finite_values(values):
    s = TimeSeries(list(range(len(values))), values)
    assert len(s) == len(values)
    assert list(s.values) == [float(v) for v in values]

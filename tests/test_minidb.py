"""Tests for the MiniDB storage engine (pager, heap, B+tree, catalog)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError, StorageError
from repro.storage.minidb import (
    PAGE_CAPACITY,
    PAGE_SIZE,
    BPlusTree,
    HeapFile,
    MiniDatabase,
    Pager,
    RID,
)


def page_of(fill: int) -> bytes:
    """A full page whose caller-owned capacity bytes are ``fill``."""
    return bytes([fill]) * PAGE_CAPACITY + bytes(PAGE_SIZE - PAGE_CAPACITY)


@pytest.fixture
def pager(tmp_path):
    p = Pager(str(tmp_path / "db.pages"), cache_pages=8)
    yield p
    p.close()


class TestPager:
    def test_allocate_and_roundtrip(self, pager):
        pid = pager.allocate()
        data = page_of(7)
        pager.write(pid, data)
        assert pager.read(pid)[:PAGE_CAPACITY] == data[:PAGE_CAPACITY]

    def test_wrong_size_write_rejected(self, pager):
        pid = pager.allocate()
        with pytest.raises(InvalidParameterError):
            pager.write(pid, b"short")

    def test_out_of_range_read_rejected(self, pager):
        with pytest.raises(InvalidParameterError):
            pager.read(5)

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "p.pages")
        p = Pager(path)
        pids = [p.allocate() for _ in range(5)]
        for i, pid in enumerate(pids):
            p.write(pid, page_of(i))
        p.close()
        p2 = Pager(path)
        try:
            assert p2.n_pages == 5
            for i, pid in enumerate(pids):
                assert p2.read(pid)[:PAGE_CAPACITY] == page_of(i)[:PAGE_CAPACITY]
        finally:
            p2.close()

    def test_eviction_writes_back_dirty_pages(self, tmp_path):
        path = str(tmp_path / "p.pages")
        p = Pager(path, cache_pages=2)
        pids = [p.allocate() for _ in range(10)]
        for i, pid in enumerate(pids):
            p.write(pid, page_of(i))
        # most pages were evicted by now; all must read back correctly
        for i, pid in enumerate(pids):
            assert p.read(pid)[0] == i
        p.close()

    def test_cache_counters(self, pager):
        pid = pager.allocate()
        pager.write(pid, bytes(PAGE_SIZE))
        before = pager.stats.snapshot()
        pager.read(pid)  # hit
        pager.drop_cache()
        pager.read(pid)  # miss
        delta = pager.stats.delta(before)
        assert delta.hits == 1
        assert delta.misses == 1
        assert delta.page_reads == 2

    def test_drop_cache_preserves_data(self, pager):
        pid = pager.allocate()
        pager.write(pid, page_of(9))
        pager.drop_cache()
        assert pager.read(pid)[:PAGE_CAPACITY] == page_of(9)[:PAGE_CAPACITY]

    def test_closed_pager_unusable(self, tmp_path):
        p = Pager(str(tmp_path / "x.pages"))
        p.close()
        with pytest.raises(StorageError):
            p.allocate()

    def test_invalid_cache_size(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            Pager(str(tmp_path / "y.pages"), cache_pages=0)

    def test_non_page_aligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.pages"
        path.write_bytes(b"x" * 100)
        with pytest.raises(StorageError):
            Pager(str(path))


class TestHeapFile:
    def test_append_get_roundtrip(self, pager):
        heap = HeapFile(pager, 3)
        rid = heap.append((1.0, 2.0, 3.0))
        assert heap.get(rid) == (1.0, 2.0, 3.0)

    def test_wrong_width_rejected(self, pager):
        heap = HeapFile(pager, 3)
        with pytest.raises(InvalidParameterError):
            heap.append((1.0,))

    def test_invalid_rid_rejected(self, pager):
        heap = HeapFile(pager, 3)
        heap.append((1.0, 2.0, 3.0))
        with pytest.raises(StorageError):
            heap.get(RID(heap.first_page, 5))

    def test_scan_order_and_page_spill(self, pager):
        heap = HeapFile(pager, 6)
        n = heap.rows_per_page * 3 + 5  # force several pages
        for i in range(n):
            heap.append((float(i),) * 6)
        rows = [row for _rid, row in heap.scan()]
        assert len(rows) == n
        assert [r[0] for r in rows] == [float(i) for i in range(n)]
        assert heap.n_pages() == 4

    def test_interleaved_heaps_stay_disjoint(self, pager):
        """Two heaps sharing one pager must never cross pages (the
        regression that caught the append-mode file bug)."""
        h6 = HeapFile(pager, 6)
        h8 = HeapFile(pager, 8)
        for i in range(500):
            h6.append((float(i),) * 6)
            h8.append((float(-i),) * 8)
        assert all(r[0] == float(i) for i, (_, r) in enumerate(h6.scan()))
        assert all(r[0] == float(-i) for i, (_, r) in enumerate(h8.scan()))


def tree_with(pager, entries, key_width=2):
    heap_entries = [
        (tuple(k), RID(0, i)) for i, k in enumerate(entries)
    ]
    tree = BPlusTree(pager, key_width)
    tree.bulk_load(sorted(heap_entries, key=lambda e: e[0]))
    return tree


class TestBPlusTree:
    def test_empty_tree(self, pager):
        tree = BPlusTree(pager, 2)
        tree.bulk_load([])
        assert list(tree.scan_from()) == []
        assert tree.height() == 1

    def test_unsorted_input_rejected(self, pager):
        tree = BPlusTree(pager, 1)
        with pytest.raises(InvalidParameterError):
            tree.bulk_load([((2.0,), RID(0, 0)), ((1.0,), RID(0, 1))])

    def test_unbuilt_tree_rejected(self, pager):
        tree = BPlusTree(pager, 1)
        with pytest.raises(StorageError):
            list(tree.scan_from())

    def test_full_scan_in_order(self, pager):
        keys = [(float(i), float(-i)) for i in range(1000)]
        tree = tree_with(pager, keys)
        got = [k for k, _rid in tree.scan_from()]
        assert got == sorted(keys)
        assert tree.height() >= 2  # 1000 entries exceed one leaf

    def test_scan_from_lower_bound(self, pager):
        keys = [(float(i),) for i in range(500)]
        tree = tree_with(pager, keys, key_width=1)
        got = [k[0] for k, _ in tree.scan_from((250.0,))]
        assert got == [float(i) for i in range(250, 500)]

    def test_scan_leading_upto(self, pager):
        keys = [(float(i % 50), float(i)) for i in range(600)]
        tree = tree_with(pager, keys)
        got = [k for k, _ in tree.scan_leading_upto(10.0)]
        expected = sorted(k for k in keys if k[0] <= 10.0)
        assert got == expected

    def test_rids_preserved(self, pager):
        keys = [(float(i),) for i in range(100)]
        tree = tree_with(pager, keys, key_width=1)
        for key, rid in tree.scan_from():
            assert rid.slot == int(key[0])

    @given(
        values=st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            ),
            min_size=0,
            max_size=400,
        ),
        bound=st.floats(min_value=-120, max_value=120, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_leading_scan_matches_filter(self, tmp_path_factory, values, bound):
        path = str(tmp_path_factory.mktemp("bt") / "t.pages")
        pager = Pager(path)
        try:
            tree = tree_with(pager, values)
            got = sorted(k for k, _ in tree.scan_leading_upto(bound))
            expected = sorted(tuple(v) for v in values if v[0] <= bound)
            assert got == expected
        finally:
            pager.close()


class TestMiniDatabase:
    def test_create_insert_scan(self, tmp_path):
        with MiniDatabase(str(tmp_path / "d.mdb")) as db:
            t = db.create_table("t", 3)
            t.insert((1.0, 2.0, 3.0))
            t.insert((4.0, 5.0, 6.0))
            assert t.n_rows == 2
            assert [r for _rid, r in t.scan()] == [
                (1.0, 2.0, 3.0),
                (4.0, 5.0, 6.0),
            ]

    def test_duplicate_table_rejected(self, tmp_path):
        with MiniDatabase(str(tmp_path / "d.mdb")) as db:
            db.create_table("t", 2)
            with pytest.raises(InvalidParameterError):
                db.create_table("t", 2)

    def test_unknown_table_rejected(self, tmp_path):
        with MiniDatabase(str(tmp_path / "d.mdb")) as db:
            with pytest.raises(InvalidParameterError):
                db.table("nope")

    def test_reopen_recovers_everything(self, tmp_path):
        path = str(tmp_path / "d.mdb")
        db = MiniDatabase(path)
        t = db.create_table("t", 2)
        for i in range(300):
            t.insert((float(i), float(-i)))
        t.create_index("by_key", (0, 1))
        db.set_meta("epsilon", 0.25)
        db.close()

        db2 = MiniDatabase(path)
        try:
            t2 = db2.table("t")
            assert t2.n_rows == 300
            assert db2.get_meta("epsilon") == 0.25
            keys = [k for k, _ in t2.index_scan_leading("by_key", 10.0)]
            assert len(keys) == 11
            rows = [r for _rid, r in t2.scan()]
            assert rows[0] == (0.0, 0.0) and rows[-1] == (299.0, -299.0)
        finally:
            db2.close()

    def test_large_catalog_spans_pages(self, tmp_path):
        """Many tables force a multi-page catalog blob."""
        path = str(tmp_path / "big.mdb")
        db = MiniDatabase(path)
        for i in range(200):
            db.create_table(f"table_with_a_rather_long_name_{i:04d}", 2)
        db.close()
        db2 = MiniDatabase(path)
        try:
            assert len(db2.table_names) == 200
        finally:
            db2.close()

    def test_non_minidb_file_rejected(self, tmp_path):
        path = tmp_path / "x.mdb"
        path.write_bytes(b"\x01" * PAGE_SIZE)
        with pytest.raises(StorageError):
            MiniDatabase(str(path))

    def test_index_requires_valid_columns(self, tmp_path):
        with MiniDatabase(str(tmp_path / "d.mdb")) as db:
            t = db.create_table("t", 2)
            with pytest.raises(InvalidParameterError):
                t.create_index("i", (5,))
            with pytest.raises(InvalidParameterError):
                t.index("missing")

    def test_page_accounting(self, tmp_path):
        with MiniDatabase(str(tmp_path / "d.mdb")) as db:
            t = db.create_table("t", 2)
            for i in range(2000):
                t.insert((float(i), 0.0))
            t.create_index("i", (0,))
            assert t.heap_pages() >= 8
            assert t.index_pages() >= 2

"""Tests for end-to-end query diagnostics (repro.obs + engine wiring).

Covers the four pillars of the diagnostics work:

* **Connected trace trees** — a sharded query scattered over a thread
  pool yields ONE tree: per-shard ``query.search`` spans parent onto the
  scatter span through the explicit :class:`QueryContext` hand-off
  instead of becoming orphan roots (the regression this suite pins).
* **Resource accounting** — always-on per-query totals whose
  ``(operator, shard, partition)`` breakdown sums back to the totals, a
  Hypothesis property held under random fault schedules: COMPLETE
  answers account every shard exactly, DEGRADED/FAILED answers stay
  sound (parts still sum, results stay a subset of the truth).
* **Tail-based retention** — healthy fast queries leave no trace in the
  ring; slow or unhealthy ones are retained.
* **Flight recorder** — a 16-thread stress on the bounded ring: no lost
  or torn events, seq-ordered tails, memory bounded by ``maxlen``, and
  dumps that validate against the checked-in event schema.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core.index import SegDiffIndex
from repro.core.live import LiveIndex
from repro.core.queries import DropQuery
from repro.datagen.series import TimeSeries
from repro.engine import ResultStatus, ShardedIndex
from repro.obs import slowlog
from repro.obs.export import validate_schema
from repro.obs.recorder import FlightRecorder
from repro.storage.faults import FaultyStoreWrapper, ReadFaultPolicy

HOUR = 3600.0
EPS = 0.2
WINDOW = 2 * HOUR
MAX_GAP = HOUR
T, V = HOUR, -2.0
N_SHARDS = 4

#: Every integer counter the accounting tracks (mirrors context._COUNTER_FIELDS).
COUNTER_FIELDS = (
    "rows_scanned", "rows_fetched", "rows_matched", "pages_read",
    "bytes_decoded", "retries", "failovers",
    "partitions_scanned", "partitions_pruned",
)


def gapped_series(episodes=6, n=200, seed=0, drop=3.0):
    """Episodes of a random walk separated by day-long sampling gaps."""
    rng = np.random.default_rng(seed)
    ts, vs = [], []
    t0 = 0.0
    for _ in range(episodes):
        t = t0 + np.arange(n) * 60.0
        v = np.cumsum(rng.normal(0, 0.05, n))
        v[n // 3 : n // 3 + 5] -= np.linspace(0, drop, 5)
        ts.append(t)
        vs.append(v)
        t0 = t[-1] + 24 * HOUR
    return TimeSeries(
        times=np.concatenate(ts), values=np.concatenate(vs), name="s"
    )


def pair_set(pairs):
    return sorted(p.as_tuple() for p in pairs)


def assert_totals_equal_parts(acct):
    """The core accounting invariant: totals == sum of breakdown cells."""
    assert acct is not None
    for field in COUNTER_FIELDS:
        assert acct.total(field) == acct.scoped_sum(field), field


@pytest.fixture(scope="module")
def series():
    return gapped_series()


@pytest.fixture(scope="module")
def plain_answer(series):
    with SegDiffIndex.build(series, EPS, WINDOW, max_gap=MAX_GAP) as idx:
        yield pair_set(idx.search_drops(T, V))


@pytest.fixture(scope="module")
def sharded4(series):
    with ShardedIndex.build(
        series, EPS, WINDOW, n_shards=N_SHARDS, max_gap=MAX_GAP
    ) as sharded:
        yield sharded


def _lose_replica(replica, fail_next=10**9):
    """Wrap a replica's store so its next ``fail_next`` reads fail;
    returns what :func:`_restore_replica` needs."""
    saved = (replica, replica.store)
    replica.store = FaultyStoreWrapper(
        replica.store, ReadFaultPolicy(fail_next=fail_next)
    )
    replica._session = None
    return saved


def _restore_replica(saved):
    replica, store = saved
    replica.store = store
    replica._session = None


class TestConnectedTraceTree:
    """Satellite (a): no orphan spans across the scatter thread pool."""

    def test_scatter_gather_yields_one_connected_tree(
        self, sharded4, plain_answer
    ):
        ctx = obs.new_context(api="search")
        with obs.use_context(ctx):
            outcome = sharded4.search_outcome("drop", T, V)
        assert outcome.status is ResultStatus.COMPLETE
        assert pair_set(outcome.pairs) == plain_answer

        # exactly ONE root: worker spans joined the scatter span's tree
        roots = list(ctx.trace_roots)
        assert [r.name for r in roots] == ["shard.scatter_gather"]
        root = roots[0]
        assert root.attributes.get("query_id") == ctx.query_id

        searches = [
            s for s in obs.iter_spans(root) if s.name == "query.search"
        ]
        assert len(searches) == N_SHARDS
        assert {s.attributes.get("shard") for s in searches} == {
            shard.spec.shard_id for shard in sharded4.shards
        }
        for s in searches:
            assert s.attributes.get("query_id") == ctx.query_id

        # every span in the tree walks back to the single root
        for s in obs.iter_spans(root):
            node = s
            while node.parent is not None:
                node = node.parent
            assert node is root

    def test_trace_roots_not_retained_for_healthy_fast_queries(
        self, sharded4
    ):
        """Tail-based retention: a healthy query under the default (no)
        threshold records spans but keeps none in the process ring."""
        obs.clear_traces()
        prev = slowlog.default_threshold()
        slowlog.set_default_threshold(None)
        try:
            outcome = sharded4.search_outcome("drop", T, V)
            assert outcome.status is ResultStatus.COMPLETE
            assert obs.recent_traces() == []
        finally:
            slowlog.set_default_threshold(prev)

    def test_slow_queries_retain_their_trace(self, sharded4):
        obs.clear_traces()
        prev = slowlog.default_threshold()
        slowlog.set_default_threshold(0.0)  # everything is "slow"
        try:
            sharded4.search_outcome("drop", T, V)
            names = [r.name for r in obs.recent_traces()]
            assert "shard.scatter_gather" in names
        finally:
            slowlog.set_default_threshold(prev)
            obs.clear_traces()


class TestAccountingUnderFaults:
    """Satellite (d): totals == sum of parts under fault schedules."""

    def test_complete_query_accounts_every_shard(
        self, sharded4, plain_answer
    ):
        outcome = sharded4.search_outcome("drop", T, V)
        assert outcome.status is ResultStatus.COMPLETE
        assert outcome.query_id
        assert outcome.recorder_tail is None  # healthy: no tail attached
        acct = outcome.accounting
        assert_totals_equal_parts(acct)
        assert acct.total("rows_scanned") > 0
        shard_scopes = {
            shard for (_, shard, _) in acct.scopes() if shard is not None
        }
        assert shard_scopes == {
            shard.spec.shard_id for shard in sharded4.shards
        }

    @settings(max_examples=15, deadline=None)
    @given(
        mask=st.integers(0, 2 ** N_SHARDS - 1),
        transient=st.lists(
            st.integers(0, 2), min_size=N_SHARDS, max_size=N_SHARDS
        ),
    )
    def test_totals_equal_parts_under_random_fault_schedules(
        self, sharded4, plain_answer, mask, transient
    ):
        saved = []
        try:
            for i, shard in enumerate(sharded4.shards):
                if mask & (1 << i):
                    saved.append(_lose_replica(shard.replicas[0]))
                elif transient[i]:
                    saved.append(
                        _lose_replica(
                            shard.replicas[0], fail_next=transient[i]
                        )
                    )
            outcome = sharded4.search_outcome("drop", T, V)

            # the invariant holds whatever happened
            assert_totals_equal_parts(outcome.accounting)
            assert outcome.query_id

            got = pair_set(outcome.pairs)
            lost = {
                sharded4.shards[i].spec.shard_id
                for i in range(N_SHARDS)
                if mask & (1 << i)
            }
            if outcome.status is ResultStatus.COMPLETE:
                # COMPLETE => exact: the full answer, every shard counted
                assert got == plain_answer
                shard_scopes = {
                    s for (_, s, _) in outcome.accounting.scopes()
                    if s is not None
                }
                assert shard_scopes == {
                    shard.spec.shard_id for shard in sharded4.shards
                }
            else:
                # DEGRADED/FAILED => sound partial: no invented results,
                # and the failure carries its recorder tail
                assert set(got) <= set(plain_answer)
                assert outcome.recorder_tail is not None
            if len(lost) == N_SHARDS:
                assert outcome.status is ResultStatus.FAILED
            elif lost:
                assert outcome.status in (
                    ResultStatus.DEGRADED, ResultStatus.FAILED
                )
                assert lost <= set(outcome.completeness.unfinished)
            elif not any(transient):
                assert outcome.status is ResultStatus.COMPLETE
        finally:
            for s in saved:
                _restore_replica(s)

    def test_degraded_outcome_attaches_schema_valid_recorder_tail(
        self, series, plain_answer
    ):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=2, max_gap=MAX_GAP
        ) as sharded:
            _lose_replica(sharded.shards[0].replicas[0])
            outcome = sharded.search_outcome("drop", T, V)
            assert outcome.status is ResultStatus.DEGRADED
            assert outcome.recorder_tail is not None
            for event in outcome.recorder_tail:
                validate_schema(event, obs.RECORDER_EVENT_SCHEMA)
            assert_totals_equal_parts(outcome.accounting)
            # the surviving shard is still accounted
            healthy = sharded.shards[1].spec.shard_id
            assert healthy in {
                s for (_, s, _) in outcome.accounting.scopes()
            }

    def test_failover_is_accounted_and_recorded(self, series, plain_answer):
        with ShardedIndex.build(
            series, EPS, WINDOW, n_shards=2, max_gap=MAX_GAP, replicas=2
        ) as sharded:
            _lose_replica(sharded.shards[0].replicas[0])
            outcome = sharded.search_outcome("drop", T, V)
            assert outcome.status is ResultStatus.COMPLETE
            assert pair_set(outcome.pairs) == plain_answer
            assert outcome.accounting.total("failovers") >= 1
            # the failover left a flight-recorder event tagged with
            # this query's id (the ring may be full, so no length check)
            failovers = [
                e for e in obs.RECORDER.tail()
                if e.category == "failover"
                and e.attrs.get("query_id") == outcome.query_id
            ]
            assert failovers, "failover left no flight-recorder event"


class TestLiveTierSlowlog:
    """Satellite (b): live-tier queries log plans with partition stats."""

    @pytest.fixture()
    def live(self):
        rng = np.random.default_rng(7)
        ts = np.cumsum(rng.uniform(0.5, 3.0, 600))
        vs = np.cumsum(rng.normal(0.0, 1.0, 600))
        index = LiveIndex(0.8, 300.0, seal_rows=50)
        index.append_array(ts, vs, batch_size=40)
        return index

    def test_live_search_record_carries_partition_breakdown(self, live):
        prev = slowlog.default_threshold()
        slowlog.set_default_threshold(0.0)
        slowlog.clear()
        try:
            with live.snapshot() as snap:
                result = snap.execute(DropQuery(30.0, -1.0), mode="auto")
            recs = [
                r for r in slowlog.recent() if r.api == "live_search"
            ]
            assert recs, "live query produced no slowlog record"
            rec = recs[-1]
            assert rec.backend.startswith("live/")
            assert rec.status == "complete"
            assert rec.query_id
            assert rec.plan.startswith("live[")
            assert rec.partitions_scanned == result.partitions_scanned
            assert rec.partitions_pruned == result.partitions_pruned
            assert rec.partitions_scanned >= 1
            # per-partition accounting cells rode along
            assert any(
                cell.get("partition") is not None for cell in rec.shards
            )
            assert rec.accounting is not None
            totals = rec.accounting["totals"]
            for field in COUNTER_FIELDS:
                assert totals.get(field, 0) == sum(
                    cell.get(field, 0) for cell in rec.shards
                ), field
            d = rec.to_dict()
            assert "partitions_scanned" in d
            assert "shards" in d and "accounting" in d
        finally:
            slowlog.set_default_threshold(prev)
            slowlog.clear()

    def test_pruned_partitions_show_up_in_the_record(self, live):
        prev = slowlog.default_threshold()
        slowlog.set_default_threshold(0.0)
        slowlog.clear()
        try:
            t_max = float(live.partitions[-1].t_max)
            with live.snapshot() as snap:
                result = snap.execute(
                    DropQuery(30.0, -1.0),
                    mode="auto",
                    t_range=(0.0, t_max / 4),
                )
            rec = [
                r for r in slowlog.recent() if r.api == "live_search"
            ][-1]
            assert rec.partitions_pruned == result.partitions_pruned
            assert rec.partitions_pruned >= 1
        finally:
            slowlog.set_default_threshold(prev)
            slowlog.clear()

    def test_batch_records_carry_status(self, live):
        prev = slowlog.default_threshold()
        slowlog.set_default_threshold(0.0)
        slowlog.clear()
        try:
            with live.snapshot() as snap:
                snap.search_batch_results(
                    [DropQuery(30.0, -1.0), DropQuery(80.0, -2.5)]
                )
            recs = [
                r for r in slowlog.recent()
                if r.api == "live_search_batch"
            ]
            assert recs
            assert recs[-1].status == "complete"
            assert recs[-1].query_id
        finally:
            slowlog.set_default_threshold(prev)
            slowlog.clear()


class TestLatencyBuckets:
    """Satellite (c): repro_query_seconds uses the re-tuned edges."""

    def test_buckets_cover_microseconds_to_seconds(self):
        edges = obs.QUERY_LATENCY_BUCKETS
        assert edges[0] <= 5e-5, "first edge must resolve µs-scale probes"
        assert edges[-1] >= 5.0, "last edge must cover deadline-scale tails"
        assert list(edges) == sorted(edges)

    def test_query_histograms_use_the_retuned_edges(self):
        from repro.core import live as live_mod
        from repro.engine import session as session_mod

        for hist in session_mod._QUERY_SECONDS.values():
            assert hist.bounds == obs.QUERY_LATENCY_BUCKETS
        for hist in live_mod._LIVE_QUERY_SECONDS.values():
            assert hist.bounds == obs.QUERY_LATENCY_BUCKETS


class TestFlightRecorderRing:
    """Satellite (d): the recorder under 16-thread contention."""

    N_THREADS = 16
    PER_THREAD = 200

    def _hammer(self, recorder):
        barrier = threading.Barrier(self.N_THREADS)
        errors = []

        def worker(tid):
            try:
                barrier.wait()
                for i in range(self.PER_THREAD):
                    recorder.record("seal", f"t{tid}", tid=tid, i=i)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_no_lost_or_torn_events(self):
        # ring big enough to hold everything: nothing may be lost
        recorder = FlightRecorder(
            maxlen=self.N_THREADS * self.PER_THREAD
        )
        self._hammer(recorder)
        events = recorder.tail()
        assert len(events) == self.N_THREADS * self.PER_THREAD
        seqs = [e.seq for e in events]
        assert len(set(seqs)) == len(seqs)
        assert seqs == sorted(seqs), "ring tail must be seq-ordered"
        seen = set()
        for e in events:
            # torn event = name/attrs from different records interleaved
            assert e.category == "seal"
            assert e.name == f"t{e.attrs['tid']}"
            key = (e.attrs["tid"], e.attrs["i"])
            assert key not in seen
            seen.add(key)
        assert seen == {
            (tid, i)
            for tid in range(self.N_THREADS)
            for i in range(self.PER_THREAD)
        }

    def test_memory_stays_bounded_at_maxlen(self):
        recorder = FlightRecorder(maxlen=256)
        self._hammer(recorder)  # 3200 records through a 256-slot ring
        assert len(recorder) == 256
        events = recorder.tail()
        assert len(events) == 256
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_dump_validates_against_the_event_schema(self):
        recorder = FlightRecorder(maxlen=64)
        recorder.record("compaction", "p000001", merged=3, rows=1200)
        recorder.record("breaker", "shard-t1", state="open")
        from repro.obs.export import validate_jsonl

        n = validate_jsonl(
            recorder.to_jsonl().splitlines(), obs.RECORDER_EVENT_SCHEMA
        )
        assert n == 2

    def test_unknown_category_is_rejected(self):
        recorder = FlightRecorder(maxlen=8)
        with pytest.raises(ValueError, match="unknown flight-recorder"):
            recorder.record("not-a-category", "x")
        assert len(recorder) == 0

"""Tests for feature-space primitives: points, segments, regions, clipping."""

import pytest
from hypothesis import given, strategies as st

from repro.core.feature_space import (
    FeaturePoint,
    FeatureSegment,
    QueryRegion,
    clip_halfplane,
)
from repro.errors import InvalidParameterError


class TestFeaturePoint:
    def test_shift(self):
        p = FeaturePoint(2.0, -1.0)
        assert p.shifted(-0.5) == FeaturePoint(2.0, -1.5)

    def test_negative_dt_rejected(self):
        with pytest.raises(InvalidParameterError):
            FeaturePoint(-1.0, 0.0)

    def test_non_finite_rejected(self):
        with pytest.raises(InvalidParameterError):
            FeaturePoint(float("inf"), 0.0)

    def test_as_tuple(self):
        assert FeaturePoint(1.0, 2.0).as_tuple() == (1.0, 2.0)


class TestFeatureSegment:
    def test_ordering_enforced(self):
        with pytest.raises(InvalidParameterError):
            FeatureSegment(FeaturePoint(2.0, 0.0), FeaturePoint(1.0, 0.0))

    def test_value_interpolation(self):
        seg = FeatureSegment(FeaturePoint(0.0, 0.0), FeaturePoint(10.0, -5.0))
        assert seg.value_at(4.0) == -2.0

    def test_value_outside_span_rejected(self):
        seg = FeatureSegment(FeaturePoint(1.0, 0.0), FeaturePoint(2.0, 0.0))
        with pytest.raises(InvalidParameterError):
            seg.value_at(3.0)

    def test_vertical_segment_value(self):
        seg = FeatureSegment(FeaturePoint(1.0, -4.0), FeaturePoint(1.0, 2.0))
        assert seg.value_at(1.0) == -4.0  # lower end by convention

    def test_shift(self):
        seg = FeatureSegment(FeaturePoint(0.0, 0.0), FeaturePoint(1.0, 1.0))
        up = seg.shifted(0.5)
        assert up.p.dv == 0.5 and up.q.dv == 1.5


class TestQueryRegion:
    def test_drop_requires_negative_v(self):
        with pytest.raises(InvalidParameterError):
            QueryRegion.drop(10.0, 1.0)

    def test_jump_requires_positive_v(self):
        with pytest.raises(InvalidParameterError):
            QueryRegion.jump(10.0, -1.0)

    def test_nonpositive_t_rejected(self):
        with pytest.raises(InvalidParameterError):
            QueryRegion.drop(0.0, -1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            QueryRegion("dip", 1.0, -1.0)

    def test_drop_membership(self):
        r = QueryRegion.drop(10.0, -3.0)
        assert r.contains(FeaturePoint(5.0, -3.0))
        assert r.contains(FeaturePoint(10.0, -4.0))
        assert not r.contains(FeaturePoint(0.0, -4.0))  # dt must be > 0
        assert not r.contains(FeaturePoint(11.0, -4.0))
        assert not r.contains(FeaturePoint(5.0, -2.9))

    def test_jump_membership(self):
        r = QueryRegion.jump(10.0, 3.0)
        assert r.contains(FeaturePoint(5.0, 3.0))
        assert not r.contains(FeaturePoint(5.0, 2.9))

    def test_segment_intersection_endpoint_inside(self):
        r = QueryRegion.drop(10.0, -3.0)
        seg = FeatureSegment(FeaturePoint(1.0, -5.0), FeaturePoint(2.0, 0.0))
        assert r.intersects_segment(seg)

    def test_segment_intersection_crossing(self):
        r = QueryRegion.drop(10.0, -3.0)
        # both ends outside: left end above V, right end beyond T but below V
        seg = FeatureSegment(FeaturePoint(5.0, -1.0), FeaturePoint(15.0, -6.0))
        assert r.intersects_segment(seg)

    def test_segment_near_miss(self):
        r = QueryRegion.drop(10.0, -3.0)
        # crosses V = -3 only after dt = 10
        seg = FeatureSegment(FeaturePoint(9.0, -1.0), FeaturePoint(11.0, -3.5))
        assert not r.intersects_segment(seg)

    def test_segment_entirely_at_dt_zero_excluded(self):
        r = QueryRegion.drop(10.0, -3.0)
        seg = FeatureSegment(FeaturePoint(0.0, -5.0), FeaturePoint(0.0, -4.0))
        assert not r.intersects_segment(seg)


class TestClipHalfplane:
    SQUARE = [(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]

    def test_no_clip(self):
        out = clip_halfplane(self.SQUARE, 1.0, 0.0, -1.0, keep_geq=True)
        assert len(out) == 4

    def test_full_clip(self):
        out = clip_halfplane(self.SQUARE, 1.0, 0.0, 5.0, keep_geq=True)
        assert out == []

    def test_half_clip(self):
        out = clip_halfplane(self.SQUARE, 1.0, 0.0, 1.0, keep_geq=False)
        xs = [p[0] for p in out]
        assert max(xs) == pytest.approx(1.0)
        assert min(xs) == pytest.approx(0.0)

    def test_segment_input(self):
        seg = [(0.0, 0.0), (2.0, 2.0)]
        out = clip_halfplane(seg, 1.0, 0.0, 1.0, keep_geq=False)
        assert (0.0, 0.0) in out
        assert any(abs(p[0] - 1.0) < 1e-9 for p in out)

    def test_single_point(self):
        assert clip_halfplane([(1.0, 1.0)], 1.0, 0.0, 0.0, keep_geq=True)
        assert clip_halfplane([(1.0, 1.0)], 1.0, 0.0, 2.0, keep_geq=True) == []

    def test_empty_input(self):
        assert clip_halfplane([], 1.0, 0.0, 0.0, keep_geq=True) == []


@given(
    t=st.floats(min_value=0.1, max_value=100),
    v=st.floats(min_value=-50, max_value=-0.1),
    dt=st.one_of(st.just(0.0), st.floats(min_value=0.001, max_value=120)),
    dv=st.floats(min_value=-60, max_value=60),
)
def test_point_membership_matches_polygon_clip(t, v, dt, dv):
    """QueryRegion.contains agrees with clipping a degenerate polygon."""
    from hypothesis import assume

    # keep away from razor-edge boundaries where float tolerance may flip
    assume(abs(dt - t) > 1e-6 and abs(dv - v) > 1e-6)
    region = QueryRegion.drop(t, v)
    point = FeaturePoint(dt, dv)
    by_clip = region.intersects_polygon([point.as_tuple()])
    assert by_clip == region.contains(point)

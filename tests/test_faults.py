"""Tests for the deterministic fault-injection harness itself.

The durability tests (test_minidb_durability.py) lean entirely on this
harness, so its own semantics — op counting, crash freezing, torn
prefixes, transient errors — are pinned down here first.
"""

import pytest

from repro.storage.faults import (
    FaultInjected,
    FaultInjector,
    FaultPolicy,
)


@pytest.fixture
def target(tmp_path):
    return str(tmp_path / "data.bin")


class TestFaultPolicy:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            FaultPolicy(mode="melt")

    def test_default_is_passthrough(self, target):
        inj = FaultInjector()
        f = inj.open(target, "w+b")
        f.write(b"hello")
        f.seek(0)
        assert f.read() == b"hello"
        inj.close_all()


class TestOpCounting:
    def test_fault_free_run_counts_ops(self, target):
        inj = FaultInjector()
        f = inj.open(target, "w+b")
        for _ in range(5):
            f.write(b"x")
        f.truncate(3)
        f.fsync()
        inj.close_all()
        assert inj.op_count == 7

    def test_reads_are_not_counted(self, target):
        inj = FaultInjector()
        f = inj.open(target, "w+b")
        f.write(b"abc")
        f.seek(0)
        f.read()
        inj.close_all()
        assert inj.op_count == 1

    def test_ops_filter(self, target):
        inj = FaultInjector(FaultPolicy(ops=("write",)))
        f = inj.open(target, "w+b")
        f.write(b"x")
        f.fsync()
        f.truncate(0)
        inj.close_all()
        assert inj.op_count == 1

    def test_counter_shared_across_files(self, tmp_path):
        inj = FaultInjector()
        a = inj.open(str(tmp_path / "a"), "w+b")
        b = inj.open(str(tmp_path / "b"), "w+b")
        a.write(b"1")
        b.write(b"2")
        a.write(b"3")
        inj.close_all()
        assert inj.op_count == 3


class TestCrashMode:
    def test_crash_freezes_disk_state(self, target):
        inj = FaultInjector(FaultPolicy(fail_at=3, mode="crash"))
        f = inj.open(target, "w+b")
        f.write(b"one")
        f.write(b"two")
        with pytest.raises(FaultInjected):
            f.write(b"three")
        inj.close_all()
        with open(target, "rb") as fh:
            assert fh.read() == b"onetwo"

    def test_everything_fails_after_crash(self, target):
        inj = FaultInjector(FaultPolicy(fail_at=1, mode="crash"))
        f = inj.open(target, "w+b")
        with pytest.raises(FaultInjected):
            f.write(b"x")
        for op in (lambda: f.write(b"y"), lambda: f.read(),
                   lambda: f.seek(0), f.flush):
            with pytest.raises(FaultInjected):
                op()
        with pytest.raises(FaultInjected):
            inj.open(target, "r+b")
        inj.close_all()  # must not raise

    def test_close_allowed_after_crash(self, target):
        inj = FaultInjector(FaultPolicy(fail_at=1, mode="crash"))
        f = inj.open(target, "w+b")
        with pytest.raises(FaultInjected):
            f.write(b"x")
        f.close()
        assert f.closed


class TestTornMode:
    def test_torn_write_persists_prefix(self, target):
        inj = FaultInjector(FaultPolicy(fail_at=2, mode="torn", torn_bytes=4))
        f = inj.open(target, "w+b")
        f.write(b"head")
        with pytest.raises(FaultInjected):
            f.write(b"0123456789")
        inj.close_all()
        with open(target, "rb") as fh:
            assert fh.read() == b"head0123"

    def test_torn_freezes_like_crash(self, target):
        inj = FaultInjector(FaultPolicy(fail_at=1, mode="torn", torn_bytes=1))
        f = inj.open(target, "w+b")
        with pytest.raises(FaultInjected):
            f.write(b"abc")
        with pytest.raises(FaultInjected):
            f.write(b"more")
        inj.close_all()


class TestErrorMode:
    def test_transient_error_is_recoverable(self, target):
        inj = FaultInjector(FaultPolicy(fail_at=2, mode="error"))
        f = inj.open(target, "w+b")
        f.write(b"ok")
        with pytest.raises(OSError):
            f.write(b"fails")
        # the file keeps working afterwards
        f.write(b"-again")
        f.seek(0)
        assert f.read() == b"ok-again"
        inj.close_all()

    def test_transient_error_is_not_fault_injected(self, target):
        inj = FaultInjector(FaultPolicy(fail_at=1, mode="error"))
        f = inj.open(target, "w+b")
        with pytest.raises(OSError) as exc_info:
            f.write(b"x")
        assert not isinstance(exc_info.value, FaultInjected)
        inj.close_all()


class TestArm:
    def test_arm_swaps_policy_keeps_counter(self, target):
        inj = FaultInjector()
        f = inj.open(target, "w+b")
        f.write(b"a")
        f.write(b"b")
        inj.arm(FaultPolicy(fail_at=3, mode="crash"))
        with pytest.raises(FaultInjected):
            f.write(b"c")
        inj.close_all()


class TestCorruptionMode:
    """Silent read corruption — the failure checksums exist to catch."""

    @pytest.fixture
    def store(self, walk_series):
        from repro.core.index import SegDiffIndex

        index = SegDiffIndex.build(walk_series, 0.3, 4 * 3600.0)
        yield index.store
        index.close()

    def test_invalid_corrupt_mode_rejected(self):
        from repro.storage.faults import ReadFaultPolicy

        with pytest.raises(ValueError, match="corrupt"):
            ReadFaultPolicy(corrupt_mode="scramble")

    def test_flip_perturbs_one_value_silently(self, store):
        import numpy as np

        from repro.storage.faults import (
            FaultyStoreWrapper,
            ReadFaultPolicy,
        )

        clean = store.read_table_rows("drop_points")
        wrapper = FaultyStoreWrapper(
            store, ReadFaultPolicy(corrupt_at={1}, corrupt_delta=2.5)
        )
        dirty = wrapper.read_table_rows("drop_points")
        diff = dirty - clean
        assert np.count_nonzero(diff) == 1
        assert diff[0, 1] == 2.5
        assert wrapper.faults_injected == 1
        # later reads heal; the wrapped store was never touched
        assert np.array_equal(
            wrapper.read_table_rows("drop_points"), clean
        )
        assert np.array_equal(store.read_table_rows("drop_points"), clean)

    def test_replace_zeroes_the_row(self, store):
        import numpy as np

        from repro.storage.faults import (
            FaultyStoreWrapper,
            ReadFaultPolicy,
        )

        wrapper = FaultyStoreWrapper(
            store,
            ReadFaultPolicy(corrupt_at={1}, corrupt_mode="replace"),
        )
        dirty = wrapper.read_table_rows("drop_points")
        assert np.all(dirty[0] == 0.0)
        assert not np.all(dirty[1] == 0.0)

    def test_corruption_applies_to_scan_primitives_too(self, store):
        import numpy as np

        from repro.storage.faults import (
            FaultyStoreWrapper,
            ReadFaultPolicy,
        )

        clean = store.scan_points("drop")
        wrapper = FaultyStoreWrapper(store, ReadFaultPolicy(corrupt_at={1}))
        assert not np.array_equal(wrapper.scan_points("drop"), clean)

    def test_empty_result_passes_through(self, store):
        from repro.storage.faults import (
            FaultyStoreWrapper,
            ReadFaultPolicy,
        )

        wrapper = FaultyStoreWrapper(store, ReadFaultPolicy(corrupt_at={1}))
        rows = wrapper.read_table_rows("drop_points", 0, 0)
        assert rows.shape[0] == 0

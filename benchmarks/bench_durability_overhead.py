"""Bench for the MiniDB durability layer's overhead.

Measures the same transactional insert workload with the durability
features (page checksums + write-ahead log) on and off, and asserts the
overhead stays within an order of magnitude — durability must not change
the storage engine's complexity class, only its constant factor.
"""

import pytest

from repro.storage.minidb import MiniDatabase

WIDTH = 8
N_ROWS = 3_000


def insert_workload(path, checksums, wal):
    db = MiniDatabase(path, cache_pages=16, checksums=checksums, wal=wal)
    t = db.create_table("events", WIDTH)
    if wal:
        with db.transaction():
            for i in range(N_ROWS):
                t.insert(tuple(float(i + c) for c in range(WIDTH)))
            t.create_index("ix", (0, 1))
    else:
        for i in range(N_ROWS):
            t.insert(tuple(float(i + c) for c in range(WIDTH)))
        t.create_index("ix", (0, 1))
    db.close()


def scan_workload(path, checksums, wal):
    db = MiniDatabase(path, cache_pages=16, checksums=checksums, wal=wal)
    db.drop_cache()  # cold pool: every read verifies its checksum
    n = sum(1 for _ in db.table("events").scan())
    db.close()
    return n


@pytest.mark.parametrize("durable", [True, False], ids=["on", "off"])
def test_insert_throughput(benchmark, tmp_path_factory, durable):
    counter = iter(range(10_000))

    def run():
        d = tmp_path_factory.mktemp("dur")
        insert_workload(
            str(d / f"w{next(counter)}.mdb"), checksums=durable, wal=durable
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("durable", [True, False], ids=["on", "off"])
def test_cold_scan_throughput(benchmark, tmp_path_factory, durable):
    d = tmp_path_factory.mktemp("dur")
    path = str(d / "scan.mdb")
    insert_workload(path, checksums=durable, wal=durable)

    def run():
        assert scan_workload(path, checksums=durable, wal=durable) == N_ROWS

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_durability_overhead_is_bounded(tmp_path):
    """Checksums + WAL may cost real time, but never an order of
    magnitude on this insert-heavy workload."""
    import time

    timings = {}
    for durable in (True, False):
        path = str(tmp_path / f"bound_{durable}.mdb")
        start = time.perf_counter()
        insert_workload(path, checksums=durable, wal=durable)
        timings[durable] = time.perf_counter() - start
    assert timings[True] < 10 * max(timings[False], 1e-4)

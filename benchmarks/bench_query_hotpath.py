"""Bench for the vectorized query hot path (docs/performance.md).

Measures the scalar tuple-at-a-time read path (``vectorize=False``)
against the columnar array path (the default) on the same store, same
(T, V) grid, per backend and per plan mode.  Before any timing, the two
paths are asserted to return exactly the same results — the speedup is
only meaningful if the answers are bit-identical.

Four cells per backend: ``{scan, index} x {loop, batch}``.  The loop
path answers each grid query independently; the batch path fetches
candidates once per operator and answers every query from the shared
candidate matrix.

The ``pre_pr_baseline`` section embeds the ``bench_engine_batch``
numbers recorded on this workload immediately before the vectorized
path landed, so the report carries its own before/after comparison.

Run directly to write ``BENCH_query.json``::

    PYTHONPATH=src python benchmarks/bench_query_hotpath.py [--smoke]

or under pytest, where the smoke-sized run asserts the report schema
(timings are not asserted: CI machines vary).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

from repro.core.index import SegDiffIndex
from repro.core.queries import DropQuery
from repro.datagen import random_walk_series
from repro.engine import QuerySession

HOUR = 3600.0
BACKENDS = ("memory", "sqlite", "minidb")

REPORT_SCHEMA = ("benchmark", "series", "pre_pr_baseline", "results")
RESULT_SCHEMA = ("backend", "mode", "path", "scalar_seconds",
                 "vectorized_seconds", "speedup")

#: bench_engine_batch best-of-3 seconds on the 2500-point workload,
#: recorded on the commit immediately before the vectorized hot path
#: (loop, batched) per backend x mode.  The whole read path was scalar
#: then, so these are the true "before" numbers for the speedup claims
#: in EXPERIMENTS.md.
PRE_PR_BASELINE = {
    "memory": {"scan": (3.2331, 3.0401), "index": (3.5145, 3.2140)},
    "sqlite": {"scan": (4.8396, 3.6166), "index": (5.5986, 3.4758)},
    "minidb": {"scan": (9.9471, 3.4350), "index": (12.5101, 5.0857)},
}


def _grid(n_t: int = 5, n_v: int = 4) -> List[DropQuery]:
    t_hours = (0.5, 1.0, 2.0, 4.0, 8.0)[:n_t]
    vs = (-4.0, -2.0, -1.0, -0.5)[:n_v]
    return [DropQuery(t * HOUR, v) for t in t_hours for v in vs]


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_backend(backend: str, n_points: int, repeats: int) -> List[Dict]:
    series = random_walk_series(n_points, dt=300.0, step_std=0.8, seed=41)
    index = SegDiffIndex.build(series, 0.2, 8 * HOUR, backend=backend)
    grid = _grid()
    rows: List[Dict] = []
    try:
        scalar = QuerySession(index.store, vectorize=False)
        vect = QuerySession(index.store)
        for mode in ("scan", "index"):
            # equivalence gate: scalar loop is the §4.4 reference answer
            expect = [scalar.search(q, mode=mode) for q in grid]
            assert [vect.search(q, mode=mode) for q in grid] == expect, (
                f"vectorized loop diverged ({backend}/{mode})"
            )
            assert vect.search_batch(grid, mode=mode) == expect, (
                f"vectorized batch diverged ({backend}/{mode})"
            )
            assert scalar.search_batch(grid, mode=mode) == expect, (
                f"scalar batch diverged ({backend}/{mode})"
            )
            cells = {
                ("loop", scalar): lambda s=scalar, m=mode: [
                    s.search(q, mode=m) for q in grid
                ],
                ("batch", scalar): lambda s=scalar, m=mode: s.search_batch(
                    grid, mode=m
                ),
                ("loop", vect): lambda s=vect, m=mode: [
                    s.search(q, mode=m) for q in grid
                ],
                ("batch", vect): lambda s=vect, m=mode: s.search_batch(
                    grid, mode=m
                ),
            }
            timings = {key: _time(fn, repeats) for key, fn in cells.items()}
            for path in ("loop", "batch"):
                s_sec = timings[(path, scalar)]
                v_sec = timings[(path, vect)]
                rows.append({
                    "backend": backend,
                    "mode": mode,
                    "path": path,
                    "scalar_seconds": round(s_sec, 4),
                    "vectorized_seconds": round(v_sec, 4),
                    "speedup": round(s_sec / v_sec, 2),
                })
    finally:
        index.close()
    return rows


def run_bench(n_points: int, repeats: int, backends: List[str]) -> Dict:
    return {
        "benchmark": "query_hotpath",
        "series": {
            "points": n_points,
            "epsilon": 0.2,
            "window_seconds": 8 * HOUR,
            "grid_queries": len(_grid()),
            "repeats": repeats,
        },
        "pre_pr_baseline": PRE_PR_BASELINE,
        "results": [
            row
            for backend in backends
            for row in bench_backend(backend, n_points, repeats)
        ],
    }


def validate_report(report: Dict) -> None:
    for key in REPORT_SCHEMA:
        assert key in report, f"report missing {key!r}"
    assert report["results"], "no result rows"
    for entry in report["results"]:
        for key in RESULT_SCHEMA:
            assert key in entry, f"result entry missing {key!r}"
        assert entry["scalar_seconds"] > 0
        assert entry["vectorized_seconds"] > 0
        assert entry["speedup"] > 0


# ---------------------------------------------------------------------- #
# pytest entry point (CI smoke; timings not asserted)
# ---------------------------------------------------------------------- #


def test_smoke_schema():
    report = run_bench(n_points=600, repeats=1,
                       backends=["memory", "sqlite"])
    validate_report(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny series; timings are not meaningful",
    )
    parser.add_argument("--points", type=int, default=2500)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--backends", nargs="*", default=list(BACKENDS), choices=BACKENDS,
    )
    parser.add_argument(
        "--out", default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_query.json",
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report = run_bench(n_points=600, repeats=1,
                           backends=["memory", "sqlite"])
    else:
        report = run_bench(args.points, args.repeats, list(args.backends))
    validate_report(report)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benches for the engine's batched grid execution (ISSUE 2 tentpole).

A (T, V) grid of drop queries answered through
``QuerySession.search_batch`` fetches candidates once per operator and
answers every query with vectorized masks over the shared arrays; the
per-query loop pays one store round-trip per query.  The batched path
must (a) return exactly the loop's results on every backend and (b) be
measurably faster at least on SQLite, where the per-query round-trip
(SQL parse + B-tree descent) dominates.

Run directly for a table of numbers::

    PYTHONPATH=src python benchmarks/bench_engine_batch.py
"""

import time

import pytest

from repro.core.index import SegDiffIndex
from repro.core.queries import DropQuery
from repro.datagen import random_walk_series
from repro.engine import QuerySession

HOUR = 3600.0
BACKENDS = ("memory", "sqlite", "minidb")


def _grid():
    return [
        DropQuery(t_hours * HOUR, v)
        for t_hours in (0.5, 1.0, 2.0, 4.0, 8.0)
        for v in (-4.0, -2.0, -1.0, -0.5)
    ]


@pytest.fixture(scope="module", params=BACKENDS)
def session(request):
    series = random_walk_series(2500, dt=300.0, step_std=0.8, seed=41)
    index = SegDiffIndex.build(series, 0.2, 8 * HOUR, backend=request.param)
    yield request.param, index.session
    index.close()


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def run(backend: str, repeats: int = 3):
    """(loop seconds, batched seconds) per mode for one backend."""
    series = random_walk_series(2500, dt=300.0, step_std=0.8, seed=41)
    index = SegDiffIndex.build(series, 0.2, 8 * HOUR, backend=backend)
    grid = _grid()
    out = {}
    try:
        sess = index.session
        for mode in ("scan", "index"):
            loop_s, loop_res = _time(
                lambda m=mode: [sess.search(q, mode=m) for q in grid], repeats
            )
            batch_s, batch_res = _time(
                lambda m=mode: sess.search_batch(grid, mode=m), repeats
            )
            assert batch_res == loop_res
            out[mode] = (loop_s, batch_s)
    finally:
        index.close()
    return out


def test_batch_equals_loop(session):
    _backend, sess = session
    grid = _grid()
    assert sess.search_batch(grid, mode="index") == [
        sess.search(q, mode="index") for q in grid
    ]
    assert sess.search_batch(grid, mode="scan") == [
        sess.search(q, mode="scan") for q in grid
    ]


def test_batch_faster_than_loop_on_sqlite(benchmark):
    out = run("sqlite", repeats=3)
    loop_s, batch_s = out["index"]
    assert batch_s < loop_s, (
        f"batched grid ({batch_s:.3f}s) must beat the per-query loop "
        f"({loop_s:.3f}s) on sqlite"
    )
    benchmark.pedantic(lambda: run("sqlite", repeats=1), rounds=1, iterations=1)


def test_session_is_reusable_across_modes(session):
    _backend, sess = session
    assert isinstance(sess, QuerySession)
    q = DropQuery(HOUR, -2.0)
    assert sess.search(q, mode="auto") == sess.search(q, mode="scan")


def main(argv=None) -> None:
    import argparse

    parser = argparse.ArgumentParser(
        description="Batched-grid engine benchmark"
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 25 functions by "
             "cumulative time (the query-hot-path profile in "
             "EXPERIMENTS.md comes from this)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per cell (best-of); --profile forces 1",
    )
    parser.add_argument(
        "--backends", nargs="*", default=list(BACKENDS),
        choices=BACKENDS, help="subset of backends to run",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.profile else args.repeats

    def body():
        header = (
            f"{'backend':<8} {'mode':<6} {'loop':>10} {'batched':>10} "
            f"{'speedup':>8}"
        )
        print(header)
        print("-" * len(header))
        for backend in args.backends:
            for mode, (loop_s, batch_s) in run(backend, repeats).items():
                print(
                    f"{backend:<8} {mode:<6} {loop_s:>9.4f}s "
                    f"{batch_s:>9.4f}s {loop_s / batch_s:>7.1f}x"
                )

    if args.profile:
        import cProfile
        import pstats

        prof = cProfile.Profile()
        prof.runcall(body)
        pstats.Stats(prof).sort_stats("cumulative").print_stats(25)
    else:
        body()


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""Bench for streaming ingest into the partitioned live index
(docs/streaming.md).

Four questions:

* **Ingest**: what sustained append rate (points/s) does a
  :class:`LiveIndex` hold while sealing partitions online, per backend?
* **Seal**: how long does one seal take — finalize the hot store, copy
  it into the sealed format, and atomically install the next manifest
  generation?  We report min/mean/max over every seal of the run.
* **Query under ingest**: with a writer thread appending (and sealing)
  continuously, what query latency do concurrent readers see?  Each
  query pins a snapshot, so seals and compactions never block it; we
  report p50/p99 over a mixed drop/jump workload.
* **WAL overhead**: what does the hot-partition write-ahead log
  (docs/streaming.md, durability contract) cost?  The same sqlite
  ingest runs WAL-off and WAL-on; the full run asserts the overhead
  stays within a 10% throughput budget.

Run directly to write ``BENCH_ingest.json``::

    PYTHONPATH=src python benchmarks/bench_ingest.py [--smoke]

or under pytest, where the smoke-sized run asserts the report schema
(timings are not asserted: CI machines vary).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core.live import LiveIndex

HOUR = 3600.0
EPSILON = 0.5
WINDOW = HOUR

REPORT_SCHEMA = ("benchmark", "series", "ingest", "query_under_ingest",
                 "wal_overhead")
INGEST_SCHEMA = ("backend", "wal", "points", "seal_rows",
                 "elapsed_seconds", "points_per_second", "n_seals",
                 "seal_ms_min", "seal_ms_mean", "seal_ms_max",
                 "n_partitions")
QUERY_SCHEMA = ("queries", "p50_ms", "p99_ms", "max_ms",
                "writer_points", "writer_seals")
WAL_SCHEMA = ("backend", "points_per_second_wal_off",
              "points_per_second_wal_on", "overhead_pct", "gate_pct",
              "within_gate")

#: The durability budget: WAL-on ingest may cost at most this much
#: sustained throughput relative to WAL-off (asserted in full runs).
WAL_GATE_PCT = 10.0


def make_walk(n: int, seed: int = 20080325) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    ts = np.cumsum(rng.uniform(20.0, 90.0, n))
    vs = np.cumsum(rng.normal(0.0, 0.8, n))
    third = n // 3
    vs[third : third + 8] -= np.linspace(0.0, 4.0, 8)
    return ts, vs


def bench_ingest(n_points: int, seal_rows: int, backend: str,
                 wal: bool = False) -> Dict:
    """Sustained append rate with explicit, individually-timed seals."""
    # check the seal threshold a few times per partition's worth of rows
    chunk = max(256, seal_rows // 4)
    ts, vs = make_walk(n_points)
    directory = None
    if backend != "memory":
        directory = tempfile.mkdtemp(prefix="bench-ingest-")
    seal_ms: List[float] = []
    try:
        live = LiveIndex(
            EPSILON, WINDOW, directory=directory, backend=None
            if backend == "memory" else backend,
            seal_rows=2 ** 62,  # seals are driven (and timed) manually
            wal=wal,
        )
        t0 = time.perf_counter()
        appended = 0
        for lo in range(0, n_points, chunk):
            live.append_array(ts[lo : lo + chunk], vs[lo : lo + chunk])
            appended += min(chunk, n_points - lo)
            if live.stats()["hot"]["rows"] >= seal_rows:
                s0 = time.perf_counter()
                live.seal()
                seal_ms.append((time.perf_counter() - s0) * 1e3)
        elapsed = time.perf_counter() - t0
        n_partitions = len(live.partitions)
        live.close()
    finally:
        if directory is not None:
            shutil.rmtree(directory, ignore_errors=True)
    return {
        "backend": backend,
        "wal": bool(wal),
        "points": int(appended),
        "seal_rows": int(seal_rows),
        "elapsed_seconds": round(elapsed, 4),
        "points_per_second": round(appended / elapsed, 1),
        "n_seals": len(seal_ms),
        "seal_ms_min": round(min(seal_ms), 3) if seal_ms else None,
        "seal_ms_mean": round(float(np.mean(seal_ms)), 3)
        if seal_ms else None,
        "seal_ms_max": round(max(seal_ms), 3) if seal_ms else None,
        "n_partitions": int(n_partitions),
    }


def bench_query_under_ingest(n_points: int, seal_rows: int,
                             n_queries: int) -> Dict:
    """Reader latency percentiles while a writer appends and seals."""
    ts, vs = make_walk(n_points)
    warm = n_points // 4
    live = LiveIndex(EPSILON, WINDOW, seal_rows=seal_rows)
    live.append_array(ts[:warm], vs[:warm])
    stop = threading.Event()
    progress = {"points": warm}

    def writer() -> None:
        for i in range(warm, n_points):
            if stop.is_set():
                return
            live.append(float(ts[i]), float(vs[i]))
            progress["points"] = i + 1

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    lat_ms: List[float] = []
    try:
        for i in range(n_queries):
            t = 600.0 + (i % 6) * 300.0
            q0 = time.perf_counter()
            with live.snapshot() as snap:
                if i % 2 == 0:
                    snap.search_drops(t, -0.5 - (i % 4))
                else:
                    snap.search_jumps(t, 0.5 + (i % 4))
            lat_ms.append((time.perf_counter() - q0) * 1e3)
    finally:
        stop.set()
        thread.join()
    stats = live.stats()
    live.close()
    return {
        "queries": len(lat_ms),
        "p50_ms": round(float(np.percentile(lat_ms, 50)), 3),
        "p99_ms": round(float(np.percentile(lat_ms, 99)), 3),
        "max_ms": round(max(lat_ms), 3),
        "writer_points": int(progress["points"]),
        "writer_seals": int(stats["generation"]),
    }


def bench_wal_overhead(n_points: int, seal_rows: int,
                       backend: str = "sqlite",
                       repeats: int = 2) -> Tuple[List[Dict], Dict]:
    """The cost of durability: the same ingest with and without the
    hot-partition WAL, plus the overhead verdict against the gate.

    Each configuration runs ``repeats`` times and keeps its best
    sustained rate — single runs swing several percent on shared
    machines, which would drown the gate in scheduler noise.
    """
    def best(wal: bool) -> Dict:
        rows = [bench_ingest(n_points, seal_rows, backend, wal=wal)
                for _ in range(max(1, repeats))]
        return max(rows, key=lambda r: r["points_per_second"])

    off = best(False)
    on = best(True)
    overhead_pct = round(
        100.0 * (off["points_per_second"] / on["points_per_second"] - 1.0),
        2,
    )
    return [off, on], {
        "backend": backend,
        "points_per_second_wal_off": off["points_per_second"],
        "points_per_second_wal_on": on["points_per_second"],
        "overhead_pct": overhead_pct,
        "gate_pct": WAL_GATE_PCT,
        "within_gate": overhead_pct <= WAL_GATE_PCT,
    }


def run_bench(n_points: int, seal_rows: int, n_queries: int,
              backends: List[str]) -> Dict:
    # the WAL pair doubles as the durable-backend baseline row
    wal_rows, wal_overhead = bench_wal_overhead(n_points, seal_rows)
    ingest = [
        bench_ingest(n_points, seal_rows, backend)
        for backend in backends
        if backend != "sqlite"
    ] + wal_rows
    return {
        "benchmark": "ingest",
        "series": {
            "points": n_points,
            "epsilon": EPSILON,
            "window_seconds": WINDOW,
            "seal_rows": seal_rows,
        },
        "ingest": ingest,
        "query_under_ingest": bench_query_under_ingest(
            n_points, seal_rows, n_queries
        ),
        "wal_overhead": wal_overhead,
    }


def validate_report(report: Dict) -> None:
    for key in REPORT_SCHEMA:
        assert key in report, f"report missing {key!r}"
    assert report["ingest"], "no ingest rows"
    for entry in report["ingest"]:
        for key in INGEST_SCHEMA:
            assert key in entry, f"ingest entry missing {key!r}"
        assert entry["points_per_second"] > 0
        assert entry["n_seals"] >= 1, "run too small to seal"
        assert entry["n_partitions"] >= entry["n_seals"]
    q = report["query_under_ingest"]
    for key in QUERY_SCHEMA:
        assert key in q, f"query entry missing {key!r}"
    assert q["p99_ms"] >= q["p50_ms"]
    w = report["wal_overhead"]
    for key in WAL_SCHEMA:
        assert key in w, f"wal_overhead missing {key!r}"
    assert w["points_per_second_wal_on"] > 0
    # the gate itself is asserted only in full runs (main); smoke-sized
    # series are timing noise


# ---------------------------------------------------------------------- #
# pytest entry point (CI smoke; timings not asserted)
# ---------------------------------------------------------------------- #


def test_smoke_schema():
    report = run_bench(
        n_points=3000, seal_rows=600, n_queries=40,
        backends=["memory", "sqlite"],
    )
    validate_report(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny series; timings are not meaningful",
    )
    parser.add_argument("--points", type=int, default=200_000)
    parser.add_argument("--seal-rows", type=int, default=20_000)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument(
        "--out", default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_ingest.json",
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report = run_bench(
            n_points=3000, seal_rows=600, n_queries=40,
            backends=["memory", "sqlite"],
        )
    else:
        report = run_bench(
            n_points=args.points, seal_rows=args.seal_rows,
            n_queries=args.queries,
            backends=["memory", "sqlite", "minidb"],
        )
    validate_report(report)
    if not args.smoke:
        w = report["wal_overhead"]
        assert w["within_gate"], (
            f"WAL overhead {w['overhead_pct']}% exceeds the "
            f"{w['gate_pct']}% durability budget"
        )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())

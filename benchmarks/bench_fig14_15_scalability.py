"""Bench for Figures 14-15: growth with the number of observations.

Times incremental ingest and asserts the figures' shapes: SegDiff's
feature size and scan time grow roughly linearly with n, and Exh (the
measured groups plus the paper-style linear extrapolation) stays an order
of magnitude larger.
"""

import pytest

from repro.core.index import SegDiffIndex
from repro.experiments import datasets
from repro.experiments.fig14_15_scalability import run


@pytest.fixture(scope="module")
def growth():
    return run()


def test_incremental_ingest_speed(benchmark):
    """Time ingesting one 6-day group into a live index."""
    groups = datasets.scalability_groups()

    def ingest_one():
        index = SegDiffIndex(
            datasets.DEFAULT_EPSILON, datasets.DEFAULT_WINDOW
        )
        index.ingest(groups[0])
        index.checkpoint()
        index.close()

    benchmark.pedantic(ingest_one, rounds=3, iterations=1)


def test_fig14_segdiff_grows_linearly(growth):
    sizes = [row.segdiff_feature_bytes for row in growth]
    ns = [row.n_observations for row in growth]
    assert sizes == sorted(sizes)
    # bytes-per-observation stays roughly constant => linear growth
    per_obs = [s / n for s, n in zip(sizes, ns)]
    assert max(per_obs) / min(per_obs) < 2.0


def test_fig14_exh_order_of_magnitude_larger(growth):
    for row in growth:
        assert row.exh_feature_bytes_extrapolated > 4 * row.segdiff_feature_bytes


def test_fig15_scan_time_grows(growth):
    times = [row.segdiff_scan for row in growth]
    assert times[-1] > times[0]


def test_exh_measured_for_first_groups_only(growth):
    measured = [row for row in growth if row.exh_feature_bytes is not None]
    assert len(measured) == 2, "paper aborted Exh after two groups"
    for row in measured:
        assert row.exh_scan is not None
        assert row.exh_scan > row.segdiff_scan

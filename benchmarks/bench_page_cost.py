"""Bench for the MiniDB page-cost study.

Asserts the mechanically measured versions of the paper's key findings,
in hardware-independent page reads with a deterministically cold pool.
"""

import pytest

from repro.experiments.page_cost import run


@pytest.fixture(scope="module")
def costs():
    return {row.label: row for row in run()}


def test_page_cost_runtime(benchmark):
    benchmark.pedantic(lambda: run(days=2), rounds=1, iterations=1)


def test_segdiff_scan_touches_order_of_magnitude_fewer_pages(costs):
    """Figures 17-18: SegDiff's compression is a direct I/O saving."""
    for row in costs.values():
        assert row.exh_scan >= 5 * row.segdiff_scan


def test_index_wins_on_selective_queries(costs):
    row = costs["selective"]
    assert row.segdiff_index < row.segdiff_scan
    assert row.exh_index < row.exh_scan


def test_index_loses_on_hard_queries(costs):
    """Figures 19-20: one heap fetch per match sinks the index plan."""
    row = costs["hard"]
    assert row.segdiff_index > row.segdiff_scan
    assert row.exh_index > row.exh_scan
    # Exh's blowup dwarfs SegDiff's: it has ~40x more matches to fetch
    assert row.exh_index > 5 * row.segdiff_index


def test_scan_cost_is_query_independent(costs):
    """A sequential scan reads the whole table no matter the query."""
    sd_scans = {row.segdiff_scan for row in costs.values()}
    exh_scans = {row.exh_scan for row in costs.values()}
    assert len(sd_scans) == 1
    assert len(exh_scans) == 1


def test_hit_counts_consistent(costs):
    assert costs["hard"].segdiff_hits > costs["canonical"].segdiff_hits
    assert costs["hard"].exh_hits > costs["canonical"].exh_hits
    assert costs["selective"].segdiff_hits == 0

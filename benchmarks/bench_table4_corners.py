"""Bench for Table 4: corner-case distribution vs tolerance.

Times feature collection (the case analysis itself) and asserts the
distribution's shape: two-corner cases dominate, one-corner share grows
with ε, three-corner share shrinks, and the effective corner count stays
near 2 — i.e. the reduction halves the 4-corner storage.
"""

import pytest

from repro.core.corners import collect_features
from repro.core.parallelogram import Parallelogram
from repro.experiments import datasets
from repro.experiments.table4_corners import run
from repro.segmentation import SlidingWindowSegmenter


@pytest.fixture(scope="module")
def corners():
    return run()


def test_collect_features_speed(benchmark, series_week):
    """Time the case analysis over all adjacent segment pairs."""
    segments = SlidingWindowSegmenter(datasets.DEFAULT_EPSILON).segment(
        series_week
    )
    pairs = [
        Parallelogram.from_segments(cd, ab)
        for cd, ab in zip(segments, segments[1:])
    ]

    def collect_all():
        return [collect_features(p, datasets.DEFAULT_EPSILON) for p in pairs]

    out = benchmark(collect_all)
    assert len(out) == len(pairs)


def test_multi_corner_cases_dominate(corners):
    """One-corner cases are always the rarest (paper: 17-27 %; our slope
    mix leans slightly more mixed-sign, shifting weight between the two-
    and three-corner bins while keeping the same ordering trends)."""
    for row in corners.values():
        assert row.pct_one == min(row.pct_one, row.pct_two, row.pct_three)
        assert row.pct_two + row.pct_three >= 70.0


def test_one_corner_share_grows_with_epsilon(corners):
    shares = [corners[eps].pct_one for eps in datasets.EPSILON_SWEEP]
    assert shares == sorted(shares)


def test_three_corner_share_shrinks_with_epsilon(corners):
    shares = [corners[eps].pct_three for eps in datasets.EPSILON_SWEEP]
    assert shares == sorted(shares, reverse=True)


def test_effective_corner_count_halves_storage(corners):
    for row in corners.values():
        assert 1.8 <= row.effective <= 2.6, "paper: ~2.1 of 4 corners kept"

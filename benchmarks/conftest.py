"""Shared fixtures for the benchmark suite.

Heavy experiment runs are computed once per session and shared; the
``benchmark`` fixtures time the hot operations (segmentation, extraction,
queries) while plain asserts check the paper's qualitative shapes.
"""

from __future__ import annotations

import pytest

from repro.experiments import datasets


@pytest.fixture(scope="session")
def series_week():
    """The standard 7-day smoothed CAD series used by Section 6.1-style
    benches."""
    return datasets.standard_series(days=7)


@pytest.fixture(scope="session")
def canonical_query():
    """(T, V) of the canonical CAD query: 3-degree drop within one hour."""
    return (datasets.DEFAULT_T, datasets.DEFAULT_V)

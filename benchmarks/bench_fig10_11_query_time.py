"""Bench for Figures 10-11: query time vs compression rate.

Times the canonical CAD query against both systems in both plan modes and
asserts the figures' shapes: SegDiff's time falls as ε grows, and SegDiff
beats Exh in every regime.
"""

import pytest

from repro.experiments import datasets
from repro.experiments.fig10_11_query_time import run
from repro.experiments.runner import build_exh, build_segdiff


@pytest.fixture(scope="module")
def times():
    return run()


@pytest.fixture(scope="module")
def built_indexes(series_week):
    segdiff = build_segdiff(
        series_week, datasets.DEFAULT_EPSILON, datasets.DEFAULT_WINDOW
    )
    exh = build_exh(series_week, datasets.DEFAULT_WINDOW)
    yield segdiff, exh
    segdiff.close()
    exh.close()


def test_segdiff_scan_latency(benchmark, built_indexes, canonical_query):
    segdiff, _exh = built_indexes
    t_thr, v_thr = canonical_query
    hits = benchmark(segdiff.search_drops, t_thr, v_thr, mode="scan")
    assert hits


def test_segdiff_indexed_latency(benchmark, built_indexes, canonical_query):
    segdiff, _exh = built_indexes
    t_thr, v_thr = canonical_query
    hits = benchmark(segdiff.search_drops, t_thr, v_thr, mode="index")
    assert hits


def test_exh_scan_latency(benchmark, built_indexes, canonical_query):
    _segdiff, exh = built_indexes
    t_thr, v_thr = canonical_query
    hits = benchmark(exh.search_drops, t_thr, v_thr, mode="scan")
    assert hits


def test_exh_indexed_latency(benchmark, built_indexes, canonical_query):
    _segdiff, exh = built_indexes
    t_thr, v_thr = canonical_query
    hits = benchmark(exh.search_drops, t_thr, v_thr, mode="index")
    assert hits


def test_fig10_segdiff_scan_falls_with_r(times):
    scans = [times[eps].segdiff_scan for eps in datasets.EPSILON_SWEEP]
    # allow small timing noise between adjacent points; the sweep's ends
    # must show the 1/r trend clearly
    assert scans[-1] < scans[0]


def test_segdiff_beats_exh_in_both_modes(times):
    for row in times.values():
        assert row.r_st > 1.0, f"scan ratio at eps={row.epsilon}"
        assert row.r_it > 1.0, f"index ratio at eps={row.epsilon}"


def test_ratios_grow_with_epsilon(times):
    r_st = [times[eps].r_st for eps in datasets.EPSILON_SWEEP]
    r_it = [times[eps].r_it for eps in datasets.EPSILON_SWEEP]
    assert r_st[-1] > r_st[0]
    assert r_it[-1] > r_it[0]

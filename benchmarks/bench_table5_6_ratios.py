"""Bench for Tables 5 and 6: the four Exh/SegDiff ratios vs tolerance.

Runs the combined size+time experiment once and asserts every ratio
exceeds 1 and grows from the low-ε to the high-ε end, as in the paper.
"""

import pytest

from repro.experiments import datasets
from repro.experiments.table5_6_ratios import run


@pytest.fixture(scope="module")
def ratios():
    return run()


def test_full_ratio_suite_runtime(benchmark):
    """Time the complete Tables 5-6 experiment on a reduced sweep."""
    benchmark.pedantic(
        lambda: run(epsilons=(0.2,)), rounds=1, iterations=1
    )


def test_table5_feature_ratio(ratios):
    values = [ratios[eps].r_f for eps in datasets.EPSILON_SWEEP]
    assert all(v > 1.0 for v in values)
    assert values == sorted(values)


def test_table5_scan_time_ratio(ratios):
    values = [ratios[eps].r_st for eps in datasets.EPSILON_SWEEP]
    assert all(v > 1.0 for v in values)
    assert values[-1] > values[0]


def test_table6_disk_ratio(ratios):
    values = [ratios[eps].r_d for eps in datasets.EPSILON_SWEEP]
    assert all(v > 1.0 for v in values)
    assert values == sorted(values)


def test_table6_indexed_time_ratio(ratios):
    values = [ratios[eps].r_it for eps in datasets.EPSILON_SWEEP]
    assert all(v > 1.0 for v in values)
    assert values[-1] > values[0]

"""Bench for sharded scatter-gather and checksum anti-entropy
(docs/sharding.md).

Two questions:

* **Query**: what does an N-shard scatter-gather cost relative to one
  index over the same series?  Shards are smaller, so per-shard work
  shrinks; the thread-pool gather adds coordination.  We report the
  latency ratio per shard count over a mixed drop/jump workload.
* **Verify**: how many checksum ranges does :meth:`ShardedIndex.verify`
  read to localize k silently-mutated replica rows, against the n rows
  a full row-by-row replica diff would read — the O(k·log n) vs O(n)
  claim, measured, plus wall time for both.

Run directly to write ``BENCH_shard.json``::

    PYTHONPATH=src python benchmarks/bench_shard.py [--smoke]

or under pytest, where the smoke-sized run asserts the report schema
and the range-read bound (timings are not asserted: CI machines vary).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

from repro.core.index import SegDiffIndex
from repro.datagen import TimeSeries
from repro.engine.sharding import ShardedIndex
from repro.storage import checksum as cks

HOUR = 3600.0
EPSILON = 0.5
WINDOW = HOUR
MAX_GAP = HOUR
N_QUERIES = 60

REPORT_SCHEMA = ("benchmark", "series", "query", "verify")
QUERY_SCHEMA = ("n_shards", "build_seconds", "query_seconds",
                "latency_ratio_vs_single")
VERIFY_SCHEMA = ("k_mutated", "table_rows", "ranges_checked",
                 "full_scan_rows", "traffic_ratio", "verify_seconds",
                 "full_diff_seconds", "repair_clean")


def make_series(episodes: int, points_per_episode: int) -> TimeSeries:
    """Gapped episodes so time-sharding splits losslessly."""
    rng = np.random.default_rng(20080325)
    ts: List[np.ndarray] = []
    vs: List[np.ndarray] = []
    t0 = 0.0
    for _ in range(episodes):
        t = t0 + np.arange(points_per_episode) * 60.0
        v = np.cumsum(rng.normal(0, 0.05, points_per_episode))
        third = points_per_episode // 3
        v[third : third + 6] -= np.linspace(0, 3.0, 6)
        ts.append(t)
        vs.append(v)
        t0 = t[-1] + 24 * HOUR
    return TimeSeries(
        times=np.concatenate(ts), values=np.concatenate(vs), name="bench"
    )


def query_grid() -> List:
    """(kind, T, V) mix exercising drops and jumps at varied depths."""
    grid = []
    for i in range(N_QUERIES // 2):
        t = 600.0 + (i % 6) * 500.0
        grid.append(("drop", t, -0.5 - (i % 4)))
        grid.append(("jump", t, 0.5 + (i % 4)))
    return grid


def time_queries(target) -> float:
    t0 = time.perf_counter()
    for kind, t, v in query_grid():
        target.search_outcome(kind, t, v)
    return time.perf_counter() - t0


def bench_query(series: TimeSeries, shard_counts: List[int]) -> List[Dict]:
    t0 = time.perf_counter()
    single = SegDiffIndex.build(series, EPSILON, WINDOW, max_gap=MAX_GAP)
    single_build = time.perf_counter() - t0
    try:
        single_q = time_queries(single)
    finally:
        single.close()
    rows = [{
        "n_shards": 1,
        "build_seconds": round(single_build, 4),
        "query_seconds": round(single_q, 4),
        "latency_ratio_vs_single": 1.0,
    }]
    for n in shard_counts:
        t0 = time.perf_counter()
        sharded = ShardedIndex.build(
            series, EPSILON, WINDOW, n_shards=n, max_gap=MAX_GAP
        )
        build_s = time.perf_counter() - t0
        try:
            query_s = time_queries(sharded)
        finally:
            sharded.close()
        rows.append({
            "n_shards": n,
            "build_seconds": round(build_s, 4),
            "query_seconds": round(query_s, 4),
            "latency_ratio_vs_single": round(query_s / single_q, 3),
        })
    return rows


def bench_verify(series: TimeSeries, k: int) -> Dict:
    sharded = ShardedIndex.build(
        series, EPSILON, WINDOW, n_shards=1, max_gap=MAX_GAP,
        replicas=2, leaf_size=64,
    )
    try:
        shard = sharded.shards[0]
        replica = shard.replicas[1]
        clean = replica.store.read_table_rows("drop_points")
        n_rows = clean.shape[0]
        mutated = np.linspace(0, n_rows - 1, k).astype(int)
        for row in mutated:
            bad = clean[row : row + 1].copy()
            bad[0, 1] += 1.0
            replica.store.replace_table_rows("drop_points", int(row), bad)

        t0 = time.perf_counter()
        report = sharded.verify()
        verify_s = time.perf_counter() - t0

        # the naive alternative: read every replica row and compare
        t0 = time.perf_counter()
        full_rows = 0
        for table in cks.TABLES:
            a = shard.primary.store.read_table_rows(table)
            b = replica.store.read_table_rows(table)
            full_rows += a.shape[0] + b.shape[0]
            np.array_equal(a, b)
        full_diff_s = time.perf_counter() - t0

        repaired = sharded.repair(report)
        return {
            "k_mutated": int(k),
            "table_rows": int(n_rows),
            "ranges_checked": int(report.ranges_checked),
            "full_scan_rows": int(full_rows),
            "traffic_ratio": round(
                report.ranges_checked / max(1, full_rows), 4
            ),
            "verify_seconds": round(verify_s, 4),
            "full_diff_seconds": round(full_diff_s, 4),
            "repair_clean": bool(repaired.clean),
        }
    finally:
        sharded.close()


def run_bench(episodes: int, points: int, shard_counts: List[int],
              k_mutated: int) -> Dict:
    series = make_series(episodes, points)
    return {
        "benchmark": "shard",
        "series": {
            "episodes": episodes,
            "points": len(series),
            "epsilon": EPSILON,
            "window_seconds": WINDOW,
            "queries": N_QUERIES,
        },
        "query": bench_query(series, shard_counts),
        "verify": bench_verify(series, k_mutated),
    }


def validate_report(report: Dict) -> None:
    for key in REPORT_SCHEMA:
        assert key in report, f"report missing {key!r}"
    assert report["query"][0]["n_shards"] == 1
    for entry in report["query"]:
        for key in QUERY_SCHEMA:
            assert key in entry, f"query entry missing {key!r}"
    verify = report["verify"]
    for key in VERIFY_SCHEMA:
        assert key in verify, f"verify entry missing {key!r}"
    assert verify["repair_clean"] is True
    # the whole point: localization reads far fewer ranges than a scan
    assert verify["ranges_checked"] < verify["full_scan_rows"]


# ---------------------------------------------------------------------- #
# pytest entry point (CI smoke; timings not asserted)
# ---------------------------------------------------------------------- #


def test_smoke_schema():
    report = run_bench(
        episodes=4, points=400, shard_counts=[2, 4], k_mutated=3
    )
    validate_report(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny series; timings are not meaningful",
    )
    parser.add_argument("--episodes", type=int, default=16)
    parser.add_argument("--points", type=int, default=4000)
    parser.add_argument("--k-mutated", type=int, default=8)
    parser.add_argument(
        "--out", default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_shard.json",
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report = run_bench(
            episodes=4, points=400, shard_counts=[2, 4], k_mutated=3
        )
    else:
        report = run_bench(
            episodes=args.episodes, points=args.points,
            shard_counts=[2, 4, 8], k_mutated=args.k_mutated,
        )
    validate_report(report)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())

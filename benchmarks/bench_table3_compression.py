"""Bench for Table 3: compression rate vs error tolerance.

Times the paper's segmenter on the standard subset and asserts the
table's shape: ``r`` grows monotonically with ε and sits in the paper's
regime (mid single digits at ε = 0.2, roughly 3-5x higher at ε = 1.0).
"""

import pytest

from repro.experiments import datasets
from repro.experiments.table3_compression import run
from repro.segmentation import SlidingWindowSegmenter


@pytest.fixture(scope="module")
def table3():
    return run()


def test_segmentation_speed(benchmark, series_week):
    """Time one full segmentation pass at the default tolerance."""
    segmenter = SlidingWindowSegmenter(datasets.DEFAULT_EPSILON)
    segments = benchmark(segmenter.segment, series_week)
    assert segments


def test_r_grows_with_epsilon(table3):
    rates = [table3[eps] for eps in datasets.EPSILON_SWEEP]
    assert rates == sorted(rates), "compression must grow with tolerance"


def test_r_in_paper_regime(table3):
    assert 3.0 <= table3[0.2] <= 20.0
    assert table3[1.0] / table3[0.1] > 2.0, "sweep must span a wide regime"

"""Bench for Figures 12-13 / Table 7: performance vs window size.

Times Algorithm 1 at the default window and asserts the sweep's shapes:
both systems' feature sizes grow with w, and the size ratio itself grows
with w (SegDiff's advantage increases for longer-span queries).
"""

import pytest

from repro.core.extraction import FeatureExtractor
from repro.experiments import datasets
from repro.experiments.fig12_13_window import run
from repro.segmentation import SlidingWindowSegmenter
from repro.storage import MemoryFeatureStore


@pytest.fixture(scope="module")
def window_rows():
    return run()


def test_extraction_speed(benchmark, series_week):
    """Time Algorithm 1 over the pre-computed segments (w = 8 h)."""
    segments = SlidingWindowSegmenter(datasets.DEFAULT_EPSILON).segment(
        series_week
    )

    def extract():
        store = MemoryFeatureStore()
        extractor = FeatureExtractor(
            datasets.DEFAULT_EPSILON, datasets.DEFAULT_WINDOW, store
        )
        for seg in segments:
            extractor.add_segment(seg)
        return extractor.stats.n_pairs

    pairs = benchmark(extract)
    assert pairs > 0


def test_fig12_sizes_grow_with_window(window_rows):
    hours = sorted(window_rows)
    segdiff = [window_rows[h].segdiff_feature_bytes for h in hours]
    exh = [window_rows[h].exh_feature_bytes for h in hours]
    assert segdiff == sorted(segdiff)
    assert exh == sorted(exh)


def test_table7_ratio_grows_with_window(window_rows):
    hours = sorted(window_rows)
    r_f = [window_rows[h].r_f for h in hours]
    r_d = [window_rows[h].r_d for h in hours]
    assert r_f == sorted(r_f), "paper: r_f increases with w"
    assert r_d == sorted(r_d), "paper: r_d increases with w"


def test_fig13_exh_scan_grows_with_window(window_rows):
    hours = sorted(window_rows)
    exh = [window_rows[h].exh_scan for h in hours]
    assert exh[-1] > exh[0]


def test_segdiff_wins_at_every_window(window_rows):
    for row in window_rows.values():
        assert row.r_f > 1.0
        assert row.r_st > 1.0

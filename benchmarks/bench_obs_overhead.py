"""Bench for the observability layer's overhead (docs/observability.md).

Times the same build + query workload under three configurations:

* ``off``             — metrics disabled (``set_enabled(False)``);
* ``metrics``         — the always-on default (which since the query-
  diagnostics work includes per-query resource accounting);
* ``metrics_tracing`` — metrics plus span tracing enabled.

and across three query paths:

* ``scalar``     — a plain index queried with ``vectorize=False``;
* ``vectorized`` — the same index on the default columnar primitives;
* ``sharded``    — a 4-shard transect behind scatter-gather (context
  hand-off through the thread pool plus per-shard accounting).

The acceptance bar is that ``metrics`` stays within 3% of ``off`` on
every path — cheap enough to leave on in production.  Tracing allocates
per span, so it is allowed to cost more (it is opt-in).

Run directly to write ``BENCH_obs.json``::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]

or under pytest, where the smoke-sized run asserts the report schema
plus the exporter and flight-recorder dump schemas (timing ratios are
not asserted: CI machines vary).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.core.index import SegDiffIndex
from repro.core.queries import DropQuery, JumpQuery
from repro.datagen import CADConfig, CADTransectGenerator, TimeSeries
from repro.engine.session import QuerySession
from repro.engine.sharding import ShardedIndex
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing

HOUR = 3600.0

EPSILON = 0.5
WINDOW = HOUR
N_QUERIES = 120
N_SHARDS = 4

PATHS = ("scalar", "vectorized", "sharded")

REPORT_SCHEMA = ("benchmark", "series", "repeats", "paths",
                 "configs", "overhead_pct")
CONFIG_SCHEMA = ("name", "build_seconds", "query_seconds", "total_seconds")


def make_series(days: int) -> TimeSeries:
    cfg = CADConfig(days=days, n_sensors=1)
    return CADTransectGenerator(cfg).generate(0)


def make_transect(days: int) -> Dict[str, TimeSeries]:
    """One shorter series per shard — the scatter-gather workload."""
    cfg = CADConfig(days=days, n_sensors=N_SHARDS)
    gen = CADTransectGenerator(cfg)
    return {f"s{i}": gen.generate(i) for i in range(N_SHARDS)}


def _queries() -> List:
    """A mixed drop/jump grid exercising both engine operators."""
    out: List = []
    for i in range(N_QUERIES // 2):
        t = 600.0 + (i % 6) * 500.0
        out.append(DropQuery(t, -0.5 - (i % 4)))
        out.append(JumpQuery(t, 0.5 + (i % 4)))
    return out


def run_workload(path: str, series: TimeSeries,
                 transect: Dict[str, TimeSeries]) -> Dict[str, float]:
    """One build + query pass on ``path``; returns wall seconds."""
    if path == "sharded":
        t0 = time.perf_counter()
        sharded = ShardedIndex.build_transect(transect, EPSILON, WINDOW)
        build_s = time.perf_counter() - t0
        try:
            t0 = time.perf_counter()
            for q in _queries():
                kind = "drop" if q.v_threshold < 0 else "jump"
                sharded.search_outcome(
                    kind, q.t_threshold, q.v_threshold, mode="index"
                )
            query_s = time.perf_counter() - t0
        finally:
            sharded.close()
        return {"build": build_s, "query": query_s}

    vectorize: Optional[bool] = None if path == "vectorized" else False
    t0 = time.perf_counter()
    index = SegDiffIndex.build(series, EPSILON, WINDOW)
    build_s = time.perf_counter() - t0
    try:
        session = QuerySession(index.store, vectorize=vectorize)
        t0 = time.perf_counter()
        for q in _queries():
            session.search(q, mode="index")
        query_s = time.perf_counter() - t0
    finally:
        index.close()
    return {"build": build_s, "query": query_s}


def run_config(path: str, series: TimeSeries,
               transect: Dict[str, TimeSeries], metrics_on: bool,
               tracing_on: bool) -> Dict[str, float]:
    """One build+query pass under one on/off configuration."""
    prev_metrics = obs_metrics.enabled()
    prev_tracing = obs_tracing.enabled()
    obs_metrics.set_enabled(metrics_on)
    obs_tracing.set_enabled(tracing_on)
    try:
        return run_workload(path, series, transect)
    finally:
        obs_metrics.set_enabled(prev_metrics)
        obs_tracing.set_enabled(prev_tracing)


CONFIGS = (
    ("off", False, False),
    ("metrics", True, False),
    ("metrics_tracing", True, True),
)


def run_path(path: str, series: TimeSeries,
             transect: Dict[str, TimeSeries], repeats: int) -> Dict:
    """Best-of-``repeats`` per config, configs interleaved round-robin.

    Interleaving matters: each pass takes seconds, and slow machine
    drift (CPU frequency, container throttling) over back-to-back
    blocks would otherwise alias into the few-percent config deltas
    this bench exists to measure.  Round-robin spreads the drift
    across all three configs equally.
    """
    times: Dict[str, Dict[str, float]] = {
        name: {"build": float("inf"), "query": float("inf")}
        for name, _, _ in CONFIGS
    }
    for _ in range(repeats):
        for name, m_on, t_on in CONFIGS:
            got = run_config(path, series, transect, m_on, t_on)
            times[name] = {
                k: min(times[name][k], got[k]) for k in times[name]
            }
    configs: List[Dict] = []
    for name, _, _ in CONFIGS:
        best = times[name]
        configs.append({
            "name": name,
            "build_seconds": round(best["build"], 4),
            "query_seconds": round(best["query"], 4),
            "total_seconds": round(best["build"] + best["query"], 4),
        })
    base = times["off"]["build"] + times["off"]["query"]
    overhead = {
        name: round(
            100.0 * ((t["build"] + t["query"]) - base) / base, 2
        )
        for name, t in times.items()
        if name != "off"
    }
    return {"configs": configs, "overhead_pct": overhead}


def run_bench(days: int = 350, repeats: int = 5) -> Dict:
    series = make_series(days)
    transect = make_transect(max(2, days // N_SHARDS))
    paths = {
        path: run_path(path, series, transect, repeats)
        for path in PATHS
    }
    return {
        "benchmark": "obs_overhead",
        "series": {
            "days": days,
            "points": len(series),
            "queries": N_QUERIES,
            "epsilon": EPSILON,
            "window_seconds": WINDOW,
            "shards": N_SHARDS,
        },
        "repeats": repeats,
        "paths": paths,
        # top level mirrors the default (vectorized) path, the shape
        # earlier BENCH_obs.json consumers read
        "configs": paths["vectorized"]["configs"],
        "overhead_pct": paths["vectorized"]["overhead_pct"],
    }


def validate_report(report: Dict) -> None:
    for key in REPORT_SCHEMA:
        assert key in report, f"report missing {key!r}"
    assert set(report["paths"]) == set(PATHS)
    for path_report in report["paths"].values():
        assert len(path_report["configs"]) == 3
        for entry in path_report["configs"]:
            for key in CONFIG_SCHEMA:
                assert key in entry, f"config entry missing {key!r}"
            assert entry["total_seconds"] > 0
        assert set(path_report["overhead_pct"]) == {
            "metrics", "metrics_tracing"
        }


def validate_obs_schemas() -> None:
    """Re-validate the exporter and recorder dumps against the
    checked-in schemas (the obs-smoke CI step)."""
    from repro import obs
    from repro.obs.export import validate_jsonl

    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "metrics.schema.json")) as fh:
        metrics_schema = json.load(fh)
    n = validate_jsonl(obs.to_jsonl().splitlines(), metrics_schema)
    assert n > 0, "metrics export is empty"

    with open(os.path.join(here, "recorder.schema.json")) as fh:
        recorder_schema = json.load(fh)
    # the file schema and the in-code twin must admit the same events
    assert (recorder_schema["properties"]["category"]["enum"]
            == list(obs.RECORDER_CATEGORIES))
    obs.record("seal", "bench-probe", rows=1)
    n = validate_jsonl(
        obs.RECORDER.to_jsonl().splitlines(), recorder_schema
    )
    assert n > 0, "recorder dump is empty"


# ---------------------------------------------------------------------- #
# pytest entry point (CI smoke; ratios not asserted)
# ---------------------------------------------------------------------- #


def test_smoke_schema():
    report = run_bench(days=8, repeats=1)
    validate_report(report)
    validate_obs_schemas()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny series, one repeat; timings are not meaningful",
    )
    parser.add_argument("--days", type=int, default=350)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--out", default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_obs.json",
        ),
    )
    args = parser.parse_args(argv)
    days = 8 if args.smoke else args.days
    repeats = 1 if args.smoke else args.repeats
    report = run_bench(days=days, repeats=repeats)
    validate_report(report)
    validate_obs_schemas()
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    if not args.smoke:
        for path, path_report in report["paths"].items():
            pct = path_report["overhead_pct"]["metrics"]
            if pct >= 3.0:
                print(
                    f"WARNING: metrics-on overhead on the {path} path "
                    f"({pct}%) exceeds the 3% budget",
                    file=sys.stderr,
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())

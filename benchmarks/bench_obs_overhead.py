"""Bench for the observability layer's overhead (docs/observability.md).

Times the same build + query workload under three configurations:

* ``off``             — metrics disabled (``set_enabled(False)``);
* ``metrics``         — the always-on default;
* ``metrics_tracing`` — metrics plus span tracing enabled.

The acceptance bar is that ``metrics`` stays within 3% of ``off`` —
cheap enough to leave on in production.  Tracing allocates per span, so
it is allowed to cost more (it is opt-in).

Run directly to write ``BENCH_obs.json``::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]

or under pytest, where the smoke-sized run asserts the report schema
(timing ratios are not asserted: CI machines vary).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

from repro.core.index import SegDiffIndex
from repro.core.queries import DropQuery, JumpQuery
from repro.datagen import CADConfig, CADTransectGenerator, TimeSeries
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing

HOUR = 3600.0

EPSILON = 0.5
WINDOW = HOUR
N_QUERIES = 120

REPORT_SCHEMA = ("benchmark", "series", "repeats", "configs", "overhead_pct")
CONFIG_SCHEMA = ("name", "build_seconds", "query_seconds", "total_seconds")


def make_series(days: int) -> TimeSeries:
    cfg = CADConfig(days=days, n_sensors=1)
    return CADTransectGenerator(cfg).generate(0)


def _queries() -> List:
    """A mixed drop/jump grid exercising both engine operators."""
    out: List = []
    for i in range(N_QUERIES // 2):
        t = 600.0 + (i % 6) * 500.0
        out.append(DropQuery(t, -0.5 - (i % 4)))
        out.append(JumpQuery(t, 0.5 + (i % 4)))
    return out


def run_workload(series: TimeSeries) -> Dict[str, float]:
    """One build + query pass; returns wall times in seconds."""
    t0 = time.perf_counter()
    index = SegDiffIndex.build(series, EPSILON, WINDOW)
    build_s = time.perf_counter() - t0
    try:
        t0 = time.perf_counter()
        for q in _queries():
            index.session.search(q, mode="index")
        query_s = time.perf_counter() - t0
    finally:
        index.close()
    return {"build": build_s, "query": query_s}


def run_config(series: TimeSeries, metrics_on: bool, tracing_on: bool,
               repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` wall times under one on/off configuration."""
    prev_metrics = obs_metrics.enabled()
    prev_tracing = obs_tracing.enabled()
    obs_metrics.set_enabled(metrics_on)
    obs_tracing.set_enabled(tracing_on)
    try:
        best = {"build": float("inf"), "query": float("inf")}
        for _ in range(repeats):
            got = run_workload(series)
            best = {k: min(best[k], got[k]) for k in best}
    finally:
        obs_metrics.set_enabled(prev_metrics)
        obs_tracing.set_enabled(prev_tracing)
    return best


def run_bench(days: int = 350, repeats: int = 5) -> Dict:
    series = make_series(days)
    configs: List[Dict] = []
    times: Dict[str, Dict[str, float]] = {}
    for name, m_on, t_on in (
        ("off", False, False),
        ("metrics", True, False),
        ("metrics_tracing", True, True),
    ):
        best = run_config(series, m_on, t_on, repeats)
        times[name] = best
        configs.append({
            "name": name,
            "build_seconds": round(best["build"], 4),
            "query_seconds": round(best["query"], 4),
            "total_seconds": round(best["build"] + best["query"], 4),
        })

    base = times["off"]["build"] + times["off"]["query"]
    overhead = {
        name: round(
            100.0 * ((t["build"] + t["query"]) - base) / base, 2
        )
        for name, t in times.items()
        if name != "off"
    }
    return {
        "benchmark": "obs_overhead",
        "series": {
            "days": days,
            "points": len(series),
            "queries": N_QUERIES,
            "epsilon": EPSILON,
            "window_seconds": WINDOW,
        },
        "repeats": repeats,
        "configs": configs,
        "overhead_pct": overhead,
    }


def validate_report(report: Dict) -> None:
    for key in REPORT_SCHEMA:
        assert key in report, f"report missing {key!r}"
    assert len(report["configs"]) == 3
    for entry in report["configs"]:
        for key in CONFIG_SCHEMA:
            assert key in entry, f"config entry missing {key!r}"
        assert entry["total_seconds"] > 0
    assert set(report["overhead_pct"]) == {"metrics", "metrics_tracing"}


# ---------------------------------------------------------------------- #
# pytest entry point (CI smoke; ratios not asserted)
# ---------------------------------------------------------------------- #


def test_smoke_schema():
    report = run_bench(days=8, repeats=1)
    validate_report(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny series, one repeat; timings are not meaningful",
    )
    parser.add_argument("--days", type=int, default=350)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--out", default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_obs.json",
        ),
    )
    args = parser.parse_args(argv)
    days = 8 if args.smoke else args.days
    repeats = 1 if args.smoke else args.repeats
    report = run_bench(days=days, repeats=repeats)
    validate_report(report)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    if not args.smoke and report["overhead_pct"]["metrics"] >= 3.0:
        print(
            f"WARNING: metrics-on overhead "
            f"{report['overhead_pct']['metrics']}% exceeds the 3% budget",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Bench for Figures 16-24: the random-query study.

Runs the full (T, V)-plane workload once and asserts the study's shapes:
SegDiff wins in every regime, the hard queries cluster toward large T and
shallow V (the top-right triangle of Figure 16), and forced-index access
degrades on the hardest (largest-result) queries — the effect that makes
Exh's indexes a liability in the paper.
"""

from statistics import mean

import pytest

from repro.experiments.fig16_24_query_regions import run


@pytest.fixture(scope="module")
def study():
    return run(n_queries=18, repeats=2)


def test_region_study_runtime(benchmark):
    """Time a reduced study end-to-end (4 queries, warm regimes only)."""
    benchmark.pedantic(
        lambda: run(n_queries=4, repeats=1), rounds=1, iterations=1
    )


@pytest.mark.parametrize(
    "mode, cache, fig",
    [
        ("scan", "warm", "Fig 21"),
        ("index", "warm", "Fig 22"),
        ("scan", "cold", "Fig 23"),
        ("index", "cold", "Fig 24"),
    ],
)
def test_segdiff_wins_every_regime(study, mode, cache, fig):
    ratio = study.median_ratio(mode, cache)
    assert ratio > 2.0, f"{fig}: median Exh/SegDiff ratio {ratio:.1f}"


def test_fig16_hard_queries_cluster_top_right(study):
    hard = study.hard_queries()
    assert hard
    all_t = mean(t.t_threshold for t in study.timings)
    all_v = mean(t.v_threshold for t in study.timings)
    hard_t = mean(t.t_threshold for t in hard)
    hard_v = mean(t.v_threshold for t in hard)
    # larger T (right) and shallower V (top) than the average query
    assert hard_t >= all_t * 0.9
    assert hard_v >= all_v


def test_fig19_20_index_hurts_on_hardest_exh_queries(study):
    """On the largest-result query, Exh's forced index must not beat its
    scan by much — and typically loses (the paper's 'indexes do not
    help in the hard region')."""
    hardest = max(study.timings, key=lambda t: t.n_results_exh)
    if hardest.n_results_exh == 0:
        pytest.skip("workload produced no large-result query")
    assert hardest.exh["index/warm"] > 0.5 * hardest.exh["scan/warm"]


def test_result_counts_monotone_with_region_size(study):
    """Queries with the same V: larger T can only return more results."""
    by_v = {}
    for t in study.timings:
        by_v.setdefault(round(t.v_threshold, 6), []).append(t)
    for group in by_v.values():
        group.sort(key=lambda t: t.t_threshold)
        counts = [t.n_results_segdiff for t in group]
        assert counts == sorted(counts)

"""Bench for the Section 5.2 analytic space model.

Asserts the model's predictive quality: the analytic ratio and the
measured cell ratio agree within a small constant factor at every
tolerance and share the same growth trend.
"""

import pytest

from repro.experiments import datasets
from repro.experiments.space_model import run


@pytest.fixture(scope="module")
def model():
    return run()


def test_space_model_runtime(benchmark):
    benchmark.pedantic(
        lambda: run(epsilons=(0.2,)), rounds=1, iterations=1
    )


def test_prediction_within_2x_of_cell_measurement(model):
    for row in model.values():
        ratio = row.predicted_ratio / row.measured_cell_ratio
        assert 0.5 <= ratio <= 2.0, (
            f"eps={row.epsilon}: predicted {row.predicted_ratio:.1f} vs "
            f"measured {row.measured_cell_ratio:.1f}"
        )


def test_prediction_and_measurement_grow_together(model):
    eps = list(datasets.EPSILON_SWEEP)
    predicted = [model[e].predicted_ratio for e in eps]
    measured = [model[e].measured_cell_ratio for e in eps]
    assert predicted == sorted(predicted)
    assert measured == sorted(measured)


def test_model_inputs_plausible(model):
    for row in model.values():
        assert row.n_w == pytest.approx(96.0)  # 8 h of 5-min samples
        assert 1.0 <= row.m_w <= row.n_w
        assert 5.0 <= row.c2_effective <= 7.0  # paper: c2 in [5, 7]


def test_byte_ratio_below_cell_ratio(model):
    """Physical bytes carry per-row overhead, so the byte ratio must not
    exceed the idealized cell ratio."""
    for row in model.values():
        assert row.measured_byte_ratio <= row.measured_cell_ratio * 1.1

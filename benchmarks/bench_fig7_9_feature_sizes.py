"""Bench for Figures 7-9: feature and disk sizes vs compression rate.

Times index construction (segmentation + Algorithm 1 + SQLite load) and
asserts the figures' shapes: SegDiff shrinks like 1/r, Exh dwarfs it, and
the ratio grows with ε.
"""

import pytest

from repro.core.index import SegDiffIndex
from repro.experiments import datasets
from repro.experiments.fig7_9_feature_sizes import run


@pytest.fixture(scope="module")
def sizes():
    return run()


def test_index_build_speed(benchmark, series_week):
    """Time a full SegDiff build (memory backend isolates CPU cost)."""

    def build():
        index = SegDiffIndex.build(
            series_week, datasets.DEFAULT_EPSILON, datasets.DEFAULT_WINDOW,
            backend="memory",
        )
        index.close()
        return index

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_fig8_segdiff_size_falls_with_r(sizes):
    ordered = [sizes[eps] for eps in datasets.EPSILON_SWEEP]
    feature_sizes = [row.segdiff_feature_bytes for row in ordered]
    assert feature_sizes == sorted(feature_sizes, reverse=True)


def test_fig8_inverse_r_shape(sizes):
    """size * r should be roughly constant (the r^{-1} curve of Fig 8)."""
    products = [
        row.segdiff_feature_bytes * row.r for row in sizes.values()
    ]
    assert max(products) / min(products) < 3.0


def test_fig7_ratio_grows_with_r(sizes):
    ordered = [sizes[eps] for eps in datasets.EPSILON_SWEEP]
    ratios = [row.r_f for row in ordered]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 10.0, "order-of-magnitude saving at high r (Fig 7)"


def test_fig9_disk_sizes_include_indexes(sizes):
    for row in sizes.values():
        assert row.segdiff_disk_bytes > row.segdiff_feature_bytes
        assert row.exh_disk_bytes > row.exh_feature_bytes


def test_default_epsilon_saves_order_of_magnitude(sizes):
    assert sizes[0.2].r_f > 5.0, "paper: 12x at eps=0.2"

"""Benches for the beyond-paper ablations (DESIGN.md §6).

Asserts the trade-offs the ablation study documents: bottom-up compresses
at least comparably to sliding-window but is offline and slower; the
self-pair addition costs only a small feature overhead; the two storage
backends agree and stay within the same latency order of magnitude.
"""

import pytest

from repro.experiments.ablations import (
    run_access_methods,
    run_backends,
    run_planner,
    run_segmenters,
    run_self_pairs,
    run_tiered,
)


@pytest.fixture(scope="module")
def segmenter_rows():
    return {row.name: row for row in run_segmenters()}


@pytest.fixture(scope="module")
def self_pair_stats():
    return run_self_pairs()


def test_segmenter_ablation_runtime(benchmark):
    benchmark.pedantic(run_segmenters, rounds=1, iterations=1)


def test_all_segmenters_respect_tolerance(segmenter_rows):
    for row in segmenter_rows.values():
        assert row.max_error <= 0.2 / 2.0 + 1e-9


def test_sliding_window_is_fastest(segmenter_rows):
    sw = segmenter_rows["sliding-window"]
    assert sw.build_seconds <= segmenter_rows["bottom-up"].build_seconds
    assert sw.build_seconds <= segmenter_rows["swab"].build_seconds


def test_compressions_comparable(segmenter_rows):
    rates = [row.r for row in segmenter_rows.values()]
    assert max(rates) / min(rates) < 2.0


def test_self_pair_overhead_modest(self_pair_stats):
    with_sp = self_pair_stats["with self-pairs"]["rows"]
    without = self_pair_stats["paper-literal"]["rows"]
    assert with_sp > without
    assert with_sp / without < 1.5, "self-pairs must cost < 50% extra rows"


def test_self_pairs_never_lose_hits(self_pair_stats):
    assert (
        self_pair_stats["with self-pairs"]["hits_canonical"]
        >= self_pair_stats["paper-literal"]["hits_canonical"]
    )


def test_adaptive_planner_beats_worst_fixed_policy():
    """The auto plan's total time must land between the oracle and the
    worse of the two fixed policies, with bounded regret."""
    totals = run_planner(n_queries=12, repeats=2)
    worst_fixed = max(totals["scan"], totals["index"])
    assert totals["auto"] <= worst_fixed * 1.10
    assert totals["auto"] >= totals["oracle"] * 0.95  # sanity: not magic


def test_access_methods_agree_and_within_order_of_magnitude():
    """Scan, sorted index, and grid must agree (asserted inside run) and
    no method may be catastrophically slower than the best."""
    out = run_access_methods(repeats=2)
    for label, times in out.items():
        fastest = min(times.values())
        for mode, t in times.items():
            assert t <= fastest * 50, f"{label}/{mode}: {t} vs {fastest}"


def test_tiered_routing_saves_space_on_deep_queries():
    """Section 6.1's observation: a deep query routed to a coarse tier
    consults an order of magnitude fewer rows than the fine index."""
    out = run_tiered(repeats=2)
    deep = out["deep query (-8C, tol 2C)"]
    assert deep["chosen_epsilon"] > 0.1
    assert deep["tier_rows"] * 4 < deep["fine_rows"]
    precise = out["precise query (-3C, tol 0.2C)"]
    assert precise["chosen_epsilon"] == 0.1


def test_backends_agree_and_comparable():
    out = run_backends()
    assert out["memory"]["hits"] == out["sqlite"]["hits"]
    slower = max(out["memory"]["seconds"], out["sqlite"]["seconds"])
    faster = min(out["memory"]["seconds"], out["sqlite"]["seconds"])
    assert slower / faster < 50.0

"""Bench for the fast-path index build (docs/performance.md).

Measures end-to-end build throughput — points/sec and feature rows/sec —
for the three ingest paths on synthetic CAD data:

* ``scalar``  — the streaming reference path (``batch_size=0``);
* ``batched`` — vectorized segmentation + extraction + bulk store writes;
* ``workers`` — episodes fanned out across a process pool.

Every configuration is checked for equivalence (same segments, same
feature-row counts; in smoke mode full row-for-row equality) before its
timing is reported, so a fast-but-wrong path can never post a number.

Run directly to write ``BENCH_build.json``::

    PYTHONPATH=src python benchmarks/bench_build_throughput.py [--smoke]

or under pytest, where the smoke-sized run asserts correctness and the
JSON schema (CI's benchmark smoke job).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

from repro.core.index import SegDiffIndex
from repro.datagen import CADConfig, CADTransectGenerator, TimeSeries

HOUR = 3600.0
DAY = 86400.0

EPSILON = 0.5
WINDOW = HOUR
MAX_GAP = 2 * HOUR
N_EPISODES = 8
BENCH_WORKERS = 4

#: Keys every configuration entry in the JSON report must carry.
CONFIG_SCHEMA = (
    "name",
    "seconds",
    "points_per_sec",
    "features_per_sec",
    "speedup_vs_scalar",
)
REPORT_SCHEMA = (
    "benchmark",
    "cpu_count",
    "series",
    "configs",
    "equivalent",
)


def make_series(days: int) -> TimeSeries:
    """One gap-free CAD transect series of roughly ``288 * days`` points."""
    cfg = CADConfig(days=days, n_sensors=1)
    return CADTransectGenerator(cfg).generate(0)


def make_episode_series(days: int, episodes: int = N_EPISODES) -> TimeSeries:
    """``episodes`` independent CAD chunks chained with one-day outages."""
    ts_parts: List[np.ndarray] = []
    vs_parts: List[np.ndarray] = []
    offset = 0.0
    for k in range(episodes):
        cfg = CADConfig(days=days, n_sensors=1, seed=100 + k)
        chunk = CADTransectGenerator(cfg).generate(0)
        t = np.asarray(chunk.times, dtype=float) + offset
        ts_parts.append(t)
        vs_parts.append(np.asarray(chunk.values, dtype=float))
        offset = float(t[-1]) + DAY
    return TimeSeries(np.concatenate(ts_parts), np.concatenate(vs_parts))


def _rows(index) -> Dict[str, np.ndarray]:
    out = {}
    for kind in ("drop", "jump"):
        out[f"{kind}_points"] = np.asarray(
            index.store.scan_points(kind), dtype=float
        )
        out[f"{kind}_lines"] = np.asarray(
            index.store.scan_lines(kind), dtype=float
        )
    return out


def _build(series: TimeSeries, **kwargs):
    t0 = time.perf_counter()
    index = SegDiffIndex.build(series, EPSILON, WINDOW, **kwargs)
    seconds = time.perf_counter() - t0
    return index, seconds


def run_bench(days: int = 350, deep_check: bool = False) -> Dict:
    """Time the three build paths; verify equivalence before reporting.

    ``days`` sizes the single-episode series (350 days = 100,800 points,
    the paper-scale run); the multi-worker row uses an 8-episode input of
    comparable total size.  ``deep_check=True`` compares stored rows
    value-for-value (the smoke/CI regime) instead of by count.
    """
    series = make_series(days)
    ep_series = make_episode_series(max(1, days // N_EPISODES))

    configs: List[Dict] = []
    equivalent = True

    scalar, t_scalar = _build(series, batch_size=0)
    reference_segments = scalar.segments
    reference_counts = scalar.stats().store_counts
    reference_rows = _rows(scalar) if deep_check else None
    n_features = reference_counts.total
    scalar.close()

    batched, t_batched = _build(series)
    equivalent &= batched.segments == reference_segments
    equivalent &= batched.stats().store_counts == reference_counts
    if deep_check:
        got = _rows(batched)
        equivalent &= all(
            np.array_equal(reference_rows[t], got[t]) for t in got
        )
    batched.close()

    # the parallel row uses the episode input; its reference is the
    # batched single-process build of the same input
    ep_batched, t_ep_batched = _build(ep_series, max_gap=MAX_GAP)
    ep_segments = ep_batched.segments
    ep_counts = ep_batched.stats().store_counts
    ep_n_features = ep_counts.total
    ep_batched.close()

    parallel, t_parallel = _build(
        ep_series, workers=BENCH_WORKERS, max_gap=MAX_GAP
    )
    equivalent &= parallel.segments == ep_segments
    equivalent &= parallel.stats().store_counts == ep_counts
    parallel.close()

    n = len(series)
    ep_n = len(ep_series)
    for name, seconds, points, features, base in (
        ("scalar", t_scalar, n, n_features, t_scalar),
        ("batched", t_batched, n, n_features, t_scalar),
        ("episodes_batched", t_ep_batched, ep_n, ep_n_features,
         t_ep_batched),
        (f"workers{BENCH_WORKERS}", t_parallel, ep_n, ep_n_features,
         t_ep_batched),
    ):
        configs.append(
            {
                "name": name,
                "seconds": round(seconds, 4),
                "points_per_sec": round(points / seconds, 1),
                "features_per_sec": round(features / seconds, 1),
                "speedup_vs_scalar": round(base / seconds, 2),
            }
        )

    return {
        "benchmark": "build_throughput",
        "cpu_count": os.cpu_count(),
        "series": {
            "days": days,
            "points": n,
            "episode_points": ep_n,
            "episodes": N_EPISODES,
            "epsilon": EPSILON,
            "window_seconds": WINDOW,
        },
        "configs": configs,
        "equivalent": bool(equivalent),
    }


def validate_schema(report: Dict) -> None:
    """Raise AssertionError when the JSON report misses required keys."""
    for key in REPORT_SCHEMA:
        assert key in report, f"report missing {key!r}"
    assert report["configs"], "no configurations timed"
    for entry in report["configs"]:
        for key in CONFIG_SCHEMA:
            assert key in entry, f"config entry missing {key!r}"
        assert entry["seconds"] > 0


# ---------------------------------------------------------------------- #
# pytest entry points (CI benchmark smoke job)
# ---------------------------------------------------------------------- #


def test_smoke_equivalence_and_schema():
    """Tiny series: every path must agree row-for-row and the JSON
    report must carry the full schema.  Timing numbers are recorded but
    not asserted (CI machines vary)."""
    report = run_bench(days=16, deep_check=True)
    validate_schema(report)
    assert report["equivalent"], "fast paths diverged from scalar build"


def dump_metrics(path: str) -> int:
    """Write the process metrics registry as JSONL and validate every
    record against the checked-in schema; returns the series count."""
    from repro.obs import write_jsonl
    from repro.obs.export import validate_jsonl

    schema_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "metrics.schema.json"
    )
    with open(schema_path) as fh:
        schema = json.load(fh)
    n = write_jsonl(path)
    with open(path) as fh:
        validated = validate_jsonl(fh, schema)
    assert validated == n, f"wrote {n} series but validated {validated}"
    return n


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny series; correctness + schema, timings not meaningful",
    )
    parser.add_argument(
        "--days", type=int, default=350,
        help="series length in days (350 days = 100,800 points)",
    )
    parser.add_argument(
        "--out", default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_build.json",
        ),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="also dump the metrics registry as JSONL (validated "
             "against benchmarks/metrics.schema.json)",
    )
    args = parser.parse_args(argv)
    days = 16 if args.smoke else args.days
    report = run_bench(days=days, deep_check=args.smoke)
    validate_schema(report)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    if args.metrics_out:
        n = dump_metrics(args.metrics_out)
        print(f"wrote {n} validated metric series to {args.metrics_out}",
              file=sys.stderr)
    if not report["equivalent"]:
        print("ERROR: fast paths diverged from the scalar build",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablations beyond the paper (DESIGN.md §6).

1. **Segmenter choice** — the paper picks the online sliding window among
   the algorithms reviewed in Keogh et al.; this ablation compares it
   with bottom-up and SWAB on compression, build time, and the resulting
   SegDiff feature counts.
2. **Self-pairs** — our addition (DESIGN.md §5.1).  Measures their
   feature-count overhead against the coverage they buy (events inside
   the newest segment).
3. **Storage backend** — SQLite vs the in-memory numpy store on query
   latency, at identical results.
4. **Adaptive planner** — Figures 19-24 show forced indexes hurt on hard
   queries; ``mode="auto"`` estimates selectivity from a feature sample
   and picks the plan per query.  This ablation measures its *regret*:
   total time versus the per-query oracle (best of scan/index) and the
   two fixed policies.
5. **Access method** — the related work ([1], [4], [7]) indexes boxes
   with spatial structures; SegDiff uses composite B-trees.  This
   ablation races scan vs dt-sorted index vs a 2-D grid on the in-memory
   store, over a selective and a hard query.
6. **Tiered tolerances** — Section 6.1: "If a query involves a larger
   magnitude of drop, a larger ε is admissible".  This ablation compares
   a deep-drop query answered by a fine single-ε index versus the
   coarsest admissible tier of a :class:`TieredIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.index import SegDiffIndex
from ..segmentation import (
    BottomUpSegmenter,
    SlidingWindowSegmenter,
    SWABSegmenter,
    compression_rate,
    max_abs_error,
)
from . import datasets
from .report import format_seconds, render_table
from .runner import Timer, time_query

__all__ = [
    "run_segmenters",
    "run_self_pairs",
    "run_backends",
    "run_planner",
    "run_access_methods",
    "run_tiered",
    "main",
]


@dataclass(frozen=True)
class SegmenterRow:
    name: str
    n_segments: int
    r: float
    max_error: float
    build_seconds: float


def run_segmenters(
    epsilon: float = datasets.DEFAULT_EPSILON, days: int = 7
) -> List[SegmenterRow]:
    """Compression/time trade-off of the three segmenters."""
    series = datasets.standard_series(days=days)
    segmenters = [
        ("sliding-window", SlidingWindowSegmenter(epsilon)),
        ("bottom-up", BottomUpSegmenter(epsilon)),
        ("swab", SWABSegmenter(epsilon)),
    ]
    rows = []
    for name, segmenter in segmenters:
        with Timer() as t:
            segs = segmenter.segment(series)
        rows.append(
            SegmenterRow(
                name=name,
                n_segments=len(segs),
                r=compression_rate(series, segs),
                max_error=max_abs_error(series, segs),
                build_seconds=t.elapsed,
            )
        )
    return rows


def run_self_pairs(
    epsilon: float = datasets.DEFAULT_EPSILON,
    days: int = 7,
    window: float = datasets.DEFAULT_WINDOW,
) -> Dict[str, Dict[str, float]]:
    """Feature counts with and without the self-pair addition."""
    series = datasets.standard_series(days=days)
    out: Dict[str, Dict[str, float]] = {}
    for label, enabled in (("with self-pairs", True), ("paper-literal", False)):
        index = SegDiffIndex.build(
            series, epsilon, window, backend="memory", emit_self_pairs=enabled
        )
        try:
            st = index.stats()
            out[label] = {
                "rows": st.store_counts.total,
                "pairs": st.extraction.n_pairs,
                "self_pairs": st.extraction.n_self_pairs,
                "hits_canonical": len(
                    index.search_drops(datasets.DEFAULT_T, datasets.DEFAULT_V)
                ),
            }
        finally:
            index.close()
    return out


def run_backends(
    epsilon: float = datasets.DEFAULT_EPSILON,
    days: int = 7,
    window: float = datasets.DEFAULT_WINDOW,
    repeats: int = 3,
) -> Dict[str, Dict[str, float]]:
    """Query latency of the two storage backends (identical results)."""
    series = datasets.standard_series(days=days)
    out: Dict[str, Dict[str, float]] = {}
    results = {}
    for backend in ("memory", "sqlite"):
        index = SegDiffIndex.build(series, epsilon, window, backend=backend)
        try:
            elapsed, n = time_query(
                lambda: index.search_drops(
                    datasets.DEFAULT_T, datasets.DEFAULT_V
                ),
                repeats,
            )
            results[backend] = index.search_drops(
                datasets.DEFAULT_T, datasets.DEFAULT_V
            )
            out[backend] = {"seconds": elapsed, "hits": n}
        finally:
            index.close()
    assert results["memory"] == results["sqlite"], "backends must agree"
    return out


def run_planner(
    epsilon: float = datasets.DEFAULT_EPSILON,
    days: int = 7,
    window: float = datasets.DEFAULT_WINDOW,
    n_queries: int = 16,
    repeats: int = 2,
    seed: int = 23,
) -> Dict[str, float]:
    """Total time (seconds) per plan policy over a random query workload.

    Policies: always-scan, always-index, the adaptive planner, and the
    per-query oracle (minimum of scan/index — unattainable in practice).
    """
    from ..workloads import random_drop_queries

    series = datasets.standard_series(days=days)
    grid = random_drop_queries(
        n_queries, window,
        v_range=(float(series.values.min() - series.values.max()), -0.5),
        seed=seed,
    )
    index = SegDiffIndex.build(series, epsilon, window, backend="sqlite")
    totals = {"scan": 0.0, "index": 0.0, "auto": 0.0, "oracle": 0.0}
    try:
        for q in grid:
            per_mode = {}
            for mode in ("scan", "index", "auto"):
                elapsed, _ = time_query(
                    lambda m=mode: index.search_drops(
                        q.t_threshold, q.v_threshold, mode=m
                    ),
                    repeats,
                )
                per_mode[mode] = elapsed
                totals[mode] += elapsed
            totals["oracle"] += min(per_mode["scan"], per_mode["index"])
    finally:
        index.close()
    return totals


def run_access_methods(
    epsilon: float = datasets.DEFAULT_EPSILON,
    days: int = 7,
    window: float = datasets.DEFAULT_WINDOW,
    repeats: int = 3,
) -> Dict[str, Dict[str, float]]:
    """Per-query latency of scan / sorted-index / grid on the memory store.

    Returns ``{query_label: {mode: seconds}}`` for one selective and one
    hard query; all three modes must return identical pairs.
    """
    series = datasets.standard_series(days=days)
    index = SegDiffIndex.build(series, epsilon, window, backend="memory")
    queries = {
        "selective (1h, -8C)": (datasets.DEFAULT_T, -8.0),
        "hard (8h, -0.5C)": (window, -0.5),
    }
    out: Dict[str, Dict[str, float]] = {}
    try:
        for label, (t_thr, v_thr) in queries.items():
            out[label] = {}
            reference = None
            for mode in ("scan", "index", "grid"):
                elapsed, _ = time_query(
                    lambda m=mode: index.search_drops(t_thr, v_thr, mode=m),
                    repeats,
                )
                out[label][mode] = elapsed
                result = index.search_drops(t_thr, v_thr, mode=mode)
                if reference is None:
                    reference = result
                assert result == reference, "access methods must agree"
    finally:
        index.close()
    return out


def run_tiered(
    days: int = 7,
    window: float = datasets.DEFAULT_WINDOW,
    repeats: int = 3,
) -> Dict[str, Dict[str, float]]:
    """Fine-only vs tier-routed answering of a deep-drop query.

    The deep query (-8 C within 1 h) tolerates 2 C of slack, admitting
    the ε = 1.0 tier; the precise query (-3 C, 0.4 C slack) needs the
    fine tier.  Reports per-strategy time and the store rows consulted.
    """
    from ..core.tiered import TieredIndex

    series = datasets.standard_series(days=days)
    tiers = (0.1, 0.4, 1.0)
    tiered = TieredIndex.build(series, tiers, window, backend="sqlite")
    out: Dict[str, Dict[str, float]] = {}
    try:
        cases = {
            "deep query (-8C, tol 2C)": (-8.0, 2.0),
            "precise query (-3C, tol 0.2C)": (-3.0, 0.2),
        }
        for label, (v_thr, tol) in cases.items():
            eps = tiered.choose_tier(tol)
            fine_time, n_fine = time_query(
                lambda: tiered.tier(tiers[0]).search_drops(
                    datasets.DEFAULT_T, v_thr
                ),
                repeats,
            )
            routed_time, n_routed = time_query(
                lambda: tiered.search_drops(
                    datasets.DEFAULT_T, v_thr, max_tolerance=tol
                ),
                repeats,
            )
            out[label] = {
                "chosen_epsilon": eps,
                "fine_seconds": fine_time,
                "routed_seconds": routed_time,
                "fine_hits": n_fine,
                "routed_hits": n_routed,
                "tier_rows": tiered.tier(eps).stats().store_counts.total,
                "fine_rows": tiered.tier(tiers[0]).stats().store_counts.total,
            }
    finally:
        tiered.close()
    return out


def main(days: int = 7) -> str:
    sections = []

    seg_rows = run_segmenters(days=days)
    sections.append(
        render_table(
            ["segmenter", "segments", "r", "max error", "build time"],
            [
                [r.name, r.n_segments, f"{r.r:.2f}", f"{r.max_error:.3f}",
                 format_seconds(r.build_seconds)]
                for r in seg_rows
            ],
            title="Ablation 1: segmentation algorithm (eps = 0.2)",
        )
    )

    sp = run_self_pairs(days=days)
    sections.append(
        render_table(
            ["variant", "stored rows", "pairs", "self-pairs", "canonical hits"],
            [
                [label, int(d["rows"]), int(d["pairs"]),
                 int(d["self_pairs"]), int(d["hits_canonical"])]
                for label, d in sp.items()
            ],
            title="Ablation 2: self-pair emission",
        )
    )

    be = run_backends(days=days)
    sections.append(
        render_table(
            ["backend", "canonical query time", "hits"],
            [
                [name, format_seconds(d["seconds"]), int(d["hits"])]
                for name, d in be.items()
            ],
            title="Ablation 3: storage backend",
        )
    )

    planner = run_planner(days=days)
    sections.append(
        render_table(
            ["plan policy", "total workload time"],
            [
                [name, format_seconds(planner[name])]
                for name in ("scan", "index", "auto", "oracle")
            ],
            title="Ablation 4: adaptive query planner (16 random queries)",
        )
    )

    access = run_access_methods(days=days)
    sections.append(
        render_table(
            ["query", "scan", "sorted index", "2-D grid"],
            [
                [label, format_seconds(d["scan"]), format_seconds(d["index"]),
                 format_seconds(d["grid"])]
                for label, d in access.items()
            ],
            title="Ablation 5: access method (memory store)",
        )
    )

    tiered = run_tiered(days=days)
    sections.append(
        render_table(
            ["query", "tier used", "tier rows", "fine rows",
             "routed time", "fine-only time"],
            [
                [
                    label,
                    f"eps={d['chosen_epsilon']}",
                    int(d["tier_rows"]),
                    int(d["fine_rows"]),
                    format_seconds(d["routed_seconds"]),
                    format_seconds(d["fine_seconds"]),
                ]
                for label, d in tiered.items()
            ],
            title="Ablation 6: tiered tolerances (Section 6.1's observation)",
        )
    )

    out = "\n\n".join(sections)
    print(out)
    return out


if __name__ == "__main__":
    main()

"""Run the entire evaluation: every table and figure, plus ablations.

Usage::

    python -m repro.experiments            # full run (a few minutes)
    python -m repro.experiments --quick    # smaller datasets, for CI
"""

from __future__ import annotations

import argparse
import sys

from . import (
    ablations,
    fig7_9_feature_sizes,
    fig10_11_query_time,
    fig12_13_window,
    fig14_15_scalability,
    fig16_24_query_regions,
    page_cost,
    space_model,
    table3_compression,
    table4_corners,
    table5_6_ratios,
)
from .runner import Timer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce every table and figure of the paper.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller datasets (3 days instead of 7)",
    )
    args = parser.parse_args(argv)
    days = 3 if args.quick else 7

    stages = [
        ("Table 3", lambda: table3_compression.main(days=days)),
        ("Figures 7-9", lambda: fig7_9_feature_sizes.main(days=days)),
        ("Table 4", lambda: table4_corners.main(days=days)),
        ("Figures 10-11", lambda: fig10_11_query_time.main(days=days)),
        ("Tables 5-6", lambda: table5_6_ratios.main(days=days)),
        ("Figures 12-13 / Table 7", lambda: fig12_13_window.main(days=days)),
        (
            "Figures 14-15",
            lambda: fig14_15_scalability.main(
                days_per_group=2 if args.quick else 6
            ),
        ),
        ("Figures 16-24", lambda: fig16_24_query_regions.main(days=days)),
        ("Section 5.2 space model", lambda: space_model.main(days=days)),
        ("Page-cost study (MiniDB)", lambda: page_cost.main(days=days)),
        ("Ablations", lambda: ablations.main(days=days)),
    ]
    for title, stage_main in stages:
        print()
        print("=" * 72)
        print(f"== {title}")
        print("=" * 72)
        with Timer() as t:
            stage_main()
        print(f"[{title} done in {t.elapsed:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Standard datasets for the experiments.

All experiments use the synthetic CAD transect (DESIGN.md §2) put through
the paper's preprocessing (robust smoothing).  Datasets are seeded and
cached in-process so every experiment and benchmark sees identical data.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from ..datagen import CADConfig, CADTransectGenerator, TimeSeries, robust_loess

__all__ = [
    "DEFAULT_EPSILON",
    "DEFAULT_WINDOW",
    "DEFAULT_T",
    "DEFAULT_V",
    "EPSILON_SWEEP",
    "WINDOW_SWEEP_HOURS",
    "standard_series",
    "scalability_groups",
]

HOUR = 3600.0

#: Paper defaults (Section 6): eps = 0.2 C, w = 8 h, T = 1 h, V = -3 C.
DEFAULT_EPSILON = 0.2
DEFAULT_WINDOW = 8 * HOUR
DEFAULT_T = 1 * HOUR
DEFAULT_V = -3.0

#: Table 3 / 5 / 6 sweep.
EPSILON_SWEEP = (0.1, 0.2, 0.4, 0.8, 1.0)

#: Table 7 / Figures 12-13 sweep.
WINDOW_SWEEP_HOURS = (1, 4, 8, 12, 16)

_BASE_SEED = 20051201  # the CAD deployment's first month (Dec 2005)


@lru_cache(maxsize=8)
def standard_series(days: int = 7, sensor: int = 12, seed: int = _BASE_SEED) -> TimeSeries:
    """``days`` of one smoothed CAD sensor (the experiments' "subset").

    The paper uses "a subset of data ... for experimentation efficiency"
    in Sections 6.1, 6.2 and 6.4; this is our equivalent.  The sensor
    defaults to a canyon-bottom unit so deep drops are present.
    """
    cfg = CADConfig(days=days, seed=seed, event_probability=0.7)
    raw = CADTransectGenerator(cfg).generate(sensor)
    return robust_loess(raw, span=9, iterations=2)


@lru_cache(maxsize=4)
def scalability_groups(
    n_groups: int = 5, days_per_group: int = 6, sensor: int = 12
) -> tuple:
    """Contiguous data groups for the Section 6.3 incremental experiment.

    Returns ``n_groups`` series; group ``i`` continues exactly where group
    ``i-1`` ends, so they can be ingested incrementally into one index.
    """
    cfg = CADConfig(
        days=n_groups * days_per_group, seed=_BASE_SEED + 7, event_probability=0.7
    )
    raw = CADTransectGenerator(cfg).generate(sensor)
    smooth = robust_loess(raw, span=9, iterations=2)
    per_group = len(smooth) // n_groups
    groups: List[TimeSeries] = []
    for i in range(n_groups):
        lo = i * per_group
        hi = (i + 1) * per_group if i < n_groups - 1 else len(smooth)
        groups.append(
            TimeSeries(
                smooth.times[lo:hi], smooth.values[lo:hi], name=f"group-{i + 1}"
            )
        )
    return tuple(groups)

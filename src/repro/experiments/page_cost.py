"""Query cost in page reads (MiniDB instrumentation, beyond-paper).

The paper measures Figures 17-24 in seconds on one 2006 machine; seconds
don't transfer across hardware, but **pages touched** do.  This
experiment re-runs the query study on the from-scratch MiniDB engine
(`repro.storage.minidb`), whose pager counts every logical page read, and
reports the deterministic page-read cost of each (system, plan) pair with
a cold buffer pool:

* SegDiff touches an order of magnitude fewer pages than Exh at every
  query — the space saving *is* the time saving;
* on selective queries the B+tree touches a handful of pages while the
  scan reads everything;
* on hard queries the index pays one heap page per match and overtakes
  the scan — Figures 19-20 explained mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.index import SegDiffIndex
from ..core.queries import DropQuery
from ..datagen import TimeSeries
from ..storage.minidb import MiniDatabase, MiniDbFeatureStore
from . import datasets
from .report import render_table

__all__ = ["run", "main", "PageCostRow"]


class _ExhPages:
    """Exh materialized into MiniDB, with the same page instrumentation."""

    def __init__(self, series: TimeSeries, window: float, cache_pages: int) -> None:
        import tempfile
        import os

        fd, path = tempfile.mkstemp(prefix="exh-", suffix=".minidb")
        os.close(fd)
        os.unlink(path)
        self._path = path
        self.db = MiniDatabase(path, cache_pages=cache_pages)
        pairs = self.db.create_table("pairs", 3)
        recent: List[Tuple[float, float]] = []
        for t, v in zip(series.times, series.values):
            t, v = float(t), float(v)
            recent = [(tp, vp) for tp, vp in recent if t - tp <= window]
            for tp, vp in recent:
                pairs.insert((t - tp, v - vp, t))
            recent.append((t, v))
        pairs.create_index("by_key", (0, 1))
        self.db.checkpoint()

    def search_pages(self, query: DropQuery, mode: str) -> Tuple[int, int]:
        """(page reads, result count) for a cold-pool query."""
        self.db.drop_cache()
        before = self.db.stats().snapshot()
        table = self.db.table("pairs")
        n = 0
        if mode == "scan":
            for _rid, (dt, dv, _t2) in table.scan():
                if dt <= query.t_threshold and dv <= query.v_threshold:
                    n += 1
        else:
            for key, rid in table.index_scan_leading("by_key", query.t_threshold):
                if key[1] <= query.v_threshold:
                    table.get(rid)  # fetch the timestamp column
                    n += 1
        delta = self.db.stats().delta(before)
        return delta.page_reads, n

    def close(self) -> None:
        import os

        self.db.close()
        if os.path.exists(self._path):
            os.unlink(self._path)


@dataclass(frozen=True)
class PageCostRow:
    """Cold-pool page reads for one query."""

    label: str
    t_threshold: float
    v_threshold: float
    segdiff_scan: int
    segdiff_index: int
    exh_scan: int
    exh_index: int
    segdiff_hits: int
    exh_hits: int


#: The query panel: selective, canonical, and hard corners of Figure 16.
QUERY_PANEL = (
    ("selective", 0.5 * 3600.0, -8.0),
    ("canonical", 1.0 * 3600.0, -3.0),
    ("hard", 8.0 * 3600.0, -0.5),
)


def run(
    days: int = 7,
    window: float = datasets.DEFAULT_WINDOW,
    cache_pages: int = 64,
) -> List[PageCostRow]:
    series = datasets.standard_series(days=days)

    store = MiniDbFeatureStore(cache_pages=cache_pages)
    segdiff = SegDiffIndex(datasets.DEFAULT_EPSILON, window, store)
    segdiff.ingest(series)
    segdiff.finalize()
    exh = _ExhPages(series, window, cache_pages=cache_pages)

    rows: List[PageCostRow] = []
    try:
        for label, t_thr, v_thr in QUERY_PANEL:
            query = DropQuery(t_thr, v_thr)
            costs: Dict[str, int] = {}
            hits = 0
            for mode in ("scan", "index"):
                result = store.search(query, mode=mode, cache="cold")
                costs[f"segdiff_{mode}"] = store.last_query_stats.page_reads
                hits = len(result)
            exh_scan, n_exh = exh.search_pages(query, "scan")
            exh_index, _ = exh.search_pages(query, "index")
            rows.append(
                PageCostRow(
                    label=label,
                    t_threshold=t_thr,
                    v_threshold=v_thr,
                    segdiff_scan=costs["segdiff_scan"],
                    segdiff_index=costs["segdiff_index"],
                    exh_scan=exh_scan,
                    exh_index=exh_index,
                    segdiff_hits=hits,
                    exh_hits=n_exh,
                )
            )
    finally:
        segdiff.close()
        exh.close()
    return rows


def main(days: int = 7) -> str:
    rows = run(days=days)
    table = render_table(
        ["query", "T (h)", "V", "SD scan", "SD index", "Exh scan",
         "Exh index", "SD hits", "Exh hits"],
        [
            [
                r.label,
                f"{r.t_threshold / 3600.0:.1f}",
                f"{r.v_threshold:.1f}",
                r.segdiff_scan,
                r.segdiff_index,
                r.exh_scan,
                r.exh_index,
                r.segdiff_hits,
                r.exh_hits,
            ]
            for r in rows
        ],
        title=(
            "Query cost in page reads (MiniDB, cold buffer pool) — the "
            "hardware-independent Figures 17-24"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

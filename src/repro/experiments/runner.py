"""Shared machinery for the experiment modules."""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple

from ..baselines import ExhIndex
from ..core.index import SegDiffIndex
from ..datagen import TimeSeries

__all__ = ["build_segdiff", "build_exh", "time_query", "Timer"]


def build_segdiff(
    series: TimeSeries,
    epsilon: float,
    window: float,
    backend: str = "sqlite",
    path: Optional[str] = None,
) -> SegDiffIndex:
    """Build a finalized SegDiff index for an experiment."""
    return SegDiffIndex.build(
        series, epsilon=epsilon, window=window, backend=backend, path=path
    )


def build_exh(
    series: TimeSeries,
    window: float,
    backend: str = "sqlite",
    path: Optional[str] = None,
) -> ExhIndex:
    """Build a finalized Exh index for an experiment."""
    return ExhIndex.build(series, window=window, backend=backend, path=path)


def time_query(fn: Callable[[], object], repeats: int = 3) -> Tuple[float, int]:
    """Run ``fn`` ``repeats`` times; return (best wall time, result size).

    The minimum over repeats is the conventional low-noise estimator for
    micro-benchmarks; result size is taken from the last run.
    """
    best = float("inf")
    n_results = 0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
        try:
            n_results = len(out)  # type: ignore[arg-type]
        except TypeError:
            n_results = 0
    return best, n_results


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.elapsed``."""

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._t0

"""Figures 16-24: the random-query study over the (T, V) plane.

A set of random drop queries (Figure 16's coverage) is executed against
both systems in four regimes: sequential scan vs forced index, warm vs
cold cache.  Per-query times reproduce Figures 17-20; the per-query time
ratios summarize Figures 21-24.

Paper reference points: hard queries (long times, many results) cluster
in the top-right of the plane — large T, shallow V; with a warm cache
SegDiff is ~9x faster scanning and ~10x with indexes (Figs 21-22); without
cache the index gap widens to ~20x because Exh's tall B-trees hurt
(Figs 23-24).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List

from ..core.queries import DropQuery
from ..workloads import random_drop_queries
from . import datasets
from .report import format_seconds, render_table
from .runner import build_exh, build_segdiff, time_query

__all__ = ["run", "main", "QueryTiming", "RegionStudy"]


@dataclass(frozen=True)
class QueryTiming:
    """Per-query timings (seconds) in all four regimes for both systems."""

    t_threshold: float
    v_threshold: float
    n_results_segdiff: int
    n_results_exh: int
    segdiff: Dict[str, float]  # regime -> seconds
    exh: Dict[str, float]

    def ratio(self, regime: str) -> float:
        return self.exh[regime] / self.segdiff[regime]


REGIMES = (
    ("scan", "warm"),
    ("index", "warm"),
    ("scan", "cold"),
    ("index", "cold"),
)


def _regime_key(mode: str, cache: str) -> str:
    return f"{mode}/{cache}"


@dataclass(frozen=True)
class RegionStudy:
    """The full study: per-query rows plus ratio summaries.

    ``loop_seconds``/``batched_seconds`` compare the per-query loop with
    the engine's batched grid execution (one shared candidate pass per
    operator) for the whole workload, per plan mode, on SegDiff.
    """

    timings: List[QueryTiming]
    loop_seconds: Dict[str, float] = field(default_factory=dict)
    batched_seconds: Dict[str, float] = field(default_factory=dict)

    def batch_speedup(self, mode: str) -> float:
        return self.loop_seconds[mode] / self.batched_seconds[mode]

    def median_ratio(self, mode: str, cache: str) -> float:
        key = _regime_key(mode, cache)
        return median(t.ratio(key) for t in self.timings)

    def hard_queries(self, quantile: float = 0.75) -> List[QueryTiming]:
        """Queries in the top quartile of SegDiff warm-scan time."""
        times = sorted(t.segdiff[_regime_key("scan", "warm")] for t in self.timings)
        cut = times[int(quantile * (len(times) - 1))]
        return [
            t
            for t in self.timings
            if t.segdiff[_regime_key("scan", "warm")] >= cut
        ]


def run(
    n_queries: int = 24,
    days: int = 7,
    epsilon: float = datasets.DEFAULT_EPSILON,
    window: float = datasets.DEFAULT_WINDOW,
    repeats: int = 2,
    seed: int = 16,
) -> RegionStudy:
    series = datasets.standard_series(days=days)
    vmin = float(series.values.min() - series.values.max())
    grid = random_drop_queries(
        n_queries, window, v_range=(max(vmin, -35.0), -0.5), seed=seed
    )

    segdiff = build_segdiff(series, epsilon, window, backend="sqlite")
    exh = build_exh(series, window, backend="sqlite")
    timings: List[QueryTiming] = []
    try:
        for q in grid:
            sd: Dict[str, float] = {}
            ex: Dict[str, float] = {}
            n_sd = n_ex = 0
            for mode, cache in REGIMES:
                key = _regime_key(mode, cache)
                sd[key], n_sd = time_query(
                    lambda m=mode, c=cache: segdiff.search_drops(
                        q.t_threshold, q.v_threshold, mode=m, cache=c
                    ),
                    repeats,
                )
                ex[key], n_ex = time_query(
                    lambda m=mode, c=cache: exh.search_drops(
                        q.t_threshold, q.v_threshold, mode=m, cache=c
                    ),
                    repeats,
                )
            timings.append(
                QueryTiming(
                    t_threshold=q.t_threshold,
                    v_threshold=q.v_threshold,
                    n_results_segdiff=n_sd,
                    n_results_exh=n_ex,
                    segdiff=sd,
                    exh=ex,
                )
            )
        # the same whole grid through the engine's batched path: one
        # shared candidate pass per operator instead of one per query
        queries = [DropQuery(q.t_threshold, q.v_threshold) for q in grid]
        loop: Dict[str, float] = {}
        batched: Dict[str, float] = {}
        for mode in ("scan", "index"):
            loop[mode], _ = time_query(
                lambda m=mode: [
                    segdiff.search_drops(q.t_threshold, q.v_threshold, mode=m)
                    for q in queries
                ],
                repeats,
            )
            batched[mode], _ = time_query(
                lambda m=mode: segdiff.search_batch(queries, mode=m),
                repeats,
            )
            assert segdiff.search_batch(queries, mode=mode) == [
                segdiff.search_drops(q.t_threshold, q.v_threshold, mode=mode)
                for q in queries
            ], "batched execution must answer exactly like the loop"
    finally:
        segdiff.close()
        exh.close()
    return RegionStudy(timings, loop_seconds=loop, batched_seconds=batched)


def main(days: int = 7) -> str:
    study = run(days=days)
    per_query = render_table(
        ["T (h)", "V", "hits SD", "hits Exh",
         "SD scan/warm", "Exh scan/warm", "SD idx/warm", "Exh idx/warm"],
        [
            [
                f"{t.t_threshold / 3600.0:.2f}",
                f"{t.v_threshold:.2f}",
                t.n_results_segdiff,
                t.n_results_exh,
                format_seconds(t.segdiff["scan/warm"]),
                format_seconds(t.exh["scan/warm"]),
                format_seconds(t.segdiff["index/warm"]),
                format_seconds(t.exh["index/warm"]),
            ]
            for t in sorted(
                study.timings, key=lambda t: (t.t_threshold, t.v_threshold)
            )
        ],
        title="Figures 16-20: random-query coverage and per-query times",
    )
    summary = render_table(
        ["regime", "median Exh/SegDiff ratio", "paper (approx.)"],
        [
            ["scan, warm cache (Fig 21)", f"{study.median_ratio('scan', 'warm'):.2f}", "~9"],
            ["index, warm cache (Fig 22)", f"{study.median_ratio('index', 'warm'):.2f}", "~10"],
            ["scan, no cache (Fig 23)", f"{study.median_ratio('scan', 'cold'):.2f}", "~9"],
            ["index, no cache (Fig 24)", f"{study.median_ratio('index', 'cold'):.2f}", "~20"],
        ],
        title="Figures 21-24: time-ratio summaries",
    )
    batch = render_table(
        ["mode", "per-query loop", "batched grid", "speedup"],
        [
            [
                mode,
                format_seconds(study.loop_seconds[mode]),
                format_seconds(study.batched_seconds[mode]),
                f"{study.batch_speedup(mode):.1f}x",
            ]
            for mode in sorted(study.loop_seconds)
        ],
        title=(
            "Batched grid execution (whole workload, one shared pass per "
            "operator) vs per-query loop — SegDiff/SQLite"
        ),
    )
    hard = study.hard_queries()
    hard_note = (
        "Hard queries (top quartile of SegDiff scan time): "
        + ", ".join(
            f"(T={t.t_threshold / 3600:.1f}h, V={t.v_threshold:.1f})"
            for t in hard
        )
    )
    out = "\n\n".join([per_query, summary, batch, hard_note])
    print(out)
    return out


if __name__ == "__main__":
    main()

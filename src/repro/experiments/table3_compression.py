"""Table 3: compression rate ``r`` under different error tolerances.

Paper (on the proprietary CAD subset):

    eps  0.1   0.2   0.4    0.8    1.0
    r    4.73  7.03  10.52  16.10  18.55

Expected shape: ``r`` grows monotonically with ε; the ε=0.2 default lands
in the mid-single-digits to low-double-digits.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..segmentation import SlidingWindowSegmenter, compression_rate
from . import datasets
from .report import render_table

__all__ = ["run", "main", "PAPER_R"]

#: The paper's Table 3 row, for side-by-side reporting.
PAPER_R = {0.1: 4.73, 0.2: 7.03, 0.4: 10.52, 0.8: 16.10, 1.0: 18.55}


def run(
    epsilons: Sequence[float] = datasets.EPSILON_SWEEP, days: int = 7
) -> Dict[float, float]:
    """Compression rate per tolerance on the standard CAD subset."""
    series = datasets.standard_series(days=days)
    rates: Dict[float, float] = {}
    for eps in epsilons:
        segments = SlidingWindowSegmenter(eps).segment(series)
        rates[eps] = compression_rate(series, segments)
    return rates


def main(days: int = 7) -> str:
    rates = run(days=days)
    rows = [
        [eps, f"{r:.2f}", PAPER_R.get(eps, "-")] for eps, r in rates.items()
    ]
    out = render_table(
        ["epsilon", "r (measured)", "r (paper)"],
        rows,
        title="Table 3: compression rate r under different error tolerances",
    )
    print(out)
    return out


if __name__ == "__main__":
    main()

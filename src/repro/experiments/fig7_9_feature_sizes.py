"""Figures 7, 8, 9 and the size halves of Tables 5 and 6.

For each tolerance ε the experiment builds a SegDiff index and the Exh
baseline over the same CAD subset and measures

* feature size (table bytes, Figures 7 and 8),
* disk size (features + B-tree indexes, Figure 9),
* the ratios ``r_f`` (Table 5) and ``r_d`` (Table 6).

Paper reference points (ε = 0.2): SegDiff features ~32 MB vs Exh ~383 MB
(``r_f`` = 11.95); disk ratio ``r_d`` = 8.66; SegDiff's curve falls like
``1/r``; SegDiff's index overhead is larger than its feature size while
Exh's index is about half its features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..segmentation import SlidingWindowSegmenter, compression_rate
from . import datasets
from .report import format_bytes, render_table
from .runner import build_exh, build_segdiff

__all__ = ["run", "main", "SizeRow"]


@dataclass(frozen=True)
class SizeRow:
    """Sizes for one tolerance setting."""

    epsilon: float
    r: float
    segdiff_feature_bytes: int
    segdiff_disk_bytes: int
    exh_feature_bytes: int
    exh_disk_bytes: int

    @property
    def r_f(self) -> float:
        """Feature-size ratio Exh/SegDiff (Table 5)."""
        return self.exh_feature_bytes / self.segdiff_feature_bytes

    @property
    def r_d(self) -> float:
        """Disk-size ratio Exh/SegDiff (Table 6)."""
        return self.exh_disk_bytes / self.segdiff_disk_bytes


def run(
    epsilons: Sequence[float] = datasets.EPSILON_SWEEP,
    days: int = 7,
    window: float = datasets.DEFAULT_WINDOW,
    backend: str = "sqlite",
) -> Dict[float, SizeRow]:
    """Measure sizes per tolerance.  Exh is built once (ε-independent)."""
    series = datasets.standard_series(days=days)

    exh = build_exh(series, window, backend=backend)
    try:
        exh_feat = exh.feature_bytes()
        exh_disk = exh.disk_bytes()
    finally:
        exh.close()

    rows: Dict[float, SizeRow] = {}
    for eps in epsilons:
        segments = SlidingWindowSegmenter(eps).segment(series)
        r = compression_rate(series, segments)
        index = build_segdiff(series, eps, window, backend=backend)
        try:
            rows[eps] = SizeRow(
                epsilon=eps,
                r=r,
                segdiff_feature_bytes=index.store.feature_bytes(),
                segdiff_disk_bytes=index.store.disk_bytes(),
                exh_feature_bytes=exh_feat,
                exh_disk_bytes=exh_disk,
            )
        finally:
            index.close()
    return rows


def main(days: int = 7) -> str:
    rows = run(days=days)
    table = render_table(
        [
            "epsilon",
            "r",
            "SegDiff features",
            "SegDiff disk",
            "Exh features",
            "Exh disk",
            "r_f",
            "r_d",
        ],
        [
            [
                row.epsilon,
                f"{row.r:.2f}",
                format_bytes(row.segdiff_feature_bytes),
                format_bytes(row.segdiff_disk_bytes),
                format_bytes(row.exh_feature_bytes),
                format_bytes(row.exh_disk_bytes),
                f"{row.r_f:.2f}",
                f"{row.r_d:.2f}",
            ]
            for row in rows.values()
        ],
        title=(
            "Figures 7-9 / Tables 5-6 (size halves): feature and disk sizes "
            "vs compression rate"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

"""Figures 14 and 15: scalability with the number of observations.

Data are split into five contiguous groups; after each group is
incrementally ingested, feature size and the canonical query's
sequential-scan time are recorded.  The paper aborted Exh after two
groups ("it would take too much time") and extrapolated its feature size
linearly; we do exactly the same — Exh is built for the first
``exh_groups`` groups only, the rest are the linear extrapolation marked
in Figure 14's dotted line.

Expected shapes: SegDiff's feature size and scan time grow ~linearly
with n; Exh sits an order of magnitude higher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..baselines import ExhIndex
from ..core.index import SegDiffIndex
from . import datasets
from .report import format_bytes, format_seconds, render_table
from .runner import time_query

__all__ = ["run", "main", "GrowthRow"]


@dataclass(frozen=True)
class GrowthRow:
    """Measurements after one more group is ingested."""

    group: int
    n_observations: int
    segdiff_feature_bytes: int
    segdiff_scan: float
    exh_feature_bytes: Optional[int]  # None => beyond the measured groups
    exh_feature_bytes_extrapolated: int
    exh_scan: Optional[float]


def run(
    n_groups: int = 5,
    days_per_group: int = 6,
    exh_groups: int = 2,
    epsilon: float = datasets.DEFAULT_EPSILON,
    window: float = datasets.DEFAULT_WINDOW,
    repeats: int = 3,
) -> List[GrowthRow]:
    groups = datasets.scalability_groups(n_groups, days_per_group)
    query = dict(
        t_threshold=datasets.DEFAULT_T, v_threshold=datasets.DEFAULT_V
    )

    segdiff = SegDiffIndex(epsilon, window, store=None)
    # use sqlite for honest on-disk sizes
    from ..storage import SqliteFeatureStore

    segdiff = SegDiffIndex(epsilon, window, store=SqliteFeatureStore())
    exh = ExhIndex(window, backend="sqlite")

    rows: List[GrowthRow] = []
    n_total = 0
    exh_sizes: List[int] = []
    try:
        for gi, group in enumerate(groups, start=1):
            segdiff.ingest(group)
            segdiff.checkpoint()
            n_total += len(group)

            sd_scan, _ = time_query(
                lambda: segdiff.search_drops(
                    query["t_threshold"], query["v_threshold"],
                    mode="scan", cache="cold",
                ),
                repeats,
            )

            exh_feat: Optional[int] = None
            exh_scan: Optional[float] = None
            if gi <= exh_groups:
                exh.ingest(group)
                exh.finalize()
                exh_feat = exh.feature_bytes()
                exh_sizes.append(exh_feat)
                exh_scan, _ = time_query(
                    lambda: exh.search_drops(
                        query["t_threshold"], query["v_threshold"],
                        mode="scan", cache="cold",
                    ),
                    repeats,
                )

            # linear extrapolation through the measured Exh sizes
            per_group = exh_sizes[-1] / len(exh_sizes) if exh_sizes else 0
            extrapolated = int(per_group * gi)

            rows.append(
                GrowthRow(
                    group=gi,
                    n_observations=n_total,
                    segdiff_feature_bytes=segdiff.store.feature_bytes(),
                    segdiff_scan=sd_scan,
                    exh_feature_bytes=exh_feat,
                    exh_feature_bytes_extrapolated=extrapolated,
                    exh_scan=exh_scan,
                )
            )
    finally:
        segdiff.close()
        exh.close()
    return rows


def main(days_per_group: int = 6) -> str:
    rows = run(days_per_group=days_per_group)
    table = render_table(
        ["group", "n", "SegDiff features", "SegDiff scan",
         "Exh features", "Exh features (extrap.)", "Exh scan"],
        [
            [
                r.group,
                r.n_observations,
                format_bytes(r.segdiff_feature_bytes),
                format_seconds(r.segdiff_scan),
                format_bytes(r.exh_feature_bytes),
                format_bytes(r.exh_feature_bytes_extrapolated),
                format_seconds(r.exh_scan),
            ]
            for r in rows
        ],
        title=(
            "Figures 14-15: growth with n (Exh measured for the first two "
            "groups, extrapolated beyond, as in the paper)"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

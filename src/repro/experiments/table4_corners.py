"""Table 4: distribution of corner cases under different tolerances.

Paper (percent of collection events needing 1/2/3 corners):

    eps            0.1    0.2    0.4    0.8    1.0
    one corner   17.05  19.83  22.67  25.88  26.90
    two corners  46.43  46.79  47.09  47.25  47.10
    three        36.52  33.37  30.24  26.87  26.00

Expected shape: two-corner cases dominate (~47%); one-corner share grows
and three-corner share shrinks as ε grows; the effective corner count
stays near 2.1 — i.e. the case analysis halves the four-corner storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.index import SegDiffIndex
from . import datasets
from .report import render_table

__all__ = ["run", "main", "CornerRow", "PAPER_DISTRIBUTION"]

PAPER_DISTRIBUTION = {
    0.1: (17.05, 46.43, 36.52),
    0.2: (19.83, 46.79, 33.37),
    0.4: (22.67, 47.09, 30.24),
    0.8: (25.88, 47.25, 26.87),
    1.0: (26.90, 36.52, 26.00),
}


@dataclass(frozen=True)
class CornerRow:
    """Corner-case distribution for one tolerance."""

    epsilon: float
    pct_one: float
    pct_two: float
    pct_three: float
    effective: float


def run(
    epsilons: Sequence[float] = datasets.EPSILON_SWEEP,
    days: int = 7,
    window: float = datasets.DEFAULT_WINDOW,
) -> Dict[float, CornerRow]:
    """Corner distribution per tolerance (memory backend: size-free)."""
    series = datasets.standard_series(days=days)
    rows: Dict[float, CornerRow] = {}
    for eps in epsilons:
        index = SegDiffIndex.build(series, eps, window, backend="memory")
        try:
            stats = index.stats().extraction
            pct = stats.corner_percentages()
            rows[eps] = CornerRow(
                epsilon=eps,
                pct_one=pct[1],
                pct_two=pct[2],
                pct_three=pct[3],
                effective=stats.effective_corner_count(),
            )
        finally:
            index.close()
    return rows


def main(days: int = 7) -> str:
    rows = run(days=days)
    table = render_table(
        ["epsilon", "one corner %", "two corners %", "three corners %",
         "effective corners"],
        [
            [r.epsilon, f"{r.pct_one:.2f}", f"{r.pct_two:.2f}",
             f"{r.pct_three:.2f}", f"{r.effective:.2f}"]
            for r in rows.values()
        ],
        title="Table 4: percentage of corner cases under different tolerances",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

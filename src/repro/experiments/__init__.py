"""Reproductions of every table and figure in the paper's Section 6.

Each module exposes ``run(...) -> dict`` (machine-readable results) and
``main()`` (prints the paper-style table).  ``python -m repro.experiments``
runs the whole evaluation and prints every table — the source of the
numbers recorded in EXPERIMENTS.md.  The pytest-benchmark targets under
``benchmarks/`` call the same ``run`` functions and assert the paper's
qualitative shapes (who wins, roughly by how much, trends).

Experiment-to-paper map:

========================  =====================================
Module                    Paper content
========================  =====================================
``table3_compression``    Table 3 (r vs ε)
``fig7_9_feature_sizes``  Figures 7, 8, 9; size halves of Tables 5, 6
``table4_corners``        Table 4 (corner-case distribution)
``fig10_11_query_time``   Figures 10, 11; time halves of Tables 5, 6
``fig12_13_window``       Figures 12, 13; Table 7 (w sweep)
``fig14_15_scalability``  Figures 14, 15 (growth with n)
``fig16_24_query_regions``Figures 16-24 (random-query study)
``space_model``           Section 5.2's analytic model, validated
``page_cost``             Figures 17-24 in page reads (MiniDB)
``ablations``             beyond-paper: segmenter, self-pairs, backend,
                          planner, access method, tiered tolerances
========================  =====================================
"""

from . import datasets, report, runner

__all__ = ["datasets", "report", "runner"]

"""Tables 5 and 6: all four Exh/SegDiff ratios with ε varied.

Combines the size measurements of :mod:`fig7_9_feature_sizes` with the
time measurements of :mod:`fig10_11_query_time`:

* Table 5 — ``r_f`` (feature size) and ``r_st`` (sequential scan time);
* Table 6 — ``r_d`` (disk size) and ``r_it`` (indexed time).

Paper: at ε = 0.2, r_f = 11.95, r_st = 6.69, r_d = 8.66, r_it = 21.35,
all four growing with ε.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from . import datasets, fig7_9_feature_sizes, fig10_11_query_time
from .report import render_table

__all__ = ["run", "main", "RatioRow", "PAPER_RATIOS"]

#: (r_f, r_st, r_d, r_it) from the paper's Tables 5 and 6.
PAPER_RATIOS = {
    0.1: (5.88, 3.19, 4.26, 5.88),
    0.2: (11.95, 6.69, 8.66, 21.35),
    0.4: (23.96, 11.20, 17.37, 85.93),
    0.8: (48.57, 17.65, 35.33, 217.00),
    1.0: (61.71, 19.22, 44.42, 279.34),
}


@dataclass(frozen=True)
class RatioRow:
    """All four Exh/SegDiff ratios for one tolerance."""

    epsilon: float
    r_f: float
    r_st: float
    r_d: float
    r_it: float


def run(
    epsilons: Sequence[float] = datasets.EPSILON_SWEEP, days: int = 7
) -> Dict[float, RatioRow]:
    sizes = fig7_9_feature_sizes.run(epsilons, days=days)
    times = fig10_11_query_time.run(epsilons, days=days)
    return {
        eps: RatioRow(
            epsilon=eps,
            r_f=sizes[eps].r_f,
            r_st=times[eps].r_st,
            r_d=sizes[eps].r_d,
            r_it=times[eps].r_it,
        )
        for eps in epsilons
    }


def main(days: int = 7) -> str:
    rows = run(days=days)
    table = render_table(
        ["epsilon", "r_f", "r_st", "r_d", "r_it",
         "paper r_f", "paper r_st", "paper r_d", "paper r_it"],
        [
            [
                r.epsilon,
                f"{r.r_f:.2f}", f"{r.r_st:.2f}", f"{r.r_d:.2f}", f"{r.r_it:.2f}",
                *PAPER_RATIOS.get(r.epsilon, ("-",) * 4),
            ]
            for r in rows.values()
        ],
        title="Tables 5-6: Exh/SegDiff ratios with epsilon varied",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

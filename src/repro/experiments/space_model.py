"""Section 5.2's analytic space model, validated against measurement.

The paper derives that Exh uses ``(c1/c2) * (n_w/m_w) * r`` times
SegDiff's space, where

* ``c1 = 3`` — columns per Exh row;
* ``c2`` — columns per stored boundary (5-7 depending on corner count);
* ``n_w`` — observations per time window;
* ``m_w`` — data segments per time window;
* ``r`` — segmentation compression rate,

and itself cautions that ``m_w`` is not constant and ``r`` is an
estimate, so "it is important to evaluate their empirical performance".
This experiment does both: it instantiates the model from measured
quantities and compares the prediction against the actually measured
cell-count and byte ratios, per tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..storage.schema import COLUMNS_EXH, space_saving_ratio
from . import datasets
from .report import render_table
from .runner import build_exh, build_segdiff

__all__ = ["run", "main", "ModelRow"]


@dataclass(frozen=True)
class ModelRow:
    """Model inputs and both ratio measurements for one tolerance."""

    epsilon: float
    r: float
    n_w: float
    m_w: float
    c2_effective: float
    predicted_ratio: float
    measured_cell_ratio: float
    measured_byte_ratio: float


def run(
    epsilons: Sequence[float] = datasets.EPSILON_SWEEP,
    days: int = 7,
    window: float = datasets.DEFAULT_WINDOW,
) -> Dict[float, ModelRow]:
    series = datasets.standard_series(days=days)
    sampling = series.sampling_interval()
    n_w = window / sampling  # observations per window

    exh = build_exh(series, window, backend="sqlite")
    try:
        exh_rows = exh.n_pairs()
        exh_cells = exh_rows * COLUMNS_EXH
        exh_bytes = exh.feature_bytes()
    finally:
        exh.close()

    rows: Dict[float, ModelRow] = {}
    for eps in epsilons:
        index = build_segdiff(series, eps, window, backend="sqlite")
        try:
            stats = index.stats()
            ext = stats.extraction
            r = stats.compression_rate
            # mean segments per extraction window (the paper's m_w):
            # every new segment pairs with the in-window history
            m_w = ext.n_pairs / max(ext.n_segments, 1)
            # effective stored columns per collection event: corners + 4
            # identifying columns (Section 5.2's c2)
            c2 = ext.effective_corner_count() + 4.0
            predicted = space_saving_ratio(COLUMNS_EXH, c2, n_w, m_w, r)

            # measured cells: one collection event stores c2(corners)
            # columns; count via the corner histogram (+ self-pairs at
            # 2 corners each)
            segdiff_cells = sum(
                count * (corners + 4)
                for corners, count in ext.corner_histogram.items()
            ) + ext.n_self_pairs * (2 + 4)
            measured_cells = exh_cells / segdiff_cells
            measured_bytes = exh_bytes / index.store.feature_bytes()
            rows[eps] = ModelRow(
                epsilon=eps,
                r=r,
                n_w=n_w,
                m_w=m_w,
                c2_effective=c2,
                predicted_ratio=predicted,
                measured_cell_ratio=measured_cells,
                measured_byte_ratio=measured_bytes,
            )
        finally:
            index.close()
    return rows


def main(days: int = 7) -> str:
    rows = run(days=days)
    table = render_table(
        ["epsilon", "r", "n_w", "m_w", "c2 (eff)",
         "predicted ratio", "measured (cells)", "measured (bytes)"],
        [
            [
                row.epsilon,
                f"{row.r:.2f}",
                f"{row.n_w:.0f}",
                f"{row.m_w:.2f}",
                f"{row.c2_effective:.2f}",
                f"{row.predicted_ratio:.1f}",
                f"{row.measured_cell_ratio:.1f}",
                f"{row.measured_byte_ratio:.1f}",
            ]
            for row in rows.values()
        ],
        title=(
            "Section 5.2 space model: predicted (c1/c2)(n_w/m_w)r vs "
            "measured Exh/SegDiff ratios"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

"""Figures 10, 11 and the time halves of Tables 5 and 6.

For each tolerance the canonical CAD query (3-degree drop within 1 hour)
is executed against SegDiff and Exh, in sequential-scan and forced-index
modes, with a cold cache (the paper flushes the OS cache in Section 6.1;
we open a fresh connection with a minimal page cache — DESIGN.md §5.7).

Paper reference points (ε = 0.2): scan ratio ``r_st`` = 6.69; index ratio
``r_it`` = 21.35; for this query, forced index access is *slower* than a
scan for both systems (it lands in the hard region of the query plane).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from . import datasets
from .report import format_seconds, render_table
from .runner import build_exh, build_segdiff, time_query

__all__ = ["run", "main", "TimeRow"]


@dataclass(frozen=True)
class TimeRow:
    """Query times for one tolerance (seconds, cold cache)."""

    epsilon: float
    segdiff_scan: float
    segdiff_index: float
    exh_scan: float
    exh_index: float
    n_results_segdiff: int
    n_results_exh: int

    @property
    def r_st(self) -> float:
        """Sequential-scan time ratio Exh/SegDiff (Table 5)."""
        return self.exh_scan / self.segdiff_scan

    @property
    def r_it(self) -> float:
        """Indexed time ratio Exh/SegDiff (Table 6)."""
        return self.exh_index / self.segdiff_index


def run(
    epsilons: Sequence[float] = datasets.EPSILON_SWEEP,
    days: int = 7,
    window: float = datasets.DEFAULT_WINDOW,
    t_threshold: float = datasets.DEFAULT_T,
    v_threshold: float = datasets.DEFAULT_V,
    repeats: int = 3,
    cache: str = "cold",
) -> Dict[float, TimeRow]:
    """Query times per tolerance for the canonical CAD query."""
    series = datasets.standard_series(days=days)

    exh = build_exh(series, window, backend="sqlite")
    try:
        exh_scan, n_exh = time_query(
            lambda: exh.search_drops(
                t_threshold, v_threshold, mode="scan", cache=cache
            ),
            repeats,
        )
        exh_index, _ = time_query(
            lambda: exh.search_drops(
                t_threshold, v_threshold, mode="index", cache=cache
            ),
            repeats,
        )
    finally:
        exh.close()

    rows: Dict[float, TimeRow] = {}
    for eps in epsilons:
        index = build_segdiff(series, eps, window, backend="sqlite")
        try:
            sd_scan, n_sd = time_query(
                lambda: index.search_drops(
                    t_threshold, v_threshold, mode="scan", cache=cache
                ),
                repeats,
            )
            sd_index, _ = time_query(
                lambda: index.search_drops(
                    t_threshold, v_threshold, mode="index", cache=cache
                ),
                repeats,
            )
        finally:
            index.close()
        rows[eps] = TimeRow(
            epsilon=eps,
            segdiff_scan=sd_scan,
            segdiff_index=sd_index,
            exh_scan=exh_scan,
            exh_index=exh_index,
            n_results_segdiff=n_sd,
            n_results_exh=n_exh,
        )
    return rows


def main(days: int = 7) -> str:
    rows = run(days=days)
    table = render_table(
        ["epsilon", "SegDiff scan", "SegDiff index", "Exh scan", "Exh index",
         "r_st", "r_it", "hits SegDiff", "hits Exh"],
        [
            [
                r.epsilon,
                format_seconds(r.segdiff_scan),
                format_seconds(r.segdiff_index),
                format_seconds(r.exh_scan),
                format_seconds(r.exh_index),
                f"{r.r_st:.2f}",
                f"{r.r_it:.2f}",
                r.n_results_segdiff,
                r.n_results_exh,
            ]
            for r in rows.values()
        ],
        title=(
            "Figures 10-11 / Tables 5-6 (time halves): cold-cache query "
            "times for the canonical 3-degree/1-hour drop"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

"""Plain-text rendering of experiment results (tables and series).

No plotting dependency is available offline, so figures are reported as
aligned numeric series — enough to read off every trend the paper plots.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "render_series", "format_bytes", "format_seconds"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: Sequence[tuple],
    title: str = "",
) -> str:
    """Render one or more y-series against a shared x axis.

    ``series`` is a sequence of ``(label, values)`` pairs.
    """
    headers = [x_label] + [label for label, _ in series]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for _, values in series])
    return render_table(headers, rows, title=title)


def format_bytes(n: Optional[float]) -> str:
    """Human-readable byte count."""
    if n is None:
        return "-"
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} GiB"


def format_seconds(s: Optional[float]) -> str:
    """Human-readable duration."""
    if s is None:
        return "-"
    if s < 1e-3:
        return f"{s * 1e6:.0f} us"
    if s < 1.0:
        return f"{s * 1e3:.1f} ms"
    return f"{s:.2f} s"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)

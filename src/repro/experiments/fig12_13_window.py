"""Figures 12, 13 and Table 7: performance with different window sizes.

With ε fixed at 0.2 and ``w`` swept over {1, 4, 8, 12, 16} hours, both
systems' feature sizes grow roughly linearly with ``w`` (Figure 12) — but
the *ratio* ``r_f`` itself grows with ``w`` (Table 7: 5.89 → 13.94),
because observations per window grow linearly while segments per window
do not.  Sequential-scan time follows the same pattern (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from . import datasets
from .report import format_bytes, format_seconds, render_table
from .runner import build_exh, build_segdiff, time_query

__all__ = ["run", "main", "WindowRow", "PAPER_TABLE7"]

HOUR = 3600.0

#: Paper's Table 7: (r_f, r_d) per window hours.
PAPER_TABLE7 = {
    1: (5.89, 4.51),
    4: (9.98, 7.30),
    8: (11.97, 8.66),
    12: (13.14, 9.53),
    16: (13.94, 10.18),
}


@dataclass(frozen=True)
class WindowRow:
    """Sizes and scan times for one window width."""

    window_hours: float
    segdiff_feature_bytes: int
    segdiff_disk_bytes: int
    exh_feature_bytes: int
    exh_disk_bytes: int
    segdiff_scan: float
    exh_scan: float

    @property
    def r_f(self) -> float:
        return self.exh_feature_bytes / self.segdiff_feature_bytes

    @property
    def r_d(self) -> float:
        return self.exh_disk_bytes / self.segdiff_disk_bytes

    @property
    def r_st(self) -> float:
        return self.exh_scan / self.segdiff_scan


def run(
    window_hours: Sequence[float] = datasets.WINDOW_SWEEP_HOURS,
    epsilon: float = datasets.DEFAULT_EPSILON,
    days: int = 7,
    repeats: int = 3,
) -> Dict[float, WindowRow]:
    series = datasets.standard_series(days=days)
    rows: Dict[float, WindowRow] = {}
    for hours in window_hours:
        window = hours * HOUR
        t_thr = min(datasets.DEFAULT_T, window)
        index = build_segdiff(series, epsilon, window, backend="sqlite")
        exh = build_exh(series, window, backend="sqlite")
        try:
            sd_scan, _ = time_query(
                lambda: index.search_drops(
                    t_thr, datasets.DEFAULT_V, mode="scan", cache="cold"
                ),
                repeats,
            )
            exh_scan, _ = time_query(
                lambda: exh.search_drops(
                    t_thr, datasets.DEFAULT_V, mode="scan", cache="cold"
                ),
                repeats,
            )
            rows[hours] = WindowRow(
                window_hours=hours,
                segdiff_feature_bytes=index.store.feature_bytes(),
                segdiff_disk_bytes=index.store.disk_bytes(),
                exh_feature_bytes=exh.feature_bytes(),
                exh_disk_bytes=exh.disk_bytes(),
                segdiff_scan=sd_scan,
                exh_scan=exh_scan,
            )
        finally:
            index.close()
            exh.close()
    return rows


def main(days: int = 7) -> str:
    rows = run(days=days)
    table = render_table(
        ["w (hours)", "SegDiff features", "Exh features", "SegDiff scan",
         "Exh scan", "r_f", "r_d", "r_st", "paper r_f", "paper r_d"],
        [
            [
                r.window_hours,
                format_bytes(r.segdiff_feature_bytes),
                format_bytes(r.exh_feature_bytes),
                format_seconds(r.segdiff_scan),
                format_seconds(r.exh_scan),
                f"{r.r_f:.2f}",
                f"{r.r_d:.2f}",
                f"{r.r_st:.2f}",
                *PAPER_TABLE7.get(int(r.window_hours), ("-", "-")),
            ]
            for r in rows.values()
        ],
        title="Figures 12-13 / Table 7: performance with window size varied",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

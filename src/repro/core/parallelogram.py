"""Feature parallelograms (Lemma 3).

Given two data segments — ``CD`` earlier, ``AB`` later, with
``t_B >= t_C`` — the features of *every* pair of points (one point per
segment) form a parallelogram in feature space whose corners are the
feature points of the four endpoint combinations::

    BC = (t_B - t_C, v_B - v_C)      # closest pair, smallest dt
    BD = (t_B - t_D, v_B - v_D)
    AD = (t_A - t_D, v_A - v_D)      # farthest pair, largest dt
    AC = (t_A - t_C, v_A - v_C)

When both segments are the same piece of data the parallelogram
degenerates to the feature segment from ``(0, 0)`` to
``(L, v_A - v_B)`` — the features of all point pairs *within* that
segment (the self-pair of DESIGN.md §5.1).

This module also provides the exact geometric operations used by tests and
by result refinement: region intersection, the deepest drop / highest jump
achievable within a time-span budget ``T``, and point membership.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import InvalidParameterError
from ..types import DataSegment, SegmentPair
from .feature_space import FeaturePoint, QueryRegion, clip_halfplane

__all__ = ["Parallelogram"]

_EPS = 1e-12


class Parallelogram:
    """The feature-space summary of one (ordered) pair of data segments."""

    __slots__ = ("cd", "ab", "is_self_pair")

    def __init__(self, cd: DataSegment, ab: DataSegment) -> None:
        if ab.t_start < cd.t_end - _EPS and not _same_segment(cd, ab):
            raise InvalidParameterError(
                "AB must start at or after CD ends "
                f"(t_B={ab.t_start} < t_C={cd.t_end})"
            )
        self.cd = cd
        self.ab = ab
        self.is_self_pair = _same_segment(cd, ab)

    @classmethod
    def from_segments(cls, cd: DataSegment, ab: DataSegment) -> "Parallelogram":
        """Parallelogram for the earlier segment ``cd``, later ``ab``."""
        return cls(cd, ab)

    @classmethod
    def self_pair(cls, segment: DataSegment) -> "Parallelogram":
        """The degenerate parallelogram of a segment with itself."""
        return cls(segment, segment)

    # ------------------------------------------------------------------ #
    # corners
    # ------------------------------------------------------------------ #

    @property
    def bc(self) -> FeaturePoint:
        """Corner ``BC`` — the smallest-Δt endpoint pair."""
        if self.is_self_pair:
            return FeaturePoint(0.0, 0.0)
        return FeaturePoint(
            self.ab.t_start - self.cd.t_end, self.ab.v_start - self.cd.v_end
        )

    @property
    def bd(self) -> FeaturePoint:
        """Corner ``BD``."""
        if self.is_self_pair:
            return FeaturePoint(0.0, 0.0)
        return FeaturePoint(
            self.ab.t_start - self.cd.t_start, self.ab.v_start - self.cd.v_start
        )

    @property
    def ad(self) -> FeaturePoint:
        """Corner ``AD`` — the largest-Δt endpoint pair."""
        if self.is_self_pair:
            return FeaturePoint(self.ab.duration, self.ab.rise)
        return FeaturePoint(
            self.ab.t_end - self.cd.t_start, self.ab.v_end - self.cd.v_start
        )

    @property
    def ac(self) -> FeaturePoint:
        """Corner ``AC``."""
        if self.is_self_pair:
            return FeaturePoint(self.ab.duration, self.ab.rise)
        return FeaturePoint(
            self.ab.t_end - self.cd.t_end, self.ab.v_end - self.cd.v_end
        )

    def vertices(self) -> List[Tuple[float, float]]:
        """Polygon vertices in order ``BC, BD, AD, AC`` (a segment when
        degenerate)."""
        if self.is_self_pair:
            return [self.bc.as_tuple(), self.ad.as_tuple()]
        return [
            self.bc.as_tuple(),
            self.bd.as_tuple(),
            self.ad.as_tuple(),
            self.ac.as_tuple(),
        ]

    def segment_pair(self) -> SegmentPair:
        """The result tuple ``((t_D, t_C), (t_B, t_A))`` for this pair."""
        return SegmentPair(
            self.cd.t_start, self.cd.t_end, self.ab.t_start, self.ab.t_end
        )

    # ------------------------------------------------------------------ #
    # exact geometry
    # ------------------------------------------------------------------ #

    def contains(self, point: FeaturePoint, tol: float = 1e-9) -> bool:
        """Whether the feature point lies in the (closed) parallelogram.

        Solves the two-coordinate representation: a point of the
        parallelogram is ``BC + s * u + r * w`` where ``u`` is the
        CD-direction ``(len_CD, rise_CD)``, ``w`` the AB-direction
        ``(len_AB, rise_AB)``, and ``s, r in [0, 1]``.
        """
        if self.is_self_pair:
            # the degenerate segment from (0,0) to (L, rise)
            u = (self.ab.duration, self.ab.rise)
            if abs(u[0]) <= _EPS:
                return abs(point.dt) <= tol and abs(point.dv) <= tol
            s = point.dt / u[0]
            return (-tol <= s <= 1 + tol) and abs(point.dv - s * u[1]) <= tol

        origin = self.bc
        u = (self.cd.duration, self.cd.rise)  # BC -> BD direction
        w = (self.ab.duration, self.ab.rise)  # BC -> AC direction
        det = u[0] * w[1] - u[1] * w[0]
        px = point.dt - origin.dt
        py = point.dv - origin.dv
        if abs(det) <= _EPS:
            # parallel slopes: parallelogram collapses to a segment
            # project onto u (both directions are parallel)
            length2 = u[0] * u[0] + u[1] * u[1]
            s = (px * u[0] + py * u[1]) / length2
            total = s  # position along combined direction, in [0, 2]
            on_line = abs(px * u[1] - py * u[0]) <= tol * max(1.0, length2**0.5)
            w_len = (w[0] * w[0] + w[1] * w[1]) ** 0.5
            u_len = length2**0.5
            return on_line and -tol <= total <= (u_len + w_len) / u_len + tol
        s = (px * w[1] - py * w[0]) / det
        r = (u[0] * py - u[1] * px) / det
        return -tol <= s <= 1 + tol and -tol <= r <= 1 + tol

    def intersects(self, region: QueryRegion) -> bool:
        """Exact intersection with a drop/jump query region."""
        return region.intersects_polygon(self.vertices())

    def min_dv_within(self, t_budget: float) -> Optional[float]:
        """Deepest Δv over the parallelogram restricted to ``dt <= T``.

        Returns ``None`` when no point of the parallelogram has
        ``dt <= T``.  The minimum is over the *closure* (``dt >= 0``); the
        open boundary at ``dt = 0`` makes at most an infinitesimal
        difference, which callers absorb in their tolerance.
        """
        return self._extreme_dv_within(t_budget, want_min=True)

    def max_dv_within(self, t_budget: float) -> Optional[float]:
        """Highest Δv over the parallelogram restricted to ``dt <= T``."""
        return self._extreme_dv_within(t_budget, want_min=False)

    def _extreme_dv_within(
        self, t_budget: float, want_min: bool
    ) -> Optional[float]:
        if t_budget <= 0:
            raise InvalidParameterError("time budget T must be positive")
        poly = self.vertices()
        poly = clip_halfplane(poly, 1.0, 0.0, 0.0, keep_geq=True)
        poly = clip_halfplane(poly, 1.0, 0.0, t_budget, keep_geq=False)
        if not poly:
            return None
        dvs = [p[1] for p in poly]
        return min(dvs) if want_min else max(dvs)


def _same_segment(a: DataSegment, b: DataSegment) -> bool:
    return (
        a.t_start == b.t_start
        and a.t_end == b.t_end
        and a.v_start == b.v_start
        and a.v_end == b.v_end
    )

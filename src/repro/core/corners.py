"""Corner-point reduction: the six-case analysis of Table 2 / the appendix.

A drop (jump) query region can only meet a parallelogram through its
lower-left (upper-left) boundary, so instead of all four corners SegDiff
stores just the corners of that boundary — between one and three of them,
depending on the two segment slopes.  Combined with Lemma 4's ε-shift
(down for drops, up for jumps) this yields the exact features persisted to
the database.

The case conditions follow the appendix (Table 2 prints case 5 with the
inequality flipped; see DESIGN.md §5.3).  Collected boundaries are
polylines ordered by increasing Δt; every vertex becomes a *point feature*
and every edge a *line feature* for the Section 4.4 queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..types import SegmentPair
from .feature_space import FeaturePoint, FeatureSegment
from .parallelogram import Parallelogram

__all__ = ["SlopeCase", "classify_case", "collect_features", "FeatureSet"]


class SlopeCase(enum.Enum):
    """Which of the paper's six slope cases a segment pair falls into.

    ``SELF`` marks the degenerate self-pair (DESIGN.md §5.1), which has no
    Table 2 row of its own.
    """

    CASE1 = 1  # k_CD >= 0, k_AB <= 0
    CASE2 = 2  # k_CD >= 0, k_AB >= k_CD
    CASE3 = 3  # k_CD >= 0, 0 < k_AB < k_CD
    CASE4 = 4  # k_CD < 0,  k_AB >= 0
    CASE5 = 5  # k_CD < 0,  k_AB <= k_CD
    CASE6 = 6  # k_CD < 0,  k_CD < k_AB < 0
    SELF = 0  # degenerate self-pair


def classify_case(k_cd: float, k_ab: float) -> SlopeCase:
    """Classify a pair of slopes into its Table 2 case.

    Ties are resolved deterministically: ``k_AB = 0`` with ``k_CD >= 0``
    goes to case 1; ``k_AB = k_CD`` goes to case 2 (positive slopes) or
    case 5 (negative slopes).
    """
    if k_cd >= 0.0:
        if k_ab <= 0.0:
            return SlopeCase.CASE1
        if k_ab >= k_cd:
            return SlopeCase.CASE2
        return SlopeCase.CASE3
    if k_ab >= 0.0:
        return SlopeCase.CASE4
    if k_ab <= k_cd:
        return SlopeCase.CASE5
    return SlopeCase.CASE6


@dataclass
class FeatureSet:
    """Everything extracted from one parallelogram, ready for storage.

    ``drop_corner_count`` / ``jump_corner_count`` record how many corners
    the case analysis kept (0 when the guard pruned the search type
    entirely) — the quantity Table 4 aggregates.
    """

    pair: SegmentPair
    case: SlopeCase
    drop_points: List[FeaturePoint] = field(default_factory=list)
    drop_lines: List[FeatureSegment] = field(default_factory=list)
    jump_points: List[FeaturePoint] = field(default_factory=list)
    jump_lines: List[FeatureSegment] = field(default_factory=list)
    drop_corner_count: int = 0
    jump_corner_count: int = 0

    @property
    def total_features(self) -> int:
        """Total stored rows this set contributes (points + lines)."""
        return (
            len(self.drop_points)
            + len(self.drop_lines)
            + len(self.jump_points)
            + len(self.jump_lines)
        )


def collect_features(para: Parallelogram, epsilon: float) -> FeatureSet:
    """Apply the case analysis + Lemma 4 shift to one parallelogram.

    Returns the ε-shifted point and line features to persist.  Drop
    features are shifted **down** by ε, jump features **up** by ε, so that
    (per Lemma 4) querying the shifted features misses no true event.
    """
    fs = FeatureSet(pair=para.segment_pair(), case=SlopeCase.SELF)
    if para.is_self_pair:
        _collect_self(fs, para, epsilon)
        return fs

    fs.case = classify_case(para.cd.slope, para.ab.slope)
    bc, bd, ad, ac = para.bc, para.bd, para.ad, para.ac

    drop_boundary = _drop_boundary(fs.case, bc, bd, ad, ac, epsilon)
    jump_boundary = _jump_boundary(fs.case, bc, bd, ad, ac, epsilon)

    if drop_boundary is not None:
        fs.drop_corner_count = len(drop_boundary)
        shifted = [p.shifted(-epsilon) for p in drop_boundary]
        fs.drop_points = shifted
        fs.drop_lines = _edges(shifted)
    if jump_boundary is not None:
        fs.jump_corner_count = len(jump_boundary)
        shifted = [p.shifted(+epsilon) for p in jump_boundary]
        fs.jump_points = shifted
        fs.jump_lines = _edges(shifted)
    return fs


def _edges(polyline: List[FeaturePoint]) -> List[FeatureSegment]:
    return [FeatureSegment(p, q) for p, q in zip(polyline, polyline[1:])]


def _drop_boundary(
    case: SlopeCase,
    bc: FeaturePoint,
    bd: FeaturePoint,
    ad: FeaturePoint,
    ac: FeaturePoint,
    eps: float,
) -> Optional[List[FeaturePoint]]:
    """Lower-left boundary corners to record for drop search, or None.

    The guard condition checks whether the ε-shifted parallelogram can
    contain *any* drop (its minimum Δv corner dips to 0 or below); pruned
    parallelograms contribute nothing to the drop tables.
    """
    if case is SlopeCase.CASE1:
        if ac.dv - eps <= 0.0:
            return [bc, ac]
    elif case is SlopeCase.CASE2:
        if bc.dv - eps <= 0.0:
            return [bc]
    elif case is SlopeCase.CASE3:
        if bc.dv - eps <= 0.0:
            return [bc]
    elif case is SlopeCase.CASE4:
        if bd.dv - eps <= 0.0:
            return [bc, bd]
    elif case is SlopeCase.CASE5:
        if ac.dv - eps <= 0.0:
            return [bc, ac, ad]
        if ad.dv - eps <= 0.0:
            return [ac, ad]
    elif case is SlopeCase.CASE6:
        if bd.dv - eps <= 0.0:
            return [bc, bd, ad]
        if ad.dv - eps <= 0.0:
            return [bd, ad]
    return None


def _jump_boundary(
    case: SlopeCase,
    bc: FeaturePoint,
    bd: FeaturePoint,
    ad: FeaturePoint,
    ac: FeaturePoint,
    eps: float,
) -> Optional[List[FeaturePoint]]:
    """Upper-left boundary corners to record for jump search, or None."""
    if case is SlopeCase.CASE1:
        if bd.dv + eps > 0.0:
            return [bc, bd]
    elif case is SlopeCase.CASE2:
        if ac.dv + eps >= 0.0:
            return [bc, ac, ad]
        if ad.dv + eps > 0.0:
            return [ac, ad]
    elif case is SlopeCase.CASE3:
        if bd.dv + eps >= 0.0:
            return [bc, bd, ad]
        if ad.dv + eps > 0.0:
            return [bd, ad]
    elif case is SlopeCase.CASE4:
        if ac.dv + eps > 0.0:
            return [bc, ac]
    elif case is SlopeCase.CASE5:
        if bc.dv + eps > 0.0:
            return [bc]
    elif case is SlopeCase.CASE6:
        if bc.dv + eps > 0.0:
            return [bc]
    return None


def _collect_self(fs: FeatureSet, para: Parallelogram, eps: float) -> None:
    """Features for the degenerate self-pair.

    The features of all within-segment point pairs form the feature
    segment from ``(0, 0)`` to ``(L, rise)``.  Because the shifted lower
    end sits at ``-ε <= 0``, a drop can never be ruled out at build time
    (the threshold ``V`` is unknown), so drop features are always stored;
    symmetrically for jumps.
    """
    lo = FeaturePoint(0.0, 0.0)
    hi = para.ad  # (duration, rise)
    drop = [p.shifted(-eps) for p in (lo, hi)]
    jump = [p.shifted(+eps) for p in (lo, hi)]
    # order the polyline by dt (already is: lo.dt = 0 <= hi.dt)
    fs.drop_points = drop
    fs.drop_lines = _edges(drop)
    fs.jump_points = jump
    fs.jump_lines = _edges(jump)
    fs.drop_corner_count = 2
    fs.jump_corner_count = 2

"""Corner-point reduction: the six-case analysis of Table 2 / the appendix.

A drop (jump) query region can only meet a parallelogram through its
lower-left (upper-left) boundary, so instead of all four corners SegDiff
stores just the corners of that boundary — between one and three of them,
depending on the two segment slopes.  Combined with Lemma 4's ε-shift
(down for drops, up for jumps) this yields the exact features persisted to
the database.

The case conditions follow the appendix (Table 2 prints case 5 with the
inequality flipped; see DESIGN.md §5.3).  Collected boundaries are
polylines ordered by increasing Δt; every vertex becomes a *point feature*
and every edge a *line feature* for the Section 4.4 queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from ..types import SegmentPair
from .feature_space import FeaturePoint, FeatureSegment
from .parallelogram import Parallelogram

__all__ = [
    "SlopeCase",
    "classify_case",
    "collect_features",
    "collect_features_batch",
    "FeatureSet",
    "FeatureBatch",
]


class SlopeCase(enum.Enum):
    """Which of the paper's six slope cases a segment pair falls into.

    ``SELF`` marks the degenerate self-pair (DESIGN.md §5.1), which has no
    Table 2 row of its own.
    """

    CASE1 = 1  # k_CD >= 0, k_AB <= 0
    CASE2 = 2  # k_CD >= 0, k_AB >= k_CD
    CASE3 = 3  # k_CD >= 0, 0 < k_AB < k_CD
    CASE4 = 4  # k_CD < 0,  k_AB >= 0
    CASE5 = 5  # k_CD < 0,  k_AB <= k_CD
    CASE6 = 6  # k_CD < 0,  k_CD < k_AB < 0
    SELF = 0  # degenerate self-pair


def classify_case(k_cd: float, k_ab: float) -> SlopeCase:
    """Classify a pair of slopes into its Table 2 case.

    Ties are resolved deterministically: ``k_AB = 0`` with ``k_CD >= 0``
    goes to case 1; ``k_AB = k_CD`` goes to case 2 (positive slopes) or
    case 5 (negative slopes).
    """
    if k_cd >= 0.0:
        if k_ab <= 0.0:
            return SlopeCase.CASE1
        if k_ab >= k_cd:
            return SlopeCase.CASE2
        return SlopeCase.CASE3
    if k_ab >= 0.0:
        return SlopeCase.CASE4
    if k_ab <= k_cd:
        return SlopeCase.CASE5
    return SlopeCase.CASE6


@dataclass
class FeatureSet:
    """Everything extracted from one parallelogram, ready for storage.

    ``drop_corner_count`` / ``jump_corner_count`` record how many corners
    the case analysis kept (0 when the guard pruned the search type
    entirely) — the quantity Table 4 aggregates.
    """

    pair: SegmentPair
    case: SlopeCase
    drop_points: List[FeaturePoint] = field(default_factory=list)
    drop_lines: List[FeatureSegment] = field(default_factory=list)
    jump_points: List[FeaturePoint] = field(default_factory=list)
    jump_lines: List[FeatureSegment] = field(default_factory=list)
    drop_corner_count: int = 0
    jump_corner_count: int = 0

    @property
    def total_features(self) -> int:
        """Total stored rows this set contributes (points + lines)."""
        return (
            len(self.drop_points)
            + len(self.drop_lines)
            + len(self.jump_points)
            + len(self.jump_lines)
        )


def collect_features(para: Parallelogram, epsilon: float) -> FeatureSet:
    """Apply the case analysis + Lemma 4 shift to one parallelogram.

    Returns the ε-shifted point and line features to persist.  Drop
    features are shifted **down** by ε, jump features **up** by ε, so that
    (per Lemma 4) querying the shifted features misses no true event.
    """
    fs = FeatureSet(pair=para.segment_pair(), case=SlopeCase.SELF)
    if para.is_self_pair:
        _collect_self(fs, para, epsilon)
        return fs

    fs.case = classify_case(para.cd.slope, para.ab.slope)
    bc, bd, ad, ac = para.bc, para.bd, para.ad, para.ac

    drop_boundary = _drop_boundary(fs.case, bc, bd, ad, ac, epsilon)
    jump_boundary = _jump_boundary(fs.case, bc, bd, ad, ac, epsilon)

    if drop_boundary is not None:
        fs.drop_corner_count = len(drop_boundary)
        shifted = [p.shifted(-epsilon) for p in drop_boundary]
        fs.drop_points = shifted
        fs.drop_lines = _edges(shifted)
    if jump_boundary is not None:
        fs.jump_corner_count = len(jump_boundary)
        shifted = [p.shifted(+epsilon) for p in jump_boundary]
        fs.jump_points = shifted
        fs.jump_lines = _edges(shifted)
    return fs


def _edges(polyline: List[FeaturePoint]) -> List[FeatureSegment]:
    return [FeatureSegment(p, q) for p, q in zip(polyline, polyline[1:])]


def _drop_boundary(
    case: SlopeCase,
    bc: FeaturePoint,
    bd: FeaturePoint,
    ad: FeaturePoint,
    ac: FeaturePoint,
    eps: float,
) -> Optional[List[FeaturePoint]]:
    """Lower-left boundary corners to record for drop search, or None.

    The guard condition checks whether the ε-shifted parallelogram can
    contain *any* drop (its minimum Δv corner dips to 0 or below); pruned
    parallelograms contribute nothing to the drop tables.
    """
    if case is SlopeCase.CASE1:
        if ac.dv - eps <= 0.0:
            return [bc, ac]
    elif case is SlopeCase.CASE2:
        if bc.dv - eps <= 0.0:
            return [bc]
    elif case is SlopeCase.CASE3:
        if bc.dv - eps <= 0.0:
            return [bc]
    elif case is SlopeCase.CASE4:
        if bd.dv - eps <= 0.0:
            return [bc, bd]
    elif case is SlopeCase.CASE5:
        if ac.dv - eps <= 0.0:
            return [bc, ac, ad]
        if ad.dv - eps <= 0.0:
            return [ac, ad]
    elif case is SlopeCase.CASE6:
        if bd.dv - eps <= 0.0:
            return [bc, bd, ad]
        if ad.dv - eps <= 0.0:
            return [bd, ad]
    return None


def _jump_boundary(
    case: SlopeCase,
    bc: FeaturePoint,
    bd: FeaturePoint,
    ad: FeaturePoint,
    ac: FeaturePoint,
    eps: float,
) -> Optional[List[FeaturePoint]]:
    """Upper-left boundary corners to record for jump search, or None."""
    if case is SlopeCase.CASE1:
        if bd.dv + eps > 0.0:
            return [bc, bd]
    elif case is SlopeCase.CASE2:
        if ac.dv + eps >= 0.0:
            return [bc, ac, ad]
        if ad.dv + eps > 0.0:
            return [ac, ad]
    elif case is SlopeCase.CASE3:
        if bd.dv + eps >= 0.0:
            return [bc, bd, ad]
        if ad.dv + eps > 0.0:
            return [bd, ad]
    elif case is SlopeCase.CASE4:
        if ac.dv + eps > 0.0:
            return [bc, ac]
    elif case is SlopeCase.CASE5:
        if bc.dv + eps > 0.0:
            return [bc]
    elif case is SlopeCase.CASE6:
        if bc.dv + eps > 0.0:
            return [bc]
    return None


def _collect_self(fs: FeatureSet, para: Parallelogram, eps: float) -> None:
    """Features for the degenerate self-pair.

    The features of all within-segment point pairs form the feature
    segment from ``(0, 0)`` to ``(L, rise)``.  Because the shifted lower
    end sits at ``-ε <= 0``, a drop can never be ruled out at build time
    (the threshold ``V`` is unknown), so drop features are always stored;
    symmetrically for jumps.
    """
    lo = FeaturePoint(0.0, 0.0)
    hi = para.ad  # (duration, rise)
    drop = [p.shifted(-eps) for p in (lo, hi)]
    jump = [p.shifted(+eps) for p in (lo, hi)]
    # order the polyline by dt (already is: lo.dt = 0 <= hi.dt)
    fs.drop_points = drop
    fs.drop_lines = _edges(drop)
    fs.jump_points = jump
    fs.jump_lines = _edges(jump)
    fs.drop_corner_count = 2
    fs.jump_corner_count = 2


@dataclass
class FeatureBatch:
    """Columnar result of :func:`collect_features_batch`.

    The flattened point/line tables hold the exact rows the four feature
    tables persist, in emission order (pair by pair, boundary corners in
    increasing Δt).  ``drop_corner_counts[i]`` rows of ``drop_points``
    (and ``max(count - 1, 0)`` rows of ``drop_lines``) belong to pair
    ``i``; likewise for jumps.
    """

    #: (m, 4) pair identities — columns ``t_d, t_c, t_b, t_a``.
    pairs: np.ndarray
    #: (m,) Table 2 case per pair (``SlopeCase`` values; 0 = SELF).
    case_ids: np.ndarray
    #: (m,) corners kept per pair for each search type (0 = guard pruned).
    drop_corner_counts: np.ndarray
    jump_corner_counts: np.ndarray
    #: (k, 6) rows ``dt, dv, t_d, t_c, t_b, t_a`` (ε-shifted).
    drop_points: np.ndarray
    jump_points: np.ndarray
    #: (k, 8) rows ``dt1, dv1, dt2, dv2, t_d, t_c, t_b, t_a`` (ε-shifted).
    drop_lines: np.ndarray
    jump_lines: np.ndarray

    @property
    def n_pairs(self) -> int:
        return int(self.pairs.shape[0])

    @property
    def total_features(self) -> int:
        """Total stored rows this batch contributes (points + lines)."""
        return int(
            self.drop_points.shape[0]
            + self.drop_lines.shape[0]
            + self.jump_points.shape[0]
            + self.jump_lines.shape[0]
        )

    def iter_feature_sets(self) -> Iterator[FeatureSet]:
        """Reconstruct per-pair :class:`FeatureSet` objects, in order.

        Compatibility fallback for stores without a native bulk write
        path — the objects are identical to what :func:`collect_features`
        would have produced pair by pair.
        """
        dp = dl = jp = jl = 0
        d_pts = self.drop_points.tolist()
        d_lns = self.drop_lines.tolist()
        j_pts = self.jump_points.tolist()
        j_lns = self.jump_lines.tolist()
        for i, ident in enumerate(self.pairs.tolist()):
            case = SlopeCase(int(self.case_ids[i]))
            fs = FeatureSet(pair=SegmentPair(*ident), case=case)
            nd = int(self.drop_corner_counts[i])
            nj = int(self.jump_corner_counts[i])
            if case is not SlopeCase.SELF:
                fs.drop_corner_count = nd
                fs.jump_corner_count = nj
            else:
                fs.drop_corner_count = 2
                fs.jump_corner_count = 2
            fs.drop_points = [
                FeaturePoint(r[0], r[1]) for r in d_pts[dp : dp + nd]
            ]
            fs.drop_lines = [
                FeatureSegment(FeaturePoint(r[0], r[1]), FeaturePoint(r[2], r[3]))
                for r in d_lns[dl : dl + max(nd - 1, 0)]
            ]
            fs.jump_points = [
                FeaturePoint(r[0], r[1]) for r in j_pts[jp : jp + nj]
            ]
            fs.jump_lines = [
                FeatureSegment(FeaturePoint(r[0], r[1]), FeaturePoint(r[2], r[3]))
                for r in j_lns[jl : jl + max(nj - 1, 0)]
            ]
            dp += nd
            dl += max(nd - 1, 0)
            jp += nj
            jl += max(nj - 1, 0)
            yield fs


def collect_features_batch(cd_rows, ab_rows, self_mask, epsilon) -> FeatureBatch:
    """Vectorized :func:`collect_features` over arrays of segment pairs.

    ``cd_rows`` / ``ab_rows`` are ``(m, 4)`` arrays with columns
    ``t_start, v_start, t_end, v_end`` (the CD row already truncated to
    the window where applicable); ``self_mask`` marks degenerate
    self-pairs.  The result's tables are bit-for-bit the rows the scalar
    path persists — every float operation uses the same operands in the
    same order as the :class:`~repro.core.parallelogram.Parallelogram`
    corner properties, :func:`classify_case`, the Table 2 guards, and the
    Lemma 4 shift.
    """
    cd = np.ascontiguousarray(cd_rows, dtype=float).reshape(-1, 4)
    ab = np.ascontiguousarray(ab_rows, dtype=float).reshape(-1, 4)
    m = cd.shape[0]
    eps = float(epsilon)
    if m == 0:
        return FeatureBatch(
            pairs=np.empty((0, 4)),
            case_ids=np.empty(0, dtype=np.int8),
            drop_corner_counts=np.empty(0, dtype=np.int64),
            jump_corner_counts=np.empty(0, dtype=np.int64),
            drop_points=np.empty((0, 6)),
            jump_points=np.empty((0, 6)),
            drop_lines=np.empty((0, 8)),
            jump_lines=np.empty((0, 8)),
        )
    is_self = np.ascontiguousarray(self_mask, dtype=bool).reshape(-1)
    not_self = ~is_self

    cd_ts, cd_vs, cd_te, cd_ve = cd[:, 0], cd[:, 1], cd[:, 2], cd[:, 3]
    ab_ts, ab_vs, ab_te, ab_ve = ab[:, 0], ab[:, 1], ab[:, 2], ab[:, 3]
    pairs = np.stack([cd_ts, cd_te, ab_ts, ab_te], axis=1)

    # the four corner feature points (Lemma 3)
    bc_dt = ab_ts - cd_te
    bc_dv = ab_vs - cd_ve
    bd_dt = ab_ts - cd_ts
    bd_dv = ab_vs - cd_vs
    ad_dt = ab_te - cd_ts
    ad_dv = ab_ve - cd_vs
    ac_dt = ab_te - cd_te
    ac_dv = ab_ve - cd_ve

    # slopes + Table 2 classification
    k_cd = (cd_ve - cd_vs) / (cd_te - cd_ts)
    k_ab = (ab_ve - ab_vs) / (ab_te - ab_ts)
    pos = k_cd >= 0.0
    c1 = pos & (k_ab <= 0.0)
    c2 = pos & ~c1 & (k_ab >= k_cd)
    c3 = pos & ~c1 & ~c2
    c4 = ~pos & (k_ab >= 0.0)
    c5 = ~pos & ~c4 & (k_ab <= k_cd)
    c6 = ~pos & ~c4 & ~c5
    case_ids = np.zeros(m, dtype=np.int8)
    for cid, mask in enumerate((c1, c2, c3, c4, c5, c6), start=1):
        case_ids[mask & not_self] = cid

    corners = {
        "bc": (bc_dt, bc_dv),
        "bd": (bd_dt, bd_dv),
        "ad": (ad_dt, ad_dv),
        "ac": (ac_dt, ac_dv),
    }

    def build(boundaries, shift):
        """Fill the (m, 3, 2) corner buffer from (mask, corner-names) rules."""
        buf = np.zeros((m, 3, 2))
        counts = np.zeros(m, dtype=np.int64)
        for mask, names in boundaries:
            mask = mask & not_self
            if not mask.any():
                continue
            for slot, name in enumerate(names):
                c_dt, c_dv = corners[name]
                buf[mask, slot, 0] = c_dt[mask]
                buf[mask, slot, 1] = c_dv[mask]
            counts[mask] = len(names)
        if is_self.any():
            # degenerate self-pair: (0, 0) -> (duration, rise), both kinds
            buf[is_self, 0, 0] = 0.0
            buf[is_self, 0, 1] = 0.0
            buf[is_self, 1, 0] = ad_dt[is_self]
            buf[is_self, 1, 1] = ad_dv[is_self]
            counts[is_self] = 2
        # Lemma 4 ε-shift, applied after boundary selection
        buf[:, :, 1] += shift
        return buf, counts

    # guard conditions exactly as _drop_boundary / _jump_boundary
    drop_buf, drop_counts = build(
        [
            (c1 & (ac_dv - eps <= 0.0), ("bc", "ac")),
            (c2 & (bc_dv - eps <= 0.0), ("bc",)),
            (c3 & (bc_dv - eps <= 0.0), ("bc",)),
            (c4 & (bd_dv - eps <= 0.0), ("bc", "bd")),
            (c5 & (ac_dv - eps <= 0.0), ("bc", "ac", "ad")),
            (c5 & ~(ac_dv - eps <= 0.0) & (ad_dv - eps <= 0.0), ("ac", "ad")),
            (c6 & (bd_dv - eps <= 0.0), ("bc", "bd", "ad")),
            (c6 & ~(bd_dv - eps <= 0.0) & (ad_dv - eps <= 0.0), ("bd", "ad")),
        ],
        -eps,
    )
    jump_buf, jump_counts = build(
        [
            (c1 & (bd_dv + eps > 0.0), ("bc", "bd")),
            (c2 & (ac_dv + eps >= 0.0), ("bc", "ac", "ad")),
            (c2 & ~(ac_dv + eps >= 0.0) & (ad_dv + eps > 0.0), ("ac", "ad")),
            (c3 & (bd_dv + eps >= 0.0), ("bc", "bd", "ad")),
            (c3 & ~(bd_dv + eps >= 0.0) & (ad_dv + eps > 0.0), ("bd", "ad")),
            (c4 & (ac_dv + eps > 0.0), ("bc", "ac")),
            (c5 & (bc_dv + eps > 0.0), ("bc",)),
            (c6 & (bc_dv + eps > 0.0), ("bc",)),
        ],
        +eps,
    )

    drop_points, drop_lines = _flatten(drop_buf, drop_counts, pairs)
    jump_points, jump_lines = _flatten(jump_buf, jump_counts, pairs)
    return FeatureBatch(
        pairs=pairs,
        case_ids=case_ids,
        drop_corner_counts=drop_counts,
        jump_corner_counts=jump_counts,
        drop_points=drop_points,
        jump_points=jump_points,
        drop_lines=drop_lines,
        jump_lines=jump_lines,
    )


def _flatten(buf, counts, pairs):
    """Flatten an (m, 3, 2) corner buffer into point and line row tables.

    Row-major selection preserves emission order: pair by pair, corners
    (edges) by increasing Δt within the pair.
    """
    m = counts.shape[0]
    keep = np.arange(3)[None, :] < counts[:, None]
    pts = buf.reshape(-1, 2)[keep.ravel()]
    points = np.concatenate([pts, pairs[np.repeat(np.arange(m), counts)]], axis=1)
    edge_counts = np.maximum(counts - 1, 0)
    edges = np.concatenate([buf[:, :2, :], buf[:, 1:, :]], axis=2)  # (m, 2, 4)
    ekeep = np.arange(2)[None, :] < edge_counts[:, None]
    lns = edges.reshape(-1, 4)[ekeep.ravel()]
    lines = np.concatenate(
        [lns, pairs[np.repeat(np.arange(m), edge_counts)]], axis=1
    )
    return points, lines

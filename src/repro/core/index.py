"""The user-facing SegDiff index.

:class:`SegDiffIndex` wires the pipeline together::

    observations --> SlidingWindowSegmenter --> FeatureExtractor --> FeatureStore
                                                                        |
    search_drops(T, V) / search_jumps(T, V)  <--  point + line queries --+

Typical use::

    index = SegDiffIndex.build(series, epsilon=0.2, window=8 * 3600)
    pairs = index.search_drops(t_threshold=3600, v_threshold=-3.0)

or streaming::

    index = SegDiffIndex(epsilon=0.2, window=8 * 3600)
    for t, v in live_feed:
        index.append(t, v)
        ...
        index.checkpoint()          # searchable mid-stream
    index.finalize()                # seal the stream
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..datagen.model import PiecewiseLinearSignal
from ..datagen.series import TimeSeries
from ..engine.session import ExplainReport, QuerySession
from ..errors import InvalidParameterError, QueryError, StorageError
from ..obs.metrics import REGISTRY
from ..obs.tracing import span
from ..segmentation.sliding_window import SlidingWindowSegmenter
from ..storage.base import FeatureStore, StoreCounts
from ..storage.memory_store import MemoryFeatureStore
from ..storage.sqlite_store import SqliteFeatureStore
from ..types import DataSegment, SegmentPair
from .extraction import ExtractionStats, FeatureExtractor
from .planner import QueryPlanner
from .queries import DropQuery, JumpQuery
from .results import SearchHit, witness_event

__all__ = ["SegDiffIndex", "IndexStats", "DEFAULT_BATCH_SIZE"]

#: Observations consumed per vectorized segmentation/extraction round.
DEFAULT_BATCH_SIZE = 65_536

_EPISODE_SECONDS = REGISTRY.histogram(
    "repro_build_episode_seconds",
    "Wall time to segment and extract one gap-free episode "
    "(serial fast path or parallel worker)",
)


@dataclass(frozen=True)
class IndexStats:
    """A snapshot of the index's size and composition."""

    epsilon: float
    window: float
    n_observations: int
    n_segments: int
    compression_rate: float
    store_counts: StoreCounts
    feature_bytes: int
    index_bytes: int
    extraction: ExtractionStats

    @property
    def disk_bytes(self) -> int:
        return self.feature_bytes + self.index_bytes


class SegDiffIndex:
    """Build-once (or streaming), query-many index for drop/jump search.

    Parameters
    ----------
    epsilon:
        Error tolerance ε of Definition 2; results are exact up to the
        Theorem 1 ``2ε`` bound.
    window:
        The longest supported query time span ``w`` (seconds).
    store:
        A :class:`FeatureStore`; defaults to an in-memory store.  Use
        :meth:`build` with ``backend="sqlite"`` for the on-disk backend.
    emit_self_pairs:
        See :class:`FeatureExtractor`; on by default.
    """

    def __init__(
        self,
        epsilon: float,
        window: float,
        store: Optional[FeatureStore] = None,
        emit_self_pairs: bool = True,
        resilience=None,
        name: Optional[str] = None,
    ) -> None:
        self.epsilon = float(epsilon)
        self.window = float(window)
        self.store = store if store is not None else MemoryFeatureStore()
        #: Optional :class:`repro.engine.ResiliencePolicy` applied to the
        #: lazily-created query session (deadlines, admission, breaker).
        self.resilience = resilience
        #: Distinguishes this index's breaker gauge from other indexes'
        #: in a multi-index process (e.g. a shard/replica id).
        self.name = name
        self._segmenter = SlidingWindowSegmenter(epsilon)
        self._extractor = FeatureExtractor(
            epsilon, window, self.store, emit_self_pairs=emit_self_pairs
        )
        self._segments: List[DataSegment] = []
        self._n_observations = 0
        # observations covered by *closed* segments — what a checkpoint
        # can claim durably (the segmenter's open tail is memory-only)
        self._n_obs_covered = 0
        self._sealed = False
        self._resume_t: Optional[float] = None
        self._session: Optional[QuerySession] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        series: TimeSeries,
        epsilon: float,
        window: float,
        backend: str = "memory",
        path: Optional[str] = None,
        emit_self_pairs: bool = True,
        batch_size: Optional[int] = None,
        workers: int = 1,
        max_gap: Optional[float] = None,
        resilience=None,
        name: Optional[str] = None,
    ) -> "SegDiffIndex":
        """Build and finalize an index over a whole series.

        ``backend`` is ``"memory"``, ``"sqlite"``, or ``"minidb"`` (the
        instrumented page-based engine); ``path`` names the backing file
        (temporary when omitted).  ``resilience`` (a
        :class:`repro.engine.ResiliencePolicy`) and ``name`` (the breaker
        gauge label, e.g. a shard id) configure the query session.

        The build runs the batched fast path (bit-for-bit equivalent to
        streaming :meth:`append`): ``batch_size`` observations per
        vectorized round, and — when ``workers > 1`` and ``max_gap``
        splits the series into several episodes — episodes fanned out
        across a process pool.  ``batch_size=0`` forces the scalar
        reference path.
        """
        if backend == "memory":
            store: FeatureStore = MemoryFeatureStore()
        elif backend == "sqlite":
            store = SqliteFeatureStore(path)
        elif backend == "minidb":
            from ..storage.minidb import MiniDbFeatureStore

            store = MiniDbFeatureStore(path)
        else:
            raise InvalidParameterError(
                "backend must be 'memory', 'sqlite' or 'minidb', "
                f"got {backend!r}"
            )
        index = cls(
            epsilon, window, store, emit_self_pairs=emit_self_pairs,
            resilience=resilience, name=name,
        )
        with span("index.build") as bs:
            bs.set_attribute("backend", backend)
            bs.set_attribute("workers", workers)
            bs.set_attribute("observations", len(series.times))
            with span("index.ingest"):
                if batch_size == 0:
                    # scalar reference path
                    if max_gap is not None:
                        index.ingest_episodes(series, max_gap)
                    else:
                        index.ingest(series)
                elif workers > 1:
                    index.ingest_parallel(
                        series,
                        max_gap=max_gap,
                        workers=workers,
                        batch_size=batch_size or DEFAULT_BATCH_SIZE,
                    )
                else:
                    index.ingest_episodes_fast(
                        series,
                        max_gap=max_gap,
                        batch_size=batch_size or DEFAULT_BATCH_SIZE,
                    )
            index.finalize()
            bs.set_attribute("segments", len(index._segments))
        return index

    @staticmethod
    def _open_store(path: str) -> FeatureStore:
        """Open a file-backed store, sniffing the format from its header."""
        try:
            with open(path, "rb") as fh:
                magic = fh.read(16)
        except OSError:
            magic = b""
        if magic.startswith(b"SQLite format 3"):
            return SqliteFeatureStore(path)
        from ..storage.minidb import MiniDbFeatureStore

        return MiniDbFeatureStore(path)

    @classmethod
    def open(
        cls, path: str, resilience=None, name: Optional[str] = None
    ) -> "SegDiffIndex":
        """Reopen a previously built, finalized index file.

        The backend (SQLite or MiniDB) is sniffed from the file header.
        The file is self-describing: build parameters and the data
        segments are stored alongside the features, so the reopened index
        can search, refine witnesses against its approximation, and
        report stats.  It cannot be extended (it is sealed).
        ``resilience`` (a :class:`repro.engine.ResiliencePolicy`)
        configures deadlines/admission/breaker on the query session.
        """
        store = cls._open_store(path)
        epsilon = store.get_meta("epsilon")
        window = store.get_meta("window")
        if epsilon is None or window is None:
            store.close()
            raise StorageError(
                f"{path} is not a finalized SegDiff index (missing metadata)"
            )
        sealed = store.get_meta("sealed")
        if sealed is not None and not sealed:
            store.close()
            raise StorageError(
                f"{path} is a mid-stream checkpoint, not a finalized index; "
                "use SegDiffIndex.resume() to continue it"
            )
        index = cls(epsilon, window, store, resilience=resilience, name=name)
        index._segments = store.load_segments()
        n_obs = store.get_meta("n_observations")
        index._n_observations = int(n_obs) if n_obs is not None else 0
        index._sealed = True
        return index

    @staticmethod
    def open_live(directory: str, **kw):
        """Open (resume) a :class:`~repro.core.live.LiveIndex` partition
        directory — the streaming counterpart of :meth:`open`.

        Where :meth:`open` loads one sealed index file, ``open_live``
        loads a time-partitioned directory created by
        :class:`~repro.core.live.LiveIndex`: sealed partitions plus a
        generation-stamped manifest, resumable at its watermark and
        queryable with snapshot isolation while ingest continues.
        Keyword arguments are the ``LiveIndex.open`` policy knobs
        (``seal_rows``, ``ttl``, ...).
        """
        from .live import LiveIndex

        return LiveIndex.open(directory, **kw)

    @classmethod
    def resume(cls, path: str, backend: str = "sqlite") -> "SegDiffIndex":
        """Reopen a mid-stream checkpoint and continue ingesting.

        The returned index has the stored segments reloaded, the
        extractor's pairing history re-primed (without re-emitting
        features), and the segmenter re-anchored at the last stored
        segment's endpoint.  Re-feeding observations at or before the
        checkpoint boundary is safe: :meth:`append` silently skips
        ``t <= resume_t`` so a producer may simply replay its source from
        a little before the crash.

        Observations that arrived after the last :meth:`checkpoint` were
        only in memory and are re-ingested from the replayed stream;
        ``n_observations`` restarts from the checkpointed count.
        """
        if backend == "sqlite":
            store: FeatureStore = SqliteFeatureStore(path)
        elif backend == "minidb":
            from ..storage.minidb import MiniDbFeatureStore

            store = MiniDbFeatureStore(path)
        else:
            raise InvalidParameterError(
                f"backend must be 'sqlite' or 'minidb', got {backend!r}"
            )
        epsilon = store.get_meta("epsilon")
        window = store.get_meta("window")
        if epsilon is None or window is None:
            store.close()
            raise StorageError(
                f"{path} has no SegDiff checkpoint metadata; was "
                "checkpoint() ever called?"
            )
        if store.get_meta("sealed"):
            store.close()
            raise StorageError(
                f"{path} is sealed; use SegDiffIndex.open() to search it"
            )
        index = cls(epsilon, window, store)
        index._segments = store.load_segments()
        n_obs = store.get_meta("n_observations")
        index._n_observations = int(n_obs) if n_obs is not None else 0
        index._n_obs_covered = index._n_observations
        if index._segments:
            last = index._segments[-1]
            horizon = last.t_end - index.window
            # only the contiguous suffix (the current gap episode) that a
            # future window can still reach may pair with new segments
            recent: List[DataSegment] = []
            for seg in reversed(index._segments):
                if seg.t_end <= horizon:
                    break
                if recent and (
                    seg.t_end != recent[-1].t_start
                    or seg.v_end != recent[-1].v_start
                ):
                    break
                recent.append(seg)
            index._extractor.prime_history(reversed(recent))
            # re-anchor the segmenter at the stored approximation's
            # endpoint so the next segment stays contiguous in t and v
            index._segmenter.push(last.t_end, last.v_end)
            index._resume_t = last.t_end
        return index

    def append(self, t: float, v: float) -> None:
        """Stream one observation into the index."""
        if self._sealed:
            raise StorageError("index is sealed; build a new one to extend")
        if self._resume_t is not None and t <= self._resume_t:
            return  # replayed observation already covered by the checkpoint
        self._n_observations += 1
        closed = False
        for segment in self._segmenter.push(t, v):
            self._register_segment(segment)
            closed = True
        if closed:
            # every observation before the current one lies at or before
            # the newest closed segment's end
            self._n_obs_covered = self._n_observations - 1

    def _register_segment(self, segment: DataSegment) -> None:
        self._segments.append(segment)
        self.store.add_segment(segment)
        self._extractor.add_segment(segment)
        # the store grew: selectivity samples drawn before this append
        # must not steer post-append plan choices
        self._invalidate_plans()

    def _invalidate_plans(self) -> None:
        if self._session is not None:
            self._session.invalidate()

    def ingest(self, series: TimeSeries) -> None:
        """Stream a whole series into the index."""
        for t, v in zip(series.times, series.values):
            self.append(float(t), float(v))

    def mark_gap(self) -> None:
        """Start a new *episode* at the current stream position.

        By default Model G interpolates across any sampling gap, so a
        long outage would be treated as one slow linear drift and events
        could be reported spanning it.  Call ``mark_gap()`` when the
        stream resumes after an outage you do *not* want bridged: the
        open segment is flushed, the pairing history is cleared, and no
        future result will span the gap.  Searching is unaffected
        otherwise.
        """
        if self._sealed:
            raise StorageError("index is sealed")
        for segment in self._segmenter.finish():
            self._register_segment(segment)
        self._n_obs_covered = self._n_observations
        self._extractor.reset_history()

    def ingest_episodes(
        self, series: TimeSeries, max_gap: float
    ) -> int:
        """Stream a series, inserting a gap break wherever consecutive
        samples are more than ``max_gap`` seconds apart.

        Returns the number of gaps broken.  Note that with episodes the
        index's :meth:`approximation` is only piecewise-defined per
        episode; cross-gap values are never used for search results.
        """
        if max_gap <= 0:
            raise InvalidParameterError("max_gap must be positive")
        last_t: Optional[float] = None
        gaps = 0
        for t, v in zip(series.times, series.values):
            if last_t is not None and t - last_t > max_gap:
                self.mark_gap()
                gaps += 1
            self.append(float(t), float(v))
            last_t = float(t)
        return gaps

    # ------------------------------------------------------------------ #
    # batched fast path
    # ------------------------------------------------------------------ #

    def ingest_array(
        self, ts, vs, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> None:
        """Ingest time/value arrays through the vectorized fast path.

        Bit-for-bit equivalent to :meth:`append` over every observation —
        same segments, same stored feature rows, same stats — but
        segmentation, the Table 2 corner analysis, and store writes all
        run batched.  Assumes a gap-free stream (one episode); use
        :meth:`ingest_episodes_fast` to break on gaps.
        """
        if self._sealed:
            raise StorageError("index is sealed; build a new one to extend")
        if batch_size < 1:
            raise InvalidParameterError("batch_size must be >= 1")
        ts = np.ascontiguousarray(ts, dtype=float)
        vs = np.ascontiguousarray(vs, dtype=float)
        if self._resume_t is not None:
            # replayed observations already covered by the checkpoint:
            # timestamps are strictly increasing, so the skip is a prefix
            start = int(np.searchsorted(ts, self._resume_t, side="right"))
            ts = ts[start:]
            vs = vs[start:]
        for i in range(0, ts.shape[0], batch_size):
            self._ingest_chunk(ts[i : i + batch_size], vs[i : i + batch_size])

    def _ingest_chunk(self, ts: np.ndarray, vs: np.ndarray) -> None:
        n = ts.shape[0]
        if n == 0:
            return
        n_before = self._n_observations
        segments = self._segmenter.push_batch(ts, vs)
        self._n_observations += n
        if segments:
            self._register_segments(segments)
            # the batch's last segment was closed by the observation at
            # offset last_close_offset; everything before it is covered
            self._n_obs_covered = (
                n_before + self._segmenter.last_close_offset
            )

    def _register_segments(self, segments: List[DataSegment]) -> None:
        self._segments.extend(segments)
        self.store.add_segments_bulk(segments)
        self._extractor.add_segments_batch(segments)
        self._invalidate_plans()

    def ingest_episodes_fast(
        self,
        series: TimeSeries,
        max_gap: Optional[float] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> int:
        """Batched :meth:`ingest_episodes`: split on gaps, ingest each
        episode through the fast path.  Returns the number of gaps."""
        ts = np.ascontiguousarray(series.times, dtype=float)
        vs = np.ascontiguousarray(series.values, dtype=float)
        episodes = _split_episodes(ts, vs, max_gap)
        for i, (ets, evs) in enumerate(episodes):
            if i:
                self.mark_gap()
            t0 = time.perf_counter()
            self.ingest_array(ets, evs, batch_size=batch_size)
            _EPISODE_SECONDS.observe(time.perf_counter() - t0)
        return len(episodes) - 1

    def ingest_parallel(
        self,
        series: TimeSeries,
        max_gap: Optional[float] = None,
        workers: int = 2,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> int:
        """Shard episodes across a process pool and merge deterministically.

        The series is split into gap-free episodes (consecutive samples
        more than ``max_gap`` apart, as :meth:`ingest_episodes`).  Because
        feature pairs never span a gap, each episode is segmented and
        extracted independently in a worker process; the parent replays
        the results — segments, feature batches, stats — in episode
        order, so the merged index is identical to a single-process
        build regardless of worker count or scheduling.

        Requires a fresh index (nothing ingested, no resume pending):
        cross-worker pairing with pre-existing history is impossible.
        Every episode's trailing open segment is flushed (as
        :meth:`mark_gap` would); returns the number of gaps.
        """
        if self._sealed:
            raise StorageError("index is sealed; build a new one to extend")
        if workers < 1:
            raise InvalidParameterError("workers must be >= 1")
        if self._segments or self._n_observations or self._resume_t is not None:
            raise InvalidParameterError(
                "ingest_parallel needs a fresh index; use ingest_array() "
                "to extend an existing stream"
            )
        ts = np.ascontiguousarray(series.times, dtype=float)
        vs = np.ascontiguousarray(series.values, dtype=float)
        episodes = _split_episodes(ts, vs, max_gap)

        tasks = [
            (
                self.epsilon,
                self.window,
                self._extractor.emit_self_pairs,
                ets,
                evs,
                batch_size,
            )
            for ets, evs in episodes
        ]
        with span("index.ingest_parallel") as ps:
            ps.set_attribute("episodes", len(episodes))
            ps.set_attribute("workers", workers)
            if workers == 1 or len(episodes) == 1:
                results = map(_build_episode_worker, tasks)
            else:
                pool = ProcessPoolExecutor(
                    max_workers=min(workers, len(episodes))
                )
                try:
                    results = list(pool.map(_build_episode_worker, tasks))
                finally:
                    pool.shutdown()

            # workers run in separate processes and cannot reach this
            # registry; each reports its wall time and the parent observes
            for (ets, _evs), (segments, batches, stats, elapsed) in zip(
                episodes, results
            ):
                _EPISODE_SECONDS.observe(elapsed)
                self._n_observations += ets.shape[0]
                self._segments.extend(segments)
                self.store.add_segments_bulk(segments)
                for batch in batches:
                    self.store.add_features_bulk(batch)
                self._extractor.stats.merge(stats)
                self._n_obs_covered = self._n_observations
            self._invalidate_plans()
        return len(episodes) - 1

    def checkpoint(self) -> None:
        """Make everything segmented so far searchable (mid-stream).

        The segmenter's open tail — observations not yet closed into a
        segment — stays pending until more data arrives or the index is
        finalized.
        """
        with span("index.checkpoint"):
            self.store.finalize()
            self._invalidate_plans()
            self._write_meta()

    def finalize(self) -> None:
        """Seal the stream: flush the tail segment and build indexes."""
        if self._sealed:
            return
        with span("index.finalize"):
            for segment in self._segmenter.finish():
                self._register_segment(segment)
            self._n_obs_covered = self._n_observations
            self.store.finalize()
            self._sealed = True
            self._invalidate_plans()
            self._write_meta()

    def _write_meta(self) -> None:
        self.store.set_meta("epsilon", self.epsilon)
        self.store.set_meta("window", self.window)
        # a checkpoint may only claim observations that closed segments
        # cover; the open tail is re-ingested from the replayed stream
        self.store.set_meta("n_observations", float(self._n_obs_covered))
        self.store.set_meta("sealed", 1.0 if self._sealed else 0.0)

    # ------------------------------------------------------------------ #
    # anti-entropy checksums
    # ------------------------------------------------------------------ #

    def seal_checksums(self, leaf_size: Optional[int] = None) -> dict:
        """Compute and persist the anti-entropy checksum trees.

        Checksums every feature table in storage order into a
        Merkle-style tree (:mod:`repro.storage.checksum`) and persists
        the trees in store meta, so ``verify()`` can later compare the
        store against its recorded state or a replica in O(log n)
        checksum comparisons.  Called by the sharding layer after
        :meth:`finalize`; opt-in here because the extra full read +
        meta writes are pure overhead for throwaway indexes.
        """
        from ..storage import checksum as cks

        kw = {} if leaf_size is None else {"leaf_size": leaf_size}
        trees = cks.store_trees(self.store, **kw)
        cks.persist_trees(self.store, trees)
        return trees

    def checksums(self) -> Optional[dict]:
        """The persisted checksum trees, or ``None`` if never sealed."""
        from ..storage import checksum as cks

        return cks.load_trees(self.store)

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #

    def search_drops(
        self, t_threshold: float, v_threshold: float, mode: str = "index", **kw
    ) -> List[SegmentPair]:
        """All segment pairs containing a drop of ``<= v_threshold`` within
        ``t_threshold`` seconds (Theorem 1 guarantees apply).

        ``mode`` is ``"index"``, ``"scan"``, ``"grid"`` (backends with a
        grid access path), or ``"auto"`` (cost-modelled per-operator plan
        choice — see :class:`repro.engine.cost.CostModel`).
        """
        query = DropQuery(t_threshold, v_threshold)
        self._validate_query(t_threshold)
        return self.session.search(query, mode=mode, **kw)

    def search_jumps(
        self, t_threshold: float, v_threshold: float, mode: str = "index", **kw
    ) -> List[SegmentPair]:
        """All segment pairs containing a jump of ``>= v_threshold`` within
        ``t_threshold`` seconds."""
        query = JumpQuery(t_threshold, v_threshold)
        self._validate_query(t_threshold)
        return self.session.search(query, mode=mode, **kw)

    def search_batch(
        self, queries: List, mode: str = "auto", cache: str = "warm"
    ) -> List[List[SegmentPair]]:
        """Answer a whole (T, V) grid of queries in one shared pass per
        operator (see :meth:`repro.engine.QuerySession.search_batch`)."""
        for q in queries:
            self._validate_query(q.t_threshold)
        return self.session.search_batch(queries, mode=mode, cache=cache)

    def search_deepest_drops(
        self,
        k: int,
        t_threshold: float,
        data: Optional[TimeSeries] = None,
        mode: str = "index",
    ) -> List[SearchHit]:
        """The ``k`` periods with the deepest drops within ``t_threshold``.

        No threshold ``V`` is needed: the method sweeps the threshold from
        the deepest stored feature upward (halving its magnitude) until at
        least ``k`` periods match, widens once more by the ``2ε``
        tolerance so no genuinely-deeper period can be ranked out, then
        refines every candidate with its exact witness event and returns
        the ``k`` deepest.  Witnesses are computed against ``data`` when
        given, else against the index's own approximation (exact up to
        ``ε/2``).
        """
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        self._validate_query(t_threshold)
        floor = self.store.extreme_feature_dv("drop")
        if floor is None or floor >= 0:
            return []

        v = floor
        pairs: List[SegmentPair] = []
        while True:
            pairs = self.session.search(DropQuery(t_threshold, v), mode=mode)
            if len(pairs) >= k or v >= -1e-9:
                break
            v = max(v / 2.0, -1e-9)
        # widen by 2*epsilon: a pair whose witness is within tolerance of
        # the current threshold might still out-rank a found one
        v_wide = min(v + 2.0 * self.epsilon, -1e-9)
        if v_wide > v:
            pairs = self.session.search(
                DropQuery(t_threshold, v_wide), mode=mode
            )

        reference: object = data if data is not None else self.approximation()
        query = DropQuery(t_threshold, min(v_wide, -1e-9))
        hits = [
            SearchHit(pair, witness_event(pair, reference, query))
            for pair in pairs
        ]
        hits = [h for h in hits if h.witness is not None and h.witness.dv < 0]
        hits.sort(key=lambda h: h.witness.dv)
        return hits[:k]

    def search_drops_refined(
        self,
        t_threshold: float,
        v_threshold: float,
        data: TimeSeries,
        verified_only: bool = False,
        mode: str = "index",
    ) -> List[SearchHit]:
        """Drop search plus witness refinement against the raw series.

        Executes as one engine plan ending in a ``RefineOp``."""
        query = DropQuery(t_threshold, v_threshold)
        self._validate_query(t_threshold)
        return self.session.search(
            query, mode=mode, data=data, verified_only=verified_only
        )

    def explain(
        self, kind: str, t_threshold: float, v_threshold: float
    ) -> dict:
        """Describe how a search would be executed, without running it.

        Returns the planner's selectivity estimate, the plan ``mode="auto"``
        would choose, the rows each plan would have to consider, and the
        index parameters in play — the debugging companion to the paper's
        scan-vs-index discussion.
        """
        if kind not in ("drop", "jump"):
            raise InvalidParameterError(f"unknown search kind {kind!r}")
        self._validate_query(t_threshold)
        query = (
            DropQuery(t_threshold, v_threshold)
            if kind == "drop"
            else JumpQuery(t_threshold, v_threshold)
        )
        selectivity = self.planner.estimate_selectivity(
            kind, t_threshold, v_threshold
        )
        counts = self.store.counts()
        point_rows = counts.drop_points if kind == "drop" else counts.jump_points
        line_rows = counts.drop_lines if kind == "drop" else counts.jump_lines
        return {
            "query": query,
            "epsilon": self.epsilon,
            "window": self.window,
            "false_positive_bound": 2.0 * self.epsilon,
            "estimated_selectivity": selectivity,
            "estimated_matches": int(selectivity * point_rows),
            "chosen_mode": self.planner.choose_mode(
                kind, t_threshold, v_threshold
            ),
            "point_rows": point_rows,
            "line_rows": line_rows,
            "plan": self.session.plan(query, mode="auto"),
        }

    def explain_report(
        self,
        kind: str,
        t_threshold: float,
        v_threshold: float,
        mode: str = "auto",
        cache: str = "warm",
    ) -> ExplainReport:
        """EXPLAIN ANALYZE: run the search and report the chosen plan
        with estimated vs actual row counts per operator (and pages read
        on the MiniDB backend)."""
        if kind not in ("drop", "jump"):
            raise InvalidParameterError(f"unknown search kind {kind!r}")
        self._validate_query(t_threshold)
        query = (
            DropQuery(t_threshold, v_threshold)
            if kind == "drop"
            else JumpQuery(t_threshold, v_threshold)
        )
        return self.session.explain(query, mode=mode, cache=cache)

    def search_outcome(
        self,
        kind: str,
        t_threshold: float,
        v_threshold: float,
        mode: str = "index",
        **kw,
    ):
        """Search with the full resilience verdict.

        Returns a :class:`repro.engine.QueryOutcome` whose ``status``
        records whether the answer is COMPLETE or DEGRADED (refine pass
        skipped near the deadline — still candidate-complete by
        Theorem 1).  Accepts the same keywords as :meth:`search_drops`
        plus ``timeout_ms``/``degrade``/``data``/``verified_only``.
        """
        if kind not in ("drop", "jump"):
            raise InvalidParameterError(f"unknown search kind {kind!r}")
        query = (
            DropQuery(t_threshold, v_threshold)
            if kind == "drop"
            else JumpQuery(t_threshold, v_threshold)
        )
        self._validate_query(t_threshold)
        return self.session.search_outcome(query, mode=mode, **kw)

    @property
    def session(self) -> QuerySession:
        """The engine session every search routes through (lazy)."""
        if self._session is None:
            self._session = QuerySession(
                self.store,
                cost_model=QueryPlanner(self.store),
                resilience=self.resilience,
                name=self.name,
            )
        return self._session

    @property
    def planner(self) -> QueryPlanner:
        """The adaptive plan chooser for ``mode="auto"`` (lazy)."""
        return self.session.cost

    def _validate_query(self, t_threshold: float) -> None:
        if t_threshold > self.window:
            raise QueryError(
                f"T={t_threshold} exceeds the index window w={self.window}; "
                "rebuild the index with a larger window"
            )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def segments(self) -> List[DataSegment]:
        """The data segments extracted so far (copy)."""
        return list(self._segments)

    def approximation(self) -> PiecewiseLinearSignal:
        """The piecewise linear approximation ``f`` built so far.

        Raises when the index holds gap episodes (no single continuous
        approximation exists); use :meth:`episode_approximations` then.
        """
        episodes = self.episode_approximations()
        if len(episodes) != 1:
            raise InvalidParameterError(
                f"index contains {len(episodes)} gap episodes; use "
                "episode_approximations() or pass raw data explicitly"
            )
        return episodes[0]

    def episode_approximations(self) -> List[PiecewiseLinearSignal]:
        """One approximation signal per gap-free episode."""
        episodes: List[List[DataSegment]] = []
        for seg in self._segments:
            if (
                episodes
                and episodes[-1][-1].t_end == seg.t_start
                and episodes[-1][-1].v_end == seg.v_start
            ):
                episodes[-1].append(seg)
            else:
                episodes.append([seg])
        return [
            PiecewiseLinearSignal.from_segments(ep) for ep in episodes
        ]

    def stats(self) -> IndexStats:
        """Current sizes and composition counters."""
        n_segments = len(self._segments)
        rate = self._n_observations / n_segments if n_segments else 0.0
        return IndexStats(
            epsilon=self.epsilon,
            window=self.window,
            n_observations=self._n_observations,
            n_segments=n_segments,
            compression_rate=rate,
            store_counts=self.store.counts(),
            feature_bytes=self.store.feature_bytes(),
            index_bytes=self.store.index_bytes(),
            extraction=self._extractor.stats,
        )

    def close(self) -> None:
        """Release the underlying store."""
        self.store.close()

    def __enter__(self) -> "SegDiffIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _split_episodes(
    ts: np.ndarray, vs: np.ndarray, max_gap: Optional[float]
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split arrays into gap-free episodes (gap: ``dt > max_gap``)."""
    if max_gap is not None and max_gap <= 0:
        raise InvalidParameterError("max_gap must be positive")
    if max_gap is None or ts.shape[0] < 2:
        return [(ts, vs)]
    breaks = np.flatnonzero(np.diff(ts) > max_gap) + 1
    bounds = [0, *breaks.tolist(), ts.shape[0]]
    return [(ts[a:b], vs[a:b]) for a, b in zip(bounds, bounds[1:])]


class _FeatureBatchCollector:
    """Store stand-in used in worker processes: collects feature batches
    in emission order for the parent to replay into the real store."""

    def __init__(self) -> None:
        self.batches: List = []

    def add_features_bulk(self, batch) -> None:
        self.batches.append(batch)


def _build_episode_worker(
    task,
) -> Tuple[List[DataSegment], List, ExtractionStats, float]:
    """Segment + extract one gap-free episode (runs in a worker process).

    Episodes never pair across a gap, so the worker needs no context
    beyond the build parameters; its trailing open segment is flushed
    because no later observation of this episode can extend it.  The
    returned wall time lets the parent record per-episode timings (the
    worker's own metrics registry dies with its process).
    """
    epsilon, window, emit_self_pairs, ts, vs, batch_size = task
    t0 = time.perf_counter()
    segmenter = SlidingWindowSegmenter(epsilon)
    collector = _FeatureBatchCollector()
    extractor = FeatureExtractor(
        epsilon, window, collector, emit_self_pairs=emit_self_pairs
    )
    segments: List[DataSegment] = []
    for i in range(0, ts.shape[0], batch_size):
        closed = segmenter.push_batch(
            ts[i : i + batch_size], vs[i : i + batch_size]
        )
        if closed:
            extractor.add_segments_batch(closed)
            segments.extend(closed)
    tail = segmenter.finish()
    if tail:
        extractor.add_segments_batch(tail)
        segments.extend(tail)
    elapsed = time.perf_counter() - t0
    return segments, collector.batches, extractor.stats, elapsed

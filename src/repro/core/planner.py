"""Adaptive scan-vs-index query planning (beyond-paper extension).

The paper's Figures 19-24 show that forced B-tree access *hurts* on hard
queries — the large-result region of the query plane — while it wins on
selective ones.  The paper leaves plan choice to the operator; this
module closes that gap with a classical selectivity estimator:

* at first use, the planner draws a row sample from the point-feature
  table of the queried search type;
* a query's selectivity is estimated as the sample fraction matching the
  point predicate;
* estimated selectivity above ``scan_threshold`` → sequential scan,
  below → index.

``SegDiffIndex.search_drops(..., mode="auto")`` routes through this.
The ablation bench measures how close the adaptive choice gets to the
per-query oracle.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import InvalidParameterError
from .queries import point_mask

__all__ = ["QueryPlanner"]


class QueryPlanner:
    """Chooses ``"scan"`` or ``"index"`` for a query against a store.

    Parameters
    ----------
    store:
        Any feature store exposing ``sample_points(kind, n)``.
    sample_size:
        Rows sampled per search type (drawn lazily, cached).
    scan_threshold:
        Estimated selectivity above which a scan is chosen.  The default
        of 2 % matches the classical rule of thumb for secondary B-trees
        over row stores.
    """

    def __init__(
        self,
        store,
        sample_size: int = 512,
        scan_threshold: float = 0.02,
    ) -> None:
        if sample_size < 1:
            raise InvalidParameterError("sample_size must be >= 1")
        if not (0.0 < scan_threshold < 1.0):
            raise InvalidParameterError("scan_threshold must be in (0, 1)")
        self.store = store
        self.sample_size = sample_size
        self.scan_threshold = scan_threshold
        self._samples: dict = {}

    def _sample(self, kind: str) -> Optional[np.ndarray]:
        if kind not in self._samples:
            self._samples[kind] = self.store.sample_points(
                kind, self.sample_size
            )
        return self._samples[kind]

    def invalidate(self) -> None:
        """Drop cached samples (call after bulk appends)."""
        self._samples = {}

    def estimate_selectivity(
        self, kind: str, t_threshold: float, v_threshold: float
    ) -> float:
        """Estimated fraction of point features the query matches.

        Falls back to 1.0 (pessimistic → scan) when the store is empty,
        which is also the cheapest plan for an empty store.
        """
        sample = self._sample(kind)
        if sample is None or len(sample) == 0:
            return 1.0
        mask = point_mask(
            kind, sample[:, 0], sample[:, 1], t_threshold, v_threshold
        )
        return float(mask.mean())

    def choose_mode(
        self, kind: str, t_threshold: float, v_threshold: float
    ) -> str:
        """``"scan"`` for estimated-hard queries, ``"index"`` otherwise."""
        selectivity = self.estimate_selectivity(
            kind, t_threshold, v_threshold
        )
        return "scan" if selectivity > self.scan_threshold else "index"

"""Adaptive scan-vs-index query planning (beyond-paper extension).

The paper's Figures 19-24 show that forced B-tree access *hurts* on hard
queries — the large-result region of the query plane — while it wins on
selective ones.  The paper leaves plan choice to the operator; the query
engine closes that gap with the selectivity-sampling cost model in
:mod:`repro.engine.cost`.

:class:`QueryPlanner` is the historical name of that model and remains
the classical whole-query rule of thumb:

* at first use, the planner draws a row sample from the point-feature
  table of the queried search type;
* a query's selectivity is estimated as the sample fraction matching the
  point predicate;
* estimated selectivity above ``scan_threshold`` → sequential scan,
  below → index.

``SegDiffIndex.search_drops(..., mode="auto")`` routes through this (by
way of the per-operator :meth:`~repro.engine.cost.CostModel.plan`, which
it inherits).  The ablation bench measures how close the adaptive choice
gets to the per-query oracle.
"""

from __future__ import annotations

from ..engine.cost import CostModel

__all__ = ["QueryPlanner"]


class QueryPlanner(CostModel):
    """Chooses ``"scan"`` or ``"index"`` for a query against a store.

    A compatibility alias of :class:`repro.engine.cost.CostModel` — the
    constructor signature, sampling behavior (``_samples`` cache,
    :meth:`invalidate`), :meth:`estimate_selectivity` and
    :meth:`choose_mode` are all unchanged; the per-operator
    ``choose_access``/``plan`` layer is inherited on top.

    Parameters
    ----------
    store:
        Any feature store exposing ``sample_points(kind, n)``.
    sample_size:
        Rows sampled per search type (drawn lazily, cached).
    scan_threshold:
        Estimated selectivity above which a scan is chosen.  The default
        of 2 % matches the classical rule of thumb for secondary B-trees
        over row stores.
    """

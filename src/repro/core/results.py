"""Search results and witness-event refinement.

SegDiff returns *periods* — pairs of segment extents — rather than exact
event timestamps (Section 1: "Once the periods ... are found, biologists
can further explore the characteristics of data collected in these
periods").  :func:`witness_event` performs that further exploration: given
a returned pair and the original series, it locates the exact extremal
event inside the pair, so callers can rank hits by severity or filter the
``2ε``-tolerance false positives when they know the raw data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..datagen.model import PiecewiseLinearSignal
from ..datagen.series import TimeSeries
from ..types import Event, SegmentPair
from .guarantees import extreme_event_between
from .queries import DropQuery, JumpQuery

__all__ = ["SearchHit", "witness_event", "rank_hits"]

Query = Union[DropQuery, JumpQuery]


@dataclass(frozen=True)
class SearchHit:
    """One refined search result: the pair plus its extremal event."""

    pair: SegmentPair
    witness: Optional[Event]

    @property
    def severity(self) -> float:
        """Magnitude of the witness change (0 when no witness exists)."""
        return abs(self.witness.dv) if self.witness else 0.0


def witness_event(
    pair: SegmentPair,
    data: Union[TimeSeries, PiecewiseLinearSignal],
    query: Query,
) -> Optional[Event]:
    """The extremal event of the Model G signal inside a returned pair.

    For a drop query this is the most negative ``Δv`` achievable with the
    start in ``pair.start_period``, the end in ``pair.end_period``, and
    ``0 < Δt <= T``; for a jump query the most positive.
    """
    signal = (
        PiecewiseLinearSignal.from_series(data)
        if isinstance(data, TimeSeries)
        else data
    )
    lo, hi = signal.t_start, signal.t_end
    start = (max(pair.t_d, lo), min(pair.t_c, hi))
    end = (max(pair.t_b, lo), min(pair.t_a, hi))
    if start[1] < start[0] or end[1] < end[0]:
        return None
    return extreme_event_between(
        signal, start, end, query.t_threshold,
        want_min=isinstance(query, DropQuery),
    )


def rank_hits(
    pairs: Sequence[SegmentPair],
    data: Union[TimeSeries, PiecewiseLinearSignal],
    query: Query,
    verified_only: bool = False,
    guard=None,
) -> List[SearchHit]:
    """Refine pairs into :class:`SearchHit` objects, most severe first.

    ``verified_only=True`` keeps only pairs whose witness satisfies the
    query thresholds exactly on the raw data — i.e. drops the up-to-``2ε``
    tolerance false positives Lemma 5 permits.  A ``guard``
    (:class:`repro.engine.resilience.QueryGuard`) makes the per-pair
    witness loop cooperative: its deadline is checked between pairs.
    """
    signal = (
        PiecewiseLinearSignal.from_series(data)
        if isinstance(data, TimeSeries)
        else data
    )
    if guard is None:
        hits = [SearchHit(p, witness_event(p, signal, query)) for p in pairs]
    else:
        hits = [
            SearchHit(p, witness_event(p, signal, query))
            for p in guard.wrap_iter(pairs, every=1)
        ]
    if verified_only:
        is_drop = isinstance(query, DropQuery)
        hits = [
            h
            for h in hits
            if h.witness is not None
            and (
                h.witness.dv <= query.v_threshold
                if is_drop
                else h.witness.dv >= query.v_threshold
            )
        ]
    return sorted(hits, key=lambda h: -h.severity)

"""The live (streaming) index: time-partitioned storage with snapshot
isolation, compaction, and retention.

A :class:`LiveIndex` turns the build-once pipeline into a continuously
ingesting monitor::

    producer --> append()/append_array() --> online segmentation
                                                  |
                                         hot partition (memory)
                                                  |  seal at size/age
                                         sealed partitions (sqlite/...)
                                                  |
    readers  --> snapshot() ------------> pinned, immutable view

Design invariants (docs/streaming.md has the full walkthrough):

* **Batch ≡ live.**  The segmenter and the extractor are *global* —
  sealing swaps only the feature-write destination, never flushes the
  open segmenter tail nor resets pairing history.  The feature rows of a
  fully sealed live index are therefore bit-identical to a batch build
  over the same points, merely distributed across partition stores; and
  because the §4.4 answer is a set union with a content-determined sort,
  the scatter-merged answer equals the single-store answer exactly.
* **Snapshot isolation.**  :meth:`snapshot` pins the sealed partitions
  and clones the hot store under the writer mutex; concurrent appends,
  seals, compactions and TTL expiry never change what an open snapshot
  returns.  Retired partitions are disposed only when the last pin
  releases.
* **Crash safety.**  A seal writes, finalizes and fsyncs the partition
  file *before* atomically installing the next manifest generation; a
  crash between the two leaves an orphan file (swept on open) and an
  intact previous manifest.  With a directory, observations are also
  logged to a hot-partition write-ahead log
  (:mod:`repro.storage.livewal`) *before* they enter the segmenter, so
  :meth:`open` replays everything past the durable watermark through
  the ordinary ingest path and resume needs **no source replay** — a
  crash loses at most the un-fsynced WAL tail.  :meth:`append` still
  skips everything at or before the resume point, so re-feeding the
  source remains safe (the PR 1 resume contract).
* **Self-healing.**  ``open(scrub=True)`` additionally quarantines
  unreferenced partial files, checksum-verifies every sealed partition
  (PR 6's :mod:`repro.storage.checksum` trees, persisted at seal), and
  rolls the manifest back to the longest intact prefix when a sealed
  partition is damaged.
"""

from __future__ import annotations

import logging
import math
import os
import re
import threading
import time
from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.executor import (
    ExecutionResult,
    execute_batch_partitioned,
    execute_partitioned,
)
from ..engine.resilience import ResultStatus
from ..errors import (
    InvalidParameterError,
    QueryError,
    StorageError,
)
from ..obs import context as obs_context
from ..obs import recorder as flight
from ..obs import slowlog
from ..obs.metrics import QUERY_LATENCY_BUCKETS, REGISTRY
from ..obs.tracing import retain_trace, span
from ..segmentation.sliding_window import SlidingWindowSegmenter
from ..storage.checksum import (
    diff_trees,
    load_trees,
    persist_trees,
    store_trees,
)
from ..storage.faults import FaultInjected, RealFS
from ..storage.livewal import WAL_NAME, LiveWAL
from ..storage.memory_store import MemoryFeatureStore
from ..storage.partitions import (
    COMPACTIONS,
    FEATURE_TABLES,
    MANIFEST_NAME,
    PARTITION_FLUSH_ROWS,
    PARTITION_SEALS,
    PARTITIONS_EXPIRED,
    Partition,
    PartitionManifest,
    PartitionSpec,
    copy_store_into,
)
from ..types import DataSegment, SegmentPair
from .extraction import FeatureExtractor
from .queries import DropQuery, JumpQuery

__all__ = ["LiveIndex", "LiveSnapshot", "DEFAULT_SEAL_ROWS"]

logger = logging.getLogger("repro.core.live")

#: Feature rows in the hot partition that trigger a seal.
DEFAULT_SEAL_ROWS = 50_000

#: Sub-directory damaged files are moved into by ``open(scrub=True)``.
QUARANTINE_DIR = "quarantine"

_SCRUB_QUARANTINED = REGISTRY.counter(
    "repro_live_scrub_quarantined_total",
    "Files quarantined by LiveIndex.open(scrub=True)",
    always_on=True,
)

#: Estimated hot-store bytes per stored row/segment, for the
#: ``seal_bytes`` policy: point rows are 6 float64 columns, line rows 8,
#: segments 4 — all held in python-list staging before finalize, so the
#: estimate deliberately includes per-object overhead.
_EST_POINT_ROW_BYTES = 48
_EST_LINE_ROW_BYTES = 64
_EST_SEGMENT_BYTES = 32

_MODES = ("auto", "index", "scan", "grid")

_PARTITION_FILE_RE = re.compile(r"^p\d+\.(sqlite|minidb)$")

_LIVE_QUERIES = {
    api: REGISTRY.counter(
        "repro_engine_queries_total",
        "Queries answered by QuerySession", {"api": api},
    )
    for api in ("live_search", "live_search_batch")
}
_LIVE_QUERY_SECONDS = {
    api: REGISTRY.histogram(
        "repro_query_seconds",
        "End-to-end query latency per session API", {"api": api},
        buckets=QUERY_LATENCY_BUCKETS,
    )
    for api in ("live_search", "live_search_batch")
}


def _batch_feature_bounds(batch) -> Optional[Tuple[float, float]]:
    """``(min t_d, max t_a)`` over the batch's stored feature rows, or
    ``None`` when the batch emitted no rows.  Bounds come from the
    actual rows — a pair whose guard pruned every feature must not
    widen the partition's pruning interval."""
    mins: List[float] = []
    maxs: List[float] = []
    for table, d_col, a_col in (
        ("drop_points", 2, 5), ("jump_points", 2, 5),
        ("drop_lines", 4, 7), ("jump_lines", 4, 7),
    ):
        arr = getattr(batch, table)
        if arr.shape[0]:
            mins.append(float(arr[:, d_col].min()))
            maxs.append(float(arr[:, a_col].max()))
    if not mins:
        return None
    return min(mins), max(maxs)


class _Hot:
    """The hot partition: an in-memory store plus write-side bookkeeping."""

    def __init__(self) -> None:
        self.store = MemoryFeatureStore()
        self.segments: List[DataSegment] = []
        self.rows = 0
        #: Estimated in-memory footprint (``seal_bytes`` policy input).
        self.est_bytes = 0
        self.fmin: Optional[float] = None
        self.fmax: Optional[float] = None

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    def widen(self, fmin: float, fmax: float) -> None:
        self.fmin = fmin if self.fmin is None else min(self.fmin, fmin)
        self.fmax = fmax if self.fmax is None else max(self.fmax, fmax)


class _HotWriter:
    """The extractor's store: forwards feature writes to the *current*
    hot partition (which changes at every seal) and tracks the row count
    and feature-time bounds the partition manifest needs."""

    def __init__(self, live: "LiveIndex") -> None:
        self._live = live

    def add(self, features) -> None:
        hot = self._live._hot
        hot.store.add(features)
        n = features.total_features
        if n:
            hot.rows += n
            hot.est_bytes += _EST_POINT_ROW_BYTES * (
                len(features.drop_points) + len(features.jump_points)
            ) + _EST_LINE_ROW_BYTES * (
                len(features.drop_lines) + len(features.jump_lines)
            )
            pair = features.pair
            hot.widen(pair.t_d, pair.t_a)

    def add_features_bulk(self, batch) -> None:
        hot = self._live._hot
        hot.store.add_features_bulk(batch)
        hot.rows += batch.total_features
        hot.est_bytes += _EST_POINT_ROW_BYTES * (
            batch.drop_points.shape[0] + batch.jump_points.shape[0]
        ) + _EST_LINE_ROW_BYTES * (
            batch.drop_lines.shape[0] + batch.jump_lines.shape[0]
        )
        bounds = _batch_feature_bounds(batch)
        if bounds is not None:
            hot.widen(*bounds)


class LiveIndex:
    """A continuously-ingesting, snapshot-isolated SegDiff index.

    Parameters
    ----------
    epsilon, window:
        The usual SegDiff build parameters (Definition 2 / Algorithm 1).
    directory:
        Partition directory.  ``None`` keeps every partition in memory
        (tests, ephemeral monitors); a path makes seals durable — the
        manifest and one store file per sealed partition live there.
    backend:
        Sealed-partition store format: ``"sqlite"`` (default with a
        directory) or ``"minidb"``; in-memory when ``directory`` is None.
    seal_rows:
        Feature rows in the hot partition that trigger a seal.
    seal_bytes:
        Seal when the hot partition's **estimated** in-memory footprint
        reaches this many bytes (checked alongside ``seal_rows``) —
        the size-aware policy for wide-row streams whose per-row cost
        dwarfs the row count; ``None`` = off.  The running estimate is
        surfaced as ``stats()["hot"]["est_bytes"]``.
    seal_age:
        Seal when the hot partition's closed segments span at least this
        many seconds (checked alongside ``seal_rows``); ``None`` = off.
    wal:
        Log observations to a hot-partition write-ahead log
        (``hot.wal``) before segmentation, so a reopen replays the
        unsealed suffix itself and the producer never re-feeds.
        Defaults to on whenever ``directory`` is set; ``True`` without
        a directory is an error (nothing to make durable against).
    wal_sync_obs:
        fsync the WAL every this many observations (plus on gaps and
        close) — the bound on what a power cut can lose.
    ttl:
        Retention: partitions whose observation coverage ends more than
        ``ttl`` seconds before the watermark are dropped (at seal time
        and via :meth:`expire`); ``None`` keeps everything.
    auto_compact:
        Run :meth:`compact` automatically after every seal.
    compact_rows / compact_min_run:
        A run of at least ``compact_min_run`` adjacent sealed partitions,
        each holding at most ``compact_rows`` rows (default
        ``seal_rows``), is merged into one partition.
    """

    def __init__(
        self,
        epsilon: float,
        window: float,
        directory: Optional[str] = None,
        backend: Optional[str] = None,
        seal_rows: int = DEFAULT_SEAL_ROWS,
        seal_bytes: Optional[int] = None,
        seal_age: Optional[float] = None,
        ttl: Optional[float] = None,
        auto_compact: bool = False,
        compact_rows: Optional[int] = None,
        compact_min_run: int = 2,
        emit_self_pairs: bool = True,
        wal: Optional[bool] = None,
        wal_sync_obs: int = 4096,
        _manifest: Optional[PartitionManifest] = None,
        _fs: Optional[RealFS] = None,
        _scrub: bool = False,
    ) -> None:
        if seal_rows < 1:
            raise InvalidParameterError("seal_rows must be >= 1")
        if seal_bytes is not None and seal_bytes < 1:
            raise InvalidParameterError("seal_bytes must be >= 1")
        if seal_age is not None and seal_age <= 0:
            raise InvalidParameterError("seal_age must be positive")
        if wal_sync_obs < 1:
            raise InvalidParameterError("wal_sync_obs must be >= 1")
        if wal and directory is None:
            raise InvalidParameterError(
                "a write-ahead log needs a directory"
            )
        if ttl is not None and ttl <= 0:
            raise InvalidParameterError("ttl must be positive")
        if compact_min_run < 2:
            raise InvalidParameterError("compact_min_run must be >= 2")
        if backend is None:
            backend = "sqlite" if directory is not None else "memory"
        if directory is not None and backend not in ("sqlite", "minidb"):
            raise InvalidParameterError(
                "durable partitions need backend 'sqlite' or 'minidb', "
                f"got {backend!r}"
            )
        if directory is None and backend != "memory":
            raise InvalidParameterError(
                f"backend {backend!r} needs a directory"
            )
        self.epsilon = float(epsilon)
        self.window = float(window)
        self.directory = directory
        self.backend = backend
        self.seal_rows = int(seal_rows)
        self.seal_bytes = None if seal_bytes is None else int(seal_bytes)
        self.seal_age = seal_age
        self.ttl = ttl
        self.auto_compact = auto_compact
        self.compact_rows = compact_rows
        self.compact_min_run = int(compact_min_run)
        self.wal_sync_obs = int(wal_sync_obs)
        self._wal_on = (directory is not None) if wal is None else bool(wal)
        self._fs = _fs if _fs is not None else RealFS()

        self._mu = threading.RLock()
        self._segmenter = SlidingWindowSegmenter(self.epsilon)
        self._writer = _HotWriter(self)
        self._extractor = FeatureExtractor(
            self.epsilon, self.window, self._writer,
            emit_self_pairs=emit_self_pairs,
        )
        self._hot = _Hot()
        self._sealed: List[Partition] = []
        self._n_observations = 0
        self._n_obs_covered = 0
        self._resume_t: Optional[float] = None
        self._finalized = False
        self._closed = False
        self._wal: Optional[LiveWAL] = None
        self._wal_replay_active = False
        self._wal_replayed_obs = 0
        self._wal_replayed_to: Optional[float] = None
        self._last_obs_t: Optional[float] = None

        if _manifest is None:
            if directory is not None:
                os.makedirs(directory, exist_ok=True)
                if PartitionManifest.exists(directory):
                    raise StorageError(
                        f"{directory} already holds a partition manifest; "
                        "use LiveIndex.open() to resume it"
                    )
            self._manifest = PartitionManifest(
                epsilon=self.epsilon, window=self.window
            )
            if directory is not None:
                self._manifest.save(directory, fs=self._fs)
            if self._wal_on and directory is not None:
                wal_path = os.path.join(directory, WAL_NAME)
                if os.path.exists(wal_path):
                    # stale log from a wiped index (no manifest, old WAL)
                    os.remove(wal_path)
                self._wal = LiveWAL(
                    wal_path, sync_obs=self.wal_sync_obs, fs=self._fs
                )
        else:
            self._manifest = _manifest
            if _scrub:
                self._scrub_directory()
            self._load_partitions()
            self._resume_from_manifest()
            if self._wal_on:
                self._open_and_replay_wal()

    # ------------------------------------------------------------------ #
    # open / resume
    # ------------------------------------------------------------------ #

    @classmethod
    def open(cls, directory: str, scrub: bool = False, **kw) -> "LiveIndex":
        """Reopen a partition directory and resume at its watermark.

        ``epsilon``/``window`` come from the manifest; policy knobs
        (``seal_rows``, ``ttl``, ...) may be overridden via ``kw``.
        Orphan partition files from a crash mid-seal are swept, and when
        the WAL is enabled (the default) its unsealed frames are
        replayed through the ordinary ingest path — resume needs no
        source replay, and re-fed observations at or before the replayed
        point are skipped.

        ``scrub=True`` additionally self-heals: unreferenced partial
        files are quarantined (moved under ``quarantine/``, never
        deleted), every sealed partition is verified against the
        checksum trees persisted at seal, and a damaged partition rolls
        the manifest back to the longest intact prefix — the WAL is
        quarantined with it, since its frames continue from the
        now-discarded suffix.
        """
        manifest = PartitionManifest.load(directory)
        kw["_scrub"] = scrub
        if "backend" not in kw:
            # future seals keep the format of the existing partitions
            for f in manifest.listed_files():
                kw["backend"] = "minidb" if f.endswith(".minidb") else "sqlite"
                break
        return cls(
            manifest.epsilon,
            manifest.window,
            directory=directory,
            _manifest=manifest,
            **kw,
        )

    @classmethod
    def open_or_create(
        cls, epsilon: float, window: float, directory: str, **kw
    ) -> "LiveIndex":
        """Open ``directory`` if it holds a manifest, else create one."""
        if PartitionManifest.exists(directory):
            live = cls.open(directory, **kw)
            if live.epsilon != float(epsilon) or live.window != float(window):
                live.close()
                raise StorageError(
                    f"{directory} was built with epsilon={live.epsilon} "
                    f"window={live.window}; asked for {epsilon}/{window}"
                )
            return live
        return cls(epsilon, window, directory=directory, **kw)

    def _load_partitions(self) -> None:
        """Open every manifest-listed partition store; sweep orphans."""
        from .index import SegDiffIndex  # late: avoids an import cycle

        assert self.directory is not None
        referenced = set(self._manifest.listed_files())
        for fname in os.listdir(self.directory):
            if fname == MANIFEST_NAME:
                continue
            is_orphan_partition = (
                _PARTITION_FILE_RE.match(fname) and fname not in referenced
            )
            if (
                is_orphan_partition
                or fname == MANIFEST_NAME + ".tmp"
                or fname == WAL_NAME + ".tmp"
            ):
                # a crash mid-seal/compact/rotation left the file
                # unreferenced — its data is past the watermark and will
                # be replayed (from the WAL or the producer)
                os.remove(os.path.join(self.directory, fname))
        for spec in self._manifest.partitions:
            if spec.file is None:
                raise StorageError(
                    f"manifest partition {spec.partition_id} has no file"
                )
            path = os.path.join(self.directory, spec.file)
            store = SegDiffIndex._open_store(path)
            self._sealed.append(
                Partition(spec, store, path=path, counted=True)
            )

    def _resume_from_manifest(self) -> None:
        """Re-prime segmenter/extractor state at the durable watermark."""
        self._n_observations = self._manifest.n_observations
        self._n_obs_covered = self._manifest.n_observations
        self._finalized = self._manifest.finalized
        if self._manifest.watermark is None or self._finalized:
            self._resume_t = self._manifest.watermark
            self._last_obs_t = self._resume_t
            return
        # gather enough trailing segments (newest partitions first) to
        # cover the pairing window, then keep the contiguous suffix — the
        # same episode logic as SegDiffIndex.resume()
        segments: List[DataSegment] = []
        for part in reversed(self._sealed):
            segments = part.store.load_segments() + segments
            if (
                segments
                and segments[0].t_end <= segments[-1].t_end - self.window
            ):
                break
        if not segments:
            self._resume_t = self._manifest.watermark
            self._last_obs_t = self._resume_t
            return
        last = segments[-1]
        horizon = last.t_end - self.window
        recent: List[DataSegment] = []
        for seg in reversed(segments):
            if seg.t_end <= horizon:
                break
            if recent and (
                seg.t_end != recent[-1].t_start
                or seg.v_end != recent[-1].v_start
            ):
                break
            recent.append(seg)
        self._extractor.prime_history(reversed(recent))
        self._segmenter.push(last.t_end, last.v_end)
        self._resume_t = last.t_end
        # the watermark is itself an observation time — a gap marked
        # before any post-resume append must log it, not "no obs yet"
        self._last_obs_t = self._resume_t

    def _open_and_replay_wal(self) -> None:
        """Open ``hot.wal`` (sweeping any torn tail) and replay its
        unsealed frames through the ordinary ingest path.

        Replay happens *after* :meth:`_resume_from_manifest` re-anchored
        the segmenter at the durable watermark, so the skip-at-or-before
        logic of :meth:`append_array` discards every already-sealed
        frame and the survivors rebuild the lost hot partition
        bit-for-bit.  Afterwards the resume point advances to the last
        replayed observation, so a producer that re-feeds its stream
        anyway cannot double-feed the segmenter.
        """
        assert self.directory is not None
        wal_path = os.path.join(self.directory, WAL_NAME)
        if self._finalized and not os.path.exists(wal_path):
            # a finalized index refuses appends; don't grow a WAL file
            return
        self._wal = LiveWAL(
            wal_path, sync_obs=self.wal_sync_obs, fs=self._fs
        )
        frames = self._wal.replay_frames()
        discarded = self._wal.discarded_bytes
        if self._finalized:
            # every observation is sealed; the log is pure garbage
            if frames:
                self._wal.reset()
            return
        if not frames and not discarded:
            return
        resume_t = self._resume_t
        n_before = self._n_observations
        last_t: Optional[float] = None
        self._wal_replay_active = True
        try:
            for frame in frames:
                if frame[0] == "obs":
                    ts, vs = frame[1], frame[2]
                    self.append_array(ts, vs)
                    if ts.shape[0]:
                        t_end = float(ts[-1])
                        last_t = (
                            t_end if last_t is None else max(last_t, t_end)
                        )
                else:
                    t = frame[1]
                    if resume_t is None or (
                        not math.isnan(t) and t >= resume_t
                    ):
                        self.mark_gap()
        finally:
            self._wal_replay_active = False
        replayed = self._n_observations - n_before
        if last_t is not None and (
            self._resume_t is None or last_t > self._resume_t
        ):
            self._resume_t = last_t
        self._wal_replayed_obs = replayed
        self._wal_replayed_to = self._resume_t
        self._last_obs_t = self._resume_t
        self._wal.mark_replayed(replayed)
        flight.record(
            "wal_replay", WAL_NAME,
            frames=len(frames), observations=replayed,
            discarded_bytes=discarded,
            replayed_to=self._wal_replayed_to,
        )

    # ------------------------------------------------------------------ #
    # scrub (self-healing open)
    # ------------------------------------------------------------------ #

    def _quarantine(self, fname: str) -> None:
        """Move ``fname`` under ``quarantine/`` (collision-suffixed) —
        damaged files are preserved for postmortems, never deleted."""
        assert self.directory is not None
        qdir = os.path.join(self.directory, QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        dst = os.path.join(qdir, fname)
        n = 1
        while os.path.exists(dst):
            dst = os.path.join(qdir, f"{fname}.{n}")
            n += 1
        os.replace(os.path.join(self.directory, fname), dst)
        _SCRUB_QUARANTINED.inc()

    def _partition_damaged(self, path: str) -> Optional[str]:
        """Why ``path`` fails verification, or ``None`` when intact.

        Partitions sealed by this PR carry persisted checksum trees;
        verification recomputes them from the rows and diffs
        (:func:`~repro.storage.checksum.diff_trees`).  Older partitions
        without trees get a full readability probe instead.
        """
        from .index import SegDiffIndex  # late: avoids an import cycle

        try:
            store = SegDiffIndex._open_store(path)
        except FaultInjected:
            raise
        except Exception as exc:
            return f"unreadable: {exc}"
        try:
            persisted = load_trees(store)
            if persisted is None:
                for table in FEATURE_TABLES:
                    store.read_table_rows(table)
                store.load_segments()
                return None
            fresh = store_trees(store)
            for table in FEATURE_TABLES:
                ranges, _ = diff_trees(persisted[table], fresh[table])
                if ranges:
                    return (
                        f"checksum mismatch in {table}: "
                        f"{len(ranges)} divergent range(s)"
                    )
            return None
        except FaultInjected:
            raise
        except Exception as exc:
            return f"verification failed: {exc}"
        finally:
            try:
                store.close()
            except Exception:
                pass

    def _scrub_directory(self) -> None:
        """Self-heal the partition directory before any store is opened.

        1. Quarantine unreferenced partition files and stale temp files
           (partial seal/manifest/rotation leftovers).
        2. Verify every manifest-listed partition **in manifest order**;
           ingest order is global, so the first damaged partition
           invalidates everything after it — those files are
           quarantined and the manifest rolls back to the intact
           prefix (``next_seq`` never rewinds: ids are not reused).
        3. A rollback also quarantines ``hot.wal``: its frames continue
           from the discarded suffix's watermark, and replaying them
           over the rolled-back state would bridge the hole.
        """
        assert self.directory is not None
        quarantined: List[str] = []
        referenced = set(self._manifest.listed_files())
        for fname in sorted(os.listdir(self.directory)):
            if fname in (MANIFEST_NAME, WAL_NAME, QUARANTINE_DIR):
                continue
            is_orphan = (
                _PARTITION_FILE_RE.match(fname)
                and fname not in referenced
            )
            if (
                is_orphan
                or fname == MANIFEST_NAME + ".tmp"
                or fname == WAL_NAME + ".tmp"
            ):
                self._quarantine(fname)
                quarantined.append(fname)

        bad_at: Optional[int] = None
        reason = ""
        for i, spec in enumerate(self._manifest.partitions):
            if spec.file is None:
                bad_at, reason = i, "no backing file recorded"
                break
            path = os.path.join(self.directory, spec.file)
            if not os.path.exists(path):
                bad_at, reason = i, "backing file missing"
                break
            why = self._partition_damaged(path)
            if why is not None:
                bad_at, reason = i, why
                break

        rolled_back = 0
        if bad_at is not None:
            bad = self._manifest.partitions[bad_at]
            logger.warning(
                "scrub: partition %s is damaged (%s); rolling the "
                "manifest back to the %d intact partition(s) before it",
                bad.partition_id, reason, bad_at,
            )
            for spec in self._manifest.partitions[bad_at:]:
                if spec.file is not None and os.path.exists(
                    os.path.join(self.directory, spec.file)
                ):
                    self._quarantine(spec.file)
                    quarantined.append(spec.file)
            keep = self._manifest.partitions[:bad_at]
            rolled_back = len(self._manifest.partitions) - bad_at
            if keep:
                last = keep[-1]
                watermark: Optional[float] = last.t_max
                n_obs = (
                    last.obs_covered if last.obs_covered is not None
                    # pre-obs_covered manifest: the per-partition count
                    # is unknown; fall back to segment-count totals
                    else sum(s.n_segments for s in keep)
                )
            else:
                watermark, n_obs = None, 0
            manifest = self._manifest.truncated_to(
                len(keep), watermark, n_obs
            )
            manifest.save(self.directory, fs=self._fs)
            self._manifest = manifest
            wal_path = os.path.join(self.directory, WAL_NAME)
            if os.path.exists(wal_path):
                self._quarantine(WAL_NAME)
                quarantined.append(WAL_NAME)
        if quarantined or rolled_back:
            flight.record(
                "scrub", self.directory,
                quarantined=len(quarantined),
                files=",".join(quarantined),
                rolled_back=rolled_back,
            )

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #

    def append(self, t: float, v: float) -> None:
        """Stream one observation in (replays at or before the watermark
        are skipped — safe to re-feed after a crash)."""
        with self._mu:
            self._check_writable()
            if self._resume_t is not None and t <= self._resume_t:
                return
            if self._wal is not None and not self._wal_replay_active:
                self._wal.append(
                    np.asarray([t], dtype=float),
                    np.asarray([v], dtype=float),
                )
            self._last_obs_t = t
            self._n_observations += 1
            closed = self._segmenter.push(t, v)
            if closed:
                self._register_segments(closed)
                self._n_obs_covered = self._n_observations - 1
                self._maybe_roll()

    def append_array(
        self, ts, vs, batch_size: int = 65_536
    ) -> None:
        """Vectorized :meth:`append` over time/value arrays (gap-free)."""
        if batch_size < 1:
            raise InvalidParameterError("batch_size must be >= 1")
        ts = np.ascontiguousarray(ts, dtype=float)
        vs = np.ascontiguousarray(vs, dtype=float)
        with self._mu:
            self._check_writable()
            if self._resume_t is not None:
                start = int(np.searchsorted(ts, self._resume_t, side="right"))
                ts, vs = ts[start:], vs[start:]
            if (
                ts.shape[0]
                and self._wal is not None
                and not self._wal_replay_active
            ):
                self._wal.append(ts, vs)
            if ts.shape[0]:
                self._last_obs_t = float(ts[-1])
            for i in range(0, ts.shape[0], batch_size):
                chunk_t = ts[i : i + batch_size]
                chunk_v = vs[i : i + batch_size]
                n_before = self._n_observations
                segments = self._segmenter.push_batch(chunk_t, chunk_v)
                self._n_observations += chunk_t.shape[0]
                if segments:
                    self._register_segments(segments)
                    self._n_obs_covered = (
                        n_before + self._segmenter.last_close_offset
                    )
                    self._maybe_roll()

    def mark_gap(self) -> None:
        """Start a new episode: flush the open segment, clear pairing
        history, so no future result spans the outage."""
        with self._mu:
            self._check_writable()
            if self._wal is not None and not self._wal_replay_active:
                self._wal.log_gap(self._last_obs_t)
            tail = self._segmenter.finish()
            if tail:
                self._register_segments(tail)
            self._n_obs_covered = self._n_observations
            self._extractor.reset_history()
            self._maybe_roll()

    def _register_segments(self, segments: Sequence[DataSegment]) -> None:
        hot = self._hot
        hot.segments.extend(segments)
        hot.est_bytes += _EST_SEGMENT_BYTES * len(segments)
        hot.store.add_segments_bulk(list(segments))
        self._extractor.add_segments_batch(list(segments))

    def _check_writable(self) -> None:
        if self._closed:
            raise StorageError("live index is closed")
        if self._finalized:
            raise StorageError(
                "live index is finalized; open a new directory to extend"
            )

    # ------------------------------------------------------------------ #
    # lifecycle: seal / compact / expire / finalize
    # ------------------------------------------------------------------ #

    def _maybe_roll(self) -> None:
        hot = self._hot
        if hot.n_segments == 0:
            return
        due = hot.rows >= self.seal_rows
        if not due and self.seal_bytes is not None:
            due = hot.est_bytes >= self.seal_bytes
        if not due and self.seal_age is not None:
            due = (
                hot.segments[-1].t_end - hot.segments[0].t_start
                >= self.seal_age
            )
        if due:
            self._seal_locked()
            if self.ttl is not None:
                self._expire_locked(self.ttl)
            if self.auto_compact:
                self._compact_locked()

    def seal(self) -> Optional[Partition]:
        """Seal the hot partition now (no-op when it has no closed
        segments).  The open segmenter tail stays pending — sealing
        never changes what a future finalize would produce."""
        with self._mu:
            if self._closed:
                raise StorageError("live index is closed")
            return self._seal_locked()

    def _sealed_store_for(self, fname: Optional[str]):
        if self.directory is None:
            return MemoryFeatureStore(), None
        path = os.path.join(self.directory, fname)
        if self.backend == "minidb":
            from ..storage.minidb import MiniDbFeatureStore

            return MiniDbFeatureStore(path), path
        from ..storage.sqlite_store import SqliteFeatureStore

        return SqliteFeatureStore(path), path

    def _seal_locked(self) -> Optional[Partition]:
        hot = self._hot
        if hot.n_segments == 0:
            return None
        part_id = f"p{self._manifest.next_seq:06d}"
        watermark = hot.segments[-1].t_end
        with span("partition.seal") as sp:
            sp.set_attribute("partition", part_id)
            sp.set_attribute("rows", hot.rows)
            hot.store.finalize()
            fname = (
                f"{part_id}.{'minidb' if self.backend == 'minidb' else 'sqlite'}"
                if self.directory is not None else None
            )
            store, path = self._sealed_store_for(fname)
            try:
                rows = copy_store_into([hot.store], store)
                store.set_meta("epsilon", self.epsilon)
                store.set_meta("window", self.window)
                store.set_meta("sealed", 1.0)
                # checksum trees travel inside the partition file so
                # scrub can verify it without any external state
                persist_trees(store, store_trees(store))
                spec = PartitionSpec(
                    partition_id=part_id,
                    t_min=hot.segments[0].t_start,
                    t_max=watermark,
                    feature_t_min=(
                        hot.fmin if hot.fmin is not None
                        else hot.segments[0].t_start
                    ),
                    feature_t_max=(
                        hot.fmax if hot.fmax is not None else watermark
                    ),
                    rows=rows,
                    n_segments=hot.n_segments,
                    file=fname,
                    obs_covered=self._n_obs_covered,
                )
                # the store file is complete and durable BEFORE the
                # manifest points at it; a crash in between leaves an
                # orphan file and the previous generation
                manifest = self._manifest.with_sealed(
                    spec, watermark, self._n_obs_covered
                )
                if path is not None:
                    self._fs.fsync_file(path)
                if self.directory is not None:
                    manifest.save(self.directory, fs=self._fs)
            except BaseException as exc:
                store.close()
                # a simulated power cut gets no cleanup pass: the
                # orphan stays on disk for the open-time sweep, exactly
                # as a real crash would leave it
                if (
                    not isinstance(exc, FaultInjected)
                    and path is not None
                    and os.path.exists(path)
                ):
                    os.remove(path)
                raise
            self._manifest = manifest
            part = Partition(spec, store, path=path, counted=True)
            self._sealed.append(part)
            hot_had_rows = hot.rows
            self._hot = _Hot()
            if self._wal is not None:
                # GC only after the manifest is installed: frames at or
                # before the watermark are now redundant.  Rotation is
                # never on the correctness path (stale frames replay
                # idempotently), so a transient failure just keeps the
                # old log; a simulated power cut still propagates.
                try:
                    self._wal.rewrite(watermark)
                except FaultInjected:
                    raise
                except OSError as rot_exc:
                    logger.warning(
                        "WAL rotation after seal %s failed (%s); "
                        "keeping the old log", part_id, rot_exc,
                    )
            PARTITION_SEALS.inc()
            PARTITION_FLUSH_ROWS.observe(hot_had_rows)
            flight.record(
                "seal", part_id,
                rows=hot_had_rows, segments=spec.n_segments,
                watermark=watermark,
            )
        hot.store.close()
        return part

    def compact(
        self,
        max_rows: Optional[int] = None,
        min_run: Optional[int] = None,
    ) -> int:
        """Merge adjacent runs of small sealed partitions (lossless —
        features are already extracted, so a merge is a time-ordered row
        concatenation).  Returns the number of merges performed."""
        with self._mu:
            if self._closed:
                raise StorageError("live index is closed")
            return self._compact_locked(max_rows, min_run)

    def _small_runs(self, max_rows: int, min_run: int) -> List[List[int]]:
        runs: List[List[int]] = []
        current: List[int] = []
        for i, part in enumerate(self._sealed):
            if part.spec.rows <= max_rows:
                current.append(i)
            else:
                if len(current) >= min_run:
                    runs.append(current)
                current = []
        if len(current) >= min_run:
            runs.append(current)
        return runs

    def _compact_locked(
        self,
        max_rows: Optional[int] = None,
        min_run: Optional[int] = None,
    ) -> int:
        if max_rows is None:
            max_rows = (
                self.compact_rows if self.compact_rows is not None
                else self.seal_rows
            )
        if min_run is None:
            min_run = self.compact_min_run
        if min_run < 2:
            raise InvalidParameterError("min_run must be >= 2")
        merges = 0
        # re-scan after every merge: indices shift as runs collapse
        while True:
            runs = self._small_runs(max_rows, min_run)
            if not runs:
                return merges
            self._merge_run(runs[0])
            merges += 1

    def _merge_run(self, idxs: List[int]) -> None:
        run = [self._sealed[i] for i in idxs]
        part_id = f"p{self._manifest.next_seq:06d}"
        with span("partition.compact") as sp:
            sp.set_attribute("partition", part_id)
            sp.set_attribute("merged", len(run))
            fname = (
                f"{part_id}.{'minidb' if self.backend == 'minidb' else 'sqlite'}"
                if self.directory is not None else None
            )
            store, path = self._sealed_store_for(fname)
            try:
                rows = copy_store_into([p.store for p in run], store)
                store.set_meta("epsilon", self.epsilon)
                store.set_meta("window", self.window)
                store.set_meta("sealed", 1.0)
                persist_trees(store, store_trees(store))
                spec = PartitionSpec(
                    partition_id=part_id,
                    t_min=run[0].spec.t_min,
                    t_max=run[-1].spec.t_max,
                    feature_t_min=min(p.spec.feature_t_min for p in run),
                    feature_t_max=max(p.spec.feature_t_max for p in run),
                    rows=rows,
                    n_segments=sum(p.spec.n_segments for p in run),
                    file=fname,
                    obs_covered=run[-1].spec.obs_covered,
                )
                manifest = self._manifest.with_replaced(
                    [p.partition_id for p in run], spec
                )
                if path is not None:
                    self._fs.fsync_file(path)
                if self.directory is not None:
                    manifest.save(self.directory, fs=self._fs)
            except BaseException as exc:
                store.close()
                if (
                    not isinstance(exc, FaultInjected)
                    and path is not None
                    and os.path.exists(path)
                ):
                    os.remove(path)
                raise
            self._manifest = manifest
            merged = Partition(spec, store, path=path, counted=True)
            lo = idxs[0]
            self._sealed = (
                self._sealed[:lo]
                + [merged]
                + self._sealed[lo + len(idxs):]
            )
            # retired partitions stay alive for pinned readers; their
            # cached sessions (and cost-model samples) are dropped now
            for old in run:
                old.retire()
            COMPACTIONS.inc()
            flight.record(
                "compaction", part_id,
                merged=len(run), rows=rows,
                replaced=",".join(p.partition_id for p in run),
            )

    def expire(self, ttl: Optional[float] = None) -> List[str]:
        """Drop partitions fully expired under ``ttl`` (defaults to the
        configured retention).  Pinned readers keep their view; the
        stores are disposed when the last snapshot releases them.
        Returns the dropped partition ids."""
        with self._mu:
            if self._closed:
                raise StorageError("live index is closed")
            if ttl is None:
                ttl = self.ttl
            if ttl is None:
                raise InvalidParameterError(
                    "no ttl configured and none given"
                )
            return self._expire_locked(ttl)

    def _expire_locked(self, ttl: float) -> List[str]:
        wm = self.watermark
        if wm is None:
            return []
        cutoff = wm - ttl
        victims = [p for p in self._sealed if p.spec.t_max <= cutoff]
        if not victims:
            return []
        with span("partition.expire") as sp:
            ids = [p.partition_id for p in victims]
            sp.set_attribute("partitions", len(ids))
            manifest = self._manifest.with_dropped(ids)
            if self.directory is not None:
                manifest.save(self.directory, fs=self._fs)
            self._manifest = manifest
            keep = set(ids)
            self._sealed = [
                p for p in self._sealed if p.partition_id not in keep
            ]
            for p in victims:
                p.retire()
            PARTITIONS_EXPIRED.inc(len(victims))
            flight.record(
                "expire", "ttl",
                partitions=len(ids), ids=",".join(ids), cutoff=cutoff,
            )
        return ids

    def finalize(self) -> None:
        """Seal the stream: flush the segmenter tail, seal the hot
        partition, and mark the manifest finalized."""
        with self._mu:
            if self._closed:
                raise StorageError("live index is closed")
            if self._finalized:
                return
            tail = self._segmenter.finish()
            if tail:
                self._register_segments(tail)
            self._n_obs_covered = self._n_observations
            self._seal_locked()
            manifest = self._manifest.with_finalized()
            if self.directory is not None:
                manifest.save(self.directory, fs=self._fs)
            self._manifest = manifest
            self._finalized = True
            if self._wal is not None:
                # every observation is sealed and the manifest says so;
                # the log has nothing left to protect
                self._wal.close(delete=True)
                self._wal = None

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def snapshot(self) -> "LiveSnapshot":
        """An isolated, immutable view of everything ingested so far.

        Sealed partitions are pinned (concurrent compaction/expiry defer
        disposal); the hot partition is cloned into a frozen store under
        the writer mutex.  The snapshot answers queries identically no
        matter what the writer does afterwards.  Close it (or use it as
        a context manager) to release the pins.
        """
        with self._mu:
            if self._closed:
                raise StorageError("live index is closed")
            parts = [p.pin() for p in self._sealed]
            hot_part: Optional[Partition] = None
            hot = self._hot
            if hot.rows > 0:
                hot.store.finalize()
                clone = MemoryFeatureStore()
                copy_store_into([hot.store], clone)
                spec = PartitionSpec(
                    partition_id="hot",
                    t_min=hot.segments[0].t_start,
                    t_max=hot.segments[-1].t_end,
                    feature_t_min=(
                        hot.fmin if hot.fmin is not None
                        else hot.segments[0].t_start
                    ),
                    feature_t_max=(
                        hot.fmax if hot.fmax is not None
                        else hot.segments[-1].t_end
                    ),
                    rows=hot.rows,
                    n_segments=hot.n_segments,
                )
                hot_part = Partition(spec, clone)
            return LiveSnapshot(
                epsilon=self.epsilon,
                window=self.window,
                partitions=parts,
                hot=hot_part,
                backend=self.backend,
                generation=self._manifest.generation,
                watermark=self.watermark,
                n_observations=self._n_observations,
            )

    def search_drops(
        self, t_threshold: float, v_threshold: float, mode: str = "index",
        **kw,
    ) -> List[SegmentPair]:
        """Live drop search over an ephemeral snapshot (accepts the
        :meth:`LiveSnapshot.search` keywords, e.g. ``t_range``)."""
        with self.snapshot() as snap:
            return snap.search_drops(t_threshold, v_threshold, mode=mode, **kw)

    def search_jumps(
        self, t_threshold: float, v_threshold: float, mode: str = "index",
        **kw,
    ) -> List[SegmentPair]:
        with self.snapshot() as snap:
            return snap.search_jumps(t_threshold, v_threshold, mode=mode, **kw)

    def search_batch(self, queries, mode: str = "auto", **kw):
        with self.snapshot() as snap:
            return snap.search_batch(queries, mode=mode, **kw)

    def explain(
        self, kind: str, t_threshold: float, v_threshold: float, **kw
    ) -> dict:
        """Partition-aware EXPLAIN: how many partitions the query would
        scan vs prune, with merged per-operator row counts."""
        with self.snapshot() as snap:
            return snap.explain(kind, t_threshold, v_threshold, **kw)

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #

    @property
    def watermark(self) -> Optional[float]:
        """End of the last closed segment (durable once sealed)."""
        if self._hot.segments:
            return self._hot.segments[-1].t_end
        if self._sealed:
            return self._sealed[-1].spec.t_max
        return self._manifest.watermark

    @property
    def n_observations(self) -> int:
        return self._n_observations

    @property
    def generation(self) -> int:
        return self._manifest.generation

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def partitions(self) -> List[PartitionSpec]:
        """Specs of the sealed partitions, oldest first (copy)."""
        with self._mu:
            return [p.spec for p in self._sealed]

    def stats(self) -> Dict:
        """A JSON-able summary (the CLI's ``stats`` partition section)."""
        with self._mu:
            sealed = [p.spec.to_json() for p in self._sealed]
            hot = self._hot
            return {
                "epsilon": self.epsilon,
                "window": self.window,
                "backend": self.backend,
                "generation": self._manifest.generation,
                "finalized": self._finalized,
                "watermark": self.watermark,
                "n_observations": self._n_observations,
                "partitions": sealed,
                "n_partitions": len(sealed),
                "sealed_rows": sum(p.spec.rows for p in self._sealed),
                "sealed_segments": sum(
                    p.spec.n_segments for p in self._sealed
                ),
                "hot": {
                    "rows": hot.rows,
                    "n_segments": hot.n_segments,
                    "est_bytes": hot.est_bytes,
                    "t_min": (
                        hot.segments[0].t_start if hot.segments else None
                    ),
                    "t_max": (
                        hot.segments[-1].t_end if hot.segments else None
                    ),
                },
                "seal_bytes": self.seal_bytes,
                "wal": (
                    None if self._wal is None else {
                        **self._wal.stats(),
                        "replayed_observations": self._wal_replayed_obs,
                        "replayed_to": self._wal_replayed_to,
                    }
                ),
            }

    def close(self) -> None:
        with self._mu:
            if self._closed:
                return
            self._closed = True
            if self._wal is not None:
                try:
                    self._wal.close()
                except FaultInjected:
                    pass  # closing after a simulated crash is teardown
                self._wal = None
            for p in self._sealed:
                p.close()
            self._sealed = []
            self._hot.store.close()

    def __enter__(self) -> "LiveIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LiveSnapshot:
    """A pinned, immutable view of a :class:`LiveIndex`.

    Queries scatter across the pinned partitions (skipping those whose
    feature-time bounds miss the ``t_range``), merge with the standard
    §4.4 union/dedup ordering, and are unaffected by concurrent writer
    activity.  Thread-safe: the underlying stores are frozen and every
    partition's reads are lock-protected when its backend needs it.
    """

    def __init__(
        self,
        epsilon: float,
        window: float,
        partitions: List[Partition],
        hot: Optional[Partition],
        generation: int,
        watermark: Optional[float],
        n_observations: int,
        backend: str = "memory",
    ) -> None:
        self.epsilon = epsilon
        self.window = window
        self.backend = backend
        self.generation = generation
        self.watermark = watermark
        #: Observations the writer had ingested when this snapshot froze.
        self.n_observations = n_observations
        self._parts = partitions
        self._hot = hot
        self._closed = False

    # -------------------------------------------------------------- #

    @property
    def n_partitions(self) -> int:
        return len(self._parts) + (1 if self._hot is not None else 0)

    def _all_partitions(self) -> List[Partition]:
        parts = list(self._parts)
        if self._hot is not None:
            parts.append(self._hot)
        return parts

    def _check(self, t_threshold: float, mode: str) -> None:
        if self._closed:
            raise StorageError("snapshot is closed")
        if mode not in _MODES:
            raise InvalidParameterError(
                f"mode must be one of {_MODES}, got {mode!r}"
            )
        if t_threshold > self.window:
            raise QueryError(
                f"T={t_threshold} exceeds the index window w={self.window}"
            )

    def _make_plan(self, query, mode: str, t_range):
        from ..engine.plan import build_plan

        if mode == "auto":
            return lambda part: part.session().plan(
                query, mode="auto", t_range=t_range
            )
        return lambda part: build_plan(
            query, point_access=mode, t_range=t_range
        )

    def _query(self, kind: str, t_threshold: float, v_threshold: float):
        if kind not in ("drop", "jump"):
            raise InvalidParameterError(f"unknown search kind {kind!r}")
        return (
            DropQuery(t_threshold, v_threshold) if kind == "drop"
            else JumpQuery(t_threshold, v_threshold)
        )

    # -------------------------------------------------------------- #
    # search
    # -------------------------------------------------------------- #

    def search(
        self,
        query,
        mode: str = "auto",
        cache: str = "warm",
        t_range: Optional[Tuple[float, float]] = None,
        data=None,
        verified_only: bool = False,
    ):
        """Scatter one query across the snapshot's partitions and merge.

        With ``data``, the merged candidates are witness-refined once
        (:class:`~repro.core.results.SearchHit` list); otherwise the
        distinct :class:`~repro.types.SegmentPair` list, identical to a
        batch-built index over the same points.
        """
        result = self.execute(
            query, mode=mode, cache=cache, t_range=t_range,
            data=data, verified_only=verified_only,
        )
        return result.hits if data is not None else result.pairs

    def _begin(self, api: str):
        """Adopt the bound diagnostics context or open a new one."""
        ctx = obs_context.current_context()
        if ctx is not None:
            return ctx, nullcontext(), False
        ctx = obs_context.new_context(api=api)
        return ctx, obs_context.use_context(ctx), True

    def _observe_live(
        self, api: str, plan: str, seconds: float, n_pairs: int,
        result, ctx, owns: bool, status: str,
        partitions_scanned: Optional[int] = None,
        partitions_pruned: Optional[int] = None,
    ) -> None:
        """Per-query telemetry + slow-query log for the live tier.

        Live-tier records carry the partition pruning decision and the
        accounting breakdown, so a slow scatter names the partitions it
        actually scanned.
        """
        _LIVE_QUERIES[api].inc()
        _LIVE_QUERY_SECONDS[api].observe(seconds)
        threshold = slowlog.default_threshold()
        slow = threshold is not None and seconds >= threshold
        if slow:
            acct = ctx.accounting.to_dict()
            slowlog.SLOW_QUERY_LOG.add(
                slowlog.SlowQueryRecord(
                    api=api,
                    backend=f"live/{self.backend}",
                    duration_s=seconds,
                    threshold_s=threshold,
                    plan=plan,
                    n_pairs=n_pairs,
                    operators=[
                        {
                            "operator": s.operator,
                            "table": s.table,
                            "access": s.access,
                            "rows_fetched": s.rows_fetched,
                            "rows_matched": s.rows_matched,
                        }
                        for s in (getattr(result, "op_stats", None) or [])
                    ],
                    query_id=ctx.query_id,
                    status=status,
                    partitions_scanned=partitions_scanned,
                    partitions_pruned=partitions_pruned,
                    shards=acct["breakdown"],
                    accounting={
                        "totals": acct["totals"],
                        "candidate_matrices": acct["candidate_matrices"],
                    },
                )
            )
        if owns:
            if slow or status != "complete":
                for root in ctx.trace_roots:
                    retain_trace(root)
            del ctx.trace_roots[:]

    def execute(
        self,
        query,
        mode: str = "auto",
        cache: str = "warm",
        t_range: Optional[Tuple[float, float]] = None,
        data=None,
        verified_only: bool = False,
        pushdown: bool = True,
        vectorize: Optional[bool] = None,
    ) -> ExecutionResult:
        """:meth:`search` returning the full :class:`ExecutionResult`
        (merged operator stats, partitions scanned/pruned)."""
        self._check(query.t_threshold, mode)
        ctx, binder, owns = self._begin("live_search")
        t0 = time.perf_counter()
        with binder:
            result = execute_partitioned(
                query,
                self._make_plan(query, mode, t_range),
                self._all_partitions(),
                t_range=t_range,
                cache=cache,
                data=data,
                verified_only=verified_only,
                pushdown=pushdown,
                vectorize=vectorize,
            )
        self._observe_live(
            "live_search",
            plan=(
                f"live[{self.n_partitions}p] {query.kind}"
                f"(T={query.t_threshold:g}, V={query.v_threshold:g})"
                f" mode={mode}"
            ),
            seconds=time.perf_counter() - t0,
            n_pairs=len(result.pairs),
            result=result,
            ctx=ctx,
            owns=owns,
            status=result.status.value,
            partitions_scanned=result.partitions_scanned,
            partitions_pruned=result.partitions_pruned,
        )
        return result

    def search_drops(
        self, t_threshold: float, v_threshold: float, mode: str = "index",
        **kw,
    ) -> List[SegmentPair]:
        return self.search(
            DropQuery(t_threshold, v_threshold), mode=mode, **kw
        )

    def search_jumps(
        self, t_threshold: float, v_threshold: float, mode: str = "index",
        **kw,
    ) -> List[SegmentPair]:
        return self.search(
            JumpQuery(t_threshold, v_threshold), mode=mode, **kw
        )

    def search_batch(
        self,
        queries: Sequence,
        mode: str = "auto",
        cache: str = "warm",
        t_range: Optional[Tuple[float, float]] = None,
    ) -> List[List[SegmentPair]]:
        """A whole (T, V) grid, scatter-merged across partitions with
        one shared candidate fetch per (partition, kind).  Raises the
        first store failure (matching ``QuerySession.search_batch``)."""
        outcomes = self.search_batch_results(
            queries, mode=mode, cache=cache, t_range=t_range
        )
        for out in outcomes:
            if out.status is ResultStatus.FAILED and out.error is not None:
                raise out.error
        return [out.pairs for out in outcomes]

    def search_batch_results(
        self,
        queries: Sequence,
        mode: str = "auto",
        cache: str = "warm",
        t_range: Optional[Tuple[float, float]] = None,
        vectorize: Optional[bool] = None,
    ) -> List[ExecutionResult]:
        if mode == "grid":
            raise InvalidParameterError(
                "batched execution supports 'auto', 'index' and 'scan'"
            )
        for q in queries:
            self._check(q.t_threshold, mode)
        if not queries:
            return []

        def make_plans(part):
            if mode == "auto":
                session = part.session()
                return [
                    session.plan(q, mode="auto", t_range=t_range)
                    for q in queries
                ]
            from ..engine.plan import build_plan

            return [
                build_plan(q, point_access=mode, t_range=t_range)
                for q in queries
            ]

        ctx, binder, owns = self._begin("live_search_batch")
        t0 = time.perf_counter()
        with binder:
            results = execute_batch_partitioned(
                make_plans,
                self._all_partitions(),
                n_queries=len(queries),
                t_range=t_range,
                cache=cache,
                vectorize=vectorize,
            )
        if any(r.status is ResultStatus.FAILED for r in results):
            status = "failed"
        elif any(r.status is ResultStatus.DEGRADED for r in results):
            status = "degraded"
        else:
            status = "complete"
        first = results[0] if results else None
        self._observe_live(
            "live_search_batch",
            plan=(
                f"live[{self.n_partitions}p] batch[{len(queries)}q]"
                f" mode={mode}"
            ),
            seconds=time.perf_counter() - t0,
            n_pairs=sum(len(r.pairs) for r in results),
            result=first,
            ctx=ctx,
            owns=owns,
            status=status,
            partitions_scanned=getattr(first, "partitions_scanned", None),
            partitions_pruned=getattr(first, "partitions_pruned", None),
        )
        return results

    def explain(
        self,
        kind: str,
        t_threshold: float,
        v_threshold: float,
        mode: str = "auto",
        t_range: Optional[Tuple[float, float]] = None,
        cache: str = "warm",
    ) -> dict:
        """Partition-aware EXPLAIN: runs the query (pushdown off, so
        fetched counts are true candidate sizes) and reports the pruning
        decision alongside merged operator statistics."""
        query = self._query(kind, t_threshold, v_threshold)
        ctx, binder, owns = self._begin("live_search")
        try:
            with binder:
                result = self.execute(
                    query, mode=mode, cache=cache, t_range=t_range,
                    pushdown=False,
                )
        finally:
            if owns:
                del ctx.trace_roots[:]
        return {
            "query": query,
            "query_id": ctx.query_id,
            "accounting": ctx.accounting.to_dict(),
            "t_range": t_range,
            "generation": self.generation,
            "watermark": self.watermark,
            "partitions_total": self.n_partitions,
            "partitions_scanned": result.partitions_scanned,
            "partitions_pruned": result.partitions_pruned,
            "n_pairs": len(result.pairs),
            "operators": [
                {
                    "operator": s.operator,
                    "table": s.table,
                    "access": s.access,
                    "rows_fetched": s.rows_fetched,
                    "rows_matched": s.rows_matched,
                }
                for s in result.op_stats
            ],
        }

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    def close(self) -> None:
        """Release the partition pins (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for p in self._parts:
            p.release()
        if self._hot is not None:
            self._hot.close()

    def __enter__(self) -> "LiveSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

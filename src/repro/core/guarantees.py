"""Auditing Theorem 1 against brute-force ground truth.

The paper guarantees that (drop search, symmetric for jumps):

* **completeness** — no true event of the Model G signal is missed: every
  event with ``0 < Δt <= T`` and ``Δv <= V`` ends up covered by some
  returned segment pair;
* **soundness** — every returned pair contains at least one event with
  ``Δv <= V + 2ε`` and ``0 < Δt <= T`` (Lemma 5).

This module computes exact extremal events on a piecewise linear signal by
linear programming over each pair of linear pieces (the optimum of a
linear objective over the polygonal feasible set ``{(t', t'') : t' in I1,
t'' in I2, 0 < t'' - t' <= T}`` is attained at a vertex), and uses them to
audit both properties.  Tests and EXPERIMENTS.md rely on these audits.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..datagen.model import PiecewiseLinearSignal
from ..errors import InvalidParameterError
from ..types import DataSegment, Event, SegmentPair
from .queries import DropQuery, JumpQuery

__all__ = [
    "deepest_drop_between",
    "highest_jump_between",
    "extreme_event_between",
    "true_event_witnesses",
    "covers",
    "audit_completeness",
    "audit_soundness",
]

Query = Union[DropQuery, JumpQuery]
Interval = Tuple[float, float]

_TOL = 1e-9


def _clip_piece(piece: DataSegment, lo: float, hi: float) -> Optional[Interval]:
    """The sub-extent of ``piece`` inside ``[lo, hi]`` (None if empty)."""
    a = max(piece.t_start, lo)
    b = min(piece.t_end, hi)
    if b <= a:
        return None
    return (a, b)


def _piece_vertices(
    p_lo: float, p_hi: float, q_lo: float, q_hi: float, t_budget: float
) -> Iterable[Tuple[float, float]]:
    """Vertex candidates of {(x, y): x in P, y in Q, 0 < y-x <= T}.

    Every vertex of the feasible polygon has each coordinate pinned to an
    interval bound or to one of the lines ``y = x`` / ``y = x + T``, so
    enumerating those combinations covers all vertices (plus some interior
    or infeasible points, which are filtered by the caller).
    """
    xs = {p_lo, p_hi}
    for y in (q_lo, q_hi):
        xs.add(min(max(y - t_budget, p_lo), p_hi))
        xs.add(min(max(y, p_lo), p_hi))
    for x in sorted(xs):
        for y_raw in (q_lo, q_hi, x + t_budget, x):
            y = min(max(y_raw, q_lo), q_hi)
            yield (x, y)


def extreme_event_between(
    signal: PiecewiseLinearSignal,
    interval_start: Interval,
    interval_end: Interval,
    t_budget: float,
    want_min: bool,
) -> Optional[Event]:
    """The extremal event starting in one interval and ending in another.

    Minimizes (``want_min=True``, deepest drop) or maximizes (highest
    jump) ``signal(t'') - signal(t')`` over ``t'`` in ``interval_start``,
    ``t''`` in ``interval_end``, ``0 < t'' - t' <= t_budget``.  Exact for
    piecewise linear signals.  Returns ``None`` when no event with
    positive time span exists.

    The extremum is taken over the *closure* of the feasible set: when the
    infimum sits on the open ``Δt = 0`` boundary (where ``Δv = 0``) it is
    approached but not attained by real events, and the returned event may
    then have ``dt == 0``.  Soundness audits rely on that convention —
    "exists an event with Δv below the bound" is equivalent to "the
    closure infimum is below the bound" for these polygonal sets.
    """
    if t_budget <= 0:
        raise InvalidParameterError("time budget must be positive")
    lo1, hi1 = interval_start
    lo2, hi2 = interval_end
    if hi1 < lo1 or hi2 < lo2:
        raise InvalidParameterError("intervals must be non-empty")

    best: Optional[Event] = None
    sign = 1.0 if want_min else -1.0
    has_positive_span = False
    for p in signal.pieces_overlapping(lo1, hi1):
        p_ext = _clip_piece(p, lo1, hi1)
        if p_ext is None:
            continue
        for q in signal.pieces_overlapping(lo2, hi2):
            q_ext = _clip_piece(q, lo2, hi2)
            if q_ext is None:
                continue
            if q_ext[1] <= p_ext[0]:  # no y > x possible
                continue
            if q_ext[0] - p_ext[1] > t_budget:  # min dt already beyond T
                continue
            for x, y in _piece_vertices(*p_ext, *q_ext, t_budget):
                dt = y - x
                if dt < -_TOL or dt > t_budget + _TOL:
                    continue
                if dt > _TOL:
                    has_positive_span = True
                dv = q.value_at(y) - p.value_at(x)
                if best is None or sign * dv < sign * best.dv:
                    best = Event(x, max(y, x), dv)
    if not has_positive_span:
        return None
    return best


def deepest_drop_between(
    signal: PiecewiseLinearSignal,
    interval_start: Interval,
    interval_end: Interval,
    t_budget: float,
) -> Optional[Event]:
    """Most negative ``Δv`` event between the two intervals."""
    return extreme_event_between(
        signal, interval_start, interval_end, t_budget, want_min=True
    )


def highest_jump_between(
    signal: PiecewiseLinearSignal,
    interval_start: Interval,
    interval_end: Interval,
    t_budget: float,
) -> Optional[Event]:
    """Most positive ``Δv`` event between the two intervals."""
    return extreme_event_between(
        signal, interval_start, interval_end, t_budget, want_min=False
    )


def true_event_witnesses(
    signal: PiecewiseLinearSignal, query: Query
) -> List[Event]:
    """One extremal true event per piece pair satisfying the query.

    This is the brute-force ground truth used by the completeness audit:
    every returned witness *is* a true event of the Model G signal, and
    every piece pair that contains any true event contributes one, so a
    result set covering all witnesses covers every region of the signal
    where the searched behaviour occurs.
    """
    want_min = isinstance(query, DropQuery)
    t_thr, v_thr = query.t_threshold, query.v_threshold
    witnesses: List[Event] = []
    pieces = list(signal.pieces())
    for i, p in enumerate(pieces):
        for q in pieces[i:]:
            if q.t_start - p.t_end > t_thr:
                break  # pieces are in time order; all later ones too far
            ev = extreme_event_between(
                signal,
                (p.t_start, p.t_end),
                (q.t_start, q.t_end),
                t_thr,
                want_min=want_min,
            )
            if ev is None:
                continue
            satisfied = ev.dv <= v_thr if want_min else ev.dv >= v_thr
            if satisfied:
                witnesses.append(ev)
    return witnesses


def covers(pairs: Sequence[SegmentPair], event: Event, tol: float = _TOL) -> bool:
    """Whether some returned pair covers the event (Definition 3)."""
    return any(
        p.t_d - tol <= event.t_first <= p.t_c + tol
        and p.t_b - tol <= event.t_second <= p.t_a + tol
        for p in pairs
    )


def audit_completeness(
    pairs: Sequence[SegmentPair],
    signal: PiecewiseLinearSignal,
    query: Query,
) -> List[Event]:
    """Witness events *not* covered by the results (empty list = pass)."""
    return [
        ev
        for ev in true_event_witnesses(signal, query)
        if not covers(pairs, ev)
    ]


def audit_soundness(
    pairs: Sequence[SegmentPair],
    signal: PiecewiseLinearSignal,
    query: Query,
    epsilon: float,
    tol: float = 1e-6,
) -> List[SegmentPair]:
    """Returned pairs violating Lemma 5's ``2ε`` bound (empty = pass).

    For drop search, each returned pair must contain an event of the
    Model G signal with ``Δv <= V + 2ε`` and ``0 < Δt <= T``.
    """
    is_drop = isinstance(query, DropQuery)
    bad: List[SegmentPair] = []
    for pair in pairs:
        ev = extreme_event_between(
            signal,
            pair.start_period,
            pair.end_period,
            query.t_threshold,
            want_min=is_drop,
        )
        if ev is None:
            bad.append(pair)
            continue
        if is_drop:
            ok = ev.dv <= query.v_threshold + 2 * epsilon + tol
        else:
            ok = ev.dv >= query.v_threshold - 2 * epsilon - tol
        if not ok:
            bad.append(pair)
    return bad

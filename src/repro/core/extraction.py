"""Algorithm 1: online, windowed feature extraction.

For every data segment ``AB`` arriving from the segmenter, features are
computed between ``AB`` and every previous segment ``CD`` whose extent
reaches into the time window ``(win.start, win.end)`` where::

    win.end   = t_A
    win.start = win.end - (t_A - t_B) - w  = t_B - w

A previous segment straddling ``win.start`` is truncated to start at
``win.start`` (Algorithm 1 line 4), so every event that *ends* during
``AB`` and spans at most ``w`` is captured by some parallelogram.

In addition to the paper's pairs, the degenerate self-pair of ``AB`` is
emitted so events strictly inside the newest segment are reported without
waiting for a successor segment (DESIGN.md §5.1).

The extractor is fully streaming: segments may be pushed as the segmenter
produces them, and the history is pruned to the segments a future window
could still reach.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Optional

from ..errors import InvalidParameterError, InvalidSeriesError
from ..storage.base import FeatureStore
from ..types import DataSegment
from .corners import FeatureSet, SlopeCase, collect_features
from .parallelogram import Parallelogram

__all__ = ["FeatureExtractor", "ExtractionStats"]


@dataclass
class ExtractionStats:
    """Counters maintained while features are extracted.

    ``corner_histogram`` maps a corner count (1, 2 or 3) to how many
    collection events (a parallelogram × search type that passed its
    guard) kept that many corners — the paper's Table 4.  Self-pairs are
    excluded from the histogram because they are this implementation's
    addition, not part of the paper's case analysis.
    """

    n_segments: int = 0
    n_pairs: int = 0
    n_self_pairs: int = 0
    n_truncated: int = 0
    n_drop_points: int = 0
    n_drop_lines: int = 0
    n_jump_points: int = 0
    n_jump_lines: int = 0
    corner_histogram: Dict[int, int] = field(
        default_factory=lambda: {1: 0, 2: 0, 3: 0}
    )
    case_histogram: Dict[SlopeCase, int] = field(default_factory=dict)

    def effective_corner_count(self) -> float:
        """Weighted mean corners per collection event (paper: ~2.1)."""
        total = sum(self.corner_histogram.values())
        if total == 0:
            return 0.0
        return (
            sum(k * n for k, n in self.corner_histogram.items()) / total
        )

    def corner_percentages(self) -> Dict[int, float]:
        """Table 4's percentage split across 1/2/3-corner cases."""
        total = sum(self.corner_histogram.values())
        if total == 0:
            return {1: 0.0, 2: 0.0, 3: 0.0}
        return {
            k: 100.0 * n / total for k, n in self.corner_histogram.items()
        }

    def _absorb(self, features: FeatureSet) -> None:
        self.n_drop_points += len(features.drop_points)
        self.n_drop_lines += len(features.drop_lines)
        self.n_jump_points += len(features.jump_points)
        self.n_jump_lines += len(features.jump_lines)
        self.case_histogram[features.case] = (
            self.case_histogram.get(features.case, 0) + 1
        )
        if features.case is not SlopeCase.SELF:
            for corners in (
                features.drop_corner_count,
                features.jump_corner_count,
            ):
                if corners:
                    self.corner_histogram[corners] += 1


class FeatureExtractor:
    """Streaming implementation of Algorithm 1.

    Parameters
    ----------
    epsilon:
        The segmentation error tolerance ε; features are shifted by ±ε per
        Lemma 4.
    window:
        The paper's ``w`` — the longest time span any future query may use
        (queries require ``T <= w``).
    store:
        Destination :class:`~repro.storage.base.FeatureStore`.
    emit_self_pairs:
        Emit degenerate self-pair features (on by default; switch off to
        run the paper's literal Algorithm 1 in ablations).
    """

    def __init__(
        self,
        epsilon: float,
        window: float,
        store: FeatureStore,
        emit_self_pairs: bool = True,
    ) -> None:
        if epsilon < 0:
            raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
        if window <= 0:
            raise InvalidParameterError(f"window must be positive, got {window}")
        self.epsilon = float(epsilon)
        self.window = float(window)
        self.store = store
        self.emit_self_pairs = emit_self_pairs
        self.stats = ExtractionStats()
        self._history: Deque[DataSegment] = deque()
        self._last: Optional[DataSegment] = None

    def add_segment(self, segment: DataSegment) -> None:
        """Consume one newly produced data segment (temporal order)."""
        if self._last is not None and segment.t_start != self._last.t_end:
            raise InvalidSeriesError(
                "segments must be contiguous: got start "
                f"{segment.t_start}, expected {self._last.t_end}"
            )
        self.stats.n_segments += 1

        if self.emit_self_pairs:
            self._emit(collect_features(Parallelogram.self_pair(segment), self.epsilon))
            self.stats.n_self_pairs += 1

        win_start = segment.t_start - self.window
        for prev in self._history:
            if prev.t_end <= win_start:
                continue  # entirely before the window
            cd = prev
            if prev.t_start < win_start:
                cd = prev.truncated_to_start(win_start)
                self.stats.n_truncated += 1
            para = Parallelogram.from_segments(cd, segment)
            self._emit(collect_features(para, self.epsilon))
            self.stats.n_pairs += 1

        self._history.append(segment)
        self._last = segment
        # prune history: future windows start at or after t_end - w
        horizon = segment.t_end - self.window
        while self._history and self._history[0].t_end <= horizon:
            self._history.popleft()

    def reset_history(self) -> None:
        """Forget all previous segments (start of a new episode).

        Used for data gaps where interpolating across the outage is not
        wanted: subsequent segments pair only among themselves, so no
        reported event ever spans the gap.
        """
        self._history.clear()
        self._last = None

    def prime_history(self, segments: Iterable[DataSegment]) -> None:
        """Seed the pairing history without emitting any features.

        Used when resuming a crashed/stopped stream from a checkpoint:
        ``segments`` are segments *already stored* (in temporal order)
        whose features were extracted in the previous run.  They must
        still be pairable against future segments, but re-emitting them
        would duplicate stored features.
        """
        self._history.clear()
        self._last = None
        for segment in segments:
            if self._last is not None and segment.t_start != self._last.t_end:
                raise InvalidSeriesError(
                    "primed segments must be contiguous: got start "
                    f"{segment.t_start}, expected {self._last.t_end}"
                )
            self._history.append(segment)
            self._last = segment
        if self._last is not None:
            horizon = self._last.t_end - self.window
            while self._history and self._history[0].t_end <= horizon:
                self._history.popleft()

    def _emit(self, features: FeatureSet) -> None:
        self.stats._absorb(features)
        self.store.add(features)

"""Algorithm 1: online, windowed feature extraction.

For every data segment ``AB`` arriving from the segmenter, features are
computed between ``AB`` and every previous segment ``CD`` whose extent
reaches into the time window ``(win.start, win.end)`` where::

    win.end   = t_A
    win.start = win.end - (t_A - t_B) - w  = t_B - w

A previous segment straddling ``win.start`` is truncated to start at
``win.start`` (Algorithm 1 line 4), so every event that *ends* during
``AB`` and spans at most ``w`` is captured by some parallelogram.

In addition to the paper's pairs, the degenerate self-pair of ``AB`` is
emitted so events strictly inside the newest segment are reported without
waiting for a successor segment (DESIGN.md §5.1).

The extractor is fully streaming: segments may be pushed as the segmenter
produces them, and the history is pruned to the segments a future window
could still reach.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Optional, Sequence

import numpy as np

from ..errors import InvalidParameterError, InvalidSeriesError
from ..obs.metrics import REGISTRY, ROWS_BUCKETS
from ..storage.base import FeatureStore
from ..types import DataSegment
from .corners import (
    FeatureBatch,
    FeatureSet,
    SlopeCase,
    collect_features,
    collect_features_batch,
)
from .parallelogram import Parallelogram

__all__ = ["FeatureExtractor", "ExtractionStats"]

_PAIRS = REGISTRY.counter(
    "repro_extractor_pairs_total",
    "Cross-segment parallelogram pairs analyzed (Algorithm 1)",
)
_SELF_PAIRS = REGISTRY.counter(
    "repro_extractor_self_pairs_total",
    "Degenerate self-pairs emitted (DESIGN.md §5.1 extension)",
)
_TRUNCATED = REGISTRY.counter(
    "repro_extractor_truncated_total",
    "History segments truncated at the window start (Alg. 1 line 4)",
)
_BATCH_SECONDS = REGISTRY.histogram(
    "repro_extractor_batch_seconds",
    "Wall time of FeatureExtractor.add_segments_batch calls",
)
_BATCH_PAIRS = REGISTRY.histogram(
    "repro_extractor_batch_pairs",
    "Pairs analyzed per add_segments_batch call",
    buckets=ROWS_BUCKETS,
)


@dataclass
class ExtractionStats:
    """Counters maintained while features are extracted.

    ``corner_histogram`` maps a corner count (1, 2 or 3) to how many
    collection events (a parallelogram × search type that passed its
    guard) kept that many corners — the paper's Table 4.  Self-pairs are
    excluded from the histogram because they are this implementation's
    addition, not part of the paper's case analysis.
    """

    n_segments: int = 0
    n_pairs: int = 0
    n_self_pairs: int = 0
    n_truncated: int = 0
    n_drop_points: int = 0
    n_drop_lines: int = 0
    n_jump_points: int = 0
    n_jump_lines: int = 0
    corner_histogram: Dict[int, int] = field(
        default_factory=lambda: {1: 0, 2: 0, 3: 0}
    )
    case_histogram: Dict[SlopeCase, int] = field(default_factory=dict)

    def effective_corner_count(self) -> float:
        """Weighted mean corners per collection event (paper: ~2.1)."""
        total = sum(self.corner_histogram.values())
        if total == 0:
            return 0.0
        return (
            sum(k * n for k, n in self.corner_histogram.items()) / total
        )

    def corner_percentages(self) -> Dict[int, float]:
        """Table 4's percentage split across 1/2/3-corner cases."""
        total = sum(self.corner_histogram.values())
        if total == 0:
            return {1: 0.0, 2: 0.0, 3: 0.0}
        return {
            k: 100.0 * n / total for k, n in self.corner_histogram.items()
        }

    def _absorb(self, features: FeatureSet) -> None:
        self.n_drop_points += len(features.drop_points)
        self.n_drop_lines += len(features.drop_lines)
        self.n_jump_points += len(features.jump_points)
        self.n_jump_lines += len(features.jump_lines)
        self.case_histogram[features.case] = (
            self.case_histogram.get(features.case, 0) + 1
        )
        if features.case is not SlopeCase.SELF:
            for corners in (
                features.drop_corner_count,
                features.jump_corner_count,
            ):
                if corners:
                    self.corner_histogram[corners] += 1

    def absorb_batch(self, batch: FeatureBatch) -> None:
        """Vectorized :meth:`_absorb` over one :class:`FeatureBatch`."""
        self.n_drop_points += int(batch.drop_points.shape[0])
        self.n_drop_lines += int(batch.drop_lines.shape[0])
        self.n_jump_points += int(batch.jump_points.shape[0])
        self.n_jump_lines += int(batch.jump_lines.shape[0])
        if not batch.case_ids.size:
            return
        for cid, n in enumerate(np.bincount(batch.case_ids, minlength=7)):
            if n:
                case = SlopeCase(cid)
                self.case_histogram[case] = (
                    self.case_histogram.get(case, 0) + int(n)
                )
        not_self = batch.case_ids != 0
        for counts in (batch.drop_corner_counts, batch.jump_corner_counts):
            hist = np.bincount(counts[not_self], minlength=4)
            for k in (1, 2, 3):
                if hist[k]:
                    self.corner_histogram[k] += int(hist[k])

    def merge(self, other: "ExtractionStats") -> None:
        """Fold another stats object in (multi-worker result merge)."""
        self.n_segments += other.n_segments
        self.n_pairs += other.n_pairs
        self.n_self_pairs += other.n_self_pairs
        self.n_truncated += other.n_truncated
        self.n_drop_points += other.n_drop_points
        self.n_drop_lines += other.n_drop_lines
        self.n_jump_points += other.n_jump_points
        self.n_jump_lines += other.n_jump_lines
        for k, n in other.corner_histogram.items():
            self.corner_histogram[k] = self.corner_histogram.get(k, 0) + n
        for case, n in other.case_histogram.items():
            self.case_histogram[case] = self.case_histogram.get(case, 0) + n


class FeatureExtractor:
    """Streaming implementation of Algorithm 1.

    Parameters
    ----------
    epsilon:
        The segmentation error tolerance ε; features are shifted by ±ε per
        Lemma 4.
    window:
        The paper's ``w`` — the longest time span any future query may use
        (queries require ``T <= w``).
    store:
        Destination :class:`~repro.storage.base.FeatureStore`.
    emit_self_pairs:
        Emit degenerate self-pair features (on by default; switch off to
        run the paper's literal Algorithm 1 in ablations).
    """

    def __init__(
        self,
        epsilon: float,
        window: float,
        store: FeatureStore,
        emit_self_pairs: bool = True,
    ) -> None:
        if epsilon < 0:
            raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
        if window <= 0:
            raise InvalidParameterError(f"window must be positive, got {window}")
        self.epsilon = float(epsilon)
        self.window = float(window)
        self.store = store
        self.emit_self_pairs = emit_self_pairs
        self.stats = ExtractionStats()
        self._history: Deque[DataSegment] = deque()
        self._last: Optional[DataSegment] = None

    def add_segment(self, segment: DataSegment) -> None:
        """Consume one newly produced data segment (temporal order)."""
        if self._last is not None and segment.t_start != self._last.t_end:
            raise InvalidSeriesError(
                "segments must be contiguous: got start "
                f"{segment.t_start}, expected {self._last.t_end}"
            )
        self.stats.n_segments += 1

        if self.emit_self_pairs:
            self._emit(collect_features(Parallelogram.self_pair(segment), self.epsilon))
            self.stats.n_self_pairs += 1
            _SELF_PAIRS.inc()

        n_pairs = 0
        n_truncated = 0
        win_start = segment.t_start - self.window
        for prev in self._history:
            if prev.t_end <= win_start:
                continue  # entirely before the window
            cd = prev
            if prev.t_start < win_start:
                cd = prev.truncated_to_start(win_start)
                n_truncated += 1
            para = Parallelogram.from_segments(cd, segment)
            self._emit(collect_features(para, self.epsilon))
            n_pairs += 1
        self.stats.n_pairs += n_pairs
        self.stats.n_truncated += n_truncated
        _PAIRS.inc(n_pairs)
        if n_truncated:
            _TRUNCATED.inc(n_truncated)

        self._history.append(segment)
        self._last = segment
        # prune history: future windows start at or after t_end - w
        horizon = segment.t_end - self.window
        while self._history and self._history[0].t_end <= horizon:
            self._history.popleft()

    def add_segments_batch(self, segments: Sequence[DataSegment]) -> None:
        """Consume a run of contiguous segments through the fast path.

        Bit-for-bit equivalent to calling :meth:`add_segment` on each
        segment in order — pair selection, truncation arithmetic, corner
        math and emission order are identical — but the Table 2 analysis
        runs vectorized over all pairs of the batch at once and features
        reach the store through
        :meth:`~repro.storage.base.FeatureStore.add_features_bulk`.
        Contiguity is validated up front, before any pair is emitted.
        """
        if not segments:
            return
        last = self._last
        for segment in segments:
            if last is not None and segment.t_start != last.t_end:
                raise InvalidSeriesError(
                    "segments must be contiguous: got start "
                    f"{segment.t_start}, expected {last.t_end}"
                )
            last = segment

        # assemble one (cd, ab) row pair per parallelogram, in the exact
        # scalar emission order: per segment, self-pair first, then
        # history pairs oldest -> newest
        history = list(self._history)
        h0 = len(history)
        timeline = history + list(segments)
        cd_rows: list = []
        ab_rows: list = []
        self_flags: list = []
        n_truncated = 0
        n_self = 0
        emit_self = self.emit_self_pairs
        window = self.window
        j = 0  # two-pointer: window starts are non-decreasing
        for i, segment in enumerate(segments):
            ab_row = (
                segment.t_start,
                segment.v_start,
                segment.t_end,
                segment.v_end,
            )
            if emit_self:
                cd_rows.append(ab_row)
                ab_rows.append(ab_row)
                self_flags.append(True)
                n_self += 1
            win_start = segment.t_start - window
            while j < h0 + i and timeline[j].t_end <= win_start:
                j += 1
            for k in range(j, h0 + i):
                prev = timeline[k]
                if prev.t_start < win_start:
                    prev = prev.truncated_to_start(win_start)
                    n_truncated += 1
                cd_rows.append(
                    (prev.t_start, prev.v_start, prev.t_end, prev.v_end)
                )
                ab_rows.append(ab_row)
                self_flags.append(False)

        with _BATCH_SECONDS.time():
            batch = collect_features_batch(
                cd_rows, ab_rows, self_flags, self.epsilon
            )
            self.stats.n_segments += len(segments)
            self.stats.n_self_pairs += n_self
            self.stats.n_pairs += len(cd_rows) - n_self
            self.stats.n_truncated += n_truncated
            self.stats.absorb_batch(batch)
            self.store.add_features_bulk(batch)
        _PAIRS.inc(len(cd_rows) - n_self)
        _SELF_PAIRS.inc(n_self)
        if n_truncated:
            _TRUNCATED.inc(n_truncated)
        _BATCH_PAIRS.observe(len(cd_rows))

        self._history.extend(segments)
        self._last = segments[-1]
        horizon = self._last.t_end - self.window
        while self._history and self._history[0].t_end <= horizon:
            self._history.popleft()

    def reset_history(self) -> None:
        """Forget all previous segments (start of a new episode).

        Used for data gaps where interpolating across the outage is not
        wanted: subsequent segments pair only among themselves, so no
        reported event ever spans the gap.
        """
        self._history.clear()
        self._last = None

    def prime_history(self, segments: Iterable[DataSegment]) -> None:
        """Seed the pairing history without emitting any features.

        Used when resuming a crashed/stopped stream from a checkpoint:
        ``segments`` are segments *already stored* (in temporal order)
        whose features were extracted in the previous run.  They must
        still be pairable against future segments, but re-emitting them
        would duplicate stored features.
        """
        self._history.clear()
        self._last = None
        for segment in segments:
            if self._last is not None and segment.t_start != self._last.t_end:
                raise InvalidSeriesError(
                    "primed segments must be contiguous: got start "
                    f"{segment.t_start}, expected {self._last.t_end}"
                )
            self._history.append(segment)
            self._last = segment
        if self._last is not None:
            horizon = self._last.t_end - self.window
            while self._history and self._history[0].t_end <= horizon:
                self._history.popleft()

    def _emit(self, features: FeatureSet) -> None:
        self.stats._absorb(features)
        self.store.add(features)

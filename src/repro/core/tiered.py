"""Multi-tolerance tiered indexing (beyond-paper extension).

Section 6.1 observes: "If a query involves a larger magnitude of drop, a
larger ε is admissible and orders of magnitude of space saving can be
achieved."  A single SegDiff index must fix ε at build time, forcing the
most demanding future query to pay for every query.  A
:class:`TieredIndex` builds a small ladder of indexes at geometrically
spaced tolerances and routes each query to the *coarsest* tier whose
``2ε`` false-positive tolerance the caller accepts — deep-drop queries
run against an index an order of magnitude smaller and faster, while
precise queries still have the fine tier.

Every tier individually satisfies Theorem 1, so routing never loses a
true event; only the false-positive tolerance changes, and it is the
caller's explicit choice.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from ..datagen.series import TimeSeries
from ..errors import InvalidParameterError
from ..types import SegmentPair
from .index import SegDiffIndex

__all__ = ["TieredIndex", "LiveTieredIndex"]


class TieredIndex:
    """A ladder of SegDiff indexes over the same series.

    Parameters
    ----------
    epsilons:
        Build tolerances, e.g. ``(0.1, 0.4, 1.6)``.  Sorted internally.
    window:
        Shared query-span bound ``w``.
    """

    def __init__(
        self,
        epsilons: Sequence[float],
        window: float,
        resilience=None,
    ) -> None:
        eps = sorted(set(float(e) for e in epsilons))
        if not eps:
            raise InvalidParameterError("need at least one tolerance tier")
        if eps[0] < 0:
            raise InvalidParameterError("tolerances must be >= 0")
        self.epsilons = eps
        self.window = float(window)
        #: Optional :class:`repro.engine.ResiliencePolicy` applied to
        #: every tier's query session (each tier gets its own breaker,
        #: labelled by tier).
        self.resilience = resilience
        self._tiers: Dict[float, SegDiffIndex] = {}

    @classmethod
    def build(
        cls,
        series: TimeSeries,
        epsilons: Sequence[float],
        window: float,
        backend: str = "memory",
        resilience=None,
    ) -> "TieredIndex":
        """Build and finalize every tier over the same series."""
        tiered = cls(epsilons, window, resilience=resilience)
        for eps in tiered.epsilons:
            tiered._tiers[eps] = SegDiffIndex.build(
                series, eps, window, backend=backend,
                resilience=resilience, name=f"tier-{eps:g}",
            )
        return tiered

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def choose_tier(self, max_tolerance: Optional[float]) -> float:
        """The coarsest ε whose ``2ε`` bound fits ``max_tolerance``.

        ``max_tolerance`` is the caller's acceptable false-positive slack
        (same unit as the values): a returned period is guaranteed to
        contain an event within ``2ε`` of the threshold, so the chosen
        tier satisfies ``2ε <= max_tolerance``.  ``None`` means "use the
        finest tier".
        """
        if max_tolerance is None:
            return self.epsilons[0]
        if max_tolerance < 0:
            raise InvalidParameterError("max_tolerance must be >= 0")
        admissible = [e for e in self.epsilons if 2.0 * e <= max_tolerance]
        return admissible[-1] if admissible else self.epsilons[0]

    def tier(self, epsilon: float) -> SegDiffIndex:
        """Direct access to one tier's index."""
        if epsilon not in self._tiers:
            raise InvalidParameterError(
                f"no tier at epsilon={epsilon}; tiers: {self.epsilons}"
            )
        return self._tiers[epsilon]

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #

    def search_drops(
        self,
        t_threshold: float,
        v_threshold: float,
        max_tolerance: Optional[float] = None,
        mode: str = "index",
        cache: str = "warm",
    ) -> List[SegmentPair]:
        """Drop search routed to the coarsest admissible tier.

        A natural ``max_tolerance`` is a fraction of the drop magnitude,
        e.g. ``abs(v_threshold) * 0.2`` — "I accept periods whose deepest
        drop is within 20 % of what I asked for".  ``mode`` and ``cache``
        are the engine plan options of
        :meth:`SegDiffIndex.search_drops` (``"auto"`` included), passed
        through to the chosen tier unchanged.
        """
        eps = self.choose_tier(max_tolerance)
        return self._tiers[eps].search_drops(
            t_threshold, v_threshold, mode=mode, cache=cache
        )

    def search_jumps(
        self,
        t_threshold: float,
        v_threshold: float,
        max_tolerance: Optional[float] = None,
        mode: str = "index",
        cache: str = "warm",
    ) -> List[SegmentPair]:
        """Jump search routed to the coarsest admissible tier."""
        eps = self.choose_tier(max_tolerance)
        return self._tiers[eps].search_jumps(
            t_threshold, v_threshold, mode=mode, cache=cache
        )

    def search_outcome(
        self,
        kind: str,
        t_threshold: float,
        v_threshold: float,
        max_tolerance: Optional[float] = None,
        mode: str = "index",
        **kw,
    ):
        """Routed search with the full resilience verdict.

        Same tier routing as :meth:`search_drops`, but returns the
        chosen tier's :class:`repro.engine.QueryOutcome` (COMPLETE /
        DEGRADED plus completeness report) so a tiered deployment can
        run under deadlines and degraded modes like a single index.
        Accepts the :meth:`SegDiffIndex.search_outcome` keywords
        (``timeout_ms``, ``degrade``, ``cache``...).
        """
        eps = self.choose_tier(max_tolerance)
        return self._tiers[eps].search_outcome(
            kind, t_threshold, v_threshold, mode=mode, **kw
        )

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[float, object]:
        """Per-tier index stats keyed by ε."""
        return {eps: idx.stats() for eps, idx in self._tiers.items()}

    def total_disk_bytes(self) -> int:
        """Disk footprint of the whole ladder."""
        return sum(s.disk_bytes for s in (i.stats() for i in self._tiers.values()))

    def close(self) -> None:
        for index in self._tiers.values():
            index.close()
        self._tiers = {}

    def __enter__(self) -> "TieredIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LiveTieredIndex:
    """A ladder of :class:`~repro.core.live.LiveIndex` tiers.

    Every appended observation feeds every tier; queries route exactly
    like :class:`TieredIndex` but answer from each tier's partitioned
    live storage (so they see data up to the last closed segment, with
    snapshot isolation).  With a ``directory``, each tier seals into its
    own ``tier-{eps:g}/`` subdirectory and the whole ladder resumes from
    the *minimum* tier watermark — replay is idempotent per tier.
    """

    def __init__(
        self,
        epsilons: Sequence[float],
        window: float,
        directory: Optional[str] = None,
        **live_kw,
    ) -> None:
        from .live import LiveIndex  # late: core.live imports the engine

        eps = sorted(set(float(e) for e in epsilons))
        if not eps:
            raise InvalidParameterError("need at least one tolerance tier")
        if eps[0] < 0:
            raise InvalidParameterError("tolerances must be >= 0")
        self.epsilons = eps
        self.window = float(window)
        self.directory = directory
        self._tiers: Dict[float, "LiveIndex"] = {}
        for e in eps:
            tier_dir = self._tier_dir(e)
            if tier_dir is not None:
                self._tiers[e] = LiveIndex.open_or_create(
                    e, self.window, tier_dir, **live_kw
                )
            else:
                self._tiers[e] = LiveIndex(e, self.window, **live_kw)

    def _tier_dir(self, epsilon: float) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"tier-{epsilon:g}")

    # ------------------------------------------------------------------ #
    # ingest (fans out to every tier)
    # ------------------------------------------------------------------ #

    def append(self, t: float, v: float) -> None:
        for tier in self._tiers.values():
            tier.append(t, v)

    def append_array(self, ts, vs, **kw) -> None:
        for tier in self._tiers.values():
            tier.append_array(ts, vs, **kw)

    def mark_gap(self) -> None:
        for tier in self._tiers.values():
            tier.mark_gap()

    def seal(self) -> None:
        for tier in self._tiers.values():
            tier.seal()

    def finalize(self) -> None:
        for tier in self._tiers.values():
            tier.finalize()

    @property
    def watermark(self) -> Optional[float]:
        """The replay point: the minimum tier watermark (a producer
        resuming here is at-or-before every tier's skip horizon)."""
        marks = [t.watermark for t in self._tiers.values()]
        if any(m is None for m in marks):
            return None
        return min(marks)

    # ------------------------------------------------------------------ #
    # routing + search (TieredIndex semantics, live answers)
    # ------------------------------------------------------------------ #

    def choose_tier(self, max_tolerance: Optional[float]) -> float:
        return TieredIndex.choose_tier(self, max_tolerance)

    def tier(self, epsilon: float):
        if epsilon not in self._tiers:
            raise InvalidParameterError(
                f"no tier at epsilon={epsilon}; tiers: {self.epsilons}"
            )
        return self._tiers[epsilon]

    def search_drops(
        self,
        t_threshold: float,
        v_threshold: float,
        max_tolerance: Optional[float] = None,
        mode: str = "index",
        **kw,
    ) -> List[SegmentPair]:
        eps = self.choose_tier(max_tolerance)
        return self._tiers[eps].search_drops(
            t_threshold, v_threshold, mode=mode, **kw
        )

    def search_jumps(
        self,
        t_threshold: float,
        v_threshold: float,
        max_tolerance: Optional[float] = None,
        mode: str = "index",
        **kw,
    ) -> List[SegmentPair]:
        eps = self.choose_tier(max_tolerance)
        return self._tiers[eps].search_jumps(
            t_threshold, v_threshold, mode=mode, **kw
        )

    def snapshot(self, max_tolerance: Optional[float] = None):
        """A pinned snapshot of the routed tier."""
        return self._tiers[self.choose_tier(max_tolerance)].snapshot()

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[float, dict]:
        return {eps: tier.stats() for eps, tier in self._tiers.items()}

    def close(self) -> None:
        for tier in self._tiers.values():
            tier.close()
        self._tiers = {}

    def __enter__(self) -> "LiveTieredIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

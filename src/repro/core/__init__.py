"""The paper's primary contribution: the SegDiff framework.

* :mod:`feature_space` — feature points/segments, query regions, polygon
  clipping (Section 3's feature space).
* :mod:`parallelogram` — the Lemma 3 parallelogram summarizing all events
  across two data segments, with exact intersection tests.
* :mod:`corners` — the Table 2 / appendix six-case corner reduction and
  the ε-shifted feature-collection rules (Lemma 4).
* :mod:`extraction` — Algorithm 1 (windowed online feature extraction).
* :mod:`queries` — the point and line range queries of Section 4.4.
* :mod:`index` — :class:`SegDiffIndex`, the user-facing API.
* :mod:`results` — search hits and witness-event refinement.
* :mod:`guarantees` — Theorem 1 audits against brute-force ground truth.
"""

from .feature_space import FeaturePoint, FeatureSegment, QueryRegion
from .parallelogram import Parallelogram
from .corners import SlopeCase, classify_case, collect_features, FeatureSet
from .extraction import FeatureExtractor, ExtractionStats
from .index import SegDiffIndex, IndexStats
from .live import LiveIndex, LiveSnapshot
from .planner import QueryPlanner
from .tiered import TieredIndex, LiveTieredIndex
from .transect import TransectIndex, CorroboratedEvent
from .reporting import HitSummary, render_summary, summarize_hits
from .results import SearchHit, witness_event
from .guarantees import (
    audit_completeness,
    audit_soundness,
    true_event_witnesses,
    deepest_drop_between,
)

__all__ = [
    "FeaturePoint",
    "FeatureSegment",
    "QueryRegion",
    "Parallelogram",
    "SlopeCase",
    "classify_case",
    "collect_features",
    "FeatureSet",
    "FeatureExtractor",
    "ExtractionStats",
    "SegDiffIndex",
    "IndexStats",
    "LiveIndex",
    "LiveSnapshot",
    "QueryPlanner",
    "TieredIndex",
    "LiveTieredIndex",
    "TransectIndex",
    "CorroboratedEvent",
    "SearchHit",
    "witness_event",
    "HitSummary",
    "summarize_hits",
    "render_summary",
    "audit_completeness",
    "audit_soundness",
    "true_event_witnesses",
    "deepest_drop_between",
]

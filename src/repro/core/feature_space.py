"""Feature space: the (Δt, Δv) plane of Section 3.

An event between two points of the signal maps to the *feature point*
``(Δt, Δv)``; a user's search maps to a *query region*

* drop search: ``{ (Δt, Δv) : 0 < Δt <= T, Δv <= V }`` with ``V < 0``;
* jump search: ``{ (Δt, Δv) : 0 < Δt <= T, Δv >= V }`` with ``V > 0``.

This module provides the primitive geometry: points, segments, regions,
segment/region intersection, and convex-polygon clipping by half-planes
(used by :mod:`repro.core.parallelogram` for exact intersection tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import InvalidParameterError

__all__ = ["FeaturePoint", "FeatureSegment", "QueryRegion", "clip_halfplane"]

_EPS = 1e-12


@dataclass(frozen=True)
class FeaturePoint:
    """A point ``(dt, dv)`` in feature space."""

    dt: float
    dv: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.dt) and math.isfinite(self.dv)):
            raise InvalidParameterError("feature point must be finite")
        if self.dt < 0:
            raise InvalidParameterError(
                f"feature points have non-negative time span, got dt={self.dt}"
            )

    def shifted(self, dv_offset: float) -> "FeaturePoint":
        """The point shifted vertically by ``dv_offset`` (Lemma 4)."""
        return FeaturePoint(self.dt, self.dv + dv_offset)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.dt, self.dv)


@dataclass(frozen=True)
class FeatureSegment:
    """A straight segment between two feature points, ``p.dt <= q.dt``."""

    p: FeaturePoint
    q: FeaturePoint

    def __post_init__(self) -> None:
        if self.p.dt > self.q.dt:
            raise InvalidParameterError(
                "feature segment must be ordered by increasing dt"
            )

    def value_at(self, dt: float) -> float:
        """Linear interpolation of dv at the given dt (within the span)."""
        if not (self.p.dt <= dt <= self.q.dt):
            raise InvalidParameterError(
                f"dt={dt} outside segment span [{self.p.dt}, {self.q.dt}]"
            )
        span = self.q.dt - self.p.dt
        if span <= _EPS:
            return min(self.p.dv, self.q.dv)
        frac = (dt - self.p.dt) / span
        return self.p.dv + frac * (self.q.dv - self.p.dv)

    def shifted(self, dv_offset: float) -> "FeatureSegment":
        """The segment shifted vertically by ``dv_offset``."""
        return FeatureSegment(self.p.shifted(dv_offset), self.q.shifted(dv_offset))


@dataclass(frozen=True)
class QueryRegion:
    """A drop or jump query region in feature space.

    ``kind`` is ``"drop"`` (requires ``V < 0``) or ``"jump"`` (requires
    ``V > 0``); ``t_threshold`` is the paper's ``T``, ``v_threshold`` its
    ``V``.
    """

    kind: str
    t_threshold: float
    v_threshold: float

    def __post_init__(self) -> None:
        if self.kind not in ("drop", "jump"):
            raise InvalidParameterError(f"unknown query kind {self.kind!r}")
        if self.t_threshold <= 0:
            raise InvalidParameterError("T must be positive")
        if self.kind == "drop" and not (self.v_threshold < 0):
            raise InvalidParameterError("drop search requires V < 0")
        if self.kind == "jump" and not (self.v_threshold > 0):
            raise InvalidParameterError("jump search requires V > 0")

    @classmethod
    def drop(cls, t_threshold: float, v_threshold: float) -> "QueryRegion":
        """The drop region ``0 < dt <= T, dv <= V``."""
        return cls("drop", t_threshold, v_threshold)

    @classmethod
    def jump(cls, t_threshold: float, v_threshold: float) -> "QueryRegion":
        """The jump region ``0 < dt <= T, dv >= V``."""
        return cls("jump", t_threshold, v_threshold)

    # ------------------------------------------------------------------ #
    # membership and intersection
    # ------------------------------------------------------------------ #

    def contains(self, point: FeaturePoint) -> bool:
        """Exact membership, honouring the open boundary at ``dt = 0``."""
        if not (0.0 < point.dt <= self.t_threshold):
            return False
        if self.kind == "drop":
            return point.dv <= self.v_threshold
        return point.dv >= self.v_threshold

    def intersects_segment(self, segment: FeatureSegment) -> bool:
        """Exact test: does the segment meet the region anywhere?

        Used as the geometric oracle the SQL point/line queries are
        validated against in tests.
        """
        polygon = [segment.p.as_tuple(), segment.q.as_tuple()]
        clipped = self.clip_polygon(polygon)
        return _has_positive_dt(clipped)

    def clip_polygon(
        self, polygon: Sequence[Tuple[float, float]]
    ) -> List[Tuple[float, float]]:
        """Clip a convex polygon (or segment) to the region's closure.

        The closure replaces ``0 < dt`` with ``0 <= dt``; callers use
        :func:`_has_positive_dt` (via :meth:`intersects_polygon`) to apply
        the open boundary.
        """
        poly = list(polygon)
        # dt >= 0
        poly = clip_halfplane(poly, 1.0, 0.0, 0.0, keep_geq=True)
        # dt <= T
        poly = clip_halfplane(poly, 1.0, 0.0, self.t_threshold, keep_geq=False)
        if self.kind == "drop":
            poly = clip_halfplane(poly, 0.0, 1.0, self.v_threshold, keep_geq=False)
        else:
            poly = clip_halfplane(poly, 0.0, 1.0, self.v_threshold, keep_geq=True)
        return poly

    def intersects_polygon(
        self, polygon: Sequence[Tuple[float, float]]
    ) -> bool:
        """Exact polygon/region intersection with the open ``dt=0`` edge."""
        return _has_positive_dt(self.clip_polygon(polygon))


def clip_halfplane(
    polygon: Sequence[Tuple[float, float]],
    a: float,
    b: float,
    c: float,
    keep_geq: bool,
) -> List[Tuple[float, float]]:
    """Sutherland–Hodgman clip of a convex polygon by one half-plane.

    Keeps points with ``a*x + b*y >= c`` (``keep_geq=True``) or ``<= c``.
    Degenerate inputs (a segment given as two vertices, a single point) are
    handled: the result may again be a segment or point.
    """
    pts = list(polygon)
    if not pts:
        return []

    def side(p: Tuple[float, float]) -> float:
        val = a * p[0] + b * p[1] - c
        return val if keep_geq else -val

    if len(pts) == 1:
        return pts if side(pts[0]) >= -_EPS else []

    out: List[Tuple[float, float]] = []
    n = len(pts)
    for i in range(n):
        cur = pts[i]
        nxt = pts[(i + 1) % n]
        s_cur, s_nxt = side(cur), side(nxt)
        if s_cur >= -_EPS:
            out.append(cur)
        if (s_cur > _EPS and s_nxt < -_EPS) or (s_cur < -_EPS and s_nxt > _EPS):
            frac = s_cur / (s_cur - s_nxt)
            out.append(
                (cur[0] + frac * (nxt[0] - cur[0]), cur[1] + frac * (nxt[1] - cur[1]))
            )
    # remove consecutive duplicates introduced by clipping at vertices
    dedup: List[Tuple[float, float]] = []
    for p in out:
        if not dedup or abs(p[0] - dedup[-1][0]) > _EPS or abs(p[1] - dedup[-1][1]) > _EPS:
            dedup.append(p)
    if len(dedup) > 1 and (
        abs(dedup[0][0] - dedup[-1][0]) <= _EPS
        and abs(dedup[0][1] - dedup[-1][1]) <= _EPS
    ):
        dedup.pop()
    return dedup


def _has_positive_dt(polygon: Sequence[Tuple[float, float]]) -> bool:
    """Whether any clipped point has ``dt > 0`` (open boundary at dt=0)."""
    return any(p[0] > _EPS for p in polygon)

"""Multi-sensor search across a transect.

The paper's deployment is not one sensor but twenty-five, arranged in two
lines across a canyon, and the biology question is inherently spatial: a
*real* cold-air-drainage event shows up on several sensors at once, with
the canyon bottom leading.  This module scales the single-series SegDiff
index to the whole transect:

* :class:`TransectIndex` — one SegDiff index per sensor behind a single
  build/search façade;
* per-sensor search (``search_drops``) and the cross-sensor
  *corroborated* search (``search_corroborated``): time windows in which
  at least ``min_sensors`` sensors report a drop ending within a
  ``slack``-wide alignment window — the transect-level CAD detector.

Every per-sensor result keeps its Theorem 1 guarantee; corroboration is a
conjunction of per-sensor guarantees, so a corroborated event window
misses no true multi-sensor event either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..datagen.series import TimeSeries
from ..errors import InvalidParameterError
from ..types import SegmentPair
from .index import SegDiffIndex

__all__ = ["TransectIndex", "CorroboratedEvent"]


@dataclass(frozen=True)
class CorroboratedEvent:
    """A drop seen by several sensors at (roughly) the same time.

    ``window`` bounds the drop *end* times across the participating
    sensors; ``hits`` maps each sensor to the pairs whose end period
    falls inside the window.
    """

    window: Tuple[float, float]
    hits: Mapping[str, Tuple[SegmentPair, ...]]

    @property
    def n_sensors(self) -> int:
        return len(self.hits)

    @property
    def sensors(self) -> List[str]:
        return sorted(self.hits)


class TransectIndex:
    """SegDiff over a whole sensor transect.

    Parameters mirror :class:`SegDiffIndex`; ``backend`` applies to every
    per-sensor store.
    """

    def __init__(
        self,
        epsilon: float,
        window: float,
        backend: str = "memory",
    ) -> None:
        self.epsilon = float(epsilon)
        self.window = float(window)
        self.backend = backend
        self._indexes: Dict[str, SegDiffIndex] = {}

    @classmethod
    def build(
        cls,
        sensors: Mapping[str, TimeSeries],
        epsilon: float,
        window: float,
        backend: str = "memory",
    ) -> "TransectIndex":
        """Build finalized per-sensor indexes for every series."""
        if not sensors:
            raise InvalidParameterError("need at least one sensor series")
        transect = cls(epsilon, window, backend=backend)
        for name, series in sensors.items():
            transect._indexes[name] = SegDiffIndex.build(
                series, epsilon, window, backend=backend
            )
        return transect

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    @property
    def sensor_names(self) -> List[str]:
        return sorted(self._indexes)

    def __len__(self) -> int:
        return len(self._indexes)

    def index_for(self, sensor: str) -> SegDiffIndex:
        """The per-sensor index (KeyError for unknown sensors)."""
        if sensor not in self._indexes:
            raise InvalidParameterError(
                f"unknown sensor {sensor!r}; have {self.sensor_names}"
            )
        return self._indexes[sensor]

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #

    def search_drops(
        self,
        t_threshold: float,
        v_threshold: float,
        mode: str = "index",
        cache: str = "warm",
    ) -> Dict[str, List[SegmentPair]]:
        """Per-sensor drop search; sensors with no hits are omitted.

        ``mode`` and ``cache`` are the engine plan options of
        :meth:`SegDiffIndex.search_drops` (``"auto"`` included), applied
        to every per-sensor index.
        """
        out: Dict[str, List[SegmentPair]] = {}
        for name, index in self._indexes.items():
            pairs = index.search_drops(
                t_threshold, v_threshold, mode=mode, cache=cache
            )
            if pairs:
                out[name] = pairs
        return out

    def search_jumps(
        self,
        t_threshold: float,
        v_threshold: float,
        mode: str = "index",
        cache: str = "warm",
    ) -> Dict[str, List[SegmentPair]]:
        """Per-sensor jump search; sensors with no hits are omitted."""
        out: Dict[str, List[SegmentPair]] = {}
        for name, index in self._indexes.items():
            pairs = index.search_jumps(
                t_threshold, v_threshold, mode=mode, cache=cache
            )
            if pairs:
                out[name] = pairs
        return out

    def search_corroborated(
        self,
        t_threshold: float,
        v_threshold: float,
        min_sensors: int = 2,
        slack: float = 1800.0,
        mode: str = "index",
        cache: str = "warm",
    ) -> List[CorroboratedEvent]:
        """Drops seen by at least ``min_sensors`` sensors within ``slack``.

        A hit's *end interval* is ``[t_b, t_a]``.  Two hits corroborate
        when their end intervals, each padded by ``slack / 2``, overlap.
        Overlapping groups are merged with a sweep over interval
        endpoints, then groups with enough distinct sensors are reported.
        """
        if min_sensors < 1:
            raise InvalidParameterError("min_sensors must be >= 1")
        if min_sensors > len(self._indexes):
            raise InvalidParameterError(
                f"min_sensors={min_sensors} exceeds the "
                f"{len(self._indexes)} sensors indexed"
            )
        if slack < 0:
            raise InvalidParameterError("slack must be >= 0")

        per_sensor = self.search_drops(
            t_threshold, v_threshold, mode=mode, cache=cache
        )
        intervals: List[Tuple[float, float, str, SegmentPair]] = []
        half = slack / 2.0
        for sensor, pairs in per_sensor.items():
            for pair in pairs:
                intervals.append(
                    (pair.t_b - half, pair.t_a + half, sensor, pair)
                )
        if not intervals:
            return []

        intervals.sort(key=lambda iv: iv[0])
        events: List[CorroboratedEvent] = []
        group: List[Tuple[float, float, str, SegmentPair]] = []
        group_end = float("-inf")
        for iv in intervals:
            if group and iv[0] > group_end:
                events.extend(
                    self._emit_group(group, min_sensors, half)
                )
                group = []
                group_end = float("-inf")
            group.append(iv)
            group_end = max(group_end, iv[1])
        events.extend(self._emit_group(group, min_sensors, half))
        return events

    @staticmethod
    def _emit_group(
        group: List[Tuple[float, float, str, SegmentPair]],
        min_sensors: int,
        half: float,
    ) -> List[CorroboratedEvent]:
        if not group:
            return []
        sensors: Dict[str, List[SegmentPair]] = {}
        for _lo, _hi, sensor, pair in group:
            sensors.setdefault(sensor, []).append(pair)
        if len(sensors) < min_sensors:
            return []
        lo = min(iv[0] for iv in group) + half
        hi = max(iv[1] for iv in group) - half
        return [
            CorroboratedEvent(
                window=(lo, hi),
                hits={s: tuple(ps) for s, ps in sensors.items()},
            )
        ]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """Aggregate size/composition across sensors."""
        per = {name: idx.stats() for name, idx in self._indexes.items()}
        return {
            "sensors": len(per),
            "observations": sum(s.n_observations for s in per.values()),
            "segments": sum(s.n_segments for s in per.values()),
            "feature_rows": sum(s.store_counts.total for s in per.values()),
            "disk_bytes": sum(s.disk_bytes for s in per.values()),
            "per_sensor": per,
        }

    def close(self) -> None:
        for index in self._indexes.values():
            index.close()
        self._indexes = {}

    def __enter__(self) -> "TransectIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

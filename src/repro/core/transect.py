"""Multi-sensor search across a transect.

The paper's deployment is not one sensor but twenty-five, arranged in two
lines across a canyon, and the biology question is inherently spatial: a
*real* cold-air-drainage event shows up on several sensors at once, with
the canyon bottom leading.  This module scales the single-series SegDiff
index to the whole transect:

* :class:`TransectIndex` — one SegDiff index per sensor behind a single
  build/search façade;
* per-sensor search (``search_drops``) and the cross-sensor
  *corroborated* search (``search_corroborated``): time windows in which
  at least ``min_sensors`` sensors report a drop ending within a
  ``slack``-wide alignment window — the transect-level CAD detector.

Every per-sensor result keeps its Theorem 1 guarantee; corroboration is a
conjunction of per-sensor guarantees, so a corroborated event window
misses no true multi-sensor event either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..datagen.series import TimeSeries
from ..errors import InvalidParameterError
from ..types import SegmentPair
from .index import SegDiffIndex

__all__ = ["TransectIndex", "CorroboratedEvent"]


@dataclass(frozen=True)
class CorroboratedEvent:
    """A drop seen by several sensors at (roughly) the same time.

    ``window`` bounds the drop *end* times across the participating
    sensors; ``hits`` maps each sensor to the pairs whose end period
    falls inside the window.
    """

    window: Tuple[float, float]
    hits: Mapping[str, Tuple[SegmentPair, ...]]

    @property
    def n_sensors(self) -> int:
        return len(self.hits)

    @property
    def sensors(self) -> List[str]:
        return sorted(self.hits)


class TransectIndex:
    """SegDiff over a whole sensor transect.

    Parameters mirror :class:`SegDiffIndex`; ``backend`` applies to every
    per-sensor store.
    """

    def __init__(
        self,
        epsilon: float,
        window: float,
        backend: str = "memory",
        resilience=None,
    ) -> None:
        self.epsilon = float(epsilon)
        self.window = float(window)
        self.backend = backend
        #: Optional :class:`repro.engine.ResiliencePolicy` applied to
        #: every per-sensor query session (one breaker per sensor,
        #: labelled by sensor name).
        self.resilience = resilience
        self._indexes: Dict[str, SegDiffIndex] = {}

    @classmethod
    def build(
        cls,
        sensors: Mapping[str, TimeSeries],
        epsilon: float,
        window: float,
        backend: str = "memory",
        resilience=None,
    ) -> "TransectIndex":
        """Build finalized per-sensor indexes for every series."""
        if not sensors:
            raise InvalidParameterError("need at least one sensor series")
        transect = cls(epsilon, window, backend=backend, resilience=resilience)
        for name, series in sensors.items():
            transect._indexes[name] = SegDiffIndex.build(
                series, epsilon, window, backend=backend,
                resilience=resilience, name=str(name),
            )
        return transect

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    @property
    def sensor_names(self) -> List[str]:
        return sorted(self._indexes)

    def __len__(self) -> int:
        return len(self._indexes)

    def index_for(self, sensor: str) -> SegDiffIndex:
        """The per-sensor index (KeyError for unknown sensors)."""
        if sensor not in self._indexes:
            raise InvalidParameterError(
                f"unknown sensor {sensor!r}; have {self.sensor_names}"
            )
        return self._indexes[sensor]

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #

    def search_drops(
        self,
        t_threshold: float,
        v_threshold: float,
        mode: str = "index",
        cache: str = "warm",
    ) -> Dict[str, List[SegmentPair]]:
        """Per-sensor drop search; sensors with no hits are omitted.

        ``mode`` and ``cache`` are the engine plan options of
        :meth:`SegDiffIndex.search_drops` (``"auto"`` included), applied
        to every per-sensor index.
        """
        out: Dict[str, List[SegmentPair]] = {}
        for name, index in self._indexes.items():
            pairs = index.search_drops(
                t_threshold, v_threshold, mode=mode, cache=cache
            )
            if pairs:
                out[name] = pairs
        return out

    def search_jumps(
        self,
        t_threshold: float,
        v_threshold: float,
        mode: str = "index",
        cache: str = "warm",
    ) -> Dict[str, List[SegmentPair]]:
        """Per-sensor jump search; sensors with no hits are omitted."""
        out: Dict[str, List[SegmentPair]] = {}
        for name, index in self._indexes.items():
            pairs = index.search_jumps(
                t_threshold, v_threshold, mode=mode, cache=cache
            )
            if pairs:
                out[name] = pairs
        return out

    def search_outcome(
        self,
        kind: str,
        t_threshold: float,
        v_threshold: float,
        mode: str = "index",
        sensors=None,
        **kw,
    ):
        """Transect-wide search with the full resilience verdict.

        Routes through :meth:`as_sharded` — per-sensor scatter-gather
        with a merged :class:`repro.engine.QueryOutcome` whose
        completeness report names any sensor whose index failed or
        timed out, instead of one bad sensor failing the whole
        transect.  ``sensors`` restricts routing; remaining keywords
        (``timeout_ms``, ``degrade``, ``cache``) pass through.
        """
        return self.as_sharded().search_outcome(
            kind, t_threshold, v_threshold, mode=mode, sensors=sensors,
            **kw,
        )

    def as_sharded(self):
        """This transect as a :class:`repro.engine.sharding.ShardedIndex`.

        One single-replica shard per sensor, wrapping the *existing*
        per-sensor indexes (no copy; closing either object closes the
        shared stores).  The natural entry point for the 25-sensor
        deployment: scatter-gather, per-shard completeness, and — after
        :meth:`SegDiffIndex.seal_checksums` on each index — verify and
        repair.  Cached after the first call.
        """
        from ..engine.sharding import Shard, ShardedIndex, ShardSpec

        cached = getattr(self, "_sharded", None)
        if cached is not None:
            return cached
        shards = []
        for name, index in self._indexes.items():
            segments = index.segments
            shards.append(
                Shard(
                    ShardSpec(
                        shard_id=str(name),
                        t_min=segments[0].t_start if segments else 0.0,
                        t_max=segments[-1].t_end if segments else 0.0,
                        sensor=str(name),
                    ),
                    [index],
                )
            )
        self._sharded = ShardedIndex(shards, self.epsilon, self.window)
        return self._sharded

    def search_corroborated(
        self,
        t_threshold: float,
        v_threshold: float,
        min_sensors: int = 2,
        slack: float = 1800.0,
        mode: str = "index",
        cache: str = "warm",
    ) -> List[CorroboratedEvent]:
        """Drops seen by at least ``min_sensors`` sensors within ``slack``.

        A hit's *end interval* is ``[t_b, t_a]``.  Two hits corroborate
        when their end intervals, each padded by ``slack / 2``, overlap.
        Overlapping groups are merged with a sweep over interval
        endpoints, then groups with enough distinct sensors are reported.
        """
        if min_sensors < 1:
            raise InvalidParameterError("min_sensors must be >= 1")
        if min_sensors > len(self._indexes):
            raise InvalidParameterError(
                f"min_sensors={min_sensors} exceeds the "
                f"{len(self._indexes)} sensors indexed"
            )
        if slack < 0:
            raise InvalidParameterError("slack must be >= 0")

        per_sensor = self.search_drops(
            t_threshold, v_threshold, mode=mode, cache=cache
        )
        intervals: List[Tuple[float, float, str, SegmentPair]] = []
        half = slack / 2.0
        for sensor, pairs in per_sensor.items():
            for pair in pairs:
                intervals.append(
                    (pair.t_b - half, pair.t_a + half, sensor, pair)
                )
        if not intervals:
            return []

        intervals.sort(key=lambda iv: iv[0])
        events: List[CorroboratedEvent] = []
        group: List[Tuple[float, float, str, SegmentPair]] = []
        group_end = float("-inf")
        for iv in intervals:
            if group and iv[0] > group_end:
                events.extend(
                    self._emit_group(group, min_sensors, half)
                )
                group = []
                group_end = float("-inf")
            group.append(iv)
            group_end = max(group_end, iv[1])
        events.extend(self._emit_group(group, min_sensors, half))
        return events

    @staticmethod
    def _emit_group(
        group: List[Tuple[float, float, str, SegmentPair]],
        min_sensors: int,
        half: float,
    ) -> List[CorroboratedEvent]:
        if not group:
            return []
        sensors: Dict[str, List[SegmentPair]] = {}
        for _lo, _hi, sensor, pair in group:
            sensors.setdefault(sensor, []).append(pair)
        if len(sensors) < min_sensors:
            return []
        lo = min(iv[0] for iv in group) + half
        hi = max(iv[1] for iv in group) - half
        return [
            CorroboratedEvent(
                window=(lo, hi),
                hits={s: tuple(ps) for s, ps in sensors.items()},
            )
        ]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """Aggregate size/composition across sensors."""
        per = {name: idx.stats() for name, idx in self._indexes.items()}
        return {
            "sensors": len(per),
            "observations": sum(s.n_observations for s in per.values()),
            "segments": sum(s.n_segments for s in per.values()),
            "feature_rows": sum(s.store_counts.total for s in per.values()),
            "disk_bytes": sum(s.disk_bytes for s in per.values()),
            "per_sensor": per,
        }

    def close(self) -> None:
        sharded = getattr(self, "_sharded", None)
        if sharded is not None:
            # closes the shared per-sensor stores and the gather pool
            sharded.close()
            self._sharded = None
        else:
            for index in self._indexes.values():
                index.close()
        self._indexes = {}

    def __enter__(self) -> "TransectIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Summaries of search results for exploratory analysis.

The paper's workflow ends where the biologist's begins: "Once the
periods ... are found, biologists can further explore the characteristics
of data collected in these periods."  This module provides that first
round of exploration over a set of refined hits:

* per-day event counts (when does drainage happen?),
* hour-of-day distribution (the early-morning signature),
* depth and duration quantiles,
* a plain-text report assembling all of it.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import InvalidParameterError
from .results import SearchHit

__all__ = ["HitSummary", "summarize_hits", "render_summary"]

DAY = 86_400.0
HOUR = 3_600.0


@dataclass(frozen=True)
class HitSummary:
    """Aggregate statistics over a set of witnessed hits."""

    n_hits: int
    n_witnessed: int
    events_per_day: Dict[int, int]
    events_per_hour_of_day: Dict[int, int]
    depth_quantiles: Tuple[float, float, float]  # (25 %, median, 75 %)
    deepest: float
    duration_quantiles: Tuple[float, float, float]  # seconds
    longest: float

    @property
    def busiest_day(self) -> int:
        """Day index with the most events (-1 when empty)."""
        if not self.events_per_day:
            return -1
        return max(self.events_per_day, key=lambda d: self.events_per_day[d])

    @property
    def peak_hour(self) -> int:
        """Hour of day with the most event endings (-1 when empty)."""
        if not self.events_per_hour_of_day:
            return -1
        return max(
            self.events_per_hour_of_day,
            key=lambda h: self.events_per_hour_of_day[h],
        )


def summarize_hits(hits: Sequence[SearchHit]) -> HitSummary:
    """Summarize refined hits (see :func:`repro.core.results.rank_hits`).

    Hits without a witness are counted but excluded from the event
    statistics.
    """
    witnessed = [h for h in hits if h.witness is not None]
    if not witnessed:
        return HitSummary(
            n_hits=len(hits),
            n_witnessed=0,
            events_per_day={},
            events_per_hour_of_day={},
            depth_quantiles=(0.0, 0.0, 0.0),
            deepest=0.0,
            duration_quantiles=(0.0, 0.0, 0.0),
            longest=0.0,
        )

    ends = np.array([h.witness.t_second for h in witnessed])
    depths = np.array([abs(h.witness.dv) for h in witnessed])
    durations = np.array([h.witness.dt for h in witnessed])

    per_day = Counter(int(math.floor(t / DAY)) for t in ends)
    per_hour = Counter(int((t % DAY) // HOUR) for t in ends)

    def quantiles(arr: np.ndarray) -> Tuple[float, float, float]:
        q = np.quantile(arr, [0.25, 0.5, 0.75])
        return (float(q[0]), float(q[1]), float(q[2]))

    return HitSummary(
        n_hits=len(hits),
        n_witnessed=len(witnessed),
        events_per_day=dict(sorted(per_day.items())),
        events_per_hour_of_day=dict(sorted(per_hour.items())),
        depth_quantiles=quantiles(depths),
        deepest=float(depths.max()),
        duration_quantiles=quantiles(durations),
        longest=float(durations.max()),
    )


def render_summary(summary: HitSummary, bar_width: int = 40) -> str:
    """A plain-text exploration report with an hour-of-day histogram."""
    if bar_width < 1:
        raise InvalidParameterError("bar_width must be >= 1")
    lines: List[str] = []
    lines.append(
        f"{summary.n_hits} periods, {summary.n_witnessed} with witnessed events"
    )
    if summary.n_witnessed == 0:
        return "\n".join(lines)

    q25, q50, q75 = summary.depth_quantiles
    lines.append(
        f"depth: median {q50:.2f} (IQR {q25:.2f}-{q75:.2f}), "
        f"deepest {summary.deepest:.2f}"
    )
    d25, d50, d75 = summary.duration_quantiles
    lines.append(
        f"duration: median {d50 / 60:.0f} min "
        f"(IQR {d25 / 60:.0f}-{d75 / 60:.0f}), longest {summary.longest / 60:.0f} min"
    )
    lines.append(
        f"busiest day: day {summary.busiest_day} "
        f"({summary.events_per_day.get(summary.busiest_day, 0)} events); "
        f"peak hour: {summary.peak_hour:02d}:00"
    )
    lines.append("events by hour of day:")
    peak = max(summary.events_per_hour_of_day.values())
    for hour in range(24):
        count = summary.events_per_hour_of_day.get(hour, 0)
        bar = "#" * int(round(bar_width * count / peak)) if count else ""
        lines.append(f"  {hour:02d}h {count:>4} {bar}")
    return "\n".join(lines)

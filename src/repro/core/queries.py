"""The standard database queries of Section 4.4.

A drop (jump) search is the union of

* a **point query** over stored corner features — is the corner inside the
  query region? — and
* a **line query** over stored boundary edges — do both ends lie outside
  the region while the edge crosses it?

Both are expressed here twice: as plain-Python/numpy predicates (used by
the in-memory store and as the oracle in tests) and as SQL text (used by
the SQLite store).  The line-crossing test uses the geometrically correct
``Δv' + slope·(T − Δt')`` form (see DESIGN.md §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from .feature_space import QueryRegion

__all__ = [
    "DropQuery",
    "JumpQuery",
    "point_mask",
    "line_mask",
    "point_match",
    "line_match",
    "point_query_sql",
    "line_query_sql",
    "point_candidate_sql",
    "line_candidate_sql",
]


@dataclass(frozen=True)
class DropQuery:
    """A drop search: ``0 < Δt <= T`` and ``Δv <= V`` with ``V < 0``."""

    t_threshold: float
    v_threshold: float

    def __post_init__(self) -> None:
        if self.t_threshold <= 0:
            raise InvalidParameterError("T must be positive")
        if not (self.v_threshold < 0):
            raise InvalidParameterError("drop search requires V < 0")

    @property
    def region(self) -> QueryRegion:
        return QueryRegion.drop(self.t_threshold, self.v_threshold)

    kind = "drop"


@dataclass(frozen=True)
class JumpQuery:
    """A jump search: ``0 < Δt <= T`` and ``Δv >= V`` with ``V > 0``."""

    t_threshold: float
    v_threshold: float

    def __post_init__(self) -> None:
        if self.t_threshold <= 0:
            raise InvalidParameterError("T must be positive")
        if not (self.v_threshold > 0):
            raise InvalidParameterError("jump search requires V > 0")

    @property
    def region(self) -> QueryRegion:
        return QueryRegion.jump(self.t_threshold, self.v_threshold)

    kind = "jump"


# ---------------------------------------------------------------------- #
# vectorized predicates (memory store / oracle)
# ---------------------------------------------------------------------- #


def point_mask(
    kind: str, dt: np.ndarray, dv: np.ndarray, t_thr: float, v_thr: float
) -> np.ndarray:
    """Boolean mask of stored corner features inside the query region."""
    if kind == "drop":
        return (dt <= t_thr) & (dv <= v_thr)
    if kind == "jump":
        return (dt <= t_thr) & (dv >= v_thr)
    raise InvalidParameterError(f"unknown query kind {kind!r}")


def line_mask(
    kind: str,
    dt1: np.ndarray,
    dv1: np.ndarray,
    dt2: np.ndarray,
    dv2: np.ndarray,
    t_thr: float,
    v_thr: float,
) -> np.ndarray:
    """Boolean mask of boundary edges crossing the region, both ends out.

    Ends are stored with ``dt1 <= dt2``.  Under the crossing preconditions
    ``dt1 <= T < dt2`` the denominator is strictly positive, so the value
    of the edge's line at ``Δt = T`` is well-defined.
    """
    if kind == "drop":
        ends_out = (dt1 <= t_thr) & (dv1 > v_thr) & (dt2 > t_thr) & (dv2 < v_thr)
    elif kind == "jump":
        ends_out = (dt1 <= t_thr) & (dv1 < v_thr) & (dt2 > t_thr) & (dv2 > v_thr)
    else:
        raise InvalidParameterError(f"unknown query kind {kind!r}")
    # evaluate the edge at dt = T only where the preconditions hold
    value_at_t = np.full_like(dv1, np.nan, dtype=float)
    idx = np.nonzero(ends_out)[0]
    if idx.size:
        slope = (dv2[idx] - dv1[idx]) / (dt2[idx] - dt1[idx])
        value_at_t[idx] = dv1[idx] + slope * (t_thr - dt1[idx])
    with np.errstate(invalid="ignore"):
        if kind == "drop":
            crosses = value_at_t <= v_thr
        else:
            crosses = value_at_t >= v_thr
    return ends_out & crosses


# ---------------------------------------------------------------------- #
# scalar predicates (row-at-a-time backends: MiniDB key filtering)
# ---------------------------------------------------------------------- #


def point_match(
    kind: str, dt: float, dv: float, t_thr: float, v_thr: float
) -> bool:
    """Scalar form of :func:`point_mask` for one stored corner."""
    if dt > t_thr:
        return False
    if kind == "drop":
        return dv <= v_thr
    if kind == "jump":
        return dv >= v_thr
    raise InvalidParameterError(f"unknown query kind {kind!r}")


def line_match(
    kind: str,
    dt1: float,
    dv1: float,
    dt2: float,
    dv2: float,
    t_thr: float,
    v_thr: float,
) -> bool:
    """Scalar form of :func:`line_mask` for one stored boundary edge."""
    if kind == "drop":
        if not (dt1 <= t_thr and dv1 > v_thr and dt2 > t_thr and dv2 < v_thr):
            return False
        value = dv1 + (dv2 - dv1) / (dt2 - dt1) * (t_thr - dt1)
        return value <= v_thr
    if kind == "jump":
        if not (dt1 <= t_thr and dv1 < v_thr and dt2 > t_thr and dv2 > v_thr):
            return False
        value = dv1 + (dv2 - dv1) / (dt2 - dt1) * (t_thr - dt1)
        return value >= v_thr
    raise InvalidParameterError(f"unknown query kind {kind!r}")


# ---------------------------------------------------------------------- #
# SQL builders (sqlite store)
# ---------------------------------------------------------------------- #

_RESULT_COLS = "t_d, t_c, t_b, t_a"
_POINT_ROW_COLS = "dt, dv, " + _RESULT_COLS
_LINE_ROW_COLS = "dt1, dv1, dt2, dv2, " + _RESULT_COLS


def point_query_sql(kind: str, table: str, index_hint: str = "") -> str:
    """SQL for the point query against ``table``.

    ``index_hint`` is inserted verbatim after the table name — pass
    ``"NOT INDEXED"`` for a forced sequential scan or
    ``"INDEXED BY <name>"`` to force the B-tree.
    """
    op = "<=" if kind == "drop" else ">="
    return (
        f"SELECT {_RESULT_COLS} FROM {table} {index_hint} "
        f"WHERE dt <= :T AND dv {op} :V"
    )


def line_query_sql(kind: str, table: str, index_hint: str = "") -> str:
    """SQL for the line query against ``table`` (both-ends-out crossing)."""
    if kind == "drop":
        end1, end2, cross = ">", "<", "<="
    elif kind == "jump":
        end1, end2, cross = "<", ">", ">="
    else:
        raise InvalidParameterError(f"unknown query kind {kind!r}")
    return (
        f"SELECT {_RESULT_COLS} FROM {table} {index_hint} "
        f"WHERE dt1 <= :T AND dv1 {end1} :V AND dt2 > :T AND dv2 {end2} :V "
        f"AND dv1 + (dv2 - dv1) / (dt2 - dt1) * (:T - dt1) {cross} :V"
    )


# ---------------------------------------------------------------------- #
# candidate SQL (engine physical primitives) — full rows, optional
# predicate pushdown
# ---------------------------------------------------------------------- #


def point_candidate_sql(
    kind: str,
    table: str,
    index_hint: str = "",
    with_t: bool = False,
    with_v: bool = False,
) -> str:
    """Full-row point candidates for the engine's physical interface.

    With neither flag this is a bare sequential pass; ``with_t`` adds the
    index-prunable ``dt <= :T`` bound, ``with_v`` pushes the value half
    of the predicate down too (an optimization only — the executor
    re-applies the exact predicate either way).
    """
    clauses = []
    if with_t:
        clauses.append("dt <= :T")
    if with_v:
        op = "<=" if kind == "drop" else ">="
        if kind not in ("drop", "jump"):
            raise InvalidParameterError(f"unknown query kind {kind!r}")
        clauses.append(f"dv {op} :V")
    where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
    return f"SELECT {_POINT_ROW_COLS} FROM {table} {index_hint}{where}"


def line_candidate_sql(
    kind: str,
    table: str,
    index_hint: str = "",
    with_t: bool = False,
    with_v: bool = False,
) -> str:
    """Full-row line candidates; flags as in :func:`point_candidate_sql`."""
    clauses = []
    if with_t:
        clauses.append("dt1 <= :T")
    if with_v:
        if kind == "drop":
            end1, end2, cross = ">", "<", "<="
        elif kind == "jump":
            end1, end2, cross = "<", ">", ">="
        else:
            raise InvalidParameterError(f"unknown query kind {kind!r}")
        clauses.append(f"dv1 {end1} :V")
        clauses.append("dt2 > :T")
        clauses.append(f"dv2 {end2} :V")
        clauses.append(
            f"dv1 + (dv2 - dv1) / (dt2 - dt1) * (:T - dt1) {cross} :V"
        )
    where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
    return f"SELECT {_LINE_ROW_COLS} FROM {table} {index_hint}{where}"

"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidSeriesError(ReproError):
    """A time series violates a structural requirement.

    Raised when timestamps are not strictly increasing, lengths of the
    time/value arrays disagree, or a series is too short for the requested
    operation.
    """


class InvalidParameterError(ReproError):
    """A user-supplied parameter is out of its legal domain.

    Examples: a negative error tolerance ``epsilon``, a non-positive window
    width ``w``, a drop threshold ``V >= 0``, or a time-span threshold
    ``T > w`` that the index was not built to support.
    """


class InvalidSegmentError(ReproError):
    """A data segment is malformed (zero or negative duration, NaN values)."""


class StorageError(ReproError):
    """A feature store could not complete an operation.

    Wraps lower-level ``sqlite3`` errors so callers are not coupled to the
    backend in use.
    """


class CorruptionError(StorageError):
    """Stored bytes fail an integrity check.

    Raised when a page's CRC32 trailer does not match its contents, when a
    write-ahead-log frame is torn, or when ``MiniDatabase.check()`` finds a
    structural inconsistency (broken heap chain, unsorted B+tree leaves,
    dangling rids).  Corrupt data is *never* silently returned.
    """


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent database.

    Raised when the write-ahead log itself is unusable (bad magic, wrong
    page size) or when replaying committed frames fails.  Distinct from
    :class:`CorruptionError` so callers can tell "the main file is bad"
    from "the recovery protocol failed".
    """


class QueryError(ReproError):
    """A search request could not be answered.

    Raised, for instance, when a drop search is issued with ``T`` larger
    than the window ``w`` the index was built with, or against an index
    that holds no features yet.
    """


class ResilienceError(QueryError):
    """Base class for the typed failures of the resilient serving layer.

    Every deliberate "the query did not run to completion" outcome —
    deadline exceeded, shed under load, cancelled — derives from this
    class, so callers can distinguish overload/latency failures from
    malformed requests while still catching both as :class:`QueryError`.
    """


class QueryTimeout(ResilienceError):
    """A query exceeded its deadline and was cooperatively cancelled.

    Carries whatever partial state existed at the moment the deadline
    fired: ``partial_pairs`` (candidate pairs from the operators that
    *did* finish — possibly incomplete, never trustworthy as a full
    answer) and ``completeness`` (a
    :class:`repro.engine.resilience.CompletenessReport` naming the
    operators that did not finish).
    """

    def __init__(self, message: str, partial_pairs=None, completeness=None):
        super().__init__(message)
        self.partial_pairs = partial_pairs if partial_pairs is not None else []
        self.completeness = completeness

    def attach(self, partial_pairs=None, completeness=None) -> None:
        """Enrich the in-flight exception with partial state (executor)."""
        if partial_pairs is not None and not self.partial_pairs:
            self.partial_pairs = partial_pairs
        if completeness is not None and self.completeness is None:
            self.completeness = completeness


class QueryCancelled(ResilienceError):
    """A query was cooperatively cancelled via ``QueryGuard.cancel()``."""


class QueryRejected(ResilienceError):
    """Admission control shed this query: the session was saturated and
    the bounded wait queue was full (or the queue wait timed out)."""


class CircuitOpenError(StorageError):
    """A circuit breaker is open: the backend failed repeatedly and calls
    are failing fast until the cool-down probe succeeds.

    Derives from :class:`StorageError` so existing "the store could not
    complete an operation" handling applies unchanged.
    """

"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidSeriesError(ReproError):
    """A time series violates a structural requirement.

    Raised when timestamps are not strictly increasing, lengths of the
    time/value arrays disagree, or a series is too short for the requested
    operation.
    """


class InvalidParameterError(ReproError):
    """A user-supplied parameter is out of its legal domain.

    Examples: a negative error tolerance ``epsilon``, a non-positive window
    width ``w``, a drop threshold ``V >= 0``, or a time-span threshold
    ``T > w`` that the index was not built to support.
    """


class InvalidSegmentError(ReproError):
    """A data segment is malformed (zero or negative duration, NaN values)."""


class StorageError(ReproError):
    """A feature store could not complete an operation.

    Wraps lower-level ``sqlite3`` errors so callers are not coupled to the
    backend in use.
    """


class CorruptionError(StorageError):
    """Stored bytes fail an integrity check.

    Raised when a page's CRC32 trailer does not match its contents, when a
    write-ahead-log frame is torn, or when ``MiniDatabase.check()`` finds a
    structural inconsistency (broken heap chain, unsorted B+tree leaves,
    dangling rids).  Corrupt data is *never* silently returned.
    """


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent database.

    Raised when the write-ahead log itself is unusable (bad magic, wrong
    page size) or when replaying committed frames fails.  Distinct from
    :class:`CorruptionError` so callers can tell "the main file is bad"
    from "the recovery protocol failed".
    """


class QueryError(ReproError):
    """A search request could not be answered.

    Raised, for instance, when a drop search is issued with ``T`` larger
    than the window ``w`` the index was built with, or against an index
    that holds no features yet.
    """

"""Physical execution of query plans against any feature store.

This module is the **only** implementation of the Section 4.4 search
semantics (point query ∪ line query → dedup → optional witness
refinement).  The three storage backends no longer carry their own
copies; they expose four narrow physical primitives instead::

    scan_points(kind, ...)        sequential pass over the point table
    probe_point_index(kind, T)    index candidates with Δt <= T
    scan_lines(kind, ...)         sequential pass over the line table
    probe_line_index(kind, T)     index candidates with Δt1 <= T

Each primitive returns a row array — ``(m, 6)`` for points
(``dt, dv, t_d, t_c, t_b, t_a``), ``(m, 8)`` for lines
(``dt1, dv1, dt2, dv2, t_d, t_c, t_b, t_a``).  Primitives may *pre-filter*
with the thresholds they are given (SQLite pushes the predicate into SQL,
MiniDB filters on B+tree keys before paying the heap fetch) but must
never drop a matching row; the executor always applies the exact
vectorized predicates, so pushdown is purely an optimization.

:func:`execute_batch` answers a whole grid of queries in one shared pass
per operator: candidates are fetched once for the widest ``T`` and every
query is answered with vectorized masks over the shared arrays — the
fast path for the Figures 16-24 workload.

Every store also carries columnar twins of the four primitives
(``scan_points_array`` & co., defaulted in the base class), returning
``(m, width)`` float64 blocks instead of row sequences.  The executor
prefers them (``vectorize=None``, the auto default) so candidates flow
from storage to the union/dedup as whole arrays with no per-row Python;
``vectorize=False`` forces the scalar primitives (the differential-test
and benchmark baseline), and stores that predate the array interface are
detected with ``hasattr`` and served by the scalar path either way.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.queries import line_mask, point_mask
from ..core.results import SearchHit, rank_hits
from ..errors import QueryTimeout, StorageError
from ..obs import context as obs_context
from ..obs.metrics import REGISTRY
from ..obs.tracing import span
from ..types import SegmentPair
from .plan import LineCrossOp, PointRangeOp, QueryPlan
from .resilience import (
    CompletenessReport,
    QueryGuard,
    ResultStatus,
    record_degraded,
)

__all__ = [
    "OperatorStats",
    "ExecutionResult",
    "execute",
    "execute_batch",
    "execute_partitioned",
    "execute_batch_partitioned",
]

_POINT_WIDTH = 6
_LINE_WIDTH = 8

_ROWS_FETCHED = {
    op: REGISTRY.counter(
        "repro_engine_rows_fetched_total",
        "Candidate rows returned by physical operators",
        {"operator": op},
    )
    for op in ("point_range", "line_cross")
}
_ROWS_MATCHED = {
    op: REGISTRY.counter(
        "repro_engine_rows_matched_total",
        "Rows surviving the exact predicate, per operator",
        {"operator": op},
    )
    for op in ("point_range", "line_cross")
}
_REFINE_CANDIDATES = REGISTRY.counter(
    "repro_engine_refine_candidates_total",
    "Candidate pairs entering witness refinement",
)
_REFINE_KEPT = REGISTRY.counter(
    "repro_engine_refine_kept_total",
    "Hits surviving witness refinement",
)
_PARTITIONS_SCANNED = REGISTRY.counter(
    "repro_engine_partitions_scanned_total",
    "Partitions actually read by partitioned execution",
)
_PARTITIONS_PRUNED = REGISTRY.counter(
    "repro_engine_partitions_pruned_total",
    "Partitions skipped because their time bounds miss the query t_range",
)


@dataclass(frozen=True)
class OperatorStats:
    """What one physical operator actually did."""

    operator: str  # "point_range" | "line_cross"
    table: str
    access: str
    rows_fetched: int  # candidate rows the primitive returned
    rows_matched: int  # rows surviving the exact predicate


@dataclass
class ExecutionResult:
    """The result of executing one :class:`QueryPlan`.

    ``status`` is :attr:`ResultStatus.COMPLETE` on the healthy path.
    Under a :class:`~repro.engine.resilience.QueryGuard` with
    ``degrade="candidates"`` it may be :attr:`ResultStatus.DEGRADED`
    (refine skipped near the deadline — ``pairs`` are a superset of the
    full answer by Theorem 1); in :func:`execute_batch` a cell whose
    store group failed is :attr:`ResultStatus.FAILED` with the cause in
    ``error``.
    """

    pairs: List[SegmentPair]
    op_stats: List[OperatorStats] = field(default_factory=list)
    hits: Optional[List[SearchHit]] = None  # set when the plan refines
    pages_read: Optional[int] = None  # MiniDB instrumentation
    status: ResultStatus = ResultStatus.COMPLETE
    completeness: Optional[CompletenessReport] = None
    error: Optional[BaseException] = None
    # set by the partitioned entry points; None on single-store execution
    partitions_scanned: Optional[int] = None
    partitions_pruned: Optional[int] = None
    #: The deduped ``(len(pairs), 4)`` ident matrix behind ``pairs`` —
    #: lets partitioned merges union arrays instead of tuple sets.
    #: Excluded from equality: an ndarray would poison dataclass ``==``.
    ident_rows: Optional[np.ndarray] = field(
        default=None, compare=False, repr=False
    )


def _as_rows(rows, width: int) -> np.ndarray:
    arr = np.asarray(rows, dtype=float)
    if arr.size == 0:
        return arr.reshape(0, width)
    return arr


def _use_arrays(store, vectorize: Optional[bool]) -> bool:
    """Whether to route fetches through the ``*_array`` primitives.

    ``None`` (auto) and ``True`` both require the store to actually have
    the array interface — duck-typed stores predating it fall back to
    the scalar primitives rather than fail; ``False`` forces the scalar
    path (the equivalence-test and benchmark baseline).
    """
    if vectorize is False:
        return False
    return hasattr(store, "scan_points_array")


def _fetch_point_rows(
    store, op: PointRangeOp, cache: str, pushdown: bool,
    guard: Optional[QueryGuard] = None, arrays: bool = False,
) -> np.ndarray:
    """Fetch point candidates through the guard's breaker when present.

    The ``guard`` kwarg is only forwarded to the primitive when set, so
    stores (and test stubs) that predate the resilience layer keep
    working and the disabled path stays byte-identical.  With ``arrays``
    the columnar primitive is used (same pushdown, same guard contract);
    the grid access path has no columnar twin and stays as is.
    """
    v = op.v_threshold if pushdown else None
    kw = {} if guard is None else {"guard": guard}
    if op.access == "scan":
        t = op.t_threshold if pushdown else None
        scan = store.scan_points_array if arrays else store.scan_points
        def fn():
            return scan(op.kind, t_threshold=t, v_threshold=v,
                        cache=cache, **kw)
    elif op.access == "grid":
        def fn():
            return store.probe_point_grid(
                op.kind, op.t_threshold, op.v_threshold
            )
    else:
        probe = (store.probe_point_index_array if arrays
                 else store.probe_point_index)
        def fn():
            return probe(op.kind, op.t_threshold, v_threshold=v,
                         cache=cache, **kw)
    rows = fn() if guard is None else guard.call(fn)
    return _as_rows(rows, _POINT_WIDTH)


def _fetch_line_rows(
    store, op: LineCrossOp, cache: str, pushdown: bool,
    guard: Optional[QueryGuard] = None, arrays: bool = False,
) -> np.ndarray:
    v = op.v_threshold if pushdown else None
    kw = {} if guard is None else {"guard": guard}
    if op.access == "scan":
        t = op.t_threshold if pushdown else None
        scan = store.scan_lines_array if arrays else store.scan_lines
        def fn():
            return scan(op.kind, t_threshold=t, v_threshold=v,
                        cache=cache, **kw)
    else:
        probe = (store.probe_line_index_array if arrays
                 else store.probe_line_index)
        def fn():
            return probe(op.kind, op.t_threshold, v_threshold=v,
                         cache=cache, **kw)
    rows = fn() if guard is None else guard.call(fn)
    return _as_rows(rows, _LINE_WIDTH)


def _t_range_mask(
    mask: np.ndarray,
    rows: np.ndarray,
    t_range,
    t_d_col: int,
    t_a_col: int,
) -> np.ndarray:
    """Narrow ``mask`` to rows whose ``[t_d, t_a]`` extent overlaps
    ``t_range`` (closed-interval overlap); identity when unrestricted."""
    if t_range is None:
        return mask
    lo, hi = t_range
    return mask & (rows[:, t_a_col] >= lo) & (rows[:, t_d_col] <= hi)


def _unique_rows(rows: np.ndarray, return_inverse: bool = False):
    """``np.unique(rows, axis=0)`` via a column ``lexsort``.

    Same distinct rows in the same ascending lexicographic order — i.e.
    the historical ``sorted(set(tuples))`` §4.4 result ordering — but
    several times faster than numpy's structured-dtype sort on the
    ``(n, 4)`` float ident blocks of the query hot path.  Caller
    guarantees ``rows`` is non-empty.
    """
    n = rows.shape[0]
    # lexsort's last key is primary, so feed columns right-to-left
    order = np.lexsort(tuple(rows[:, c] for c in range(
        rows.shape[1] - 1, -1, -1
    )))
    s = rows[order]
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.any(s[1:] != s[:-1], axis=1, out=keep[1:])
    uniq = s[keep]
    if not return_inverse:
        return uniq
    inverse = np.empty(n, dtype=np.intp)
    inverse[order] = np.cumsum(keep) - 1
    return uniq, inverse


def _union_dedup_rows(
    ident_blocks: Sequence[np.ndarray],
) -> Tuple[np.ndarray, List[SegmentPair]]:
    """THE Section 4.4 union/dedup: distinct segment pairs, sorted.

    ``tolist()`` yields Python floats, so the materialized pairs are
    bit-identical to the per-element ``float()`` construction they
    replace.  Returns the unique ident matrix alongside the pairs so
    callers can keep merging in array form.
    """
    stacked = np.vstack([b for b in ident_blocks]) if ident_blocks else (
        np.empty((0, 4))
    )
    if stacked.shape[0] == 0:
        return np.empty((0, 4)), []
    uniq = _unique_rows(stacked)
    return uniq, [SegmentPair(*t) for t in uniq.tolist()]


def _union_dedup(ident_blocks: Sequence[np.ndarray]) -> List[SegmentPair]:
    return _union_dedup_rows(ident_blocks)[1]


def execute(
    plan: QueryPlan,
    store,
    cache: str = "warm",
    data=None,
    pushdown: bool = True,
    guard: Optional[QueryGuard] = None,
    vectorize: Optional[bool] = None,
) -> ExecutionResult:
    """Run one plan against ``store``.

    ``data`` supplies the raw series (or approximation signal) a
    ``RefineOp`` refines against; ``pushdown=False`` forces the
    primitives to return raw candidates (used by EXPLAIN to report true
    candidate counts).  A ``guard`` makes execution cooperative: store
    fetches run under its circuit breaker, loops check its deadline, a
    mid-flight :class:`~repro.errors.QueryTimeout` leaves carrying the
    partial pairs of the operators that *did* finish, and
    ``degrade="candidates"`` skips refinement near the deadline (the
    result is then flagged :attr:`ResultStatus.DEGRADED`).
    ``vectorize`` picks the storage primitives (see :func:`_use_arrays`);
    both paths produce identical results, stats, and metrics.
    """
    pop, lop = plan.point_op, plan.line_op
    arrays = _use_arrays(store, vectorize)
    ident_blocks: List[np.ndarray] = []

    try:
        with span("op.point_range") as ps:
            if guard is not None:
                guard.start_op("point_range")
            prows = _fetch_point_rows(store, pop, cache, pushdown, guard,
                                      arrays)
            pmask = point_mask(
                pop.kind, prows[:, 0], prows[:, 1],
                pop.t_threshold, pop.v_threshold,
            )
            pmask = _t_range_mask(pmask, prows, plan.t_range, 2, 5)
            p_fetched, p_matched = int(prows.shape[0]), int(pmask.sum())
            ps.set_attribute("access", pop.access)
            ps.set_attribute("rows_fetched", p_fetched)
            ps.set_attribute("rows_matched", p_matched)
            obs_context.account(
                operator="point_range",
                candidate_shape=(p_fetched, _POINT_WIDTH),
                rows_fetched=p_fetched, rows_matched=p_matched,
            )
            ident_blocks.append(prows[pmask][:, 2:6])
            if guard is not None:
                guard.finish_op("point_range")
        with span("op.line_cross") as ls:
            if guard is not None:
                guard.start_op("line_cross")
            lrows = _fetch_line_rows(store, lop, cache, pushdown, guard,
                                     arrays)
            lmask = line_mask(
                lop.kind,
                lrows[:, 0],
                lrows[:, 1],
                lrows[:, 2],
                lrows[:, 3],
                lop.t_threshold,
                lop.v_threshold,
            )
            lmask = _t_range_mask(lmask, lrows, plan.t_range, 4, 7)
            l_fetched, l_matched = int(lrows.shape[0]), int(lmask.sum())
            ls.set_attribute("access", lop.access)
            ls.set_attribute("rows_fetched", l_fetched)
            ls.set_attribute("rows_matched", l_matched)
            obs_context.account(
                operator="line_cross",
                candidate_shape=(l_fetched, _LINE_WIDTH),
                rows_fetched=l_fetched, rows_matched=l_matched,
            )
            ident_blocks.append(lrows[lmask][:, 4:8])
            if guard is not None:
                guard.finish_op("line_cross")
        with span("op.union_dedup") as us:
            ident_rows, pairs = _union_dedup_rows(ident_blocks)
            us.set_attribute("pairs", len(pairs))
    except QueryTimeout as exc:
        # hand back whatever the finished operators produced
        exc.attach(
            partial_pairs=_union_dedup(ident_blocks),
            completeness=(
                guard.report("deadline exceeded") if guard is not None
                else None
            ),
        )
        raise

    _ROWS_FETCHED["point_range"].inc(p_fetched)
    _ROWS_MATCHED["point_range"].inc(p_matched)
    _ROWS_FETCHED["line_cross"].inc(l_fetched)
    _ROWS_MATCHED["line_cross"].inc(l_matched)

    stats = [
        OperatorStats(
            "point_range", pop.table, pop.access, p_fetched, p_matched,
        ),
        OperatorStats(
            "line_cross", lop.table, lop.access, l_fetched, l_matched,
        ),
    ]
    result = ExecutionResult(pairs=pairs, op_stats=stats,
                             ident_rows=ident_rows)
    if plan.refine_op is not None:
        if data is None:
            raise ValueError("plan has a RefineOp but no data was supplied")
        degrade = guard is not None and guard.degrade == "candidates"
        if degrade and guard.near_deadline():
            # Theorem 1: candidates have zero false negatives, so the
            # unrefined pairs are a sound superset of the full answer.
            result.status = ResultStatus.DEGRADED
            result.completeness = guard.report(
                "refine skipped near deadline; candidate pairs returned"
            )
            record_degraded()
            return result
        try:
            with span("op.refine") as rs:
                if guard is not None:
                    guard.start_op("refine")
                result.hits = rank_hits(
                    pairs, data, plan.query,
                    verified_only=plan.refine_op.verified_only,
                    guard=guard,
                )
                rs.set_attribute("candidates", len(pairs))
                rs.set_attribute("kept", len(result.hits))
                if guard is not None:
                    guard.finish_op("refine")
        except QueryTimeout as exc:
            if degrade:
                # candidates are already complete — fall back to them
                result.hits = None
                result.status = ResultStatus.DEGRADED
                result.completeness = guard.report(
                    "refine timed out; candidate pairs returned"
                )
                record_degraded()
                return result
            exc.attach(
                partial_pairs=pairs,
                completeness=(
                    guard.report("refine unfinished") if guard is not None
                    else None
                ),
            )
            raise
        _REFINE_CANDIDATES.inc(len(pairs))
        _REFINE_KEPT.inc(len(result.hits))
    return result


def _fetch_batch_group(
    store, kind: str, group: Sequence[QueryPlan], cache: str,
    guard: Optional[QueryGuard], arrays: bool = False,
):
    """The shared per-kind candidate fetch of :func:`execute_batch`."""
    t_max = max(p.query.t_threshold for p in group)
    all_index_points = all(p.point_op.access == "index" for p in group)
    all_index_lines = all(p.line_op.access == "index" for p in group)
    kw = {} if guard is None else {"guard": guard}

    with span("op.point_range.fetch") as ps:
        if all_index_points:
            probe = (store.probe_point_index_array if arrays
                     else store.probe_point_index)
            def pfn():
                return probe(kind, t_max, cache=cache, **kw)
            point_access = "index"
        else:
            scan = store.scan_points_array if arrays else store.scan_points
            def pfn():
                return scan(kind, cache=cache, **kw)
            point_access = "scan"
        prows = _as_rows(pfn() if guard is None else guard.call(pfn),
                         _POINT_WIDTH)
        ps.set_attribute("kind", kind)
        ps.set_attribute("rows_fetched", int(prows.shape[0]))
    with span("op.line_cross.fetch") as ls:
        if all_index_lines:
            probe = (store.probe_line_index_array if arrays
                     else store.probe_line_index)
            def lfn():
                return probe(kind, t_max, cache=cache, **kw)
            line_access = "index"
        else:
            scan = store.scan_lines_array if arrays else store.scan_lines
            def lfn():
                return scan(kind, cache=cache, **kw)
            line_access = "scan"
        lrows = _as_rows(lfn() if guard is None else guard.call(lfn),
                         _LINE_WIDTH)
        ls.set_attribute("kind", kind)
        ls.set_attribute("rows_fetched", int(lrows.shape[0]))
    return prows, point_access, lrows, line_access


def execute_batch(
    plans: Sequence[QueryPlan],
    store,
    cache: str = "warm",
    guard: Optional[QueryGuard] = None,
    vectorize: Optional[bool] = None,
) -> List[ExecutionResult]:
    """Answer many queries in one shared pass per operator.

    Plans are grouped by search kind; per group the point and line
    candidates are fetched **once** (for the widest ``T`` when every
    plan probes the index, otherwise via one sequential scan) and every
    query is answered with vectorized masks over the shared arrays.
    This replaces one store round-trip per query with one per operator —
    the (T, V)-grid fast path.

    Store failures are isolated per kind group: a fetch that raises
    :class:`~repro.errors.StorageError`/``OSError`` marks only that
    group's cells :attr:`ResultStatus.FAILED` (cause in ``error``) and
    the rest of the grid still returns.  A
    :class:`~repro.errors.QueryTimeout` aborts the whole batch — the
    deadline covers the batch, not one cell.
    """
    arrays = _use_arrays(store, vectorize)
    results: List[Optional[ExecutionResult]] = [None] * len(plans)
    by_kind: Dict[str, List[int]] = {}
    for i, plan in enumerate(plans):
        by_kind.setdefault(plan.kind, []).append(i)

    for kind, idxs in by_kind.items():
        group = [plans[i] for i in idxs]
        try:
            prows, point_access, lrows, line_access = _fetch_batch_group(
                store, kind, group, cache, guard, arrays
            )
        except QueryTimeout as exc:
            if guard is not None:
                exc.attach(completeness=guard.report("deadline exceeded"))
            raise
        except (StorageError, OSError) as exc:
            # one failing group must not abort the whole (T, V) grid
            report = CompletenessReport(
                unfinished=(f"{kind}.point_range", f"{kind}.line_cross"),
                reason=f"store failure for kind {kind!r}: {exc}",
            )
            for i in idxs:
                results[i] = ExecutionResult(
                    pairs=[],
                    status=ResultStatus.FAILED,
                    completeness=report,
                    error=exc,
                )
            continue
        # fetched once per group — counted once, not once per query
        _ROWS_FETCHED["point_range"].inc(int(prows.shape[0]))
        _ROWS_FETCHED["line_cross"].inc(int(lrows.shape[0]))
        obs_context.account(
            operator="point_range",
            candidate_shape=(int(prows.shape[0]), _POINT_WIDTH),
            rows_fetched=int(prows.shape[0]),
        )
        obs_context.account(
            operator="line_cross",
            candidate_shape=(int(lrows.shape[0]), _LINE_WIDTH),
            rows_fetched=int(lrows.shape[0]),
        )

        # One shared candidate matrix per kind group: the distinct ident
        # rows are computed and materialized as SegmentPairs exactly
        # once; each cell then selects its pairs by integer id instead
        # of re-deduplicating (and re-building) tuples per query.
        # np.unique sorts, so ascending ids == the §4.4 result ordering.
        n_p = prows.shape[0]
        stacked = np.vstack([prows[:, 2:6], lrows[:, 4:8]])
        if stacked.shape[0]:
            uniq, inverse = _unique_rows(stacked, return_inverse=True)
            pair_objs = [SegmentPair(*t) for t in uniq.tolist()]
            inv_p, inv_l = inverse[:n_p], inverse[n_p:]
        else:
            uniq = np.empty((0, 4))
            pair_objs, inv_p, inv_l = [], None, None

        for i in idxs:
            if guard is not None:
                guard.tick()
            plan = plans[i]
            t_thr = plan.query.t_threshold
            v_thr = plan.query.v_threshold
            pmask = point_mask(kind, prows[:, 0], prows[:, 1], t_thr, v_thr)
            pmask = _t_range_mask(pmask, prows, plan.t_range, 2, 5)
            lmask = line_mask(
                kind,
                lrows[:, 0],
                lrows[:, 1],
                lrows[:, 2],
                lrows[:, 3],
                t_thr,
                v_thr,
            )
            lmask = _t_range_mask(lmask, lrows, plan.t_range, 4, 7)
            if pair_objs:
                sel = np.unique(
                    np.concatenate([inv_p[pmask], inv_l[lmask]])
                )
                pairs = [pair_objs[j] for j in sel.tolist()]
                cell_rows = uniq[sel]
            else:
                pairs = []
                cell_rows = uniq
            p_matched, l_matched = int(pmask.sum()), int(lmask.sum())
            _ROWS_MATCHED["point_range"].inc(p_matched)
            _ROWS_MATCHED["line_cross"].inc(l_matched)
            obs_context.account(operator="point_range",
                                rows_matched=p_matched)
            obs_context.account(operator="line_cross",
                                rows_matched=l_matched)
            results[i] = ExecutionResult(
                pairs=pairs,
                op_stats=[
                    OperatorStats(
                        "point_range", f"{kind}_points", point_access,
                        int(prows.shape[0]), p_matched,
                    ),
                    OperatorStats(
                        "line_cross", f"{kind}_lines", line_access,
                        int(lrows.shape[0]), l_matched,
                    ),
                ],
                ident_rows=cell_rows,
            )
    # every plan index belongs to exactly one kind group, so all slots
    # are filled
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------- #
# partitioned execution (time-partitioned live indexes)
# ---------------------------------------------------------------------- #
#
# A partition is anything exposing ``store``, ``overlaps_time(t_range)``
# and (optionally) ``read_lock`` — a lock the executor holds around reads
# on backends whose concurrent reads are unsafe.  Partition pruning is
# sound because ``overlaps_time`` tests the partition's *feature* extent
# (min t_d .. max t_a over stored rows), so a partition skipped for a
# ``t_range`` can contribute no matching pair; and the §4.4 answer is a
# set union, so matches(∪ partitions) = ∪ matches(partition) — the merge
# below reproduces the single-store answer bit for bit (the dedup sort
# order of :func:`_union_dedup` is total and content-determined).


def _read_ctx(partition):
    lock = getattr(partition, "read_lock", None)
    return lock if lock is not None else nullcontext()


def _split_kept(partitions: Sequence, t_range) -> Tuple[List, int]:
    kept = [p for p in partitions if p.overlaps_time(t_range)]
    pruned = len(partitions) - len(kept)
    _PARTITIONS_SCANNED.inc(len(kept))
    if pruned:
        _PARTITIONS_PRUNED.inc(pruned)
    obs_context.account(partitions_scanned=len(kept),
                        partitions_pruned=pruned)
    return kept, pruned


def _partition_id(part, i: int) -> str:
    """A stable label for one partition (duck-typed partitions get an
    index-based one)."""
    pid = getattr(part, "partition_id", None)
    return str(pid) if pid is not None else f"part{i}"


def _merge_pairs(pair_lists: Sequence[List[SegmentPair]]) -> List[SegmentPair]:
    """Cross-partition union/dedup with the §4.4 result ordering."""
    seen: Set[Tuple[float, float, float, float]] = set()
    for pairs in pair_lists:
        seen.update(p.as_tuple() for p in pairs)
    return [SegmentPair(*t) for t in sorted(seen)]


def _merge_results(
    results: Sequence[ExecutionResult],
) -> Tuple[np.ndarray, List[SegmentPair]]:
    """Union per-partition answers, in array form when every result
    carries its ident matrix (the executor's own results always do);
    lexicographic ``np.unique`` equals ``sorted(set(tuples))``, so both
    branches produce the same pairs in the same order."""
    if all(r.ident_rows is not None for r in results):
        return _union_dedup_rows([r.ident_rows for r in results])
    pairs = _merge_pairs([r.pairs for r in results])
    return np.array([p.as_tuple() for p in pairs]).reshape(-1, 4), pairs


def _merge_op_stats(
    results: Sequence[ExecutionResult], kind: str
) -> List[OperatorStats]:
    """Sum per-operator row counts across partitions."""
    merged: List[OperatorStats] = []
    for op, table in (
        ("point_range", f"{kind}_points"), ("line_cross", f"{kind}_lines")
    ):
        stats = [s for r in results for s in r.op_stats if s.operator == op]
        accesses = sorted({s.access for s in stats})
        merged.append(
            OperatorStats(
                operator=op,
                table=table,
                access="+".join(accesses) if accesses else "none",
                rows_fetched=sum(s.rows_fetched for s in stats),
                rows_matched=sum(s.rows_matched for s in stats),
            )
        )
    return merged


def execute_partitioned(
    query,
    make_plan: Callable,
    partitions: Sequence,
    t_range=None,
    cache: str = "warm",
    data=None,
    verified_only: bool = False,
    pushdown: bool = True,
    guard: Optional[QueryGuard] = None,
    vectorize: Optional[bool] = None,
) -> ExecutionResult:
    """Run one query across a set of time partitions and merge.

    Partitions whose feature-time bounds miss ``t_range`` are pruned
    without touching their stores; the survivors are executed with
    ``make_plan(partition)`` (re-threaded with ``t_range``, refine
    stripped — refinement runs once over the merged pairs) and their
    answers are unioned with the standard dedup ordering, so the result
    is identical to executing against one store holding all partitions'
    rows.
    """
    kept, pruned = _split_kept(partitions, t_range)
    with span("op.partition_scatter") as ss:
        ss.set_attribute("partitions", len(partitions))
        ss.set_attribute("pruned", pruned)
        results = []
        for i, part in enumerate(kept):
            pid = _partition_id(part, i)
            plan = replace(
                make_plan(part), t_range=t_range, refine_op=None
            )
            # the partition scope labels every store/executor accounting
            # contribution below with this partition's id
            with span("partition.execute") as pspan, \
                    obs_context.bind_scope(partition=pid), _read_ctx(part):
                pspan.set_attribute("partition", pid)
                results.append(
                    execute(plan, part.store, cache=cache,
                            pushdown=pushdown, guard=guard,
                            vectorize=vectorize)
                )
    merged_rows, merged_pairs = _merge_results(results)
    merged = ExecutionResult(
        pairs=merged_pairs,
        op_stats=_merge_op_stats(results, query.kind),
        partitions_scanned=len(kept),
        partitions_pruned=pruned,
        ident_rows=merged_rows,
    )
    if data is not None:
        with span("op.refine") as rs:
            merged.hits = rank_hits(
                merged.pairs, data, query,
                verified_only=verified_only, guard=guard,
            )
            rs.set_attribute("candidates", len(merged.pairs))
            rs.set_attribute("kept", len(merged.hits))
        _REFINE_CANDIDATES.inc(len(merged.pairs))
        _REFINE_KEPT.inc(len(merged.hits))
    return merged


def execute_batch_partitioned(
    make_plans: Callable,
    partitions: Sequence,
    n_queries: int,
    t_range=None,
    cache: str = "warm",
    guard: Optional[QueryGuard] = None,
    vectorize: Optional[bool] = None,
) -> List[ExecutionResult]:
    """Scatter a whole query grid across partitions and merge per cell.

    Each surviving partition answers the grid through
    :func:`execute_batch` (one shared candidate fetch per kind, the
    existing fast path); cell ``i`` of the returned list unions cell
    ``i`` of every partition.  Per-partition failures stay isolated: a
    cell that failed on *some* partitions but succeeded on others comes
    back DEGRADED (merged pairs are honest-but-incomplete, the report
    names the lost partitions); a cell that failed everywhere is FAILED.
    """
    kept, pruned = _split_kept(partitions, t_range)
    per_partition: List[List[ExecutionResult]] = []
    with span("op.partition_scatter") as ss:
        ss.set_attribute("partitions", len(partitions))
        ss.set_attribute("pruned", pruned)
        ss.set_attribute("queries", n_queries)
        for i, part in enumerate(kept):
            pid = _partition_id(part, i)
            plans = [
                replace(p, t_range=t_range, refine_op=None)
                for p in make_plans(part)
            ]
            with span("partition.execute") as pspan, \
                    obs_context.bind_scope(partition=pid), _read_ctx(part):
                pspan.set_attribute("partition", pid)
                pspan.set_attribute("queries", n_queries)
                per_partition.append(
                    execute_batch(plans, part.store, cache=cache,
                                  guard=guard, vectorize=vectorize)
                )

    merged: List[ExecutionResult] = []
    for i in range(n_queries):
        cells = [results[i] for results in per_partition]
        good = [c for c in cells if c.status is not ResultStatus.FAILED]
        failed = [c for c in cells if c.status is ResultStatus.FAILED]
        kind = None
        for c in cells:
            for s in c.op_stats:
                kind = s.table.rsplit("_", 1)[0]
                break
            if kind:
                break
        cell_rows, cell_pairs = _merge_results(good)
        out = ExecutionResult(
            pairs=cell_pairs,
            op_stats=_merge_op_stats(good, kind) if kind else [],
            partitions_scanned=len(kept),
            partitions_pruned=pruned,
            ident_rows=cell_rows,
        )
        if failed:
            report = CompletenessReport(
                unfinished=tuple(
                    f"partition[{j}]" for j, c in enumerate(cells)
                    if c.status is ResultStatus.FAILED
                ),
                reason=f"{len(failed)}/{len(cells)} partitions failed: "
                       f"{failed[0].error}",
            )
            out.error = failed[0].error
            out.completeness = report
            out.status = (
                ResultStatus.FAILED if not good else ResultStatus.DEGRADED
            )
            if out.status is ResultStatus.DEGRADED:
                record_degraded()
        merged.append(out)
    return merged

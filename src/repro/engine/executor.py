"""Physical execution of query plans against any feature store.

This module is the **only** implementation of the Section 4.4 search
semantics (point query ∪ line query → dedup → optional witness
refinement).  The three storage backends no longer carry their own
copies; they expose four narrow physical primitives instead::

    scan_points(kind, ...)        sequential pass over the point table
    probe_point_index(kind, T)    index candidates with Δt <= T
    scan_lines(kind, ...)         sequential pass over the line table
    probe_line_index(kind, T)     index candidates with Δt1 <= T

Each primitive returns a row array — ``(m, 6)`` for points
(``dt, dv, t_d, t_c, t_b, t_a``), ``(m, 8)`` for lines
(``dt1, dv1, dt2, dv2, t_d, t_c, t_b, t_a``).  Primitives may *pre-filter*
with the thresholds they are given (SQLite pushes the predicate into SQL,
MiniDB filters on B+tree keys before paying the heap fetch) but must
never drop a matching row; the executor always applies the exact
vectorized predicates, so pushdown is purely an optimization.

:func:`execute_batch` answers a whole grid of queries in one shared pass
per operator: candidates are fetched once for the widest ``T`` and every
query is answered with vectorized masks over the shared arrays — the
fast path for the Figures 16-24 workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.queries import line_mask, point_mask
from ..core.results import SearchHit, rank_hits
from ..obs.metrics import REGISTRY
from ..obs.tracing import span
from ..types import SegmentPair
from .plan import LineCrossOp, PointRangeOp, QueryPlan

__all__ = ["OperatorStats", "ExecutionResult", "execute", "execute_batch"]

_POINT_WIDTH = 6
_LINE_WIDTH = 8

_ROWS_FETCHED = {
    op: REGISTRY.counter(
        "repro_engine_rows_fetched_total",
        "Candidate rows returned by physical operators",
        {"operator": op},
    )
    for op in ("point_range", "line_cross")
}
_ROWS_MATCHED = {
    op: REGISTRY.counter(
        "repro_engine_rows_matched_total",
        "Rows surviving the exact predicate, per operator",
        {"operator": op},
    )
    for op in ("point_range", "line_cross")
}
_REFINE_CANDIDATES = REGISTRY.counter(
    "repro_engine_refine_candidates_total",
    "Candidate pairs entering witness refinement",
)
_REFINE_KEPT = REGISTRY.counter(
    "repro_engine_refine_kept_total",
    "Hits surviving witness refinement",
)


@dataclass(frozen=True)
class OperatorStats:
    """What one physical operator actually did."""

    operator: str  # "point_range" | "line_cross"
    table: str
    access: str
    rows_fetched: int  # candidate rows the primitive returned
    rows_matched: int  # rows surviving the exact predicate


@dataclass
class ExecutionResult:
    """The result of executing one :class:`QueryPlan`."""

    pairs: List[SegmentPair]
    op_stats: List[OperatorStats] = field(default_factory=list)
    hits: Optional[List[SearchHit]] = None  # set when the plan refines
    pages_read: Optional[int] = None  # MiniDB instrumentation


def _as_rows(rows, width: int) -> np.ndarray:
    arr = np.asarray(rows, dtype=float)
    if arr.size == 0:
        return arr.reshape(0, width)
    return arr


def _fetch_point_rows(
    store, op: PointRangeOp, cache: str, pushdown: bool
) -> np.ndarray:
    v = op.v_threshold if pushdown else None
    if op.access == "scan":
        t = op.t_threshold if pushdown else None
        rows = store.scan_points(op.kind, t_threshold=t, v_threshold=v,
                                 cache=cache)
    elif op.access == "grid":
        rows = store.probe_point_grid(
            op.kind, op.t_threshold, op.v_threshold
        )
    else:
        rows = store.probe_point_index(
            op.kind, op.t_threshold, v_threshold=v, cache=cache
        )
    return _as_rows(rows, _POINT_WIDTH)


def _fetch_line_rows(
    store, op: LineCrossOp, cache: str, pushdown: bool
) -> np.ndarray:
    v = op.v_threshold if pushdown else None
    if op.access == "scan":
        t = op.t_threshold if pushdown else None
        rows = store.scan_lines(op.kind, t_threshold=t, v_threshold=v,
                                cache=cache)
    else:
        rows = store.probe_line_index(
            op.kind, op.t_threshold, v_threshold=v, cache=cache
        )
    return _as_rows(rows, _LINE_WIDTH)


def _union_dedup(ident_blocks: Sequence[np.ndarray]) -> List[SegmentPair]:
    """THE Section 4.4 union/dedup: distinct segment pairs, sorted.

    ``np.unique(axis=0)`` sorts rows lexicographically, matching the
    historical ``sorted(set(tuples))`` ordering exactly.
    """
    stacked = np.vstack([b for b in ident_blocks]) if ident_blocks else (
        np.empty((0, 4))
    )
    if stacked.shape[0] == 0:
        return []
    uniq = np.unique(stacked, axis=0)
    return [SegmentPair(*(float(x) for x in row)) for row in uniq]


def execute(
    plan: QueryPlan,
    store,
    cache: str = "warm",
    data=None,
    pushdown: bool = True,
) -> ExecutionResult:
    """Run one plan against ``store``.

    ``data`` supplies the raw series (or approximation signal) a
    ``RefineOp`` refines against; ``pushdown=False`` forces the
    primitives to return raw candidates (used by EXPLAIN to report true
    candidate counts).
    """
    pop, lop = plan.point_op, plan.line_op

    with span("op.point_range") as ps:
        prows = _fetch_point_rows(store, pop, cache, pushdown)
        pmask = point_mask(
            pop.kind, prows[:, 0], prows[:, 1],
            pop.t_threshold, pop.v_threshold,
        )
        p_fetched, p_matched = int(prows.shape[0]), int(pmask.sum())
        ps.set_attribute("access", pop.access)
        ps.set_attribute("rows_fetched", p_fetched)
        ps.set_attribute("rows_matched", p_matched)
    with span("op.line_cross") as ls:
        lrows = _fetch_line_rows(store, lop, cache, pushdown)
        lmask = line_mask(
            lop.kind,
            lrows[:, 0],
            lrows[:, 1],
            lrows[:, 2],
            lrows[:, 3],
            lop.t_threshold,
            lop.v_threshold,
        )
        l_fetched, l_matched = int(lrows.shape[0]), int(lmask.sum())
        ls.set_attribute("access", lop.access)
        ls.set_attribute("rows_fetched", l_fetched)
        ls.set_attribute("rows_matched", l_matched)
    with span("op.union_dedup") as us:
        pairs = _union_dedup([prows[pmask][:, 2:6], lrows[lmask][:, 4:8]])
        us.set_attribute("pairs", len(pairs))

    _ROWS_FETCHED["point_range"].inc(p_fetched)
    _ROWS_MATCHED["point_range"].inc(p_matched)
    _ROWS_FETCHED["line_cross"].inc(l_fetched)
    _ROWS_MATCHED["line_cross"].inc(l_matched)

    stats = [
        OperatorStats(
            "point_range", pop.table, pop.access, p_fetched, p_matched,
        ),
        OperatorStats(
            "line_cross", lop.table, lop.access, l_fetched, l_matched,
        ),
    ]
    result = ExecutionResult(pairs=pairs, op_stats=stats)
    if plan.refine_op is not None:
        if data is None:
            raise ValueError("plan has a RefineOp but no data was supplied")
        with span("op.refine") as rs:
            result.hits = rank_hits(
                pairs, data, plan.query,
                verified_only=plan.refine_op.verified_only,
            )
            rs.set_attribute("candidates", len(pairs))
            rs.set_attribute("kept", len(result.hits))
        _REFINE_CANDIDATES.inc(len(pairs))
        _REFINE_KEPT.inc(len(result.hits))
    return result


def execute_batch(
    plans: Sequence[QueryPlan],
    store,
    cache: str = "warm",
) -> List[ExecutionResult]:
    """Answer many queries in one shared pass per operator.

    Plans are grouped by search kind; per group the point and line
    candidates are fetched **once** (for the widest ``T`` when every
    plan probes the index, otherwise via one sequential scan) and every
    query is answered with vectorized masks over the shared arrays.
    This replaces one store round-trip per query with one per operator —
    the (T, V)-grid fast path.
    """
    results: List[Optional[ExecutionResult]] = [None] * len(plans)
    by_kind: Dict[str, List[int]] = {}
    for i, plan in enumerate(plans):
        by_kind.setdefault(plan.kind, []).append(i)

    for kind, idxs in by_kind.items():
        group = [plans[i] for i in idxs]
        t_max = max(p.query.t_threshold for p in group)
        all_index_points = all(p.point_op.access == "index" for p in group)
        all_index_lines = all(p.line_op.access == "index" for p in group)

        with span("op.point_range.fetch") as ps:
            if all_index_points:
                prows = _as_rows(
                    store.probe_point_index(kind, t_max, cache=cache),
                    _POINT_WIDTH,
                )
                point_access = "index"
            else:
                prows = _as_rows(store.scan_points(kind, cache=cache),
                                 _POINT_WIDTH)
                point_access = "scan"
            ps.set_attribute("kind", kind)
            ps.set_attribute("rows_fetched", int(prows.shape[0]))
        with span("op.line_cross.fetch") as ls:
            if all_index_lines:
                lrows = _as_rows(
                    store.probe_line_index(kind, t_max, cache=cache),
                    _LINE_WIDTH,
                )
                line_access = "index"
            else:
                lrows = _as_rows(store.scan_lines(kind, cache=cache),
                                 _LINE_WIDTH)
                line_access = "scan"
            ls.set_attribute("kind", kind)
            ls.set_attribute("rows_fetched", int(lrows.shape[0]))
        # fetched once per group — counted once, not once per query
        _ROWS_FETCHED["point_range"].inc(int(prows.shape[0]))
        _ROWS_FETCHED["line_cross"].inc(int(lrows.shape[0]))

        for i in idxs:
            plan = plans[i]
            t_thr = plan.query.t_threshold
            v_thr = plan.query.v_threshold
            pmask = point_mask(kind, prows[:, 0], prows[:, 1], t_thr, v_thr)
            lmask = line_mask(
                kind,
                lrows[:, 0],
                lrows[:, 1],
                lrows[:, 2],
                lrows[:, 3],
                t_thr,
                v_thr,
            )
            pairs = _union_dedup(
                [prows[pmask][:, 2:6], lrows[lmask][:, 4:8]]
            )
            p_matched, l_matched = int(pmask.sum()), int(lmask.sum())
            _ROWS_MATCHED["point_range"].inc(p_matched)
            _ROWS_MATCHED["line_cross"].inc(l_matched)
            results[i] = ExecutionResult(
                pairs=pairs,
                op_stats=[
                    OperatorStats(
                        "point_range", f"{kind}_points", point_access,
                        int(prows.shape[0]), p_matched,
                    ),
                    OperatorStats(
                        "line_cross", f"{kind}_lines", line_access,
                        int(lrows.shape[0]), l_matched,
                    ),
                ],
            )
    # every plan index belongs to exactly one kind group, so all slots
    # are filled
    return results  # type: ignore[return-value]

"""Cost-based scan-vs-index plan choice, per operator and per backend.

Successor of ``repro.core.planner`` (which remains as a thin alias).
The paper's Figures 19-24 show that forced B-tree access *hurts* on hard
queries — the large-result region of the query plane — while it wins on
selective ones.  This module closes the gap the paper leaves to the
operator, with two layers:

* a classical **selectivity estimator**: a cached row sample from the
  point-feature table of the queried search type; a query's selectivity
  is the sample fraction matching the point predicate (the historical
  ``choose_mode`` rule: selectivity above ``scan_threshold`` → scan);
* a **per-operator cost model**: each backend advertises three unit
  costs (sequential row visit, index-entry visit, matching-row fetch —
  the latter a page read on MiniDB, a rowid lookup on SQLite, an
  argsort indirection in memory), and ``choose_access`` compares

  .. code-block:: text

      cost(scan)  = N · seq_row
      cost(index) = N · sel(Δt≤T) · index_entry + N · sel(match) · fetch

  so the point and line operators of one query may legitimately pick
  different access paths.

Samples go stale when the store grows; ``SegDiffIndex`` wires
``invalidate()`` into ``append``/``checkpoint``/``finalize`` so
post-append estimates never come from pre-append samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.queries import point_mask
from ..errors import InvalidParameterError
from .plan import LineCrossOp, PointRangeOp, Query, QueryPlan, build_plan

__all__ = ["BackendCosts", "BACKEND_COSTS", "CostModel"]


@dataclass(frozen=True)
class BackendCosts:
    """Unit costs of one backend's physical primitives.

    All values are relative to one sequential row visit on the same
    backend, so only the *ratios* matter for plan choice.
    """

    seq_row: float = 1.0
    index_entry: float = 0.5
    fetch: float = 4.0


#: Per-backend constants, keyed by ``FeatureStore.BACKEND``.  The fetch
#: cost is what separates them: materializing one matching row through a
#: secondary index is an argsort indirection in memory, a B-tree rowid
#: lookup on SQLite, and a random page read (possibly evicting a hot
#: page) on MiniDB.
BACKEND_COSTS: Dict[str, BackendCosts] = {
    "memory": BackendCosts(seq_row=1.0, index_entry=0.4, fetch=2.0),
    "sqlite": BackendCosts(seq_row=1.0, index_entry=0.3, fetch=6.0),
    "minidb": BackendCosts(seq_row=1.0, index_entry=0.5, fetch=20.0),
}


class CostModel:
    """Chooses physical access paths for a query against one store.

    Parameters
    ----------
    store:
        Any feature store exposing ``sample_points(kind, n)`` and
        ``counts()``.
    sample_size:
        Rows sampled per search type (drawn lazily, cached).
    scan_threshold:
        Estimated selectivity above which the classical whole-query rule
        (:meth:`choose_mode`) picks a scan.  The default of 2 % matches
        the rule of thumb for secondary B-trees over row stores.
    costs:
        Backend unit costs; resolved from ``store.BACKEND`` when omitted.
    """

    def __init__(
        self,
        store,
        sample_size: int = 512,
        scan_threshold: float = 0.02,
        costs: Optional[BackendCosts] = None,
    ) -> None:
        if sample_size < 1:
            raise InvalidParameterError("sample_size must be >= 1")
        if not (0.0 < scan_threshold < 1.0):
            raise InvalidParameterError("scan_threshold must be in (0, 1)")
        self.store = store
        self.sample_size = sample_size
        self.scan_threshold = scan_threshold
        if costs is None:
            backend = getattr(store, "BACKEND", "memory")
            costs = BACKEND_COSTS.get(backend, BackendCosts())
        self.costs = costs
        self._samples: dict = {}

    # ------------------------------------------------------------------ #
    # sampling / selectivity
    # ------------------------------------------------------------------ #

    def _sample(self, kind: str) -> Optional[np.ndarray]:
        if kind not in self._samples:
            self._samples[kind] = self.store.sample_points(
                kind, self.sample_size
            )
        return self._samples[kind]

    def invalidate(self) -> None:
        """Drop cached samples (called automatically after appends)."""
        self._samples = {}

    def estimate_selectivity(
        self, kind: str, t_threshold: float, v_threshold: float
    ) -> float:
        """Estimated fraction of point features the query matches.

        Falls back to 1.0 (pessimistic → scan) when the store is empty,
        which is also the cheapest plan for an empty store.
        """
        sample = self._sample(kind)
        if sample is None or len(sample) == 0:
            return 1.0
        mask = point_mask(
            kind, sample[:, 0], sample[:, 1], t_threshold, v_threshold
        )
        return float(mask.mean())

    def estimate_dt_selectivity(self, kind: str, t_threshold: float) -> float:
        """Estimated fraction of rows an index probe on ``Δt <= T`` visits."""
        sample = self._sample(kind)
        if sample is None or len(sample) == 0:
            return 1.0
        return float((sample[:, 0] <= t_threshold).mean())

    # ------------------------------------------------------------------ #
    # plan choice
    # ------------------------------------------------------------------ #

    def choose_mode(
        self, kind: str, t_threshold: float, v_threshold: float
    ) -> str:
        """Whole-query rule: ``"scan"`` for estimated-hard queries.

        Kept for backward compatibility (``QueryPlanner`` semantics) and
        as the summary ``chosen_mode`` EXPLAIN reports.
        """
        selectivity = self.estimate_selectivity(
            kind, t_threshold, v_threshold
        )
        return "scan" if selectivity > self.scan_threshold else "index"

    def operator_costs(self, op) -> Dict[str, float]:
        """Estimated cost of each access path for one operator."""
        counts = self.store.counts()
        n = getattr(counts, op.table)
        sel_dt = self.estimate_dt_selectivity(op.kind, op.t_threshold)
        if isinstance(op, PointRangeOp):
            sel_match = self.estimate_selectivity(
                op.kind, op.t_threshold, op.v_threshold
            )
        else:
            # line features are rarer and their crossing predicate is far
            # more selective than the point predicate; the dt prune is
            # the dominant index saving, so bound the match fraction by
            # the dt selectivity (no dv sample exists for line tables)
            sel_match = 0.1 * sel_dt
        c = self.costs
        return {
            "scan": n * c.seq_row,
            "index": n * (sel_dt * c.index_entry + sel_match * c.fetch),
        }

    def choose_access(self, op) -> str:
        """The cheaper of scan/index for one operator on this backend."""
        costs = self.operator_costs(op)
        return "index" if costs["index"] < costs["scan"] else "scan"

    def plan(
        self, query: Query, mode: str = "auto", t_range=None
    ) -> QueryPlan:
        """Build the §4.4 plan for ``query``.

        ``mode="auto"`` picks each operator's access path independently
        with the cost model; any other mode forces that access path on
        every operator (``grid`` applies to the point operator only).
        ``t_range`` restricts results to pairs overlapping the closed
        time interval (and lets a partitioned executor prune partitions).
        """
        if mode != "auto":
            return build_plan(query, point_access=mode, t_range=t_range)
        point = PointRangeOp(
            query.kind, query.t_threshold, query.v_threshold, "scan"
        )
        line = LineCrossOp(
            query.kind, query.t_threshold, query.v_threshold, "scan"
        )
        return QueryPlan(
            query=query,
            point_op=PointRangeOp(
                query.kind,
                query.t_threshold,
                query.v_threshold,
                self.choose_access(point),
            ),
            line_op=LineCrossOp(
                query.kind,
                query.t_threshold,
                query.v_threshold,
                self.choose_access(line),
            ),
            t_range=t_range,
        )

"""Resilient query serving: deadlines, admission control, breakers.

The query path above the crash-safe storage layer must keep its latency
bounded and degrade gracefully when a backend misbehaves — the "heavy
traffic" north star (ROADMAP.md) and the serving regime the paper's
ad-hoc historical searches imply (§4.4).  This module supplies the four
mechanisms the engine threads through every search
(docs/resilience.md has the full walkthrough):

* **Deadlines & cooperative cancellation** — a :class:`Deadline` wrapped
  in a :class:`QueryGuard` that executor operators and the stores' scan
  and probe loops check periodically (``tick()``); an expired deadline
  raises :class:`~repro.errors.QueryTimeout` carrying whatever partial
  state exists.
* **Admission control** — an :class:`AdmissionController` caps in-flight
  queries per session (``max_concurrency``) with a bounded wait queue;
  load beyond the queue is *shed* with
  :class:`~repro.errors.QueryRejected` instead of piling up.
* **Circuit breakers** — a :class:`CircuitBreaker` wraps the four
  physical store primitives; after ``failure_threshold`` consecutive
  backend failures it opens and fails fast
  (:class:`~repro.errors.CircuitOpenError`), then half-opens after a
  cool-down and lets one probe through.
* **Degraded modes** — ``degrade="candidates"`` skips the witness-refine
  pass near the deadline and returns the candidate pairs flagged
  :attr:`ResultStatus.DEGRADED`.  Theorem 1 guarantees the candidate set
  has zero false negatives, so a degraded answer is a *superset* of the
  refined answer — a principled fallback, not a truncation.

:class:`RetryPolicy` is the shared transient-failure retry loop
(exponential backoff) that the SQLite store's busy/locked handling and
the MiniDB open path both use.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Type

from ..errors import (
    CircuitOpenError,
    InvalidParameterError,
    QueryCancelled,
    QueryRejected,
    QueryTimeout,
    StorageError,
)
from ..obs import context as obs_context
from ..obs import recorder as flight
from ..obs.metrics import REGISTRY

__all__ = [
    "Deadline",
    "QueryGuard",
    "AdmissionController",
    "CircuitBreaker",
    "RetryPolicy",
    "ResiliencePolicy",
    "ResultStatus",
    "CompletenessReport",
    "QueryOutcome",
]

_TIMEOUTS = REGISTRY.counter(
    "repro_query_timeouts_total",
    "Queries that exceeded their deadline and raised QueryTimeout",
)
_SHED = REGISTRY.counter(
    "repro_queries_shed_total",
    "Queries rejected by admission control (saturated + queue full)",
)
_DEGRADED = REGISTRY.counter(
    "repro_queries_degraded_total",
    "Queries answered in a degraded mode (refine pass skipped)",
)

#: Gauge values for ``repro_breaker_state``.
_BREAKER_STATE_VALUES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


def _retry_counter(policy_name: str):
    return REGISTRY.counter(
        "repro_retry_attempts_total",
        "Transient failures retried by a RetryPolicy",
        {"policy": policy_name},
    )


# ---------------------------------------------------------------------- #
# deadlines and guards
# ---------------------------------------------------------------------- #


class Deadline:
    """A wall-clock budget measured on a monotonic clock.

    ``clock`` is injectable so tests can drive the state machine without
    sleeping.
    """

    __slots__ = ("budget_s", "_t0", "_clock")

    def __init__(
        self, budget_s: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if budget_s <= 0:
            raise InvalidParameterError(
                f"deadline budget must be positive, got {budget_s}"
            )
        self.budget_s = float(budget_s)
        self._clock = clock
        self._t0 = clock()

    @classmethod
    def from_timeout_ms(
        cls, timeout_ms: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(timeout_ms / 1000.0, clock=clock)

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining(self) -> float:
        """Seconds left; negative once the deadline has passed."""
        return self.budget_s - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0


class QueryGuard:
    """The per-query resilience context carried through the engine.

    A guard travels from :class:`~repro.engine.session.QuerySession`
    through the executor's operators down into the stores' scan/probe
    loops, which call :meth:`tick` periodically (directly, or via
    :meth:`wrap_iter` around a row iterator).  ``tick()`` raises
    :class:`~repro.errors.QueryTimeout` once the deadline passes and
    :class:`~repro.errors.QueryCancelled` after :meth:`cancel` — the
    cooperative-cancellation contract: no store call runs more than one
    scan chunk past the deadline.

    The guard also records operator progress (``start_op``/``finish_op``)
    so a timeout can report exactly which operators did not finish, and
    carries the session's :class:`CircuitBreaker` for the executor to
    route physical fetches through.
    """

    __slots__ = (
        "deadline",
        "degrade",
        "breaker",
        "check_every",
        "degrade_fraction",
        "degrade_margin_s",
        "_cancelled",
        "_finished_ops",
        "_current_op",
    )

    def __init__(
        self,
        deadline: Optional[Deadline] = None,
        degrade: Optional[str] = None,
        breaker: Optional["CircuitBreaker"] = None,
        check_every: int = 256,
        degrade_fraction: float = 0.25,
        degrade_margin_s: Optional[float] = None,
    ) -> None:
        if degrade not in (None, "candidates"):
            raise InvalidParameterError(
                f"degrade must be None or 'candidates', got {degrade!r}"
            )
        if check_every < 1:
            raise InvalidParameterError("check_every must be >= 1")
        self.deadline = deadline
        self.degrade = degrade
        self.breaker = breaker
        self.check_every = int(check_every)
        self.degrade_fraction = float(degrade_fraction)
        self.degrade_margin_s = degrade_margin_s
        self._cancelled = False
        self._finished_ops: List[str] = []
        self._current_op: Optional[str] = None

    # -- cancellation and deadline checks ------------------------------- #

    def cancel(self) -> None:
        """Request cooperative cancellation; the next ``tick()`` raises."""
        self._cancelled = True

    def tick(self) -> None:
        """The cooperative checkpoint scan/probe loops call periodically."""
        if self._cancelled:
            raise QueryCancelled("query cancelled")
        if self.deadline is not None and self.deadline.expired():
            raise QueryTimeout(
                f"deadline of {self.deadline.budget_s * 1000:.0f} ms "
                f"exceeded after {self.deadline.elapsed() * 1000:.0f} ms"
                + (
                    f" (operator {self._current_op} unfinished)"
                    if self._current_op
                    else ""
                ),
                completeness=self.report(),
            )

    def wrap_iter(self, rows: Iterable, every: Optional[int] = None) -> Iterator:
        """Yield from ``rows``, ticking every ``every`` items.

        The helper stores use to make long row loops cooperative without
        duplicating the loop per guarded/unguarded path.
        """
        step = every if every is not None else self.check_every
        tick = self.tick
        for i, row in enumerate(rows):
            if i % step == 0:
                tick()
            yield row

    # -- degraded-mode decision ----------------------------------------- #

    def near_deadline(self) -> bool:
        """True when the remaining budget is inside the degrade margin.

        The margin is ``degrade_margin_s`` when set, else
        ``degrade_fraction`` of the total budget.  With no deadline at
        all there is nothing to be near.
        """
        if self.deadline is None:
            return False
        margin = (
            self.degrade_margin_s
            if self.degrade_margin_s is not None
            else self.degrade_fraction * self.deadline.budget_s
        )
        return self.deadline.remaining() <= margin

    # -- operator progress (completeness reporting) --------------------- #

    def start_op(self, name: str) -> None:
        self._current_op = name

    def finish_op(self, name: str) -> None:
        self._finished_ops.append(name)
        if self._current_op == name:
            self._current_op = None

    def report(self, reason: str = "") -> "CompletenessReport":
        """What finished and what did not, as of right now."""
        unfinished: Tuple[str, ...] = (
            (self._current_op,) if self._current_op else ()
        )
        return CompletenessReport(
            finished=tuple(self._finished_ops),
            unfinished=unfinished,
            reason=reason,
        )

    # -- physical-call wrapper ------------------------------------------ #

    def call(self, fn: Callable):
        """Run one physical store call under the breaker (if any)."""
        if self.breaker is not None:
            return self.breaker.call(fn)
        return fn()


# ---------------------------------------------------------------------- #
# result status / completeness
# ---------------------------------------------------------------------- #


class ResultStatus(str, Enum):
    """How much of the full pipeline a result reflects."""

    #: The full plan ran; the result is the exact §4.4 answer.
    COMPLETE = "complete"
    #: Candidates only: the refine pass was skipped near the deadline.
    #: Zero false negatives (Theorem 1) — a superset of the full answer.
    DEGRADED = "degraded"
    #: The backing store failed for this cell; no result is available.
    FAILED = "failed"


@dataclass(frozen=True)
class CompletenessReport:
    """Which operators finished — attached to partial/degraded results."""

    finished: Tuple[str, ...] = ()
    unfinished: Tuple[str, ...] = ()
    reason: str = ""

    def describe(self) -> str:
        parts = []
        if self.unfinished:
            parts.append("unfinished: " + ", ".join(self.unfinished))
        if self.finished:
            parts.append("finished: " + ", ".join(self.finished))
        if self.reason:
            parts.append(self.reason)
        return "; ".join(parts) or "complete"


@dataclass
class QueryOutcome:
    """One query's answer plus its resilience verdict.

    ``pairs`` holds the candidate segment pairs; ``hits`` is set when
    the plan refined against raw data.  ``status`` is
    :attr:`ResultStatus.COMPLETE` on the healthy path,
    :attr:`ResultStatus.DEGRADED` when the refine pass was skipped
    (pairs are then a superset of the full answer), and
    :attr:`ResultStatus.FAILED` for batch cells whose store group failed
    (``error`` carries the cause).
    """

    pairs: List = field(default_factory=list)
    hits: Optional[List] = None
    status: ResultStatus = ResultStatus.COMPLETE
    completeness: Optional[CompletenessReport] = None
    error: Optional[BaseException] = None
    #: Diagnostics: the query's id, its resource accounting
    #: (:class:`~repro.obs.context.ResourceAccounting`), and — on
    #: DEGRADED/FAILED outcomes — the flight recorder's recent tail
    #: (event dicts), so a failing answer ships its own postmortem.
    query_id: Optional[str] = None
    accounting: Optional[object] = field(default=None, compare=False)
    recorder_tail: Optional[List] = field(default=None, compare=False)

    @property
    def degraded(self) -> bool:
        return self.status is ResultStatus.DEGRADED

    @property
    def failed(self) -> bool:
        return self.status is ResultStatus.FAILED

    @property
    def results(self) -> List:
        """Hits when the plan refined, else the candidate pairs."""
        return self.hits if self.hits is not None else self.pairs


# ---------------------------------------------------------------------- #
# admission control
# ---------------------------------------------------------------------- #


class AdmissionController:
    """Bounded concurrency with a bounded wait queue and load shedding.

    At most ``max_concurrency`` queries run at once; up to ``max_queue``
    more may wait, each for at most ``queue_timeout_s`` (further capped
    by the query's own deadline).  Anything beyond that is shed
    immediately with :class:`~repro.errors.QueryRejected` — under
    saturation the session's latency stays bounded instead of growing an
    unbounded convoy.
    """

    def __init__(
        self,
        max_concurrency: int,
        max_queue: int = 0,
        queue_timeout_s: float = 1.0,
    ) -> None:
        if max_concurrency < 1:
            raise InvalidParameterError("max_concurrency must be >= 1")
        if max_queue < 0:
            raise InvalidParameterError("max_queue must be >= 0")
        if queue_timeout_s < 0:
            raise InvalidParameterError("queue_timeout_s must be >= 0")
        self.max_concurrency = int(max_concurrency)
        self.max_queue = int(max_queue)
        self.queue_timeout_s = float(queue_timeout_s)
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self.shed_count = 0

    @property
    def active(self) -> int:
        with self._cond:
            return self._active

    @property
    def waiting(self) -> int:
        with self._cond:
            return self._waiting

    def _shed(self, why: str) -> None:
        self.shed_count += 1
        _SHED.inc()
        ctx = obs_context.current_context()
        flight.record(
            "shed", "admission",
            reason=why, active=self._active, waiting=self._waiting,
            query_id=ctx.query_id if ctx is not None else None,
        )
        raise QueryRejected(
            f"query shed: {why} "
            f"({self._active} active, {self._waiting} queued, "
            f"max_concurrency={self.max_concurrency}, "
            f"max_queue={self.max_queue})"
        )

    def acquire(self, deadline: Optional[Deadline] = None) -> None:
        with self._cond:
            if self._active < self.max_concurrency:
                self._active += 1
                return
            if self._waiting >= self.max_queue:
                self._shed("session saturated and wait queue full")
            budget = self.queue_timeout_s
            if deadline is not None:
                budget = min(budget, max(deadline.remaining(), 0.0))
            end = time.monotonic() + budget
            self._waiting += 1
            try:
                while self._active >= self.max_concurrency:
                    left = end - time.monotonic()
                    if left <= 0:
                        self._shed("queue wait timed out")
                    self._cond.wait(left)
                self._active += 1
            finally:
                self._waiting -= 1

    def release(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify()

    @contextmanager
    def admit(self, deadline: Optional[Deadline] = None):
        self.acquire(deadline)
        try:
            yield
        finally:
            self.release()


# ---------------------------------------------------------------------- #
# circuit breaker
# ---------------------------------------------------------------------- #


class CircuitBreaker:
    """Closed → open → half-open failure isolation for one backend.

    ``failure_threshold`` *consecutive* failures (of ``failure_types``)
    open the circuit: every call fails fast with
    :class:`~repro.errors.CircuitOpenError` for ``cooldown_s`` seconds.
    The first call after the cool-down is the half-open *probe*; its
    success closes the circuit, its failure reopens it (and restarts the
    cool-down).  State is exported as the ``repro_breaker_state`` gauge
    (0 closed, 1 half-open, 2 open) labelled by backend **and** breaker
    ``name`` — the name (a shard id, an index name; defaults to the
    backend) keeps the gauges of a multi-index process distinct instead
    of every breaker overwriting one time series.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        failure_types: Tuple[Type[BaseException], ...] = (
            StorageError,
            OSError,
        ),
        backend: str = "unknown",
        name: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise InvalidParameterError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise InvalidParameterError("cooldown_s must be >= 0")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.failure_types = failure_types
        self.backend = backend
        self.name = name if name is not None else backend
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._gauge = REGISTRY.gauge(
            "repro_breaker_state",
            "Circuit-breaker state per backend and breaker name "
            "(0 closed, 1 half-open, 2 open)",
            {"backend": backend, "name": self.name},
        )
        self._set_state("closed")

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # an open breaker whose cool-down elapsed reads as half-open
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._set_state("half_open")
        return self._state

    def _set_state(self, state: str) -> None:
        if state != self._state:
            flight.record(
                "breaker", self.name,
                backend=self.backend, state=state,
                consecutive_failures=self._consecutive_failures,
            )
        self._state = state
        self._gauge.set(_BREAKER_STATE_VALUES[state])

    def call(self, fn: Callable):
        """Run ``fn`` through the breaker (see class docstring)."""
        with self._lock:
            state = self._effective_state()
            if state == "open":
                raise CircuitOpenError(
                    f"circuit open for backend {self.backend!r}: "
                    f"{self._consecutive_failures} consecutive failures; "
                    f"retrying in "
                    f"{self.cooldown_s - (self._clock() - self._opened_at):.2f}s"
                )
            if state == "half_open":
                if self._probing:
                    raise CircuitOpenError(
                        f"circuit half-open for backend {self.backend!r}: "
                        "probe already in flight"
                    )
                self._probing = True
        try:
            result = fn()
        except self.failure_types:
            self._on_failure()
            raise
        else:
            self._on_success()
            return result

    def _on_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == "half_open":
                # failed probe: reopen and restart the cool-down
                self._probing = False
                self._opened_at = self._clock()
                self._set_state("open")
            elif (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._set_state("open")

    def _on_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probing = False
            if self._state != "closed":
                self._set_state("closed")


# ---------------------------------------------------------------------- #
# shared retry policy
# ---------------------------------------------------------------------- #


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff for transient failures.

    The single retry loop shared across the system: the SQLite store's
    busy/locked handling and the MiniDB open path both run through it.
    ``sleep`` is injectable so tests never actually wait.
    """

    max_attempts: int = 5
    base_delay: float = 0.02
    multiplier: float = 2.0
    name: str = "default"
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            self.max_attempts = 1
        self._attempts_metric = _retry_counter(self.name)

    def run(
        self,
        fn: Callable,
        catch: Tuple[Type[BaseException], ...] = (StorageError, OSError),
        transient: Optional[Callable[[BaseException], bool]] = None,
        wrap: Optional[Callable[[BaseException, int], BaseException]] = None,
        on_retry: Optional[Callable[[BaseException], None]] = None,
    ):
        """Run ``fn``, retrying transient failures with backoff.

        ``catch`` limits which exception types are handled at all;
        ``transient(exc)`` (default: everything caught) decides whether a
        caught failure is worth retrying; ``wrap(exc, attempts)`` maps
        the final failure into the caller's error type; ``on_retry`` is
        invoked before each backoff sleep (extra per-caller metrics).
        """
        delay = self.base_delay
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except catch as exc:
                retryable = transient is None or transient(exc)
                if not retryable or attempt == self.max_attempts - 1:
                    if wrap is not None:
                        raise wrap(exc, attempt + 1) from exc
                    raise
                self._attempts_metric.inc()
                obs_context.account(retries=1)
                if on_retry is not None:
                    on_retry(exc)
                self.sleep(delay)
                delay *= self.multiplier


# ---------------------------------------------------------------------- #
# session-level policy
# ---------------------------------------------------------------------- #


@dataclass
class ResiliencePolicy:
    """Per-session resilience configuration (all features opt-in).

    ``timeout_ms``/``degrade`` are session-wide defaults each query may
    override; ``max_concurrency`` enables admission control;
    ``breaker_failures`` enables a per-backend circuit breaker around the
    physical primitives.  A default-constructed policy is inert.
    """

    #: Default per-query deadline; ``None`` disables deadlines.
    timeout_ms: Optional[float] = None
    #: Default degraded mode (``None`` or ``"candidates"``).
    degrade: Optional[str] = None
    #: Skip refine when remaining budget < this (ms); default: a
    #: ``degrade_fraction`` share of the budget.
    degrade_margin_ms: Optional[float] = None
    degrade_fraction: float = 0.25
    #: Queries allowed in flight at once; ``None`` disables admission.
    max_concurrency: Optional[int] = None
    max_queue: int = 0
    queue_timeout_ms: float = 1000.0
    #: Consecutive failures that open the breaker; ``None`` disables it.
    breaker_failures: Optional[int] = None
    breaker_cooldown_ms: float = 1000.0
    #: Rows between cooperative deadline checks inside store loops.
    check_every: int = 256

    def __post_init__(self) -> None:
        if self.degrade not in (None, "candidates"):
            raise InvalidParameterError(
                f"degrade must be None or 'candidates', got {self.degrade!r}"
            )

    def admission(self) -> Optional[AdmissionController]:
        if self.max_concurrency is None:
            return None
        return AdmissionController(
            self.max_concurrency,
            max_queue=self.max_queue,
            queue_timeout_s=self.queue_timeout_ms / 1000.0,
        )

    def breaker(
        self, backend: str, name: Optional[str] = None
    ) -> Optional[CircuitBreaker]:
        if self.breaker_failures is None:
            return None
        return CircuitBreaker(
            failure_threshold=self.breaker_failures,
            cooldown_s=self.breaker_cooldown_ms / 1000.0,
            backend=backend,
            name=name,
        )


def record_timeout() -> None:
    """Count one deadline miss (called where QueryTimeout surfaces)."""
    _TIMEOUTS.inc()
    ctx = obs_context.current_context()
    flight.record(
        "timeout", "deadline",
        query_id=ctx.query_id if ctx is not None else None,
    )


def record_degraded() -> None:
    """Count one degraded answer."""
    _DEGRADED.inc()
    ctx = obs_context.current_context()
    flight.record(
        "degraded", "refine_skipped",
        query_id=ctx.query_id if ctx is not None else None,
    )

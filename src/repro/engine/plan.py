"""Logical query plans for the Section 4.4 drop/jump search.

A drop (jump) search is one fixed logical shape::

    UnionDedupOp
    ├── PointRangeOp   corner features inside the query region
    └── LineCrossOp    boundary edges crossing the region
    └── RefineOp       (optional) witness refinement against raw data

The *logical* operators carry the query thresholds and the chosen
*physical access path* (``scan`` / ``index`` / ``grid``); the executor
maps each operator onto the narrow physical interface every
:class:`~repro.storage.base.FeatureStore` exposes (``scan_points``,
``probe_point_index``, ``scan_lines``, ``probe_line_index``).  Plan
choice per operator lives in :mod:`repro.engine.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..core.queries import DropQuery, JumpQuery
from ..errors import InvalidParameterError

__all__ = [
    "Query",
    "PointRangeOp",
    "LineCrossOp",
    "UnionDedupOp",
    "RefineOp",
    "QueryPlan",
    "build_plan",
    "normalize_t_range",
    "POINT_ACCESS_PATHS",
    "LINE_ACCESS_PATHS",
]

Query = Union[DropQuery, JumpQuery]

#: Physical access paths a point operator may use.
POINT_ACCESS_PATHS = ("scan", "index", "grid")
#: Physical access paths a line operator may use (a grid cannot prune on
#: the crossing predicate's interpolated value).
LINE_ACCESS_PATHS = ("scan", "index")


def normalize_t_range(t_range) -> Optional[Tuple[float, float]]:
    """Validate a time-range restriction into a ``(lo, hi)`` float pair.

    A pair matches when its ``[t_d, t_a]`` extent overlaps ``[lo, hi]``
    (the event must *touch* the range, the standard interval-overlap
    semantics).  ``None`` means unrestricted.
    """
    if t_range is None:
        return None
    try:
        lo, hi = t_range
        lo, hi = float(lo), float(hi)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(
            f"t_range must be a (lo, hi) pair, got {t_range!r}"
        ) from exc
    if not (lo <= hi):
        raise InvalidParameterError(
            f"t_range must satisfy lo <= hi, got ({lo!r}, {hi!r})"
        )
    return (lo, hi)


@dataclass(frozen=True)
class PointRangeOp:
    """Point query: stored corners with ``Δt <= T`` and ``Δv`` past ``V``."""

    kind: str
    t_threshold: float
    v_threshold: float
    access: str = "index"

    def __post_init__(self) -> None:
        if self.kind not in ("drop", "jump"):
            raise InvalidParameterError(f"unknown query kind {self.kind!r}")
        if self.access not in POINT_ACCESS_PATHS:
            raise InvalidParameterError(
                f"point access must be one of {POINT_ACCESS_PATHS}, "
                f"got {self.access!r}"
            )

    @property
    def table(self) -> str:
        return f"{self.kind}_points"


@dataclass(frozen=True)
class LineCrossOp:
    """Line query: boundary edges crossing the region, both ends out."""

    kind: str
    t_threshold: float
    v_threshold: float
    access: str = "index"

    def __post_init__(self) -> None:
        if self.kind not in ("drop", "jump"):
            raise InvalidParameterError(f"unknown query kind {self.kind!r}")
        if self.access not in LINE_ACCESS_PATHS:
            raise InvalidParameterError(
                f"line access must be one of {LINE_ACCESS_PATHS}, "
                f"got {self.access!r}"
            )

    @property
    def table(self) -> str:
        return f"{self.kind}_lines"


@dataclass(frozen=True)
class UnionDedupOp:
    """Union the operator outputs and keep distinct segment pairs."""


@dataclass(frozen=True)
class RefineOp:
    """Witness-refine pairs against raw data (``rank_hits`` semantics)."""

    verified_only: bool = False


@dataclass(frozen=True)
class QueryPlan:
    """One executable drop/jump search plan.

    ``t_range`` restricts results to pairs whose ``[t_d, t_a]`` extent
    overlaps the closed interval — the time-pruning predicate the
    partitioned executor also routes on (partitions whose feature extent
    misses the range are skipped entirely).
    """

    query: Query
    point_op: PointRangeOp
    line_op: LineCrossOp
    union_op: UnionDedupOp = field(default_factory=UnionDedupOp)
    refine_op: Optional[RefineOp] = None
    t_range: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "t_range", normalize_t_range(self.t_range))

    @property
    def kind(self) -> str:
        return self.query.kind

    @property
    def operators(self) -> Tuple[object, ...]:
        ops: Tuple[object, ...] = (self.point_op, self.line_op, self.union_op)
        if self.refine_op is not None:
            ops = ops + (self.refine_op,)
        return ops

    def describe(self) -> str:
        """Render the plan as an operator tree."""
        q = self.query
        header = f"QueryPlan[{q.kind}]  T={q.t_threshold:g}s  V={q.v_threshold:g}"
        if self.t_range is not None:
            header += f"  t_range=[{self.t_range[0]:g}, {self.t_range[1]:g}]"
        lines = [header]
        lines.append("└─ UnionDedupOp")
        lines.append(
            f"   ├─ PointRangeOp({self.point_op.table})  "
            f"access={self.point_op.access}"
        )
        lines.append(
            f"   {'├' if self.refine_op else '└'}─ "
            f"LineCrossOp({self.line_op.table})  access={self.line_op.access}"
        )
        if self.refine_op is not None:
            lines.append(
                f"   └─ RefineOp(verified_only={self.refine_op.verified_only})"
            )
        return "\n".join(lines)


def build_plan(
    query: Query,
    point_access: str = "index",
    line_access: Optional[str] = None,
    refine: Optional[RefineOp] = None,
    t_range: Optional[Tuple[float, float]] = None,
) -> QueryPlan:
    """Assemble the standard §4.4 plan with explicit access paths.

    ``line_access`` defaults to ``point_access``, except that a ``grid``
    point access pairs with the ``index`` line path (the memory backend's
    historical ``mode="grid"`` semantics).  ``t_range`` restricts results
    to pairs overlapping the closed time interval.
    """
    if line_access is None:
        line_access = "index" if point_access == "grid" else point_access
    return QueryPlan(
        query=query,
        point_op=PointRangeOp(
            query.kind, query.t_threshold, query.v_threshold, point_access
        ),
        line_op=LineCrossOp(
            query.kind, query.t_threshold, query.v_threshold, line_access
        ),
        refine_op=refine,
        t_range=t_range,
    )

"""The unified query engine: plan → execute → refine, on any backend.

Layering (docs/query_engine.md has the full walkthrough)::

    SegDiffIndex / TieredIndex / TransectIndex / CLI / experiments
                           │
                     QuerySession          (session.py: batching, EXPLAIN,
                           │                thread safety, auto planning)
                 QueryPlan + CostModel     (plan.py, cost.py)
                           │
                       executor            (executor.py: the ONE copy of
                           │                union/dedup/refine — §4.4)
        scan_points / probe_point_index / scan_lines / probe_line_index
                           │
          MemoryFeatureStore · SqliteFeatureStore · MiniDbFeatureStore
"""

from .cost import BACKEND_COSTS, BackendCosts, CostModel
from .executor import (
    ExecutionResult,
    OperatorStats,
    execute,
    execute_batch,
    execute_batch_partitioned,
    execute_partitioned,
)
from .plan import (
    LineCrossOp,
    PointRangeOp,
    QueryPlan,
    RefineOp,
    UnionDedupOp,
    build_plan,
    normalize_t_range,
)
from .resilience import (
    AdmissionController,
    CircuitBreaker,
    CompletenessReport,
    Deadline,
    QueryGuard,
    QueryOutcome,
    ResiliencePolicy,
    ResultStatus,
    RetryPolicy,
)
from .session import ExplainReport, OperatorExplain, QuerySession
from .sharding import (
    Divergence,
    Shard,
    ShardedIndex,
    ShardSpec,
    VerifyReport,
)

__all__ = [
    "AdmissionController",
    "BACKEND_COSTS",
    "BackendCosts",
    "CircuitBreaker",
    "CompletenessReport",
    "CostModel",
    "Deadline",
    "Divergence",
    "ExecutionResult",
    "ExplainReport",
    "LineCrossOp",
    "OperatorExplain",
    "OperatorStats",
    "PointRangeOp",
    "QueryGuard",
    "QueryOutcome",
    "QueryPlan",
    "QuerySession",
    "RefineOp",
    "ResiliencePolicy",
    "ResultStatus",
    "RetryPolicy",
    "Shard",
    "ShardSpec",
    "ShardedIndex",
    "UnionDedupOp",
    "VerifyReport",
    "build_plan",
    "execute",
    "execute_batch",
    "execute_batch_partitioned",
    "execute_partitioned",
    "normalize_t_range",
]

"""Sharded SegDiff indexes: scatter-gather, replicas, anti-entropy.

The paper's deployment is a 25-sensor transect — one index per sensor
(and optionally per time range) is the natural partition.  This module
scales the single resilient index of :mod:`repro.engine.session` out to
a :class:`ShardedIndex` that

* **routes** a ``(T, V)`` query only to shards whose sensor/time bounds
  overlap the caller's predicate,
* **scatters** the routed shards onto a thread pool, one
  :class:`~repro.engine.session.QuerySession` per shard replica, and
  **gathers** through the same union/dedup ordering as the executor
  (``sorted(set(pairs))``), so a one-shard deployment is bit-identical
  to a plain index,
* **fails over**: each shard may hold R replicas; a replica that times
  out, errors, or trips its circuit breaker
  (:class:`~repro.errors.CircuitOpenError`) is skipped and the next
  replica is tried before the shard is declared lost,
* keeps partial answers **honest**: the merged
  :class:`~repro.engine.resilience.QueryOutcome` carries a
  :class:`~repro.engine.resilience.CompletenessReport` naming every
  shard that was lost — candidates from surviving shards are still a
  superset of their shards' true answers (Theorem 1), so a degraded
  answer has no false negatives *within the shards it covers*.

Silent divergence is handled by checksum anti-entropy
(:mod:`repro.storage.checksum`): every replica is sealed with a
Merkle-style segment-checksum tree at build; :meth:`ShardedIndex.verify`
compares replica trees against the shard's primary top-down, descending
only into mismatching ranges (O(k·log n) checksum comparisons for k
divergent rows), and :meth:`ShardedIndex.repair` re-copies only the
divergent row ranges from the primary — falling back to a full
rebuild-from-peer with a checksum-gated cutover when the backend cannot
address rows in place.

Time-sharding note: shards split a single series **only at gap
(episode) boundaries** — feature pairs never span a ``mark_gap()``
break, so a shard union over episode groups is exactly the single-index
answer built with the same ``max_gap``.  Cutting a continuous series
elsewhere would lose cross-boundary pairs; the builder therefore
refuses to time-shard without ``max_gap``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    InvalidParameterError,
    QueryTimeout,
    StorageError,
)
from ..obs import context as obs_context
from ..obs import recorder as flight
from ..obs import slowlog
from ..obs.metrics import REGISTRY
from ..obs.tracing import retain_trace, span
from ..types import SegmentPair
from .resilience import (
    CompletenessReport,
    QueryOutcome,
    ResiliencePolicy,
    ResultStatus,
)

__all__ = [
    "ShardSpec",
    "Shard",
    "ShardedIndex",
    "Divergence",
    "VerifyReport",
]

_FAILOVERS = REGISTRY.counter(
    "repro_shard_failovers_total",
    "Replica failovers during sharded scatter-gather",
)

_shard_query_counters: Dict[Tuple[str, str], object] = {}
_counter_lock = threading.Lock()


def _count_shard_query(shard: str, status: str) -> None:
    key = (shard, status)
    counter = _shard_query_counters.get(key)
    if counter is None:
        with _counter_lock:
            counter = _shard_query_counters.setdefault(
                key,
                REGISTRY.counter(
                    "repro_shard_queries_total",
                    "Per-shard query outcomes in a ShardedIndex",
                    {"shard": shard, "status": status},
                ),
            )
    counter.inc()


@dataclass(frozen=True)
class ShardSpec:
    """Routing metadata of one shard.

    ``t_min``/``t_max`` bound the observation timestamps the shard
    covers; ``sensor`` names the transect sensor (``None`` for a
    time-sharded single-series deployment).
    """

    shard_id: str
    t_min: float
    t_max: float
    sensor: Optional[str] = None

    def overlaps(
        self,
        sensors: Optional[Sequence[str]] = None,
        t_range: Optional[Tuple[float, float]] = None,
    ) -> bool:
        """Whether a query restricted to ``sensors``/``t_range`` can
        have answers in this shard."""
        if sensors is not None and self.sensor not in sensors:
            return False
        if t_range is not None:
            lo, hi = t_range
            if self.t_max < lo or self.t_min > hi:
                return False
        return True


@dataclass(frozen=True)
class Divergence:
    """One replica's table disagreeing with its shard's source of truth.

    ``replica == 0`` means the *primary itself* disagrees with its
    persisted (sealed) tree — bit rot on the authority; repair then
    copies from a sibling replica whose tree still matches the seal.
    ``ranges`` are the ``[start, stop)`` row ranges the top-down diff
    localized.
    """

    shard_id: str
    replica: int
    table: str
    ranges: Tuple[Tuple[int, int], ...]
    against: str = "primary"  # or "sealed"


@dataclass
class VerifyReport:
    """Outcome of one anti-entropy :meth:`ShardedIndex.verify` pass."""

    divergences: List[Divergence] = field(default_factory=list)
    #: Checksum-node comparisons made — the O(k log n) cost being
    #: asserted against a full row scan.
    ranges_checked: int = 0
    shards_checked: int = 0
    replicas_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        if self.clean:
            return (
                f"clean: {self.shards_checked} shard(s), "
                f"{self.replicas_checked} replica(s), "
                f"{self.ranges_checked} checksum ranges compared"
            )
        lines = [
            f"{len(self.divergences)} divergence(s) in "
            f"{self.shards_checked} shard(s) "
            f"({self.ranges_checked} checksum ranges compared):"
        ]
        for d in self.divergences:
            where = ", ".join(f"[{a}, {b})" for a, b in d.ranges)
            lines.append(
                f"  shard {d.shard_id} replica {d.replica} "
                f"{d.table} vs {d.against}: rows {where}"
            )
        return "\n".join(lines)


class Shard:
    """One shard: a :class:`ShardSpec` plus R replica indexes.

    Replicas are full :class:`~repro.core.index.SegDiffIndex` builds of
    the same data (deterministic pipeline → bit-identical feature rows),
    each with its own store, session, and circuit breaker.  Queries try
    replicas in order; a failure (timeout, storage error, open breaker)
    fails over to the next.
    """

    def __init__(self, spec: ShardSpec, replicas: Sequence) -> None:
        if not replicas:
            raise InvalidParameterError(
                f"shard {spec.shard_id!r} needs at least one replica"
            )
        self.spec = spec
        self.replicas = list(replicas)

    @property
    def shard_id(self) -> str:
        return self.spec.shard_id

    @property
    def primary(self):
        return self.replicas[0]

    def search_outcome(self, kind: str, t_threshold: float,
                       v_threshold: float, **kw) -> QueryOutcome:
        """Search this shard, failing over across replicas.

        Raises the last replica's error only after every replica failed;
        the sharded gather above converts that into a lost-shard entry
        in the merged completeness report.
        """
        last_error: Optional[BaseException] = None
        for attempt, replica in enumerate(self.replicas):
            if attempt:
                _FAILOVERS.inc()
                obs_context.account(failovers=1)
                ctx = obs_context.current_context()
                flight.record(
                    "failover", self.shard_id,
                    replica=attempt,
                    error=type(last_error).__name__ if last_error else None,
                    query_id=ctx.query_id if ctx is not None else None,
                )
            try:
                outcome = replica.search_outcome(
                    kind, t_threshold, v_threshold, **kw
                )
            except (QueryTimeout, StorageError, OSError) as exc:
                last_error = exc
                continue
            status = "failover" if attempt else "ok"
            _count_shard_query(self.shard_id, status)
            return outcome
        _count_shard_query(self.shard_id, "lost")
        raise last_error  # every replica failed

    def close(self) -> None:
        for replica in self.replicas:
            replica.close()


class ShardedIndex:
    """N shards of SegDiff behind one query facade (module docstring)."""

    def __init__(
        self,
        shards: Sequence[Shard],
        epsilon: float,
        window: float,
        max_workers: Optional[int] = None,
    ) -> None:
        if not shards:
            raise InvalidParameterError("a ShardedIndex needs >= 1 shard")
        ids = [s.shard_id for s in shards]
        if len(set(ids)) != len(ids):
            raise InvalidParameterError(f"duplicate shard ids in {ids}")
        self.epsilon = float(epsilon)
        self.window = float(window)
        self._shards: Dict[str, Shard] = {s.shard_id: s for s in shards}
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build_transect(
        cls,
        sensors: Mapping[str, object],
        epsilon: float,
        window: float,
        replicas: int = 1,
        backend: str = "memory",
        directory: Optional[str] = None,
        resilience: Optional[ResiliencePolicy] = None,
        max_gap: Optional[float] = None,
        leaf_size: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> "ShardedIndex":
        """One shard per transect sensor (the paper's 25-sensor layout).

        ``sensors`` maps sensor id to its :class:`TimeSeries`.  Each
        shard holds ``replicas`` independent builds of its sensor's
        series; with ``backend="sqlite"`` and a ``directory`` the
        replica files land at ``<dir>/<sensor>-r<i>.sqlite`` (the layout
        :meth:`save`/:meth:`open` use).  Every replica is sealed with
        its checksum trees.
        """
        shards = []
        for sensor_id, series in sensors.items():
            ts = np.asarray(series.times, dtype=float)
            spec = ShardSpec(
                shard_id=str(sensor_id),
                t_min=float(ts[0]) if ts.size else 0.0,
                t_max=float(ts[-1]) if ts.size else 0.0,
                sensor=str(sensor_id),
            )
            shards.append(
                _build_shard(
                    spec, [series] * max(1, int(replicas)), epsilon,
                    window, backend, directory, resilience, max_gap,
                    leaf_size,
                )
            )
        return cls(shards, epsilon, window, max_workers=max_workers)

    @classmethod
    def build(
        cls,
        series,
        epsilon: float,
        window: float,
        n_shards: int,
        max_gap: float,
        replicas: int = 1,
        backend: str = "memory",
        directory: Optional[str] = None,
        resilience: Optional[ResiliencePolicy] = None,
        leaf_size: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> "ShardedIndex":
        """Time-shard one series at its gap (episode) boundaries.

        Episodes (runs with no sampling gap over ``max_gap`` seconds)
        are grouped into up to ``n_shards`` contiguous time ranges, one
        shard each.  Feature pairs never span a gap, so the union over
        shards equals a single index built with the same ``max_gap`` —
        splitting anywhere else would lose cross-boundary pairs, hence
        ``max_gap`` is required here.
        """
        from ..core.index import _split_episodes
        from ..datagen.series import TimeSeries

        if n_shards < 1:
            raise InvalidParameterError("n_shards must be >= 1")
        ts = np.ascontiguousarray(series.times, dtype=float)
        vs = np.ascontiguousarray(series.values, dtype=float)
        episodes = _split_episodes(ts, vs, max_gap)
        n_groups = min(n_shards, len(episodes))
        bounds = [
            round(j * len(episodes) / n_groups) for j in range(n_groups + 1)
        ]
        groups = [
            episodes[a:b] for a, b in zip(bounds, bounds[1:]) if b > a
        ]
        shards = []
        for i, group in enumerate(groups):
            ets = np.concatenate([e[0] for e in group])
            evs = np.concatenate([e[1] for e in group])
            spec = ShardSpec(
                shard_id=f"t{i}",
                t_min=float(ets[0]),
                t_max=float(ets[-1]),
            )
            shard_series = TimeSeries(times=ets, values=evs)
            shards.append(
                _build_shard(
                    spec, [shard_series] * max(1, int(replicas)), epsilon,
                    window, backend, directory, resilience, max_gap,
                    leaf_size,
                )
            )
        return cls(shards, epsilon, window, max_workers=max_workers)

    @classmethod
    def open(
        cls,
        directory: str,
        resilience: Optional[ResiliencePolicy] = None,
        max_workers: Optional[int] = None,
    ) -> "ShardedIndex":
        """Reopen a sharded index saved by a ``directory`` build.

        Reads ``manifest.json`` and opens every replica file.
        """
        from ..core.index import SegDiffIndex

        manifest_path = os.path.join(directory, "manifest.json")
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError) as exc:
            raise StorageError(
                f"cannot read shard manifest {manifest_path}: {exc}"
            ) from exc
        shards = []
        for entry in manifest["shards"]:
            spec = ShardSpec(
                shard_id=entry["shard_id"],
                t_min=float(entry["t_min"]),
                t_max=float(entry["t_max"]),
                sensor=entry.get("sensor"),
            )
            replicas = [
                SegDiffIndex.open(
                    os.path.join(directory, fname),
                    resilience=resilience,
                    name=f"{spec.shard_id}/r{i}",
                )
                for i, fname in enumerate(entry["replicas"])
            ]
            shards.append(Shard(spec, replicas))
        return cls(
            shards,
            epsilon=float(manifest["epsilon"]),
            window=float(manifest["window"]),
            max_workers=max_workers,
        )

    def save_manifest(self, directory: str) -> str:
        """Write ``manifest.json`` for a directory-backed build."""
        entries = []
        for shard in self.shards:
            fnames = []
            for i, replica in enumerate(shard.replicas):
                path = getattr(replica.store, "path", None)
                if path is None:
                    raise StorageError(
                        f"shard {shard.shard_id} replica {i} has no "
                        "backing file; only file-backed sharded indexes "
                        "can be saved"
                    )
                fnames.append(os.path.basename(path))
            entries.append(
                {
                    "shard_id": shard.shard_id,
                    "t_min": shard.spec.t_min,
                    "t_max": shard.spec.t_max,
                    "sensor": shard.spec.sensor,
                    "replicas": fnames,
                }
            )
        manifest = {
            "epsilon": self.epsilon,
            "window": self.window,
            "shards": entries,
        }
        path = os.path.join(directory, "manifest.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2)
        return path

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def shards(self) -> List[Shard]:
        return list(self._shards.values())

    @property
    def shard_ids(self) -> List[str]:
        return list(self._shards)

    def shard(self, shard_id: str) -> Shard:
        try:
            return self._shards[shard_id]
        except KeyError:
            raise InvalidParameterError(
                f"unknown shard {shard_id!r}; have {list(self._shards)}"
            ) from None

    # ------------------------------------------------------------------ #
    # scatter-gather search
    # ------------------------------------------------------------------ #

    def route(
        self,
        sensors: Optional[Sequence[str]] = None,
        t_range: Optional[Tuple[float, float]] = None,
    ) -> List[Shard]:
        """The shards a query restricted this way must visit."""
        return [
            s for s in self._shards.values()
            if s.spec.overlaps(sensors, t_range)
        ]

    def search_drops(self, t_threshold: float, v_threshold: float,
                     **kw) -> List[SegmentPair]:
        return self.search_outcome(
            "drop", t_threshold, v_threshold, **kw
        ).pairs

    def search_jumps(self, t_threshold: float, v_threshold: float,
                     **kw) -> List[SegmentPair]:
        return self.search_outcome(
            "jump", t_threshold, v_threshold, **kw
        ).pairs

    def search_outcome(
        self,
        kind: str,
        t_threshold: float,
        v_threshold: float,
        mode: str = "index",
        sensors: Optional[Sequence[str]] = None,
        t_range: Optional[Tuple[float, float]] = None,
        **kw,
    ) -> QueryOutcome:
        """Scatter one ``(T, V)`` search over the routed shards and merge.

        ``sensors``/``t_range`` restrict routing; remaining keywords
        (``timeout_ms``, ``degrade``, ``cache``) pass through to every
        shard session.  The merged outcome is COMPLETE when every routed
        shard answered (possibly via replica failover), DEGRADED when
        some shards were lost or answered degraded (the completeness
        report names the lost shards), and FAILED when no shard
        answered.
        """
        routed = self.route(sensors, t_range)
        if not routed:
            return QueryOutcome(
                pairs=[],
                status=ResultStatus.COMPLETE,
                completeness=CompletenessReport(
                    reason="no shard overlaps the predicate"
                ),
            )
        # Adopt an already-bound diagnostics context or open a new one;
        # the owner makes the tail-retention call after the merge.
        ctx = obs_context.current_context()
        owns = ctx is None
        if owns:
            ctx = obs_context.new_context(api="shard_search")
        binder = obs_context.use_context(ctx) if owns else nullcontext()
        t0 = time.perf_counter()
        with binder:
            with span("shard.scatter_gather") as s:
                s.set_attribute("query_id", ctx.query_id)
                s.set_attribute("kind", kind)
                s.set_attribute("shards", len(routed))
                # Hand the context off through the pool explicitly:
                # thread-locals don't cross ThreadPoolExecutor, so each
                # worker rebinds and parents its spans on the scatter
                # span — one connected trace tree per query instead of
                # per-thread orphans.
                handed = ctx.handoff(s)
                if len(routed) == 1:
                    results = [
                        self._shard_call(
                            handed, routed[0], kind, t_threshold,
                            v_threshold, mode, kw,
                        )
                    ]
                else:
                    pool = self._executor(len(routed))
                    results = list(
                        pool.map(
                            lambda sh: self._shard_call(
                                handed, sh, kind, t_threshold,
                                v_threshold, mode, kw,
                            ),
                            routed,
                        )
                    )
        outcome = self._merge(routed, results)
        outcome.query_id = ctx.query_id
        outcome.accounting = ctx.accounting
        unhealthy = outcome.status is not ResultStatus.COMPLETE
        if unhealthy:
            outcome.recorder_tail = flight.RECORDER.tail_dicts(32)
        if owns:
            threshold = slowlog.default_threshold()
            seconds = time.perf_counter() - t0
            slow = threshold is not None and seconds >= threshold
            if unhealthy or slow:
                for root in ctx.trace_roots:
                    retain_trace(root)
            del ctx.trace_roots[:]
        return outcome

    @staticmethod
    def _shard_call(ctx, shard: Shard, kind, t_threshold, v_threshold,
                    mode, kw):
        """One shard's outcome, or the error that lost it.

        Runs on a scatter-pool worker thread: rebinds the handed-off
        query context (scoped to this shard) so the shard session's
        spans and accounting join the submitting query.
        """
        try:
            with obs_context.use_context(ctx, shard=shard.shard_id):
                return shard.search_outcome(
                    kind, t_threshold, v_threshold, mode=mode, **kw
                )
        except (QueryTimeout, StorageError, OSError) as exc:
            return exc

    def _merge(self, routed, results) -> QueryOutcome:
        """Union/dedup the shard answers into one honest outcome.

        Ordering matches the executor's ``np.unique(axis=0)``
        (``sorted(set(...))`` over the 4-tuples), so a one-shard index
        returns exactly what the plain index would.
        """
        ok: List[str] = []
        lost: List[str] = []
        degraded = False
        last_error: Optional[BaseException] = None
        merged = set()
        for shard, result in zip(routed, results):
            if isinstance(result, BaseException):
                lost.append(shard.shard_id)
                last_error = result
                continue
            ok.append(shard.shard_id)
            degraded = degraded or result.degraded
            merged.update(p.as_tuple() for p in result.pairs)
        pairs = [SegmentPair(*t) for t in sorted(merged)]
        if not ok:
            return QueryOutcome(
                pairs=[],
                status=ResultStatus.FAILED,
                completeness=CompletenessReport(
                    finished=(),
                    unfinished=tuple(lost),
                    reason="every routed shard failed",
                ),
                error=last_error,
            )
        if lost or degraded:
            reason = (
                f"lost shard(s): {', '.join(lost)}" if lost
                else "shard answered degraded (refine pass skipped)"
            )
            return QueryOutcome(
                pairs=pairs,
                status=ResultStatus.DEGRADED,
                completeness=CompletenessReport(
                    finished=tuple(ok),
                    unfinished=tuple(lost),
                    reason=reason,
                ),
                error=last_error,
            )
        return QueryOutcome(
            pairs=pairs,
            status=ResultStatus.COMPLETE,
            completeness=CompletenessReport(finished=tuple(ok)),
        )

    def _executor(self, n: int) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                workers = self._max_workers or min(
                    len(self._shards), (os.cpu_count() or 4)
                )
                self._pool = ThreadPoolExecutor(
                    max_workers=max(1, workers),
                    thread_name_prefix="repro-shard",
                )
            return self._pool

    # ------------------------------------------------------------------ #
    # anti-entropy: verify / repair
    # ------------------------------------------------------------------ #

    def verify(
        self,
        shard_id: Optional[str] = None,
        leaf_size: Optional[int] = None,
    ) -> VerifyReport:
        """Compare every replica's checksum trees against its shard's
        primary, top-down (data-diff style).

        Two comparisons per shard: the primary's *recomputed* trees
        against its *sealed* (persisted) trees — catching bit rot on the
        authority itself — and every other replica's recomputed trees
        against the primary's.  Only mismatching subtrees are descended,
        so k divergent rows cost O(k·log n) checksum comparisons (the
        ``repro_verify_ranges_checked`` counter records them).
        """
        from ..storage import checksum as cks

        report = VerifyReport()
        shards = (
            [self.shard(shard_id)] if shard_id is not None else self.shards
        )
        for shard in shards:
            report.shards_checked += 1
            primary = shard.primary
            sealed = cks.load_trees(primary.store)
            # recompute with the sealed trees' leaf size unless the
            # caller overrides, so shapes stay comparable
            size = leaf_size
            if size is None and sealed is not None:
                size = next(iter(sealed.values())).leaf_size
            kw = {} if size is None else {"leaf_size": size}
            primary_trees = cks.store_trees(primary.store, **kw)
            if sealed is not None:
                report.replicas_checked += 1
                for table, tree in primary_trees.items():
                    ranges, checked = cks.diff_trees(sealed[table], tree)
                    report.ranges_checked += checked
                    if ranges:
                        report.divergences.append(
                            Divergence(
                                shard_id=shard.shard_id,
                                replica=0,
                                table=table,
                                ranges=tuple(ranges),
                                against="sealed",
                            )
                        )
            for r, replica in enumerate(shard.replicas[1:], start=1):
                report.replicas_checked += 1
                replica_trees = cks.store_trees(replica.store, **kw)
                for table, tree in primary_trees.items():
                    ranges, checked = cks.diff_trees(
                        tree, replica_trees[table]
                    )
                    report.ranges_checked += checked
                    if ranges:
                        report.divergences.append(
                            Divergence(
                                shard_id=shard.shard_id,
                                replica=r,
                                table=table,
                                ranges=tuple(ranges),
                            )
                        )
        return report

    def repair(
        self,
        report: Optional[VerifyReport] = None,
        leaf_size: Optional[int] = None,
    ) -> VerifyReport:
        """Re-copy divergent row ranges and re-verify.

        For each divergence, rows are copied from the shard's source of
        truth — the primary for replica divergences; for a primary that
        drifted from its own seal, the first sibling replica whose tree
        still matches the sealed one.  Backends without positional row
        replacement fall back to a full rebuild-from-peer whose cutover
        is checksum-gated (the rebuilt store must match the source tree
        before it replaces the replica).  Returns the post-repair
        verify report; ``clean`` means convergence.
        """
        if report is None:
            report = self.verify(leaf_size=leaf_size)
        rebuilt: set = set()
        for div in report.divergences:
            shard = self.shard(div.shard_id)
            if (div.shard_id, div.replica) in rebuilt:
                continue
            source = self._source_for(shard, div)
            if source is None:
                continue  # unrepairable: no trusted peer (stays in report)
            target = shard.replicas[div.replica]
            try:
                for start, stop in div.ranges:
                    rows = source.store.read_table_rows(
                        div.table, start, stop
                    )
                    target.store.replace_table_rows(div.table, start, rows)
                flight.record(
                    "checksum_repair", div.shard_id,
                    replica=div.replica, table=div.table,
                    ranges=len(div.ranges), method="range_copy",
                )
            except StorageError:
                self._rebuild_replica(shard, div.replica, source)
                rebuilt.add((div.shard_id, div.replica))
                flight.record(
                    "checksum_repair", div.shard_id,
                    replica=div.replica, table=div.table,
                    ranges=len(div.ranges), method="rebuild",
                )
            if div.replica == 0 and div.against == "sealed":
                # the authority was repaired from a peer: re-seal so the
                # persisted trees describe the repaired rows
                shard.primary.seal_checksums(leaf_size)
        return self.verify(leaf_size=leaf_size)

    def _source_for(self, shard: Shard, div: Divergence):
        """The replica to copy healthy rows from."""
        from ..storage import checksum as cks

        if div.replica != 0:
            return shard.primary
        # the primary itself drifted: trust the first sibling whose
        # recomputed tree for this table matches the sealed root
        sealed = cks.load_trees(shard.primary.store)
        if sealed is None:
            return None
        for replica in shard.replicas[1:]:
            tree = cks.build_tree(
                replica.store.read_table_rows(div.table),
                div.table,
                sealed[div.table].leaf_size,
            )
            if tree.root == sealed[div.table].root:
                return replica
        return None

    def _rebuild_replica(self, shard: Shard, r: int, source) -> None:
        """Full rebuild-from-peer with a checksum-gated cutover.

        Streams every feature row and segment from ``source`` into a
        fresh in-memory store, verifies the rebuilt trees match the
        source's before cutover, then swaps the replica's store.  The
        old store is closed only after the gate passes.
        """
        from ..storage import checksum as cks
        from ..storage.memory_store import MemoryFeatureStore

        from types import SimpleNamespace

        target = shard.replicas[r]
        fresh = MemoryFeatureStore()
        batch = SimpleNamespace(
            drop_points=source.store.read_table_rows("drop_points"),
            drop_lines=source.store.read_table_rows("drop_lines"),
            jump_points=source.store.read_table_rows("jump_points"),
            jump_lines=source.store.read_table_rows("jump_lines"),
        )
        fresh.add_features_bulk(batch)
        fresh.add_segments_bulk(source.store.load_segments())
        fresh.finalize()
        for key in ("epsilon", "window", "n_observations", "sealed"):
            value = source.store.get_meta(key)
            if value is not None:
                fresh.set_meta(key, value)
        source_trees = cks.store_trees(source.store)
        rebuilt_trees = cks.store_trees(fresh)
        for table, tree in source_trees.items():
            if tree.root != rebuilt_trees[table].root:
                fresh.close()
                raise StorageError(
                    f"rebuild of shard {shard.shard_id} replica {r} "
                    f"failed its checksum gate on {table}; cutover refused"
                )
        cks.persist_trees(fresh, rebuilt_trees)
        old_store = target.store
        target.store = fresh
        target._session = None  # sessions cache the old store
        old_store.close()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """Shard layout summary (counts, bounds, replica fan-out)."""
        return {
            "n_shards": len(self._shards),
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "sensor": s.spec.sensor,
                    "t_min": s.spec.t_min,
                    "t_max": s.spec.t_max,
                    "replicas": len(s.replicas),
                    "rows": s.primary.store.counts().total,
                }
                for s in self._shards.values()
            ],
        }

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        for shard in self._shards.values():
            shard.close()

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _build_shard(
    spec: ShardSpec,
    replica_series: Sequence,
    epsilon: float,
    window: float,
    backend: str,
    directory: Optional[str],
    resilience: Optional[ResiliencePolicy],
    max_gap: Optional[float],
    leaf_size: Optional[int],
) -> Shard:
    """Build every replica of one shard and seal its checksums."""
    from ..core.index import SegDiffIndex

    replicas = []
    for i, series in enumerate(replica_series):
        path = None
        if directory is not None and backend != "memory":
            path = os.path.join(directory, f"{spec.shard_id}-r{i}.sqlite")
        index = SegDiffIndex.build(
            series,
            epsilon,
            window,
            backend=backend,
            path=path,
            max_gap=max_gap,
            resilience=resilience,
            name=f"{spec.shard_id}/r{i}",
        )
        index.seal_checksums(leaf_size)
        replicas.append(index)
    return Shard(spec, replicas)

"""Read-only, thread-safe query sessions with batching and EXPLAIN.

:class:`QuerySession` is the front door of the query engine: every
caller — ``SegDiffIndex``, ``TieredIndex``, ``TransectIndex``, the
experiments, the CLI — routes searches through one of these.  A session
owns a :class:`~repro.engine.cost.CostModel` for ``mode="auto"`` plan
choice, serializes access to backends whose reads are not thread-safe
(MiniDB's buffer pool), and exposes:

* :meth:`search` — one query, any mode, optional witness refinement;
* :meth:`search_batch` — a whole (T, V) grid in one shared pass per
  operator (the Figures 16-24 workload);
* :meth:`explain` — the chosen plan with estimated vs actual row counts
  (and pages read on MiniDB).
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError, QueryRejected, QueryTimeout
from ..obs import context as obs_context
from ..obs import recorder as flight
from ..obs import slowlog
from ..obs.metrics import QUERY_LATENCY_BUCKETS, REGISTRY, ROWS_BUCKETS
from ..obs.tracing import retain_trace, span
from ..types import SegmentPair
from .cost import CostModel
from .executor import ExecutionResult, execute, execute_batch
from .plan import Query, QueryPlan, RefineOp
from .resilience import (
    Deadline,
    QueryGuard,
    QueryOutcome,
    ResiliencePolicy,
    ResultStatus,
    record_timeout,
)

__all__ = ["QuerySession", "OperatorExplain", "ExplainReport"]

_MODES = ("auto", "index", "scan", "grid")

_QUERIES = {
    api: REGISTRY.counter(
        "repro_engine_queries_total",
        "Queries answered by QuerySession", {"api": api},
    )
    for api in ("search", "search_batch", "explain")
}
_QUERY_SECONDS = {
    api: REGISTRY.histogram(
        "repro_query_seconds",
        "End-to-end query latency per session API", {"api": api},
        buckets=QUERY_LATENCY_BUCKETS,
    )
    for api in ("search", "search_batch", "explain")
}
_QUERY_PAIRS = REGISTRY.histogram(
    "repro_query_pairs", "Distinct pairs returned per query",
    buckets=ROWS_BUCKETS,
)
_SLOW_QUERIES = REGISTRY.counter(
    "repro_query_slow_total",
    "Queries exceeding the slow-query threshold",
)


@dataclass(frozen=True)
class OperatorExplain:
    """EXPLAIN line for one physical operator."""

    operator: str
    table: str
    access: str
    estimated_rows: int
    actual_rows: int
    rows_fetched: int


@dataclass(frozen=True)
class ExplainReport:
    """The chosen plan plus estimated-vs-actual execution statistics."""

    backend: str
    plan: QueryPlan
    chosen_mode: str
    estimated_selectivity: float
    operators: List[OperatorExplain] = field(default_factory=list)
    n_pairs: int = 0
    pages_read: Optional[int] = None
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    #: Diagnostics: the query's id and its resource-accounting snapshot
    #: (totals + per-operator/shard/partition breakdown).
    query_id: Optional[str] = None
    accounting: Optional[dict] = field(default=None, compare=False)

    def render(self) -> str:
        """Human-readable EXPLAIN output (the CLI's format)."""
        q = self.plan.query
        lines = [
            f"EXPLAIN {q.kind} search  T={q.t_threshold:g}s  "
            f"V={q.v_threshold:g}  [backend={self.backend}]",
            f"  summary mode: {self.chosen_mode}  "
            f"(estimated selectivity {self.estimated_selectivity:.4f})",
            "  └─ UnionDedupOp"
            + (f"  pairs={self.n_pairs}" if self.n_pairs is not None else ""),
        ]
        for i, op in enumerate(self.operators):
            branch = "├" if i < len(self.operators) - 1 else "└"
            lines.append(
                f"     {branch}─ {op.operator}({op.table})  "
                f"access={op.access}  est_rows={op.estimated_rows}  "
                f"actual_rows={op.actual_rows}  fetched={op.rows_fetched}"
            )
        if self.pages_read is not None:
            line = f"  pages read: {self.pages_read}"
            if self.cache_hits is not None:
                line += (
                    f"  (pool hits {self.cache_hits}, "
                    f"misses {self.cache_misses})"
                )
            lines.append(line)
        return "\n".join(lines)


class QuerySession:
    """A read-only query session over one feature store.

    Thread safety: sessions serialize store access with an internal lock
    unless the store declares ``THREAD_SAFE_READS = True`` (the memory
    store's frozen numpy arrays and the SQLite store's per-thread reader
    connections both do; MiniDB's shared buffer pool does not).
    """

    def __init__(
        self,
        store,
        cost_model: Optional[CostModel] = None,
        slow_query_threshold: Optional[float] = None,
        resilience: Optional[ResiliencePolicy] = None,
        name: Optional[str] = None,
        vectorize: Optional[bool] = None,
    ) -> None:
        self.store = store
        #: Storage-primitive selection for every query this session runs:
        #: ``None`` (auto) prefers the columnar ``*_array`` primitives,
        #: ``False`` forces the scalar ones (the benchmark/differential
        #: baseline).  Both paths return identical results.
        self.vectorize = vectorize
        self.cost = cost_model if cost_model is not None else CostModel(store)
        #: Seconds above which a query lands in the slow-query log; when
        #: None, the process-wide default (``repro.obs.slowlog``) applies.
        self.slow_query_threshold = slow_query_threshold
        self._lock: Optional[threading.Lock] = (
            None if getattr(store, "THREAD_SAFE_READS", False)
            else threading.Lock()
        )
        #: Distinguishes this session's breaker gauge from other
        #: sessions' in a multi-index process (a shard id, usually);
        #: defaults to the store's backend name.
        self.name = name
        #: Resilience configuration (docs/resilience.md); ``None`` keeps
        #: every mechanism off and the query path on its original code.
        self.resilience = resilience
        self._admission = (
            resilience.admission() if resilience is not None else None
        )
        self._breaker = (
            resilience.breaker(
                getattr(store, "BACKEND", "unknown"), name=name
            )
            if resilience is not None else None
        )

    # ------------------------------------------------------------------ #
    # resilience plumbing
    # ------------------------------------------------------------------ #

    def _make_guard(
        self, timeout_ms: Optional[float], degrade: Optional[str]
    ) -> Optional[QueryGuard]:
        """Build the per-query guard; ``None`` when nothing is enabled.

        Per-query ``timeout_ms``/``degrade`` override the session
        policy's defaults.  Returning ``None`` on the unconfigured path
        keeps the executor's original (guard-free) code running —
        resilience costs nothing unless asked for.
        """
        pol = self.resilience
        if timeout_ms is None and pol is not None:
            timeout_ms = pol.timeout_ms
        if degrade is None and pol is not None:
            degrade = pol.degrade
        if timeout_ms is None and degrade is None and self._breaker is None:
            return None
        deadline = (
            Deadline.from_timeout_ms(timeout_ms)
            if timeout_ms is not None else None
        )
        kwargs = {}
        if pol is not None:
            kwargs["check_every"] = pol.check_every
            kwargs["degrade_fraction"] = pol.degrade_fraction
            if pol.degrade_margin_ms is not None:
                kwargs["degrade_margin_s"] = pol.degrade_margin_ms / 1000.0
        return QueryGuard(
            deadline=deadline,
            degrade=degrade,
            breaker=self._breaker,
            **kwargs,
        )

    def _admit(self, guard: Optional[QueryGuard]):
        """Admission-control context; a no-op without a concurrency cap."""
        if self._admission is None:
            return nullcontext()
        return self._admission.admit(
            guard.deadline if guard is not None else None
        )

    @property
    def admission(self):
        """The session's :class:`AdmissionController`, if enabled."""
        return self._admission

    @property
    def breaker(self):
        """The session's :class:`CircuitBreaker`, if enabled."""
        return self._breaker

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #

    def plan(
        self, query: Query, mode: str = "auto", t_range=None
    ) -> QueryPlan:
        """The plan :meth:`search` would execute for ``query``.

        ``t_range=(lo, hi)`` restricts results to pairs whose
        ``[t_d, t_a]`` extent overlaps the closed interval.
        """
        if mode not in _MODES:
            raise InvalidParameterError(
                f"mode must be one of {_MODES}, got {mode!r}"
            )
        return self.cost.plan(query, mode=mode, t_range=t_range)

    def invalidate(self) -> None:
        """Drop cached cost-model samples (the store grew)."""
        self.cost.invalidate()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def _execute(self, plan: QueryPlan, cache: str, data,
                 pushdown: bool = True,
                 guard: Optional[QueryGuard] = None) -> ExecutionResult:
        if self._lock is None:
            return self._execute_accounted(plan, cache, data, pushdown,
                                           guard)
        with self._lock:
            return self._execute_accounted(plan, cache, data, pushdown,
                                           guard)

    def _execute_accounted(self, plan, cache, data, pushdown, guard):
        """Execute and attribute the pager-page delta to the query's
        resource accounting (on stores that expose pager counters)."""
        fn = getattr(self.store, "pager_stats", None)
        before = (
            fn().snapshot()
            if callable(fn) and obs_context.current_context() is not None
            else None
        )
        result = execute(plan, self.store, cache=cache, data=data,
                         pushdown=pushdown, guard=guard,
                         vectorize=self.vectorize)
        if before is not None:
            delta = fn().snapshot().delta(before)
            obs_context.account(pages_read=delta.page_reads)
        return result

    def _execute_with_io(
        self, plan: QueryPlan, cache: str, data, pushdown: bool = True
    ) -> Tuple[ExecutionResult, Optional[object], Optional[object]]:
        """Execute with before/after pager-stat snapshots.

        Snapshots are taken *inside* the session lock, so on serialized
        backends (MiniDB's shared buffer pool) the delta attributes
        exactly this execution's page traffic even while other sessions
        on the same store run concurrently.
        """
        if self._lock is None:
            return self._run_with_io(plan, cache, data, pushdown)
        with self._lock:
            return self._run_with_io(plan, cache, data, pushdown)

    def _run_with_io(self, plan, cache, data, pushdown):
        before = self._io_stats()
        result = execute(plan, self.store, cache=cache, data=data,
                         pushdown=pushdown, vectorize=self.vectorize)
        after = self._io_stats()
        return result, before, after

    def _slow_threshold(self) -> Optional[float]:
        threshold = self.slow_query_threshold
        if threshold is None:
            threshold = slowlog.default_threshold()
        return threshold

    def _begin_query(self, api: str):
        """Adopt the bound context (scatter worker) or open a new one.

        Returns ``(ctx, binder, owns)``: ``owns`` is True when this
        session created the context and is responsible for the
        tail-retention decision at the end of the query.
        """
        ctx = obs_context.current_context()
        if ctx is not None:
            return ctx, nullcontext(), False
        ctx = obs_context.new_context(api=api)
        return ctx, obs_context.use_context(ctx), True

    @staticmethod
    def _finish_query(ctx, retain: bool) -> None:
        """Tail-based retention: keep the query's trace only when it was
        slow, degraded, failed, timed out, or shed."""
        if retain:
            for root in ctx.trace_roots:
                retain_trace(root)
        del ctx.trace_roots[:]

    def _observe_query(
        self,
        api: str,
        plan: QueryPlan,
        seconds: float,
        n_pairs: int,
        op_stats=None,
        ctx=None,
        status: str = "complete",
        partitions_scanned: Optional[int] = None,
        partitions_pruned: Optional[int] = None,
    ) -> None:
        """Record per-query telemetry and feed the slow-query log."""
        _QUERIES[api].inc()
        _QUERY_SECONDS[api].observe(seconds)
        _QUERY_PAIRS.observe(n_pairs)
        threshold = self._slow_threshold()
        if threshold is not None and seconds >= threshold:
            _SLOW_QUERIES.inc()
            acct = ctx.accounting.to_dict() if ctx is not None else None
            slowlog.SLOW_QUERY_LOG.add(
                slowlog.SlowQueryRecord(
                    api=api,
                    backend=getattr(self.store, "BACKEND", "unknown"),
                    duration_s=seconds,
                    threshold_s=threshold,
                    plan=plan.describe(),
                    n_pairs=n_pairs,
                    operators=[
                        {
                            "operator": s.operator,
                            "table": s.table,
                            "access": s.access,
                            "rows_fetched": s.rows_fetched,
                            "rows_matched": s.rows_matched,
                        }
                        for s in (op_stats or [])
                    ],
                    query_id=ctx.query_id if ctx is not None else None,
                    status=status,
                    partitions_scanned=partitions_scanned,
                    partitions_pruned=partitions_pruned,
                    shards=acct["breakdown"] if acct is not None else [],
                    accounting=(
                        {
                            "totals": acct["totals"],
                            "candidate_matrices": acct["candidate_matrices"],
                        }
                        if acct is not None else None
                    ),
                )
            )

    def search(
        self,
        query: Query,
        mode: str = "auto",
        cache: str = "warm",
        data=None,
        verified_only: bool = False,
        timeout_ms: Optional[float] = None,
        degrade: Optional[str] = None,
        t_range=None,
    ) -> List[SegmentPair]:
        """Distinct segment pairs matching ``query`` (Section 4.4).

        When ``data`` is given the result is witness-refined: a list of
        :class:`~repro.core.results.SearchHit` ordered by severity.
        ``timeout_ms``/``degrade`` override the session's resilience
        policy for this query; a degraded answer comes back as the
        candidate pairs (use :meth:`search_outcome` to see the flag).
        ``t_range=(lo, hi)`` keeps only pairs overlapping the interval.
        """
        outcome = self.search_outcome(
            query, mode=mode, cache=cache, data=data,
            verified_only=verified_only, timeout_ms=timeout_ms,
            degrade=degrade, t_range=t_range,
        )
        return outcome.results

    def search_outcome(
        self,
        query: Query,
        mode: str = "auto",
        cache: str = "warm",
        data=None,
        verified_only: bool = False,
        timeout_ms: Optional[float] = None,
        degrade: Optional[str] = None,
        t_range=None,
    ) -> QueryOutcome:
        """Like :meth:`search`, returning the full resilience verdict.

        The :class:`~repro.engine.resilience.QueryOutcome` carries the
        pairs/hits plus ``status`` (COMPLETE or DEGRADED) and the
        completeness report of a degraded answer.  Raises
        :class:`~repro.errors.QueryTimeout` on a missed deadline and
        :class:`~repro.errors.QueryRejected` when admission control
        sheds the query.
        """
        guard = self._make_guard(timeout_ms, degrade)
        refine = (
            RefineOp(verified_only=verified_only) if data is not None else None
        )
        ctx, binder, owns = self._begin_query("search")
        t0 = time.perf_counter()
        try:
            with binder, self._admit(guard):
                try:
                    with span("query.search") as root:
                        root.set_attribute("query_id", ctx.query_id)
                        shard, _ = obs_context.current_scope()
                        if shard is not None:
                            root.set_attribute("shard", shard)
                        with span("query.plan"):
                            plan = self.plan(query, mode=mode, t_range=t_range)
                        if refine is not None:
                            plan = QueryPlan(
                                query=plan.query,
                                point_op=plan.point_op,
                                line_op=plan.line_op,
                                refine_op=refine,
                                t_range=plan.t_range,
                            )
                        result = self._execute(plan, cache, data, guard=guard)
                        root.set_attribute(
                            "backend",
                            getattr(self.store, "BACKEND", "unknown"),
                        )
                        root.set_attribute("kind", query.kind)
                        root.set_attribute("pairs", len(result.pairs))
                except QueryTimeout:
                    record_timeout()
                    raise
        except (QueryTimeout, QueryRejected):
            # timed-out and shed queries always keep their trace
            if owns:
                self._finish_query(ctx, retain=True)
            raise
        seconds = time.perf_counter() - t0
        self._observe_query(
            "search", plan, seconds, len(result.pairs), result.op_stats,
            ctx=ctx, status=result.status.value,
        )
        unhealthy = result.status is not ResultStatus.COMPLETE
        if owns:
            threshold = self._slow_threshold()
            slow = threshold is not None and seconds >= threshold
            self._finish_query(ctx, retain=unhealthy or slow)
        return QueryOutcome(
            pairs=result.pairs,
            hits=result.hits,
            status=result.status,
            completeness=result.completeness,
            query_id=ctx.query_id,
            accounting=ctx.accounting,
            recorder_tail=(
                flight.RECORDER.tail_dicts(32) if unhealthy else None
            ),
        )

    def search_batch(
        self,
        queries: Sequence[Query],
        mode: str = "auto",
        cache: str = "warm",
        timeout_ms: Optional[float] = None,
        t_range=None,
    ) -> List[List[SegmentPair]]:
        """Answer a whole grid of queries in one shared pass per operator.

        Results align with ``queries`` by position and are identical to
        ``[self.search(q, ...) for q in queries]``, but candidates are
        fetched once per (kind, operator) instead of once per query.
        If a kind group's store fetch failed, the first such error is
        re-raised (after the healthy groups completed); use
        :meth:`search_batch_outcomes` for per-cell failure isolation.
        """
        outcomes = self.search_batch_outcomes(
            queries, mode=mode, cache=cache, timeout_ms=timeout_ms,
            t_range=t_range,
        )
        for outcome in outcomes:
            if outcome.failed:
                raise outcome.error
        return [outcome.pairs for outcome in outcomes]

    def search_batch_outcomes(
        self,
        queries: Sequence[Query],
        mode: str = "auto",
        cache: str = "warm",
        timeout_ms: Optional[float] = None,
        t_range=None,
    ) -> List[QueryOutcome]:
        """Batched search with per-cell resilience verdicts.

        A store failure in one kind group marks only that group's cells
        :attr:`ResultStatus.FAILED` (cause in ``error``); the rest of
        the grid returns COMPLETE.  A missed deadline still raises
        :class:`~repro.errors.QueryTimeout` — the deadline covers the
        whole batch.
        """
        if mode == "grid":
            raise InvalidParameterError(
                "batched execution supports 'auto', 'index' and 'scan'"
            )
        guard = self._make_guard(timeout_ms, None)
        ctx, binder, owns = self._begin_query("search_batch")
        t0 = time.perf_counter()
        try:
            with binder, self._admit(guard):
                try:
                    with span("query.search_batch") as root:
                        root.set_attribute("query_id", ctx.query_id)
                        with span("query.plan"):
                            plans = [
                                self.plan(q, mode=mode, t_range=t_range)
                                for q in queries
                            ]
                        if self._lock is None:
                            results = execute_batch(plans, self.store,
                                                    cache=cache, guard=guard,
                                                    vectorize=self.vectorize)
                        else:
                            with self._lock:
                                results = execute_batch(
                                    plans, self.store, cache=cache,
                                    guard=guard, vectorize=self.vectorize,
                                )
                        root.set_attribute("queries", len(plans))
                except QueryTimeout:
                    record_timeout()
                    raise
        except (QueryTimeout, QueryRejected):
            if owns:
                self._finish_query(ctx, retain=True)
            raise
        seconds = time.perf_counter() - t0
        unhealthy = any(
            r.status is not ResultStatus.COMPLETE for r in results
        )
        if unhealthy:
            batch_status = (
                "failed"
                if any(r.status is ResultStatus.FAILED for r in results)
                else "degraded"
            )
        else:
            batch_status = "complete"
        if plans:
            n_pairs = sum(len(r.pairs) for r in results)
            self._observe_query(
                "search_batch", plans[0], seconds, n_pairs,
                ctx=ctx, status=batch_status,
            )
        if owns:
            threshold = self._slow_threshold()
            slow = threshold is not None and seconds >= threshold
            self._finish_query(ctx, retain=unhealthy or slow)
        tail = flight.RECORDER.tail_dicts(32) if unhealthy else None
        return [
            QueryOutcome(
                pairs=r.pairs,
                status=r.status,
                completeness=r.completeness,
                error=r.error,
                query_id=ctx.query_id,
                accounting=ctx.accounting,
                recorder_tail=(
                    tail if r.status is not ResultStatus.COMPLETE else None
                ),
            )
            for r in results
        ]

    # ------------------------------------------------------------------ #
    # EXPLAIN
    # ------------------------------------------------------------------ #

    def explain(
        self, query: Query, mode: str = "auto", cache: str = "warm",
        t_range=None,
    ) -> ExplainReport:
        """Execute ``query`` and report the plan with est vs actual rows.

        Pushdown is disabled for the run so ``rows_fetched`` reports the
        true candidate-set size of each access path.
        """
        ctx, binder, owns = self._begin_query("explain")
        t0 = time.perf_counter()
        with binder, self._admit(None), span("query.explain") as root:
            root.set_attribute("query_id", ctx.query_id)
            with span("query.plan"):
                plan = self.plan(query, mode=mode, t_range=t_range)
            # snapshots and execution happen atomically under the session
            # lock — concurrent sessions on the same store can no longer
            # misattribute each other's pager traffic
            result, stats_before, stats_after = self._execute_with_io(
                plan, cache, None, pushdown=False
            )
            root.set_attribute("kind", query.kind)
            pages_read = cache_hits = cache_misses = None
            if stats_before is not None and stats_after is not None:
                delta = stats_after.delta(stats_before)
                pages_read = delta.page_reads
                cache_hits = delta.hits
                cache_misses = delta.misses
                obs_context.account(pages_read=pages_read)
        seconds = time.perf_counter() - t0
        self._observe_query(
            "explain", plan, seconds, len(result.pairs), result.op_stats,
            ctx=ctx,
        )
        if owns:
            threshold = self._slow_threshold()
            self._finish_query(
                ctx, retain=threshold is not None and seconds >= threshold
            )

        counts = self.store.counts()
        ops: List[OperatorExplain] = []
        for stat, op in zip(
            result.op_stats, (plan.point_op, plan.line_op)
        ):
            n = getattr(counts, op.table)
            if stat.operator == "point_range":
                est = int(
                    round(
                        n * self.cost.estimate_selectivity(
                            op.kind, op.t_threshold, op.v_threshold
                        )
                    )
                )
            else:
                sel_dt = self.cost.estimate_dt_selectivity(
                    op.kind, op.t_threshold
                )
                est = int(round(n * 0.1 * sel_dt))
            ops.append(
                OperatorExplain(
                    operator=stat.operator,
                    table=stat.table,
                    access=stat.access,
                    estimated_rows=est,
                    actual_rows=stat.rows_matched,
                    rows_fetched=stat.rows_fetched,
                )
            )
        return ExplainReport(
            backend=getattr(self.store, "BACKEND", "unknown"),
            plan=plan,
            chosen_mode=self.cost.choose_mode(
                query.kind, query.t_threshold, query.v_threshold
            ),
            estimated_selectivity=self.cost.estimate_selectivity(
                query.kind, query.t_threshold, query.v_threshold
            ),
            operators=ops,
            n_pairs=len(result.pairs),
            pages_read=pages_read,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            query_id=ctx.query_id,
            accounting=ctx.accounting.to_dict(),
        )

    def _io_stats(self):
        """A :class:`~repro.storage.minidb.pager.PagerStats` snapshot,
        on stores that expose pager counters; ``None`` otherwise."""
        fn = getattr(self.store, "pager_stats", None)
        return fn().snapshot() if callable(fn) else None

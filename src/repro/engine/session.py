"""Read-only, thread-safe query sessions with batching and EXPLAIN.

:class:`QuerySession` is the front door of the query engine: every
caller — ``SegDiffIndex``, ``TieredIndex``, ``TransectIndex``, the
experiments, the CLI — routes searches through one of these.  A session
owns a :class:`~repro.engine.cost.CostModel` for ``mode="auto"`` plan
choice, serializes access to backends whose reads are not thread-safe
(MiniDB's buffer pool), and exposes:

* :meth:`search` — one query, any mode, optional witness refinement;
* :meth:`search_batch` — a whole (T, V) grid in one shared pass per
  operator (the Figures 16-24 workload);
* :meth:`explain` — the chosen plan with estimated vs actual row counts
  (and pages read on MiniDB).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import InvalidParameterError
from ..types import SegmentPair
from .cost import CostModel
from .executor import ExecutionResult, execute, execute_batch
from .plan import Query, QueryPlan, RefineOp

__all__ = ["QuerySession", "OperatorExplain", "ExplainReport"]

_MODES = ("auto", "index", "scan", "grid")


@dataclass(frozen=True)
class OperatorExplain:
    """EXPLAIN line for one physical operator."""

    operator: str
    table: str
    access: str
    estimated_rows: int
    actual_rows: int
    rows_fetched: int


@dataclass(frozen=True)
class ExplainReport:
    """The chosen plan plus estimated-vs-actual execution statistics."""

    backend: str
    plan: QueryPlan
    chosen_mode: str
    estimated_selectivity: float
    operators: List[OperatorExplain] = field(default_factory=list)
    n_pairs: int = 0
    pages_read: Optional[int] = None
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None

    def render(self) -> str:
        """Human-readable EXPLAIN output (the CLI's format)."""
        q = self.plan.query
        lines = [
            f"EXPLAIN {q.kind} search  T={q.t_threshold:g}s  "
            f"V={q.v_threshold:g}  [backend={self.backend}]",
            f"  summary mode: {self.chosen_mode}  "
            f"(estimated selectivity {self.estimated_selectivity:.4f})",
            "  └─ UnionDedupOp"
            + (f"  pairs={self.n_pairs}" if self.n_pairs is not None else ""),
        ]
        for i, op in enumerate(self.operators):
            branch = "├" if i < len(self.operators) - 1 else "└"
            lines.append(
                f"     {branch}─ {op.operator}({op.table})  "
                f"access={op.access}  est_rows={op.estimated_rows}  "
                f"actual_rows={op.actual_rows}  fetched={op.rows_fetched}"
            )
        if self.pages_read is not None:
            line = f"  pages read: {self.pages_read}"
            if self.cache_hits is not None:
                line += (
                    f"  (pool hits {self.cache_hits}, "
                    f"misses {self.cache_misses})"
                )
            lines.append(line)
        return "\n".join(lines)


class QuerySession:
    """A read-only query session over one feature store.

    Thread safety: sessions serialize store access with an internal lock
    unless the store declares ``THREAD_SAFE_READS = True`` (the memory
    store's frozen numpy arrays and the SQLite store's per-thread reader
    connections both do; MiniDB's shared buffer pool does not).
    """

    def __init__(self, store, cost_model: Optional[CostModel] = None) -> None:
        self.store = store
        self.cost = cost_model if cost_model is not None else CostModel(store)
        self._lock: Optional[threading.Lock] = (
            None if getattr(store, "THREAD_SAFE_READS", False)
            else threading.Lock()
        )

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #

    def plan(self, query: Query, mode: str = "auto") -> QueryPlan:
        """The plan :meth:`search` would execute for ``query``."""
        if mode not in _MODES:
            raise InvalidParameterError(
                f"mode must be one of {_MODES}, got {mode!r}"
            )
        return self.cost.plan(query, mode=mode)

    def invalidate(self) -> None:
        """Drop cached cost-model samples (the store grew)."""
        self.cost.invalidate()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def _execute(self, plan: QueryPlan, cache: str, data,
                 pushdown: bool = True) -> ExecutionResult:
        if self._lock is None:
            return execute(plan, self.store, cache=cache, data=data,
                           pushdown=pushdown)
        with self._lock:
            return execute(plan, self.store, cache=cache, data=data,
                           pushdown=pushdown)

    def search(
        self,
        query: Query,
        mode: str = "auto",
        cache: str = "warm",
        data=None,
        verified_only: bool = False,
    ) -> List[SegmentPair]:
        """Distinct segment pairs matching ``query`` (Section 4.4).

        When ``data`` is given the result is witness-refined: a list of
        :class:`~repro.core.results.SearchHit` ordered by severity.
        """
        refine = (
            RefineOp(verified_only=verified_only) if data is not None else None
        )
        plan = self.plan(query, mode=mode)
        if refine is not None:
            plan = QueryPlan(
                query=plan.query,
                point_op=plan.point_op,
                line_op=plan.line_op,
                refine_op=refine,
            )
        result = self._execute(plan, cache, data)
        return result.hits if result.hits is not None else result.pairs

    def search_batch(
        self,
        queries: Sequence[Query],
        mode: str = "auto",
        cache: str = "warm",
    ) -> List[List[SegmentPair]]:
        """Answer a whole grid of queries in one shared pass per operator.

        Results align with ``queries`` by position and are identical to
        ``[self.search(q, ...) for q in queries]``, but candidates are
        fetched once per (kind, operator) instead of once per query.
        """
        if mode == "grid":
            raise InvalidParameterError(
                "batched execution supports 'auto', 'index' and 'scan'"
            )
        plans = [self.plan(q, mode=mode) for q in queries]
        if self._lock is None:
            results = execute_batch(plans, self.store, cache=cache)
        else:
            with self._lock:
                results = execute_batch(plans, self.store, cache=cache)
        return [r.pairs for r in results]

    # ------------------------------------------------------------------ #
    # EXPLAIN
    # ------------------------------------------------------------------ #

    def explain(
        self, query: Query, mode: str = "auto", cache: str = "warm"
    ) -> ExplainReport:
        """Execute ``query`` and report the plan with est vs actual rows.

        Pushdown is disabled for the run so ``rows_fetched`` reports the
        true candidate-set size of each access path.
        """
        plan = self.plan(query, mode=mode)
        stats_before = self._io_stats()
        result = self._execute(plan, cache, None, pushdown=False)
        stats_after = self._io_stats()
        pages_read = cache_hits = cache_misses = None
        if stats_before is not None and stats_after is not None:
            delta = stats_after.delta(stats_before)
            pages_read = delta.page_reads
            cache_hits = delta.hits
            cache_misses = delta.misses

        counts = self.store.counts()
        ops: List[OperatorExplain] = []
        for stat, op in zip(
            result.op_stats, (plan.point_op, plan.line_op)
        ):
            n = getattr(counts, op.table)
            if stat.operator == "point_range":
                est = int(
                    round(
                        n * self.cost.estimate_selectivity(
                            op.kind, op.t_threshold, op.v_threshold
                        )
                    )
                )
            else:
                sel_dt = self.cost.estimate_dt_selectivity(
                    op.kind, op.t_threshold
                )
                est = int(round(n * 0.1 * sel_dt))
            ops.append(
                OperatorExplain(
                    operator=stat.operator,
                    table=stat.table,
                    access=stat.access,
                    estimated_rows=est,
                    actual_rows=stat.rows_matched,
                    rows_fetched=stat.rows_fetched,
                )
            )
        return ExplainReport(
            backend=getattr(self.store, "BACKEND", "unknown"),
            plan=plan,
            chosen_mode=self.cost.choose_mode(
                query.kind, query.t_threshold, query.v_threshold
            ),
            estimated_selectivity=self.cost.estimate_selectivity(
                query.kind, query.t_threshold, query.v_threshold
            ),
            operators=ops,
            n_pairs=len(result.pairs),
            pages_read=pages_read,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )

    def _io_stats(self):
        """A :class:`~repro.storage.minidb.pager.PagerStats` snapshot,
        on stores that expose pager counters; ``None`` otherwise."""
        fn = getattr(self.store, "pager_stats", None)
        return fn().snapshot() if callable(fn) else None

"""Generic synthetic series used by tests, examples, and ablations.

These are deliberately simple; the paper-faithful workload lives in
:mod:`repro.datagen.cad`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import InvalidParameterError
from .series import TimeSeries

__all__ = ["random_walk_series", "sinusoid_series", "piecewise_series"]


def _regular_times(n: int, dt: float, t0: float) -> np.ndarray:
    if n < 1:
        raise InvalidParameterError("need n >= 1 samples")
    if dt <= 0:
        raise InvalidParameterError("sampling interval must be positive")
    return t0 + dt * np.arange(n, dtype=float)


def random_walk_series(
    n: int,
    dt: float = 300.0,
    step_std: float = 0.25,
    t0: float = 0.0,
    seed: Optional[int] = None,
    name: str = "random-walk",
) -> TimeSeries:
    """A Gaussian random walk sampled every ``dt`` seconds.

    Random walks contain both smooth stretches and sharp moves, which makes
    them a convenient adversarial input for segmentation and search tests.
    """
    rng = np.random.default_rng(seed)
    t = _regular_times(n, dt, t0)
    steps = rng.normal(0.0, step_std, size=n)
    steps[0] = 0.0
    return TimeSeries(t, np.cumsum(steps), name=name)


def sinusoid_series(
    n: int,
    dt: float = 300.0,
    period: float = 86_400.0,
    amplitude: float = 8.0,
    mean: float = 12.0,
    noise_std: float = 0.0,
    t0: float = 0.0,
    seed: Optional[int] = None,
    name: str = "sinusoid",
) -> TimeSeries:
    """A (optionally noisy) sinusoid — a caricature of a diurnal cycle."""
    if period <= 0 or amplitude < 0 or noise_std < 0:
        raise InvalidParameterError("period > 0, amplitude >= 0, noise_std >= 0")
    t = _regular_times(n, dt, t0)
    v = mean + amplitude * np.sin(2.0 * np.pi * t / period)
    if noise_std > 0:
        rng = np.random.default_rng(seed)
        v = v + rng.normal(0.0, noise_std, size=n)
    return TimeSeries(t, v, name=name)


def piecewise_series(
    breakpoints: Sequence[float],
    values: Sequence[float],
    dt: float = 300.0,
    name: str = "piecewise",
) -> TimeSeries:
    """Sample an exactly piecewise-linear signal every ``dt`` seconds.

    Useful in tests: segmentation with any tolerance must recover the
    breakpoints, and ground-truth drops are analytically known.  The
    breakpoints themselves are always included as samples.
    """
    bp_t = np.asarray(breakpoints, dtype=float)
    bp_v = np.asarray(values, dtype=float)
    if bp_t.shape != bp_v.shape or bp_t.ndim != 1 or bp_t.shape[0] < 2:
        raise InvalidParameterError(
            "need matching 1-D breakpoints/values with at least two points"
        )
    if not np.all(np.diff(bp_t) > 0):
        raise InvalidParameterError("breakpoints must be strictly increasing")
    if dt <= 0:
        raise InvalidParameterError("sampling interval must be positive")
    grid = np.arange(bp_t[0], bp_t[-1] + dt / 2.0, dt)
    t = np.union1d(grid, bp_t)
    t = t[(t >= bp_t[0]) & (t <= bp_t[-1])]
    v = np.interp(t, bp_t, bp_v)
    return TimeSeries(t, v, name=name)

"""CSV import/export for time series.

The format is deliberately plain — a header line ``t,v`` followed by one
``timestamp,value`` row per observation — so exported data can be inspected
with any spreadsheet or fed back into the library byte-for-byte.
"""

from __future__ import annotations

import csv
import math
import os
from typing import Iterator, Tuple, Union

import numpy as np

from ..errors import InvalidSeriesError
from .series import TimeSeries

__all__ = ["iter_series_csv", "load_series_csv", "save_series_csv"]

PathLike = Union[str, "os.PathLike[str]"]

#: Rows per chunk yielded by :func:`iter_series_csv`.
DEFAULT_CHUNK_SIZE = 65_536


def save_series_csv(series: TimeSeries, path: PathLike) -> None:
    """Write a series to ``path`` as ``t,v`` CSV (repr-precision floats)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["t", "v"])
        for t, v in zip(series.times, series.values):
            writer.writerow([repr(float(t)), repr(float(v))])


def iter_series_csv(
    path: PathLike, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Stream a ``t,v`` CSV as ``(times, values)`` float-array chunks.

    The memory-bounded counterpart of :func:`load_series_csv`: the same
    structural validation (required header, exactly two finite numeric
    fields per row, strictly increasing timestamps — enforced *across*
    chunk boundaries too) with :class:`InvalidSeriesError` carrying the
    offending line number, but at most ``chunk_size`` rows held at once.
    This is how ``repro build`` and ``repro ingest`` feed arbitrarily
    large files through the streaming pipeline.
    """
    if chunk_size < 1:
        raise InvalidSeriesError(
            f"chunk_size must be >= 1, got {chunk_size}"
        )
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header] != ["t", "v"]:
            raise InvalidSeriesError(
                f"{path}: expected header 't,v', got {header!r}"
            )
        times: list = []
        values: list = []
        last_t: float = -math.inf
        have_any = False
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise InvalidSeriesError(
                    f"{path}:{lineno}: expected 2 fields, got {len(row)}"
                )
            try:
                t = float(row[0])
                v = float(row[1])
            except ValueError as exc:
                raise InvalidSeriesError(
                    f"{path}:{lineno}: non-numeric field: {row!r}"
                ) from exc
            if not (math.isfinite(t) and math.isfinite(v)):
                raise InvalidSeriesError(
                    f"{path}:{lineno}: non-finite value: {row!r}"
                )
            if have_any and t <= last_t:
                raise InvalidSeriesError(
                    f"{path}:{lineno}: timestamp {t!r} does not increase "
                    f"(previous {last_t!r})"
                )
            last_t = t
            have_any = True
            times.append(t)
            values.append(v)
            if len(times) >= chunk_size:
                yield (
                    np.asarray(times, dtype=float),
                    np.asarray(values, dtype=float),
                )
                times, values = [], []
        if times:
            yield (
                np.asarray(times, dtype=float),
                np.asarray(values, dtype=float),
            )
        if not have_any:
            raise InvalidSeriesError(f"{path}: no observations")


def load_series_csv(path: PathLike, name: str = "") -> TimeSeries:
    """Read a series written by :func:`save_series_csv`.

    The header row is required; rows must contain exactly two finite
    numeric fields with strictly increasing timestamps.  Structural
    problems raise :class:`InvalidSeriesError` with the offending line
    number — NaN/±inf values and out-of-order timestamps are rejected
    here, at the boundary, rather than deep inside the pipeline.
    Implemented over :func:`iter_series_csv`, so the two paths can never
    diverge on what counts as a valid file.
    """
    chunks = list(iter_series_csv(path))
    times = np.concatenate([c[0] for c in chunks])
    values = np.concatenate([c[1] for c in chunks])
    return TimeSeries(times, values, name=name or str(path))

"""CSV import/export for time series.

The format is deliberately plain — a header line ``t,v`` followed by one
``timestamp,value`` row per observation — so exported data can be inspected
with any spreadsheet or fed back into the library byte-for-byte.
"""

from __future__ import annotations

import csv
import math
import os
from typing import Union

from ..errors import InvalidSeriesError
from .series import TimeSeries

__all__ = ["load_series_csv", "save_series_csv"]

PathLike = Union[str, "os.PathLike[str]"]


def save_series_csv(series: TimeSeries, path: PathLike) -> None:
    """Write a series to ``path`` as ``t,v`` CSV (repr-precision floats)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["t", "v"])
        for t, v in zip(series.times, series.values):
            writer.writerow([repr(float(t)), repr(float(v))])


def load_series_csv(path: PathLike, name: str = "") -> TimeSeries:
    """Read a series written by :func:`save_series_csv`.

    The header row is required; rows must contain exactly two finite
    numeric fields with strictly increasing timestamps.  Structural
    problems raise :class:`InvalidSeriesError` with the offending line
    number — NaN/±inf values and out-of-order timestamps are rejected
    here, at the boundary, rather than deep inside the pipeline.
    """
    times = []
    values = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header] != ["t", "v"]:
            raise InvalidSeriesError(
                f"{path}: expected header 't,v', got {header!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise InvalidSeriesError(
                    f"{path}:{lineno}: expected 2 fields, got {len(row)}"
                )
            try:
                t = float(row[0])
                v = float(row[1])
            except ValueError as exc:
                raise InvalidSeriesError(
                    f"{path}:{lineno}: non-numeric field: {row!r}"
                ) from exc
            if not (math.isfinite(t) and math.isfinite(v)):
                raise InvalidSeriesError(
                    f"{path}:{lineno}: non-finite value: {row!r}"
                )
            if times and t <= times[-1]:
                raise InvalidSeriesError(
                    f"{path}:{lineno}: timestamp {t!r} does not increase "
                    f"(previous {times[-1]!r})"
                )
            times.append(t)
            values.append(v)
    if not times:
        raise InvalidSeriesError(f"{path}: no observations")
    return TimeSeries(times, values, name=name or str(path))

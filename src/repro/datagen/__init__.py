"""Data substrate: time-series containers, the paper's Data Generating
Model G, synthetic Cold-Air-Drainage data, robust smoothing, and IO.

The paper evaluates on a proprietary dataset from the James Reserve CAD
transect; :mod:`repro.datagen.cad` provides the synthetic stand-in
(see DESIGN.md §2 for the substitution rationale).
"""

from .series import TimeSeries
from .model import PiecewiseLinearSignal
from .synthetic import random_walk_series, sinusoid_series, piecewise_series
from .cad import CADConfig, CADTransectGenerator, generate_cad_day
from .smoothing import robust_loess, moving_average
from .io import iter_series_csv, load_series_csv, save_series_csv

__all__ = [
    "TimeSeries",
    "PiecewiseLinearSignal",
    "random_walk_series",
    "sinusoid_series",
    "piecewise_series",
    "CADConfig",
    "CADTransectGenerator",
    "generate_cad_day",
    "robust_loess",
    "moving_average",
    "iter_series_csv",
    "load_series_csv",
    "save_series_csv",
]

"""A validated, immutable time-series container backed by numpy arrays.

Everything in the library that consumes "a time series" accepts a
:class:`TimeSeries`.  Construction validates the structural invariants the
algorithms rely on: matching lengths, finite values, and strictly
increasing timestamps.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from ..errors import InvalidSeriesError
from ..types import Observation

__all__ = ["TimeSeries"]


class TimeSeries:
    """An immutable 1-D time series ``(t_0, v_0), (t_1, v_1), ...``.

    Parameters
    ----------
    times:
        Strictly increasing timestamps (seconds, float).
    values:
        Values sampled at ``times``; same length, all finite.
    name:
        Optional label (e.g. a sensor id) carried through for reporting.
    """

    __slots__ = ("_t", "_v", "name")

    def __init__(
        self,
        times: Sequence[float],
        values: Sequence[float],
        name: str = "",
    ) -> None:
        # private copies: freezing must not affect the caller's arrays
        t = np.array(times, dtype=float, copy=True)
        v = np.array(values, dtype=float, copy=True)
        if t.ndim != 1 or v.ndim != 1:
            raise InvalidSeriesError("times and values must be 1-D")
        if t.shape[0] != v.shape[0]:
            raise InvalidSeriesError(
                f"length mismatch: {t.shape[0]} times vs {v.shape[0]} values"
            )
        if t.shape[0] == 0:
            raise InvalidSeriesError("series must contain at least one observation")
        if not np.all(np.isfinite(t)) or not np.all(np.isfinite(v)):
            raise InvalidSeriesError("times and values must be finite")
        if t.shape[0] > 1 and not np.all(np.diff(t) > 0):
            raise InvalidSeriesError("timestamps must be strictly increasing")
        t.setflags(write=False)
        v.setflags(write=False)
        self._t = t
        self._v = v
        self.name = name

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._t.shape[0]

    def __iter__(self) -> Iterator[Observation]:
        for t, v in zip(self._t, self._v):
            yield Observation(float(t), float(v))

    def __getitem__(self, i: int) -> Observation:
        return Observation(float(self._t[i]), float(self._v[i]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            self._t.shape == other._t.shape
            and bool(np.array_equal(self._t, other._t))
            and bool(np.array_equal(self._v, other._v))
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<TimeSeries{label} n={len(self)} "
            f"t=[{self._t[0]:.1f}, {self._t[-1]:.1f}]>"
        )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def times(self) -> np.ndarray:
        """Read-only array of timestamps."""
        return self._t

    @property
    def values(self) -> np.ndarray:
        """Read-only array of values."""
        return self._v

    @property
    def t_start(self) -> float:
        """Timestamp of the first observation."""
        return float(self._t[0])

    @property
    def t_end(self) -> float:
        """Timestamp of the last observation."""
        return float(self._t[-1])

    @property
    def duration(self) -> float:
        """Total covered time span."""
        return self.t_end - self.t_start

    def sampling_interval(self) -> float:
        """Median gap between consecutive samples (0 for singletons)."""
        if len(self) < 2:
            return 0.0
        return float(np.median(np.diff(self._t)))

    # ------------------------------------------------------------------ #
    # derived series
    # ------------------------------------------------------------------ #

    def slice_time(self, t_lo: float, t_hi: float) -> "TimeSeries":
        """Sub-series of observations with ``t_lo <= t <= t_hi``."""
        if t_hi < t_lo:
            raise InvalidSeriesError(f"empty time range [{t_lo}, {t_hi}]")
        mask = (self._t >= t_lo) & (self._t <= t_hi)
        if not mask.any():
            raise InvalidSeriesError(
                f"no observations in [{t_lo}, {t_hi}] "
                f"(series spans [{self.t_start}, {self.t_end}])"
            )
        return TimeSeries(self._t[mask], self._v[mask], name=self.name)

    def head(self, n: int) -> "TimeSeries":
        """First ``n`` observations."""
        if n < 1:
            raise InvalidSeriesError("head() needs n >= 1")
        return TimeSeries(self._t[:n], self._v[:n], name=self.name)

    def with_values(self, values: Sequence[float]) -> "TimeSeries":
        """Same timestamps, new values (e.g. after smoothing)."""
        return TimeSeries(self._t, values, name=self.name)

    def shift_time(self, offset: float) -> "TimeSeries":
        """Same series with every timestamp shifted by ``offset``."""
        return TimeSeries(self._t + offset, self._v, name=self.name)

    def concat(self, other: "TimeSeries") -> "TimeSeries":
        """This series followed by ``other`` (which must start later)."""
        if other.t_start <= self.t_end:
            raise InvalidSeriesError(
                "concat requires the second series to start strictly after "
                f"the first ends ({other.t_start} <= {self.t_end})"
            )
        return TimeSeries(
            np.concatenate([self._t, other._t]),
            np.concatenate([self._v, other._v]),
            name=self.name,
        )

    @staticmethod
    def from_observations(
        observations: Iterable[Tuple[float, float]], name: str = ""
    ) -> "TimeSeries":
        """Build a series from an iterable of ``(t, v)`` pairs."""
        pairs = list(observations)
        if not pairs:
            raise InvalidSeriesError("series must contain at least one observation")
        t, v = zip(*pairs)
        return TimeSeries(t, v, name=name)

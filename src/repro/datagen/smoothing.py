"""Preprocessing smoothers.

The paper preprocesses the CAD data "by a smoothing method with robust
weights so that anomalies are removed" — i.e. a robust LOWESS.
:func:`robust_loess` implements local linear regression with a tricube
kernel and iterated bisquare reweighting (Cleveland 1979), which removes
isolated spikes while preserving the sharp-but-real CAD drops.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import InvalidParameterError
from .series import TimeSeries

__all__ = ["robust_loess", "moving_average"]


def moving_average(series: TimeSeries, window: int = 5) -> TimeSeries:
    """Simple centered moving average (non-robust; kept for comparison)."""
    if window < 1:
        raise InvalidParameterError("window must be >= 1")
    if window % 2 == 0:
        raise InvalidParameterError("window must be odd so it can be centered")
    v = series.values
    kernel = np.ones(window) / window
    padded = np.concatenate(
        [np.full(window // 2, v[0]), v, np.full(window // 2, v[-1])]
    )
    smoothed = np.convolve(padded, kernel, mode="valid")
    return series.with_values(smoothed)


def robust_loess(
    series: TimeSeries,
    span: int = 9,
    iterations: int = 2,
    seed: Optional[int] = None,
) -> TimeSeries:
    """Robust local linear smoothing (LOWESS with bisquare reweighting).

    Parameters
    ----------
    series:
        Input series.
    span:
        Number of nearest neighbours per local fit (odd, >= 3).
    iterations:
        Robustifying iterations; 0 gives plain LOESS.  Each iteration
        down-weights points with large residuals using the bisquare
        function, which is what rejects anomaly spikes.
    seed:
        Unused; accepted for pipeline-signature uniformity.

    Notes
    -----
    Complexity is O(n * span); fine for the data volumes the experiments
    use.  Endpoints use one-sided neighbourhoods.
    """
    if span < 3:
        raise InvalidParameterError("span must be >= 3")
    if span % 2 == 0:
        raise InvalidParameterError("span must be odd so windows centre cleanly")
    if iterations < 0:
        raise InvalidParameterError("iterations must be >= 0")
    n = len(series)
    if n <= span:
        # Too short for local windows: fall back to one global robust fit.
        return _global_robust_line(series, iterations)

    t = series.times
    v = series.values
    half = span // 2
    robust_w = np.ones(n)
    fitted = v.astype(float).copy()

    for round_idx in range(iterations + 1):
        for i in range(n):
            lo = max(0, min(i - half, n - span))
            hi = lo + span
            tw = t[lo:hi]
            vw = v[lo:hi]
            d = np.abs(tw - t[i])
            dmax = d.max()
            if dmax <= 0:
                fitted[i] = vw.mean()
                continue
            tri = (1.0 - (d / dmax) ** 3) ** 3
            tri = np.clip(tri, 1e-6, None)
            w = tri * robust_w[lo:hi]
            fitted[i] = _weighted_linear_fit(tw, vw, w, t[i])
        if round_idx == iterations:
            break
        robust_w = _bisquare_weights(v - fitted)

    return series.with_values(fitted)


def _weighted_linear_fit(
    t: np.ndarray, v: np.ndarray, w: np.ndarray, t_eval: float
) -> float:
    """Weighted least-squares line through (t, v); value at ``t_eval``."""
    sw = w.sum()
    if sw <= 0:
        return float(v.mean())
    t_mean = (w * t).sum() / sw
    v_mean = (w * v).sum() / sw
    t_c = t - t_mean
    denom = (w * t_c * t_c).sum()
    if denom <= 1e-12:
        return float(v_mean)
    slope = (w * t_c * (v - v_mean)).sum() / denom
    return float(v_mean + slope * (t_eval - t_mean))


def _bisquare_weights(residuals: np.ndarray) -> np.ndarray:
    """Cleveland's bisquare robustness weights from residuals."""
    abs_res = np.abs(residuals)
    s = np.median(abs_res)
    if s <= 0:
        # majority of points fit exactly; fall back to the mean scale so
        # isolated spikes still get zero weight
        s = float(abs_res.mean())
    if s <= 0:
        return np.ones_like(residuals)
    u = residuals / (6.0 * s)
    w = (1.0 - u**2) ** 2
    w[np.abs(u) >= 1.0] = 0.0
    return w


def _global_robust_line(series: TimeSeries, iterations: int) -> TimeSeries:
    """Robust single-line fit for series shorter than one window."""
    t = series.times.astype(float)
    v = series.values.astype(float)
    w = np.ones_like(v)
    fitted = v.copy()
    for _ in range(iterations + 1):
        fitted = np.array([_weighted_linear_fit(t, v, w, ti) for ti in t])
        w = _bisquare_weights(v - fitted)
    return series.with_values(fitted)
